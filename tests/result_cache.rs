//! End-to-end guarantees of the per-op result cache.
//!
//! The engine solves every cone in canonical input order, so the cache
//! can only change *how much work* a run does, never what it answers:
//! `--cache` runs must be byte-identical to `--no-cache` runs, warm
//! caches must strictly reduce solver calls, and permuted-input twin
//! cones must share entries. These properties are asserted here on
//! registry circuits and on random AIGs with planted permuted twins.

use std::sync::Arc;

use qbf_bidec::aig::Aig;
use qbf_bidec::circuits::{registry_table1, with_permuted_copies, Scale};
use qbf_bidec::step::{BiDecomposer, CircuitResult, DecompConfig, GateOp, Model, ResultCache};

fn engine(model: Model, jobs: usize, cache: Option<Arc<ResultCache>>) -> BiDecomposer {
    let mut c = DecompConfig::new(model);
    c.jobs = jobs;
    let mut e = BiDecomposer::new(c);
    if let Some(cache) = cache {
        e.set_cache(cache);
    }
    e
}

/// Everything result-shaped must match; work counters may not.
fn assert_same_answers(a: &CircuitResult, b: &CircuitResult, tag: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{tag}: output count");
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        let t = format!("{tag}: output {} ({})", x.output_index, x.name);
        assert_eq!(x.name, y.name, "{t}: name");
        assert_eq!(x.support, y.support, "{t}: support");
        assert_eq!(x.partition, y.partition, "{t}: partition");
        assert_eq!(x.solved, y.solved, "{t}: solved");
        assert_eq!(x.proved_optimal, y.proved_optimal, "{t}: proved_optimal");
        assert_eq!(
            x.decomposition.is_some(),
            y.decomposition.is_some(),
            "{t}: extraction"
        );
    }
}

/// The acceptance scenario: on a registry circuit with repeated
/// (permuted) cones, a warm-cache whole-circuit run performs strictly
/// fewer SAT+QBF calls than the cold run and produces the identical
/// partition/flag/verdict set.
#[test]
fn warm_cache_run_saves_calls_and_changes_nothing() {
    let entry = &registry_table1()[2]; // s38584.1: 8 outputs
    let aig = with_permuted_copies(&entry.build(Scale::Default), 2);
    for model in [Model::MusGroup, Model::QbfDisjoint] {
        let cold = engine(model, 2, None)
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();

        let cache = Arc::new(ResultCache::new());
        let first = engine(model, 2, Some(cache.clone()))
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();
        assert!(
            first.cache_hits() > 0,
            "{model}: the permuted twins must hit within one run"
        );
        let warm = engine(model, 2, Some(cache.clone()))
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();

        assert_same_answers(&cold, &first, &format!("{model} cold vs first"));
        assert_same_answers(&cold, &warm, &format!("{model} cold vs warm"));
        let calls = |r: &CircuitResult| r.total_sat_calls() + r.total_qbf_calls();
        assert!(
            calls(&first) < calls(&cold),
            "{model}: intra-run hits must already save calls ({} vs {})",
            calls(&first),
            calls(&cold)
        );
        assert!(
            calls(&warm) < calls(&first),
            "{model}: a fully warm cache must save more ({} vs {})",
            calls(&warm),
            calls(&first)
        );
        assert_eq!(
            warm.cache_misses(),
            0,
            "{model}: run 2 must be served entirely from the cache"
        );
    }
}

/// Canonicalization quality floor: across the whole Table-I registry,
/// at least 90% of planted permuted-input twins must land on their
/// original's cache entry (the canonical form is a normalization, not
/// a full graph canonization — rare symmetric tie-breaks may miss, but
/// they must stay rare).
#[test]
fn twin_recognition_rate_stays_high() {
    let mut hits = 0u64;
    let mut total = 0u64;
    for entry in registry_table1() {
        let aig = with_permuted_copies(&entry.build(Scale::Smoke), 2);
        let cache = Arc::new(ResultCache::new());
        let r = engine(Model::MusGroup, 1, Some(cache))
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();
        // Each twin of a solved non-trivial cone should hit.
        hits += r.cache_hits();
        total += (r.outputs.len() / 2) as u64;
    }
    assert!(total >= 20, "population sanity");
    assert!(
        hits * 10 >= total * 9,
        "twin recognition degraded: {hits}/{total}"
    );
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Builds one cone from gate descriptors over the given input
    /// literals (the same structure for any input permutation).
    fn build_cone(
        aig: &mut Aig,
        inputs: &[qbf_bidec::aig::AigLit],
        ops: &[(u8, usize, usize)],
    ) -> qbf_bidec::aig::AigLit {
        let mut pool = inputs.to_vec();
        for &(op, i, j) in ops {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let v = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => !a,
            };
            pool.push(v);
        }
        *pool.last().unwrap()
    }

    /// A circuit whose outputs are the same random cone instantiated
    /// over the identity and over a permuted input order.
    fn twin_circuit(ops: &[(u8, usize, usize)], perm: &[usize; 4]) -> Aig {
        let mut aig = Aig::new();
        let ins: Vec<qbf_bidec::aig::AigLit> =
            (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
        let f = build_cone(&mut aig, &ins, ops);
        let shuffled: Vec<qbf_bidec::aig::AigLit> = perm.iter().map(|&i| ins[i]).collect();
        let g = build_cone(&mut aig, &shuffled, ops);
        aig.add_output("f", f);
        aig.add_output("g", g);
        aig
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 4..20)
    }

    fn arb_perm() -> impl Strategy<Value = [usize; 4]> {
        (0usize..24).prop_map(|k| {
            let mut items = vec![0, 1, 2, 3];
            let mut perm = [0usize; 4];
            let mut k = k;
            for slot in &mut perm {
                *slot = items.remove(k % items.len());
                k /= 4;
            }
            perm
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random AIGs with duplicated/permuted-input cones: cached
        /// runs produce byte-identical partitions and flags to cold
        /// runs, at every jobs count, for a heuristic and a QBF model.
        #[test]
        fn cached_runs_equal_cold_runs(ops in arb_ops(), perm in arb_perm()) {
            let aig = twin_circuit(&ops, &perm);
            for model in [Model::MusGroup, Model::QbfDisjoint] {
                let cold = engine(model, 1, None)
                    .decompose_circuit(&aig, GateOp::Or)
                    .unwrap();
                for jobs in [1usize, 2, 3] {
                    let cache = Arc::new(ResultCache::new());
                    let cached = engine(model, jobs, Some(cache))
                        .decompose_circuit(&aig, GateOp::Or)
                        .unwrap();
                    prop_assert_eq!(cold.outputs.len(), cached.outputs.len());
                    for (x, y) in cold.outputs.iter().zip(&cached.outputs) {
                        prop_assert_eq!(&x.partition, &y.partition,
                            "{} jobs={} {}", model, jobs, x.name);
                        prop_assert_eq!(x.solved, y.solved);
                        prop_assert_eq!(x.proved_optimal, y.proved_optimal);
                        prop_assert_eq!(x.support, y.support);
                        prop_assert_eq!(
                            x.decomposition.is_some(),
                            y.decomposition.is_some()
                        );
                    }
                }
            }
        }
    }
}
