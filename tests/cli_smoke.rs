//! Smoke tests pinning the `step` binary's command-line surface: the
//! usage text, a basic end-to-end decomposition run, and the QDIMACS
//! emission mode.

use std::path::PathBuf;
use std::process::{Command, Output};

fn step() -> Command {
    Command::new(env!("CARGO_BIN_EXE_step"))
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn step binary")
}

/// `(a & b) | (c & d)`: disjointly OR-decomposable, written to a
/// uniquely-named BENCH file under the target tmp dir.
fn write_or_of_ands(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let path = dir.join(format!("cli_smoke_{tag}.bench"));
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
         OUTPUT(f)\n\
         t1 = AND(a, b)\nt2 = AND(c, d)\nf = OR(t1, t2)\n",
    )
    .expect("write bench file");
    path
}

#[test]
fn help_prints_usage_to_stdout_and_exits_0() {
    for flag in ["--help", "-h"] {
        let out = run(step().arg(flag));
        assert_eq!(out.status.code(), Some(0), "step {flag} exit code");
        let usage = String::from_utf8(out.stdout).unwrap();
        assert!(usage.contains("usage: step"), "usage header: {usage}");
        // Pin the advertised option surface.
        for opt in [
            "--model",
            "--op",
            "--weights",
            "--output",
            "--jobs",
            "--progress",
            "--seed",
            "--cache",
            "--no-cache",
            "--cache-cap",
            "--cache-dir",
            "cache stats",
            "--no-timing",
            "--emit-qdimacs",
            "--emit-blif",
            "--budget",
            "--circuit-budget",
            "--qbf-budget",
            "--per-call-ms",
            "--per-output-s",
            "work:",
        ] {
            assert!(usage.contains(opt), "usage must mention {opt}: {usage}");
        }
    }
}

#[test]
fn no_arguments_is_an_error() {
    let out = run(&mut step());
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_is_an_error() {
    let out = run(step().arg("--frobnicate"));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_reports_error() {
    let out = run(step().arg("/nonexistent/not_here.bench"));
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error"), "stderr: {err}");
}

#[test]
fn decomposes_a_bench_circuit() {
    let path = write_or_of_ands("decompose");
    let out = run(step().arg(&path).args(["--model", "qd", "--op", "or"]));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("4 inputs, 1 outputs"),
        "circuit banner: {text}"
    );
    // (a&b)|(c&d) splits {a,b} | {c,d} with an empty shared set.
    assert!(text.contains("output"), "table header: {text}");
    let row = text
        .lines()
        .find(|l| l.starts_with('f') || l.contains("f "))
        .unwrap_or_else(|| panic!("row for output f in: {text}"));
    assert!(row.contains('2'), "|XA|=|XB|=2 in: {row}");
}

/// A two-output circuit: `f = (a&b)|(c&d)` and `g = (a&c)|(b&d)`.
fn write_two_outputs(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let path = dir.join(format!("cli_smoke_{tag}.bench"));
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
         OUTPUT(f)\nOUTPUT(g)\n\
         t1 = AND(a, b)\nt2 = AND(c, d)\nf = OR(t1, t2)\n\
         u1 = AND(a, c)\nu2 = AND(b, d)\ng = OR(u1, u2)\n",
    )
    .expect("write bench file");
    path
}

#[test]
fn jobs_flag_is_output_stable() {
    let path = write_two_outputs("jobs");
    let run_with = |jobs: &str| -> String {
        let out = run(step()
            .arg(&path)
            .args(["--model", "qd", "--no-timing", "--jobs", jobs]));
        assert!(out.status.success(), "stderr: {:?}", out.stderr);
        String::from_utf8(out.stdout).unwrap()
    };
    let one = run_with("1");
    let four = run_with("4");
    assert_eq!(one, four, "--jobs must not change per-output results");
    assert!(
        one.contains("decomposed 2 output function(s)"),
        "both outputs decompose: {one}"
    );
    // --no-timing replaces the cpu cell with `-`.
    assert!(one.contains(" -"), "stable cpu cell: {one}");
}

#[test]
fn progress_streams_on_stderr_and_leaves_stdout_identical() {
    // --progress narrates one line per output on stderr (completion
    // order) through the service handle; the stdout table must stay
    // byte-identical to a non-progress run under --no-timing.
    let path = write_two_outputs("progress");
    let plain = run(step().arg(&path).args(["--model", "qd", "--no-timing"]));
    assert!(plain.status.success(), "stderr: {:?}", plain.stderr);
    let streamed =
        run(step()
            .arg(&path)
            .args(["--model", "qd", "--no-timing", "--jobs", "2", "--progress"]));
    assert!(streamed.status.success(), "stderr: {:?}", streamed.stderr);
    assert_eq!(
        String::from_utf8(plain.stdout).unwrap(),
        String::from_utf8(streamed.stdout).unwrap(),
        "--progress must not change the stdout table"
    );
    let err = String::from_utf8(streamed.stderr).unwrap();
    let progress: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("progress: "))
        .collect();
    assert_eq!(progress.len(), 2, "one line per output: {err}");
    assert!(
        progress.iter().any(|l| l.contains("/2 f decomposed"))
            && progress.iter().any(|l| l.contains("/2 g decomposed")),
        "named verdict lines: {err}"
    );
}

#[test]
fn bad_jobs_value_is_an_error() {
    let path = write_two_outputs("badjobs");
    for bad in ["0", "many", ""] {
        let out = run(step().arg(&path).args(["--jobs", bad]));
        assert_eq!(out.status.code(), Some(2), "--jobs {bad:?}");
    }
}

#[test]
fn seed_flag_parses_and_runs() {
    let path = write_two_outputs("seed");
    let out = run(step().arg(&path).args(["--model", "mg", "--seed", "12345"]));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let out = run(step().arg(&path).args(["--seed", "nope"]));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cache_flags_report_stats_and_never_change_output() {
    // f and g in the fixture are permuted-input twins, so the default
    // cache serves g from f's entry and says so on the stats line.
    let path = write_two_outputs("cache");
    let out = run(step().arg(&path).args(["--model", "qd"]));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("cache: 1 hits, 1 misses, 1 inserts"),
        "twin cones must hit: {text}"
    );

    // The stats line hides with the timing cells, and the cache can
    // only change work done, never answers: --cache and --no-cache are
    // byte-identical under --no-timing.
    let stable = |flag: &str| -> String {
        let out = run(step()
            .arg(&path)
            .args(["--model", "qd", "--no-timing", flag]));
        assert!(out.status.success(), "stderr: {:?}", out.stderr);
        String::from_utf8(out.stdout).unwrap()
    };
    let cached = stable("--cache");
    let cold = stable("--no-cache");
    assert!(!cached.contains("cache:"), "stats hidden: {cached}");
    assert_eq!(cached, cold, "--cache must not change per-output results");

    // --cache-cap parses (and bad values are usage errors).
    let out = run(step()
        .arg(&path)
        .args(["--model", "qd", "--cache-cap", "64"]));
    assert!(out.status.success());
    let out = run(step().arg(&path).args(["--cache-cap", "0"]));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn budget_flags_parse_and_malformed_values_exit_2_with_usage() {
    let path = write_two_outputs("budget");
    // Well-formed specs in every shape run fine.
    for spec in ["wall:60s", "work:200k", "both:60s,200k", "unlimited"] {
        let out = run(step().arg(&path).args(["--model", "mg", "--budget", spec]));
        assert!(out.status.success(), "--budget {spec}: {:?}", out.stderr);
    }
    let out = run(step()
        .arg(&path)
        .args(["--model", "mg", "--circuit-budget", "work:1m"]));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let out = run(step()
        .arg(&path)
        .args(["--model", "qd", "--qbf-budget", "both:500ms,10k"]));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    // Malformed values exit 2 with the usage message — never a panic.
    for (flag, bad) in [
        ("--budget", "60"),
        ("--budget", "wall:"),
        ("--budget", "work:abc"),
        ("--budget", "both:4s"),
        ("--circuit-budget", "secs:4"),
        ("--qbf-budget", ""),
        ("--cache-cap", "lots"),
        ("--jobs", "-3"),
    ] {
        let out = run(step().arg(&path).args([flag, bad]));
        assert_eq!(out.status.code(), Some(2), "{flag} {bad:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("usage: step"),
            "{flag} {bad:?} must print usage: {err}"
        );
    }
    // A trailing flag with no value at all is the same usage error.
    for flag in ["--budget", "--circuit-budget", "--cache-cap", "--jobs"] {
        let out = run(step().arg(&path).arg(flag));
        assert_eq!(out.status.code(), Some(2), "bare {flag}");
    }
}

#[test]
fn work_budget_runs_are_byte_identical_across_jobs() {
    // The new determinism guarantee at the CLI surface: under a pure
    // work budget, stdout (with --no-timing) is byte-identical for any
    // --jobs value and cache mode — including which outputs truncate.
    let path = write_two_outputs("workdet");
    let run_with = |extra: &[&str]| -> String {
        let mut cmd = step();
        cmd.arg(&path)
            .args(["--model", "qd", "--no-timing", "--budget", "work:1"]);
        cmd.args(extra);
        let out = run(&mut cmd);
        assert!(out.status.success(), "stderr: {:?}", out.stderr);
        String::from_utf8(out.stdout).unwrap()
    };
    let base = run_with(&["--jobs", "1"]);
    assert_eq!(base, run_with(&["--jobs", "2"]), "jobs=2");
    assert_eq!(base, run_with(&["--jobs", "3"]), "jobs=3");
    assert_eq!(base, run_with(&["--jobs", "2", "--no-cache"]), "no-cache");
}

/// A fresh, empty directory under the target tmp dir.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("cli_smoke_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

#[test]
fn bad_cache_dir_is_an_upfront_usage_error() {
    let path = write_two_outputs("badcachedir");
    let dir = tmp_dir("badcachedir");

    // A regular file where the directory should be.
    let file = dir.join("occupied");
    std::fs::write(&file, "not a directory").expect("write blocker file");
    let out = run(step()
        .arg(&path)
        .args(["--cache-dir", file.to_str().unwrap()]));
    assert_eq!(out.status.code(), Some(2), "regular file");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("not a directory") && err.contains("usage: step"),
        "why + usage on stderr: {err}"
    );
    // The run must not have started: an up-front check, not a
    // post-solve surprise.
    assert!(
        String::from_utf8(out.stdout).unwrap().is_empty(),
        "no output before the validation error"
    );

    // A path whose parent is a regular file cannot be created.
    let nested = file.join("sub");
    let out = run(step()
        .arg(&path)
        .args(["--cache-dir", nested.to_str().unwrap()]));
    assert_eq!(out.status.code(), Some(2), "uncreatable path");

    // A bare --cache-dir with no value is the usual usage error.
    let out = run(step().arg(&path).arg("--cache-dir"));
    assert_eq!(out.status.code(), Some(2), "bare --cache-dir");
}

#[test]
fn cache_subcommand_usage_errors_exit_2() {
    for bad in [
        vec!["cache"],
        vec!["cache", "frobnicate"],
        vec!["cache", "stats"],
        vec!["cache", "merge"],
        vec!["cache", "merge", "only-out"],
        vec!["cache", "verify"],
    ] {
        let out = run(step().args(&bad));
        assert_eq!(out.status.code(), Some(2), "step {bad:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("usage: step"), "step {bad:?}: {err}");
    }
}

#[test]
fn cache_dir_warms_a_second_run_byte_identically() {
    let path = write_two_outputs("warm");
    let dir = tmp_dir("warm");
    let run_with = |extra: &[&str]| -> String {
        let mut cmd = step();
        cmd.arg(&path).args([
            "--model",
            "qd",
            "--no-timing",
            "--cache-dir",
            dir.to_str().unwrap(),
        ]);
        cmd.args(extra);
        let out = run(&mut cmd);
        assert!(out.status.success(), "stderr: {:?}", out.stderr);
        String::from_utf8(out.stdout).unwrap()
    };
    let cold = run_with(&[]);
    let warm = run_with(&[]);
    assert_eq!(cold, warm, "a warm run must answer byte-identically");
    assert!(!warm.contains("store:"), "stats hidden under --no-timing");

    // With timing on, the warm run reports nonzero disk hits.
    let out = run(step()
        .arg(&path)
        .args(["--model", "qd", "--cache-dir", dir.to_str().unwrap()]));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    let store_line = text
        .lines()
        .find(|l| l.starts_with("store:"))
        .unwrap_or_else(|| panic!("store stats line in: {text}"));
    assert!(
        !store_line.contains("disk hits 0 results"),
        "warm run serves results from disk: {store_line}"
    );

    // `step cache verify` agrees the store is healthy.
    let out = run(step().args(["cache", "verify", dir.to_str().unwrap()]));
    assert_eq!(out.status.code(), Some(0), "verify: {:?}", out.stderr);
    let ok = String::from_utf8(out.stdout).unwrap();
    assert!(ok.contains("ok"), "verify verdict: {ok}");
}

#[test]
fn cache_merge_pools_stores_and_serves_both_histories() {
    // Two runs with *different* result-relevant configs populate two
    // separate stores; the merged store warm-starts both configs.
    let path = write_two_outputs("merge");
    let a = tmp_dir("merge_a");
    let b = tmp_dir("merge_b");
    let pooled = tmp_dir("merge_pooled");
    let solve = |dir: &PathBuf, seed: &str| -> Output {
        run(step().arg(&path).args([
            "--model",
            "qd",
            "--seed",
            seed,
            "--cache-dir",
            dir.to_str().unwrap(),
        ]))
    };
    assert!(solve(&a, "1").status.success());
    assert!(solve(&b, "2").status.success());

    let out = run(step().args([
        "cache",
        "merge",
        pooled.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]));
    assert!(out.status.success(), "merge: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("2 adopted"), "both inputs adopted: {text}");

    // Merging the same inputs again adopts nothing new (dedup by key).
    let out = run(step().args([
        "cache",
        "merge",
        pooled.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]));
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 adopted"), "idempotent merge: {text}");

    // The pooled store serves both seeds from disk.
    for seed in ["1", "2"] {
        let out = solve(&pooled, seed);
        assert!(out.status.success(), "seed {seed}: {:?}", out.stderr);
        let text = String::from_utf8(out.stdout).unwrap();
        let store_line = text
            .lines()
            .find(|l| l.starts_with("store:"))
            .unwrap_or_else(|| panic!("store stats line in: {text}"));
        assert!(
            !store_line.contains("disk hits 0 results"),
            "seed {seed} warm from the pooled store: {store_line}"
        );
    }
}

#[test]
fn emit_qdimacs_prints_a_3qbf_prefix() {
    let path = write_or_of_ands("qdimacs");
    let out = run(step().arg(&path).arg("--emit-qdimacs"));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("p cnf "), "QDIMACS header in: {text}");
    assert!(text.contains("e ") && text.contains("a "), "prefix: {text}");
}
