//! End-to-end tests for the `step serve` network front-end: a served
//! run must print the same table an in-process run does, tenants must
//! be admitted or refused per their quotas, and a `shutdown` frame
//! must stop the server cleanly.
//!
//! Each test spawns the real `step` binary twice — once as the server
//! (`--addr 127.0.0.1:0`, port scraped from the contractual
//! `listening on <addr>` stdout line) and once per client request —
//! so the whole wire path (framing, admission, forwarding, reprint)
//! is exercised, not a shortcut through the library.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn step() -> Command {
    Command::new(env!("CARGO_BIN_EXE_step"))
}

/// A running `step serve` child whose port we scraped; killed on drop
/// so a failing test cannot leak the process.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `step serve --addr 127.0.0.1:0 <extra>` and blocks until
    /// it prints the address it bound.
    fn spawn(extra: &[&str]) -> Server {
        let mut child = step()
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn step serve");
        let stdout = child.stdout.take().expect("server stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_owned();
        Server { child, addr }
    }

    /// Runs `step client <addr> <args>` against this server.
    fn client(&self, args: &[&str]) -> Output {
        step()
            .args(["client", &self.addr])
            .args(args)
            .output()
            .expect("spawn step client")
    }

    /// Sends the shutdown frame and waits for the server to exit 0.
    fn shutdown(mut self) {
        let out = self.client(&["--shutdown"]);
        assert_eq!(out.status.code(), Some(0), "shutdown client");
        let status = self.child.wait().expect("wait for server");
        assert_eq!(status.code(), Some(0), "server exit after shutdown");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Backstop for failing tests; `shutdown` already reaped it on
        // the happy path (kill on a reaped child is a no-op error).
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A two-output BENCH circuit (permuted-input twins), written under
/// the target tmp dir.
fn write_two_outputs(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let path = dir.join(format!("serve_{tag}.bench"));
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
         OUTPUT(f)\nOUTPUT(g)\n\
         t1 = AND(a, b)\nt2 = AND(c, d)\nf = OR(t1, t2)\n\
         u1 = AND(a, c)\nu2 = AND(b, d)\ng = OR(u1, u2)\n",
    )
    .expect("write bench file");
    path
}

/// Stdout of an in-process `step` run over the same file and flags.
fn local_run(path: &PathBuf, args: &[&str]) -> String {
    let out = step().arg(path).args(args).output().expect("local step");
    assert!(out.status.success(), "local run: {:?}", out.stderr);
    String::from_utf8(out.stdout).expect("local stdout")
}

#[test]
fn served_table_is_byte_identical_to_in_process() {
    let path = write_two_outputs("parity");
    let server = Server::spawn(&[]);
    let out = server.client(&[path.to_str().unwrap(), "--model", "qd", "--no-timing"]);
    assert!(out.status.success(), "client: {:?}", out.stderr);
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        local_run(&path, &["--model", "qd", "--no-timing"]),
        "served and in-process tables must match byte for byte"
    );
    server.shutdown();
}

#[test]
fn budget_truncation_travels_over_the_wire() {
    // A fresh server and the tight-budget request FIRST: the shared
    // result cache serves definitive answers under any budget, so a
    // warm server would (correctly) answer where a cold run truncates.
    let path = write_two_outputs("budget");
    let tight = &["--model", "qd", "--no-timing", "--budget", "work:1"];
    let server = Server::spawn(&[]);
    let out = server.client(&[&[path.to_str().unwrap()], &tight[..]].concat());
    assert!(out.status.success(), "client: {:?}", out.stderr);
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        local_run(&path, tight),
        "budget-induced timeouts must reproduce over the wire"
    );
    // The now-warm server still matches an unbudgeted local run.
    let full = &["--model", "qd", "--no-timing"];
    let out = server.client(&[&[path.to_str().unwrap()], &full[..]].concat());
    assert!(out.status.success(), "warm client: {:?}", out.stderr);
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        local_run(&path, full),
        "a warm cache changes cost, never answers"
    );
    server.shutdown();
}

#[test]
fn quotas_admit_and_refuse_per_tenant() {
    let path = write_two_outputs("quota");
    let circuit = path.to_str().unwrap();
    // Default quota 0; alice alone has headroom.
    let server = Server::spawn(&["--quota", "0", "--tenant-quota", "alice=1000000000"]);

    // Bob must go first: on the cold server the cost model still
    // prices these cones at its support-bucket prior, which a zero
    // quota cannot cover. (Once a run commits the actual — here zero —
    // conflict cost, repeat fingerprints are predicted free and a zero
    // quota admits them; charging what work costs is the point.)
    let out = server.client(&[circuit, "--tenant", "bob", "--model", "qd", "--no-timing"]);
    assert_eq!(out.status.code(), Some(3), "bob is refused, exit 3");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("over_quota"), "typed refusal: {err}");
    assert!(
        String::from_utf8(out.stdout).unwrap().is_empty(),
        "no table for a refused request"
    );

    let out = server.client(&[circuit, "--tenant", "alice", "--model", "qd", "--no-timing"]);
    assert!(out.status.success(), "alice: {:?}", out.stderr);
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        local_run(&path, &["--model", "qd", "--no-timing"]),
        "admission must not change results"
    );

    // Committing actual (tiny) conflicts left alice headroom for more.
    let out = server.client(&[circuit, "--tenant", "alice", "--model", "qd", "--no-timing"]);
    assert!(out.status.success(), "alice again: {:?}", out.stderr);
    server.shutdown();
}

#[test]
fn two_tenants_run_concurrently_and_identically() {
    let path = write_two_outputs("tenants");
    let server = Server::spawn(&["--jobs", "2"]);
    let reference = local_run(&path, &["--model", "qd", "--no-timing"]);

    let spawn = |tenant: &str| {
        step()
            .args(["client", &server.addr])
            .args([
                path.to_str().unwrap(),
                "--tenant",
                tenant,
                "--model",
                "qd",
                "--no-timing",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn client")
    };
    let clients = [spawn("alice"), spawn("bob")];
    for client in clients {
        let out = client.wait_with_output().expect("client output");
        assert!(out.status.success(), "concurrent client: {:?}", out.stderr);
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            reference,
            "concurrent tenants see identical tables"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_uploads_get_typed_errors_not_dead_connections() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let garbage = dir.join("serve_garbage.bench");
    std::fs::write(&garbage, "INPUT(a\nthis is not bench\n").expect("write garbage");
    let server = Server::spawn(&[]);

    let out = server.client(&[garbage.to_str().unwrap(), "--no-timing"]);
    assert_eq!(out.status.code(), Some(1), "bad circuit is a failure");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bad_circuit"), "typed error code: {err}");

    // Binary AIGER is refused client-side, before any bytes travel.
    let aig = dir.join("serve_binary.aig");
    std::fs::write(&aig, b"aig 0 0 0 0 0\n").expect("write aig");
    let out = server.client(&[aig.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "binary AIGER is a usage error");

    // The server survived both and still serves good circuits.
    let path = write_two_outputs("after_errors");
    let out = server.client(&[path.to_str().unwrap(), "--model", "qd", "--no-timing"]);
    assert!(out.status.success(), "after errors: {:?}", out.stderr);
    server.shutdown();
}
