//! Cross-crate I/O integration: generator circuits survive round trips
//! through every supported netlist format with identical semantics.

use qbf_bidec::aig::{aiger, bench_io, blif};
use qbf_bidec::circuits::generators;

fn exhaustive_equiv(a: &qbf_bidec::aig::Aig, b: &qbf_bidec::aig::Aig, n: usize) {
    assert_eq!(a.num_inputs(), n);
    assert_eq!(b.num_inputs(), n);
    assert!(n <= 12, "exhaustive check cap");
    for m in 0..1usize << n {
        let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
        assert_eq!(a.eval(&v), b.eval(&v), "pattern {m:b}");
    }
}

#[test]
fn adder_round_trips_all_formats() {
    let aig = generators::ripple_adder(3);
    let n = aig.num_inputs();
    let via_blif = blif::parse(&blif::write(&aig, "adder")).expect("blif");
    exhaustive_equiv(&aig, &via_blif, n);
    let via_bench = bench_io::parse(&bench_io::write(&aig)).expect("bench");
    exhaustive_equiv(&aig, &via_bench, n);
    let via_aiger = aiger::parse(&aiger::write(&aig)).expect("aiger");
    exhaustive_equiv(&aig, &via_aiger, n);
}

#[test]
fn sequential_lfsr_round_trips() {
    let aig = generators::lfsr(4, &[0, 3]);
    // Sequential: compare comb-converted semantics.
    let c0 = aig.comb().expect("comb");
    for (fmt, text) in [
        ("bench", bench_io::write(&aig)),
        ("blif", blif::write(&aig, "lfsr")),
        ("aiger", aiger::write(&aig)),
    ] {
        let back = match fmt {
            "bench" => bench_io::parse(&text).expect("parse"),
            "blif" => blif::parse(&text).expect("parse"),
            _ => aiger::parse(&text).expect("parse"),
        };
        assert_eq!(back.latches().len(), 4, "{fmt}");
        let c1 = back.comb().expect("comb");
        let n = c0.num_inputs();
        for m in 0..1usize << n {
            let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(c0.eval(&v), c1.eval(&v), "{fmt} pattern {m:b}");
        }
    }
}

#[test]
fn multiplier_blif_and_back_preserves_products() {
    let aig = generators::array_multiplier(3);
    let text = blif::write(&aig, "mult3");
    let back = blif::parse(&text).expect("parse");
    for a in 0..8u64 {
        for b in 0..8u64 {
            let mut ins: Vec<bool> = (0..3).map(|i| a >> i & 1 == 1).collect();
            ins.extend((0..3).map(|i| b >> i & 1 == 1));
            let outs = back.eval(&ins);
            let got = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &v)| acc | (u64::from(v)) << i);
            assert_eq!(got, a * b);
        }
    }
}

#[test]
fn dimacs_qdimacs_cross_tools() {
    // CNF built from a circuit cone solves identically via the DIMACS
    // round trip.
    use qbf_bidec::cnf::{parse_dimacs, tseitin::encode_standalone, write_dimacs};
    use qbf_bidec::sat::{SolveResult, Solver};

    let aig = generators::parity(5);
    let root = aig.outputs()[0].lit();
    let (mut cnf, inputs, r) = encode_standalone(&aig, root);
    cnf.add_unit(r); // parity = 1 is satisfiable
    let text = write_dimacs(&cnf);
    let back = parse_dimacs(&text).expect("parse");
    let mut s = Solver::new();
    s.add_cnf(&back);
    assert_eq!(s.solve(), SolveResult::Sat);
    let m = s.model();
    let ones = inputs.iter().filter(|l| l.eval(&m)).count();
    assert_eq!(ones % 2, 1, "model must have odd parity");
}
