//! Integration tests for the multi-level synthesis subsystem
//! (`step-synth`): the determinism contract of the deterministic
//! expansion scheduler, the reuse surfaces the recursion is meant to
//! compound (result cache, clause bank, persistent store), and the
//! SAT-verified equivalence of every emitted network.

use std::sync::Arc;

use qbf_bidec::circuits::{registry_table1, with_permuted_copies, Scale};
use qbf_bidec::step::{
    Budget, ClauseBank, DecompConfig, Model, ResultCache, StepService, TieredStore,
};
use qbf_bidec::synth::{network_equivalent, SynthDriver, SynthOptions, SynthOutput};

/// The projection that must be byte-identical across worker counts:
/// the full rendered network per output plus the deterministic
/// counters (expansions, truncation). Wall clocks and reuse counters
/// stay out — they are scheduling-dependent by contract.
fn render(outs: &[SynthOutput]) -> Vec<String> {
    outs.iter()
        .map(|o| {
            format!(
                "{}|support={}|trunc={}|expanded={}\n{}",
                o.name,
                o.support,
                o.stats.truncated,
                o.stats.nodes_expanded,
                o.tree.render()
            )
        })
        .collect()
}

#[test]
fn emitted_network_is_byte_identical_across_jobs() {
    // The tentpole contract: under a pure-work per-node budget the
    // frontier is expanded in canonical-fingerprint rounds, so the
    // emitted network is a pure function of (circuit, config, options)
    // — jobs ∈ {1, 2, 3} render identical trees.
    let entry = &registry_table1()[1];
    assert_eq!(entry.name, "s15850.1");
    let aig = entry.build(Scale::Default);
    let mk = |jobs: usize| {
        let service = StepService::spawn(jobs, Some(Arc::new(ResultCache::new())));
        let opts = SynthOptions {
            per_node: Budget::Work(20_000),
            ..SynthOptions::default()
        };
        let driver = SynthDriver::new(&service, DecompConfig::new(Model::QbfDisjoint), opts);
        driver.synthesize_circuit(&aig).expect("run")
    };
    let baseline = mk(1);
    assert!(
        baseline.iter().all(|o| o.stats.verified),
        "every network is SAT-verified"
    );
    assert!(
        baseline.iter().any(|o| o.stats.nodes_expanded > 1),
        "the recursion actually recurses"
    );
    let want = render(&baseline);
    for jobs in [2usize, 3] {
        assert_eq!(
            render(&mk(jobs)),
            want,
            "jobs={jobs}: the emitted network must be byte-identical"
        );
    }
}

#[test]
fn recursion_hits_the_result_cache_and_clause_bank() {
    // Recursion floods the engine with related sub-cones — the
    // workload the reuse surfaces exist for. On a twin-heavy circuit
    // the probes must book nonzero result-cache AND clause-bank hits,
    // and (the reuse contract) the networks must match a reuse-off run
    // exactly while no work pool binds.
    let entry = &registry_table1()[2];
    assert_eq!(entry.name, "s38584.1");
    let aig = with_permuted_copies(&entry.build(Scale::Default), 2);
    let run = |clause_reuse: bool| {
        let cache = Arc::new(ResultCache::new());
        let bank = clause_reuse.then(|| Arc::new(ClauseBank::new()));
        let service = StepService::spawn_with_bank(2, Some(cache), bank);
        let mut config = DecompConfig::new(Model::QbfDisjoint);
        config.clause_reuse = clause_reuse;
        let driver = SynthDriver::new(&service, config, SynthOptions::default());
        driver.synthesize_circuit(&aig).expect("run")
    };
    let on = run(true);
    let cache_hits: u64 = on.iter().map(|o| o.stats.cache_hits).sum();
    let bank_hits: u64 = on.iter().map(|o| o.stats.bank_hits).sum();
    assert!(
        cache_hits > 0,
        "the twin population must be served from the result cache"
    );
    assert!(
        bank_hits > 0,
        "recursive sub-cones must pre-seed from the clause bank"
    );
    let off = run(false);
    assert_eq!(
        render(&on),
        render(&off),
        "reuse changes work counters, never the emitted network"
    );
}

#[test]
fn warm_store_serves_recursion_from_disk_with_identical_networks() {
    // Two synthesis runs sharing a --cache-dir store through fresh
    // memory tiers each time: the warm run's probes book nonzero disk
    // hits and the networks are byte-identical to the cold run.
    let dir = std::env::temp_dir().join(format!(
        "step-synth-warm-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let entry = &registry_table1()[1]; // s15850.1
    let aig = entry.build(Scale::Default);
    let run = || {
        let store = Arc::new(
            TieredStore::with_disk(Some(Arc::new(ResultCache::new())), None, &dir)
                .expect("temp store"),
        );
        let service = StepService::spawn_with_store(2, Arc::clone(&store));
        let driver = SynthDriver::new(
            &service,
            DecompConfig::new(Model::QbfDisjoint),
            SynthOptions::default(),
        );
        let outs = driver.synthesize_circuit(&aig).expect("run");
        store.flush().expect("flush");
        outs
    };
    let cold = run();
    let warm = run();
    assert_eq!(
        cold.iter().map(|o| o.stats.disk_hits).sum::<u64>(),
        0,
        "nothing on disk yet"
    );
    assert!(
        warm.iter().map(|o| o.stats.disk_hits).sum::<u64>() > 0,
        "the warm recursion must be served from disk"
    );
    assert_eq!(
        render(&cold),
        render(&warm),
        "a warm run emits byte-identical networks"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Small random single-output AIGs (same shape as the budget
    /// determinism suite).
    fn build_random(ops: &[(u8, usize, usize)], n: usize) -> qbf_bidec::aig::Aig {
        let mut aig = qbf_bidec::aig::Aig::new();
        let mut pool: Vec<qbf_bidec::aig::AigLit> =
            (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
        for &(op, i, j) in ops {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let v = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => !a,
            };
            pool.push(v);
        }
        let f = pool[pool.len() - 1];
        aig.add_output("f", f);
        aig
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 8..24)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Every network synthesized from a random cone is SAT-verified
        /// equivalent to the original output — including constant and
        /// single-literal degenerate cones — and drives its leaves to
        /// the target support whenever the BDD fallback is in reach.
        #[test]
        fn random_cones_synthesize_to_equivalent_networks(ops in arb_ops()) {
            let aig = build_random(&ops, 6);
            let service = StepService::spawn(2, Some(Arc::new(ResultCache::new())));
            let driver = SynthDriver::new(
                &service,
                DecompConfig::new(Model::QbfDisjoint),
                SynthOptions::default(),
            );
            let out = driver.synthesize(&aig, 0).expect("run");
            prop_assert!(out.stats.verified);
            prop_assert!(network_equivalent(&aig, 0, &out.tree, None).is_ok());
            prop_assert!(
                out.tree.max_leaf_support() <= 2,
                "6-var cones are always within BDD-fallback reach:\n{}",
                out.tree.render()
            );
        }
    }
}
