//! The decomposition service: parity with the legacy one-shot API,
//! streaming semantics, cancellation and cross-submission cache
//! sharing.
//!
//! `StepService::submit(...).join()` must be byte-identical to
//! `BiDecomposer::decompose_circuit` for the same `(circuit, op,
//! config)` — per-output work is a pure function of `(cone, op,
//! config)`, so neither the persistent pool, the worker count, nor
//! queue position may change any answer.

use std::sync::Arc;
use std::time::Duration;

use qbf_bidec::circuits::{registry_table1, Scale};
use qbf_bidec::step::{
    BiDecomposer, CircuitResult, DecompConfig, GateOp, Model, ResultCache, StepError, StepService,
};

fn config(model: Model, jobs: usize) -> DecompConfig {
    let mut c = DecompConfig::new(model);
    c.jobs = jobs;
    c
}

/// Everything that must match between the service and legacy paths
/// (wall-clock aside).
fn assert_same_outputs(a: &CircuitResult, b: &CircuitResult, tag: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{tag}: output count");
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        let t = format!("{tag}: output {} ({})", x.output_index, x.name);
        assert_eq!(x.name, y.name, "{t}: name");
        assert_eq!(x.support, y.support, "{t}: support");
        assert_eq!(x.partition, y.partition, "{t}: partition");
        assert_eq!(x.solved, y.solved, "{t}: solved");
        assert_eq!(x.proved_optimal, y.proved_optimal, "{t}: proved_optimal");
        assert_eq!(x.sat_calls, y.sat_calls, "{t}: sat_calls");
        assert_eq!(x.qbf_calls, y.qbf_calls, "{t}: qbf_calls");
        assert_eq!(
            x.decomposition.is_some(),
            y.decomposition.is_some(),
            "{t}: extraction"
        );
    }
}

#[test]
fn service_join_matches_legacy_driver_on_a_registry_circuit() {
    // s38584.1 at default scale: 8 primary outputs, a mix of
    // decomposable / non-decomposable cones. The full five-model
    // roster is pinned (the acceptance bar for the service redesign);
    // one shared service serves every model × jobs combination.
    let entry = &registry_table1()[2];
    let aig = entry.build(Scale::Default);
    for model in Model::ALL {
        let legacy = BiDecomposer::new(config(model, 1))
            .decompose_circuit(&aig, GateOp::Or)
            .expect("legacy run");
        let service = StepService::new(3);
        for jobs in [1usize, 2, 3] {
            let via_service = service
                .submit(&aig, GateOp::Or, config(model, jobs))
                .expect("submit")
                .join()
                .expect("join");
            assert_same_outputs(&via_service, &legacy, &format!("{model} jobs={jobs}"));
        }
        assert!(legacy.num_decomposed() > 0, "{model}: something decomposes");
    }
}

#[test]
fn decompose_circuit_on_reuses_a_shared_service() {
    let entry = &registry_table1()[16]; // mm9a: small
    let aig = entry.build(Scale::Smoke);
    let service = StepService::new(2);
    let engine = BiDecomposer::new(config(Model::QbfDisjoint, 2));
    let on_service = engine
        .decompose_circuit_on(&service, &aig, GateOp::Or)
        .expect("service-backed run");
    let standalone = engine
        .decompose_circuit(&aig, GateOp::Or)
        .expect("ephemeral run");
    assert_same_outputs(&on_service, &standalone, "decompose_circuit_on");
}

#[test]
fn cancellation_mid_circuit_returns_cancelled_without_wedging_workers() {
    // One worker, many outputs: recv one completed output, cancel,
    // and the join must come back promptly with Cancelled — then the
    // same pool must still serve a fresh submission to completion.
    let entry = &registry_table1()[2]; // s38584.1 (8 outputs)
    let aig = entry.build(Scale::Default);
    assert!(aig.num_outputs() >= 4, "need a multi-output circuit");
    let service = StepService::new(1);
    let mut handle = service
        .submit(&aig, GateOp::Or, config(Model::QbfDisjoint, 1))
        .expect("submit");
    let first = handle.recv().expect("at least one output completes");
    assert!(first.result.is_ok(), "first output solves normally");
    handle.cancel();
    match handle.join() {
        Err(StepError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The pool survives and the next submission runs fully.
    let after = service
        .submit(&aig, GateOp::Or, config(Model::QbfDisjoint, 1))
        .expect("submit after cancel")
        .join()
        .expect("join after cancel");
    assert_eq!(after.outputs.len(), aig.num_outputs());
    assert!(after.num_decomposed() > 0);
}

#[test]
fn concurrent_submissions_share_cache_hits() {
    // Two submissions of the same circuit queued back-to-back on a
    // cache-sharing service: the first populates the cache, the second
    // is served entirely from it (single worker makes the FIFO order,
    // and therefore the hit counts, deterministic).
    let entry = &registry_table1()[16]; // mm9a: small
    let aig = entry.build(Scale::Smoke);
    let cache = Arc::new(ResultCache::new());
    let service = StepService::with_cache(1, Arc::clone(&cache));
    let first = service
        .submit(&aig, GateOp::Or, config(Model::MusGroup, 1))
        .expect("submit 1");
    let second = service
        .submit(&aig, GateOp::Or, config(Model::MusGroup, 1))
        .expect("submit 2");
    let cold = first.join().expect("join 1");
    let warm = second.join().expect("join 2");
    // Same answers (a cache hit reports zero solver calls, so the
    // work counters legitimately differ from the cold run).
    for (w, c) in warm.outputs.iter().zip(&cold.outputs) {
        assert_eq!(w.partition, c.partition, "warm vs cold: {}", w.name);
        assert_eq!(w.solved, c.solved, "warm vs cold: {}", w.name);
        assert_eq!(
            w.proved_optimal, c.proved_optimal,
            "warm vs cold: {}",
            w.name
        );
    }
    assert_eq!(
        warm.cache_hits() as usize,
        warm.outputs.len(),
        "submission 2 fully served from submission 1's entries"
    );
    assert!(warm.total_sat_calls() < cold.total_sat_calls());
    assert!(cache.hits() >= warm.cache_hits());
}

#[test]
fn expired_submission_deadline_times_out_instead_of_erroring() {
    let entry = &registry_table1()[16];
    let aig = entry.build(Scale::Smoke);
    let service = StepService::new(2);
    let result = service
        .submit_with_deadline(
            &aig,
            GateOp::Or,
            config(Model::QbfDisjoint, 2),
            std::time::Instant::now() - Duration::from_millis(1),
        )
        .expect("submit")
        .join()
        .expect("join");
    assert!(result.timed_out);
    assert!(result.outputs.iter().all(|o| o.timed_out && !o.solved));
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Builds a small combinational AIG with two primary outputs from a
    /// list of gate descriptors over `n` inputs.
    fn build_random(ops: &[(u8, usize, usize)], n: usize) -> qbf_bidec::aig::Aig {
        let mut aig = qbf_bidec::aig::Aig::new();
        let mut pool: Vec<qbf_bidec::aig::AigLit> =
            (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
        for &(op, i, j) in ops {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let v = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => !a,
            };
            pool.push(v);
        }
        let f = pool[pool.len() - 1];
        let g = pool[pool.len() / 2];
        aig.add_output("f", f);
        aig.add_output("g", g);
        aig
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 4..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Random small AIGs: `submit(...).join()` reproduces the
        /// legacy `decompose_circuit` result for every worker count,
        /// heuristic and QBF model alike.
        #[test]
        fn service_matches_legacy_on_random_aigs(ops in arb_ops()) {
            let aig = build_random(&ops, 4);
            for model in [Model::MusGroup, Model::QbfDisjoint] {
                let legacy = BiDecomposer::new(config(model, 1))
                    .decompose_circuit(&aig, GateOp::Or)
                    .expect("legacy run");
                for jobs in [1usize, 2, 3] {
                    let via_service = StepService::new(jobs)
                        .submit(&aig, GateOp::Or, config(model, jobs))
                        .expect("submit")
                        .join()
                        .expect("join");
                    prop_assert_eq!(via_service.outputs.len(), legacy.outputs.len());
                    for (s, l) in via_service.outputs.iter().zip(&legacy.outputs) {
                        prop_assert_eq!(&s.partition, &l.partition, "{} jobs={} {}", model, jobs, s.name);
                        prop_assert_eq!(s.solved, l.solved);
                        prop_assert_eq!(s.proved_optimal, l.proved_optimal);
                        prop_assert_eq!(s.sat_calls, l.sat_calls);
                    }
                }
            }
        }
    }
}
