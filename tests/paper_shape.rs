//! Assertions of the paper's qualitative claims, at test scale:
//! the relations the evaluation tables report must hold on the
//! stand-in population too (not the absolute numbers — the shape).

use qbf_bidec::circuits::{registry_all, registry_table1, Scale};
use qbf_bidec::step::{BiDecomposer, Budget, BudgetPolicy, DecompConfig, GateOp, Model};

fn run(
    entry: &qbf_bidec::circuits::CircuitEntry,
    model: Model,
    op: GateOp,
) -> qbf_bidec::step::CircuitResult {
    let mut c = DecompConfig::new(model);
    c.budget = BudgetPolicy::default();
    c.extract = false;
    c.verify = false;
    let aig = entry.build(Scale::Smoke);
    BiDecomposer::new(c)
        .decompose_circuit(&aig, op)
        .expect("run")
}

/// Table III shape: every model decomposes the same POs (all engines
/// are complete for existence).
#[test]
fn num_decomposed_agrees_across_models() {
    for entry in registry_table1().iter().take(8) {
        let counts: Vec<usize> = Model::ALL
            .into_iter()
            .map(|m| run(entry, m, GateOp::Or).num_decomposed())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{}: #Dec differs across models: {counts:?}",
            entry.name
        );
    }
}

/// Tables I/II shape: on each decomposed PO the QBF model is better or
/// equal on its target metric, and strictly better somewhere in the
/// population (otherwise the QBF contribution would be vacuous).
#[test]
fn qbf_models_improve_somewhere() {
    let mut qb_strictly_better = 0usize;
    let mut compared = 0usize;
    for entry in registry_table1().iter().take(10) {
        let mg = run(entry, Model::MusGroup, GateOp::Or);
        let qb = run(entry, Model::QbfBalanced, GateOp::Or);
        for (q, m) in qb.outputs.iter().zip(&mg.outputs) {
            if let (Some(qp), Some(mp)) = (&q.partition, &m.partition) {
                compared += 1;
                assert!(
                    qp.balancedness() <= mp.balancedness() + 1e-9,
                    "{}/{}: QB worse than MG",
                    entry.name,
                    q.name
                );
                if qp.balancedness() + 1e-9 < mp.balancedness() {
                    qb_strictly_better += 1;
                }
            }
        }
    }
    assert!(compared > 0, "population must contain decomposable POs");
    assert!(
        qb_strictly_better > 0,
        "STEP-QB must strictly improve on STEP-MG somewhere ({compared} comparisons)"
    );
}

/// Table IV shape: with generous budgets every PO is solved; with a
/// zero budget none are. (The paper's 92/98/84% sit between these
/// extremes; the ordering QB ≥ QD ≥ QDB is checked by the table4
/// binary on the full population.)
#[test]
fn solved_ratio_tracks_budget() {
    let entry = &registry_table1()[15]; // sbc
    let generous = run(entry, Model::QbfDisjoint, GateOp::Or);
    assert!(
        generous.outputs.iter().all(|o| o.solved),
        "generous budget must solve every PO"
    );

    let mut c = DecompConfig::new(Model::QbfDisjoint);
    c.budget = BudgetPolicy {
        per_qbf_call: Budget::Wall(std::time::Duration::ZERO),
        per_output: Budget::Wall(std::time::Duration::ZERO),
        per_circuit: Budget::Wall(std::time::Duration::from_secs(30)),
    };
    c.extract = false;
    c.verify = false;
    let aig = entry.build(Scale::Smoke);
    let starved = BiDecomposer::new(c)
        .decompose_circuit(&aig, GateOp::Or)
        .expect("run");
    assert!(
        starved
            .outputs
            .iter()
            .filter(|o| o.support >= 2)
            .all(|o| !o.solved),
        "zero budget cannot solve non-trivial POs"
    );
}

/// Figure 1 population: 145 circuits, and every one of them builds and
/// runs through the fastest model without timing out.
#[test]
fn fig1_population_is_runnable() {
    let all = registry_all();
    assert_eq!(all.len(), 145);
    for entry in all.iter().step_by(12) {
        let r = run(entry, Model::MusGroup, GateOp::Or);
        assert!(!r.timed_out, "{} timed out", entry.name);
    }
}

/// The paper's AND/XOR claims: the same engine handles all three
/// operators (Table II lists MG vs Q* for OR, AND and XOR).
#[test]
fn all_operators_run_on_population_sample() {
    let entry = &registry_table1()[16]; // mm9a (arith: has AND/XOR cones)
    for op in [GateOp::Or, GateOp::And, GateOp::Xor] {
        let mg = run(entry, Model::MusGroup, op);
        let qd = run(entry, Model::QbfDisjoint, op);
        assert_eq!(
            mg.num_decomposed(),
            qd.num_decomposed(),
            "{op}: #Dec must agree"
        );
    }
}
