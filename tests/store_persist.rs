//! End-to-end guarantees of the persistent artifact store.
//!
//! The disk tier extends the PR-7 contract across processes: a warm
//! run (loading a `--cache-dir` store a previous run flushed) must be
//! answer-identical to a cold one — persistence changes the work a run
//! does, never what it answers — while serving nonzero disk hits on
//! every reuse surface: solved results, donated clause exports and
//! probe certificates. Asserted here through the library API over
//! fresh [`TieredStore`]s per run, so nothing survives in memory
//! between the "processes".

use std::path::{Path, PathBuf};
use std::sync::Arc;

use qbf_bidec::circuits::{registry_table1, with_permuted_copies, Scale};
use qbf_bidec::step::{
    BiDecomposer, Budget, CircuitResult, ClauseBank, DecompConfig, GateOp, Model, ResultCache,
    TieredStore,
};

/// A fresh, empty store directory under the target tmp dir.
fn store_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("store_persist_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(model: Model, seed: u64) -> DecompConfig {
    let mut c = DecompConfig::new(model);
    c.clause_reuse = true;
    c.seed = seed;
    // Partitions only: extraction/verification add nothing to the
    // store surfaces under test and dominate the runtime.
    c.extract = false;
    c.verify = false;
    // Pure work budgets, so truncation (and therefore what gets
    // persisted) is machine-independent.
    c.budget.per_qbf_call = Budget::Unlimited;
    c.budget.per_output = Budget::Unlimited;
    c.budget.per_circuit = Budget::Unlimited;
    c
}

/// One "process": a fresh engine over a fresh store (memory tiers and
/// all), optionally backed by `dir`, flushed before returning.
fn run(
    aig: &qbf_bidec::aig::Aig,
    model: Model,
    seed: u64,
    dir: Option<&Path>,
) -> (CircuitResult, Arc<TieredStore>) {
    let cache = Some(Arc::new(ResultCache::new()));
    let bank = Some(Arc::new(ClauseBank::new()));
    let store = Arc::new(match dir {
        Some(d) => TieredStore::with_disk(cache, bank, d).expect("open store dir"),
        None => TieredStore::memory(cache, bank),
    });
    let mut engine = BiDecomposer::new(config(model, seed));
    engine.set_store(Arc::clone(&store));
    let result = engine
        .decompose_circuit(aig, GateOp::Or)
        .expect("registry circuits are well-formed");
    store.flush().expect("flush store");
    (result, store)
}

/// Everything result-shaped must match; work counters may not.
fn assert_same_answers(a: &CircuitResult, b: &CircuitResult, tag: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{tag}: output count");
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        let t = format!("{tag}: output {} ({})", x.output_index, x.name);
        assert_eq!(x.name, y.name, "{t}: name");
        assert_eq!(x.support, y.support, "{t}: support");
        assert_eq!(x.partition, y.partition, "{t}: partition");
        assert_eq!(x.solved, y.solved, "{t}: solved");
        assert_eq!(x.proved_optimal, y.proved_optimal, "{t}: proved_optimal");
    }
}

/// The acceptance scenario, result surface: a second "process" with
/// the same config replays every output from the disk tier and answers
/// identically.
#[test]
fn warm_results_come_from_disk_and_change_nothing() {
    let entry = &registry_table1()[2]; // s38584.1: 8 outputs
    let aig = entry.build(Scale::Smoke);
    let dir = store_dir("results");
    let (baseline, _) = run(&aig, Model::QbfDisjoint, 1, None);
    let (cold, cold_store) = run(&aig, Model::QbfDisjoint, 1, Some(&dir));
    let (warm, warm_store) = run(&aig, Model::QbfDisjoint, 1, Some(&dir));

    assert_same_answers(&baseline, &cold, "cold vs memory-only");
    assert_same_answers(&cold, &warm, "warm vs cold");
    assert_eq!(cold_store.disk_result_hits(), 0, "the store started empty");
    assert_eq!(
        warm_store.disk_result_hits() as usize,
        warm.outputs.len(),
        "every output replays from disk"
    );
    assert_eq!(warm.disk_hits(), warm_store.disk_result_hits());
    assert!(
        warm.total_sat_calls() < cold.total_sat_calls(),
        "replayed outputs solve nothing"
    );
}

/// The acceptance scenario, clause + certificate surfaces: a warm run
/// under a *different seed* misses the result namespace (the seed is
/// result-relevant) but still warm-starts from the seed-independent
/// clause and probe namespaces — and answers exactly like its own
/// memory-only baseline.
#[test]
fn warm_clauses_and_probes_cross_result_config_boundaries() {
    let entry = &registry_table1()[2]; // s38584.1: 8 outputs
    let aig = with_permuted_copies(&entry.build(Scale::Smoke), 2);
    let dir = store_dir("clauses_probes");
    let (_, _) = run(&aig, Model::QbfDisjoint, 1, Some(&dir));
    let (baseline, _) = run(&aig, Model::QbfDisjoint, 2, None);
    let (warm, warm_store) = run(&aig, Model::QbfDisjoint, 2, Some(&dir));

    assert_same_answers(&baseline, &warm, "warm vs memory-only");
    assert_eq!(
        warm_store.disk_result_hits(),
        0,
        "a different seed is a different result namespace"
    );
    assert!(
        warm_store.disk_clause_hits() > 0,
        "donated clause exports serve any seed"
    );
    assert!(
        warm_store.disk_probe_hits() > 0,
        "probe certificates serve any seed"
    );
    assert!(
        warm.disk_hits() >= warm_store.disk_clause_hits() + warm_store.disk_probe_hits(),
        "per-output disk hits book both surfaces"
    );
}

/// Store corruption is a cold start, not a crash: truncating the tail
/// of every store file mid-record still loads the intact prefix, the
/// run completes with identical answers, and `corrupt_records` says
/// what happened.
#[test]
fn corrupt_store_files_degrade_to_a_partial_warm_start() {
    let entry = &registry_table1()[2];
    let aig = entry.build(Scale::Smoke);
    let dir = store_dir("corrupt");
    let (cold, _) = run(&aig, Model::QbfDisjoint, 1, Some(&dir));

    for file in std::fs::read_dir(&dir).expect("read store dir") {
        let path = file.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("read store file");
        // Chop into the last record's payload.
        std::fs::write(&path, &bytes[..bytes.len().saturating_sub(7)]).expect("truncate");
    }

    let (warm, warm_store) = run(&aig, Model::QbfDisjoint, 1, Some(&dir));
    assert_same_answers(&cold, &warm, "post-corruption");
    let disk = warm_store.disk().expect("disk tier attached");
    assert!(
        disk.corrupt_records() > 0,
        "the chopped tails must be counted"
    );
}
