//! Determinism of the parallel circuit driver: `decompose_circuit`
//! with `jobs = 1` and `jobs = N` must return identical per-output
//! partitions, `solved`/`proved_optimal` flags and decomposition
//! verdicts, because per-output work is a pure function of
//! `(cone, op, config)` — every cone is solved in canonical input
//! order and the simulation seed derives from
//! `hash(config.seed, cone fingerprint)`, never from visitation order.

use qbf_bidec::circuits::{registry_table1, Scale};
use qbf_bidec::step::{
    cone_seed, BiDecomposer, CircuitResult, DecompConfig, GateOp, Model, OutputResult,
};

fn config(model: Model, jobs: usize) -> DecompConfig {
    let mut c = DecompConfig::new(model);
    c.jobs = jobs;
    c
}

fn run(aig: &qbf_bidec::aig::Aig, model: Model, jobs: usize, op: GateOp) -> CircuitResult {
    BiDecomposer::new(config(model, jobs))
        .decompose_circuit(aig, op)
        .expect("circuit run")
}

/// Everything that must match between runs (wall-clock aside).
fn assert_same_outputs(a: &CircuitResult, b: &CircuitResult, tag: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{tag}: output count");
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        let t = format!("{tag}: output {} ({})", x.output_index, x.name);
        assert_eq!(x.name, y.name, "{t}: name");
        assert_eq!(x.support, y.support, "{t}: support");
        assert_eq!(x.partition, y.partition, "{t}: partition");
        assert_eq!(x.solved, y.solved, "{t}: solved");
        assert_eq!(x.proved_optimal, y.proved_optimal, "{t}: proved_optimal");
        assert_eq!(x.is_decomposed(), y.is_decomposed(), "{t}: verdict");
        assert_eq!(x.sat_calls, y.sat_calls, "{t}: sat_calls");
        assert_eq!(x.qbf_calls, y.qbf_calls, "{t}: qbf_calls");
        assert_eq!(
            x.decomposition.is_some(),
            y.decomposition.is_some(),
            "{t}: extraction"
        );
    }
}

#[test]
fn registry_circuit_is_deterministic_across_worker_counts() {
    // s38584.1 at default scale: 8 primary outputs, a mix of
    // decomposable / non-decomposable cones.
    let entry = &registry_table1()[2];
    let aig = entry.build(Scale::Default);
    assert!(aig.num_outputs() >= 4, "need a multi-output circuit");
    for model in [Model::MusGroup, Model::QbfDisjoint] {
        let seq = run(&aig, model, 1, GateOp::Or);
        let par = run(&aig, model, 4, GateOp::Or);
        assert_same_outputs(&seq, &par, &format!("{model}"));
        assert!(seq.num_decomposed() > 0, "{model}: something decomposes");
    }
}

#[test]
fn oversubscribed_workers_are_harmless() {
    // More workers than outputs: the driver clamps the pool.
    let entry = &registry_table1()[16]; // mm9a (2 outputs)
    let aig = entry.build(Scale::Smoke);
    let seq = run(&aig, Model::QbfBalanced, 1, GateOp::Or);
    let par = run(&aig, Model::QbfBalanced, 64, GateOp::Or);
    assert_same_outputs(&seq, &par, "oversubscribed");
}

#[test]
fn single_output_runs_match_circuit_runs() {
    // The per-cone seed depends only on (config.seed, cone
    // fingerprint), so decomposing one output in isolation gives the
    // same answer as the same output inside a (parallel) whole-circuit
    // run.
    let entry = &registry_table1()[4]; // i10
    let aig = entry.build(Scale::Smoke);
    let whole = run(&aig, Model::QbfDisjoint, 3, GateOp::Or);
    let engine = BiDecomposer::new(config(Model::QbfDisjoint, 1));
    for idx in 0..aig.num_outputs() {
        let single: OutputResult = engine.decompose_output(&aig, idx, GateOp::Or).unwrap();
        let in_circuit = &whole.outputs[idx];
        assert_eq!(single.partition, in_circuit.partition, "output {idx}");
        assert_eq!(single.solved, in_circuit.solved, "output {idx}");
    }
}

#[test]
fn seed_changes_are_scoped_to_the_engine_seed() {
    // Different engine seeds may pick different (equally valid)
    // partitions, but each seed remains internally deterministic.
    let entry = &registry_table1()[16];
    let aig = entry.build(Scale::Smoke);
    for seed in [0u64, 1, 0xDEAD_BEEF] {
        let mut c1 = config(Model::MusGroup, 1);
        c1.seed = seed;
        let mut c4 = config(Model::MusGroup, 4);
        c4.seed = seed;
        let a = BiDecomposer::new(c1)
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();
        let b = BiDecomposer::new(c4)
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();
        assert_same_outputs(&a, &b, &format!("seed {seed}"));
    }
    assert_ne!(
        cone_seed(0, 7),
        cone_seed(1, 7),
        "engine seed feeds the per-cone hash"
    );
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Builds a small combinational AIG with two primary outputs from a
    /// list of gate descriptors over `n` inputs.
    fn build_random(ops: &[(u8, usize, usize)], n: usize) -> qbf_bidec::aig::Aig {
        let mut aig = qbf_bidec::aig::Aig::new();
        let mut pool: Vec<qbf_bidec::aig::AigLit> =
            (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
        for &(op, i, j) in ops {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let v = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => !a,
            };
            pool.push(v);
        }
        let f = pool[pool.len() - 1];
        let g = pool[pool.len() / 2];
        aig.add_output("f", f);
        aig.add_output("g", g);
        aig
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 4..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random small AIGs: sequential and parallel circuit runs
        /// agree output-for-output, for the heuristic and the QBF
        /// model alike.
        #[test]
        fn random_aigs_are_deterministic_across_jobs(ops in arb_ops()) {
            let aig = build_random(&ops, 4);
            for model in [Model::MusGroup, Model::QbfDisjoint] {
                let seq = run(&aig, model, 1, GateOp::Or);
                let par = run(&aig, model, 3, GateOp::Or);
                prop_assert_eq!(seq.outputs.len(), par.outputs.len());
                for (x, y) in seq.outputs.iter().zip(&par.outputs) {
                    prop_assert_eq!(&x.partition, &y.partition, "{} {}", model, x.name);
                    prop_assert_eq!(x.solved, y.solved);
                    prop_assert_eq!(x.proved_optimal, y.proved_optimal);
                    prop_assert_eq!(x.sat_calls, y.sat_calls);
                }
            }
        }
    }
}
