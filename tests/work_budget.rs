//! The determinism guarantee of pure `Work` budgets: truncation is
//! measured in solver conflicts, not wall clock, so a budgeted run —
//! including *which* outputs time out and the partial partitions they
//! report — is byte-identical across worker counts, cache modes and
//! (by construction) machines and background load. The old wall-clock
//! `BudgetPolicy` could not express this: a `Wall` timeout lands
//! wherever the scheduler and the host load put it.

use std::sync::Arc;

use qbf_bidec::circuits::{registry_table1, Scale};
use qbf_bidec::step::{
    BiDecomposer, Budget, BudgetPolicy, CircuitResult, DecompConfig, GateOp, Model, ResultCache,
};

fn work_config(model: Model, per_output: u64, jobs: usize) -> DecompConfig {
    let mut c = DecompConfig::new(model);
    c.budget = BudgetPolicy::work(per_output);
    c.jobs = jobs;
    c
}

fn run(
    aig: &qbf_bidec::aig::Aig,
    model: Model,
    per_output: u64,
    jobs: usize,
    cache: bool,
) -> CircuitResult {
    let mut engine = BiDecomposer::new(work_config(model, per_output, jobs));
    if cache {
        engine.set_cache(Arc::new(ResultCache::new()));
    }
    engine.decompose_circuit(aig, GateOp::Or).expect("run")
}

/// The run projection that must be identical: every per-output field
/// except wall clock and cache/effort bookkeeping (which shift between
/// cache modes but never change answers).
fn verdicts(r: &CircuitResult) -> Vec<String> {
    r.outputs
        .iter()
        .map(|o| {
            format!(
                "{}|{}|{:?}|solved={}|optimal={}|timeout={}",
                o.name, o.support, o.partition, o.solved, o.proved_optimal, o.timed_out
            )
        })
        .collect()
}

#[test]
fn tight_work_budget_truncates_identically_across_jobs_and_cache() {
    // s38584.1 at default scale under work:10 — tight enough that at
    // least one output times out and another reports a non-optimal
    // partial partition (pinned below), so this run demonstrably
    // exercises the truncation path, not just the happy path.
    let entry = &registry_table1()[2];
    assert_eq!(entry.name, "s38584.1");
    let aig = entry.build(Scale::Default);
    let baseline = run(&aig, Model::QbfDisjoint, 10, 1, false);
    assert!(
        baseline
            .outputs
            .iter()
            .any(|o| o.timed_out && o.partition.is_none()),
        "work:10 must hard-truncate some output"
    );
    assert!(
        baseline
            .outputs
            .iter()
            .any(|o| o.timed_out && o.partition.is_some() && !o.proved_optimal),
        "work:10 must leave some output with a partial partition"
    );
    assert!(
        baseline.outputs.iter().any(|o| o.solved),
        "work:10 must still solve the easy outputs"
    );
    let want = verdicts(&baseline);
    for jobs in [2, 3] {
        for cache in [false, true] {
            let r = run(&aig, Model::QbfDisjoint, 10, jobs, cache);
            assert_eq!(
                verdicts(&r),
                want,
                "jobs={jobs} cache={cache}: work-budget truncation must be deterministic"
            );
        }
    }
}

#[test]
fn ema_restarts_truncate_identically_across_jobs_and_cache() {
    // The modern-kernel knobs must uphold the same guarantee: with
    // `--sat-restarts ema` (LBD-EMA dynamic restarts feeding on
    // floating-point averages) the truncation point is still measured
    // in conflicts only, so jobs ∈ {1,2,3} × cache on/off stay
    // byte-identical. Floats are fine here — every solver computes the
    // same EMA sequence in the same order; what is banned is the
    // clock, not arithmetic.
    let entry = &registry_table1()[2];
    assert_eq!(entry.name, "s38584.1");
    let aig = entry.build(Scale::Default);
    let mk = |jobs: usize, cache: bool| {
        let mut c = work_config(Model::QbfDisjoint, 10, jobs);
        c.sat_restarts = qbf_bidec::step::RestartPolicy::Ema;
        let mut engine = BiDecomposer::new(c);
        if cache {
            engine.set_cache(Arc::new(ResultCache::new()));
        }
        engine.decompose_circuit(&aig, GateOp::Or).expect("run")
    };
    let baseline = mk(1, false);
    assert!(
        baseline.outputs.iter().any(|o| o.timed_out),
        "work:10 must truncate under EMA restarts too"
    );
    let want = verdicts(&baseline);
    for jobs in [2, 3] {
        for cache in [false, true] {
            let r = mk(jobs, cache);
            assert_eq!(
                verdicts(&r),
                want,
                "jobs={jobs} cache={cache}: EMA-restart truncation must be deterministic"
            );
        }
    }
}

#[test]
fn work_budget_bounds_the_effort_actually_spent() {
    // The meter caps every solver call by the remaining budget, so the
    // charged effort can never overshoot the limit — that exactness is
    // what makes the truncation point machine-independent.
    let entry = &registry_table1()[2];
    let aig = entry.build(Scale::Default);
    for limit in [10u64, 100, 1000] {
        let r = run(&aig, Model::QbfDisjoint, limit, 1, false);
        for o in &r.outputs {
            assert!(
                o.effort.conflicts <= limit,
                "output {} spent {} conflicts under work:{limit}",
                o.name,
                o.effort.conflicts
            );
        }
    }
    // And a generous budget records real, nonzero effort.
    let r = run(&aig, Model::QbfDisjoint, 1_000_000, 1, false);
    assert!(r.total_effort().conflicts > 0, "a real run books conflicts");
    assert!(r.total_effort().propagations > 0);
}

#[test]
fn circuit_work_pool_skips_trailing_outputs() {
    // A pure-work per-circuit budget: outputs drain one shared pool in
    // claim order; once it is empty, the remaining outputs are skipped
    // as budget-exhausted placeholders with their real support and no
    // solver work. At jobs = 1 the claim order is the output order, so
    // this is deterministic — pinned by running it twice.
    let entry = &registry_table1()[2];
    let aig = entry.build(Scale::Default);
    let mk = || {
        let mut c = DecompConfig::new(Model::QbfDisjoint);
        c.budget = BudgetPolicy {
            per_qbf_call: Budget::Unlimited,
            per_output: Budget::Unlimited,
            per_circuit: Budget::Work(50),
        };
        BiDecomposer::new(c)
            .decompose_circuit(&aig, GateOp::Or)
            .expect("run")
    };
    let r = mk();
    assert!(r.timed_out, "the pool must run out");
    let skipped: Vec<_> = r
        .outputs
        .iter()
        .filter(|o| o.timed_out && o.sat_calls == 0 && o.effort.conflicts == 0)
        .collect();
    assert!(!skipped.is_empty(), "some output must be skipped outright");
    for o in &skipped {
        assert!(o.support > 0, "skipped outputs keep their real support");
        assert!(!o.solved);
    }
    assert!(
        r.outputs.iter().any(|o| o.solved),
        "outputs before exhaustion still solve"
    );
    assert_eq!(
        verdicts(&r),
        verdicts(&mk()),
        "jobs=1 pool is deterministic"
    );
}

#[test]
fn circuit_work_pool_is_byte_identical_across_jobs() {
    // The parallel half of the guarantee above: the per-circuit pool
    // is drained through two-phase ledger reservations (reserve a
    // deterministic slice before solving, commit actual conflicts
    // after), so *which* outputs starve is fixed by the reservation
    // schedule, not by racing workers — jobs ∈ {1,2,3} report
    // identical verdicts even though the pool is shared.
    let entry = &registry_table1()[2];
    assert_eq!(entry.name, "s38584.1");
    let aig = entry.build(Scale::Default);
    let mk = |jobs: usize| {
        let mut c = DecompConfig::new(Model::QbfDisjoint);
        c.budget = BudgetPolicy {
            per_qbf_call: Budget::Unlimited,
            per_output: Budget::Unlimited,
            per_circuit: Budget::Work(50),
        };
        c.jobs = jobs;
        BiDecomposer::new(c)
            .decompose_circuit(&aig, GateOp::Or)
            .expect("run")
    };
    let baseline = mk(1);
    assert!(baseline.timed_out, "the pool must run out");
    assert!(
        baseline.outputs.iter().any(|o| o.solved),
        "the pool must also admit some work"
    );
    let want = verdicts(&baseline);
    for jobs in [2usize, 3] {
        assert_eq!(
            verdicts(&mk(jobs)),
            want,
            "jobs={jobs}: the shared circuit pool must truncate deterministically"
        );
    }
}

#[test]
fn budget_degraded_mg_partitions_are_reported_and_never_cached() {
    // STEP-MG under a tight work budget falls back to a cruder
    // partition when the MUS refinement is truncated (the bare seed
    // pair in the worst case). That outcome is budget-dependent, so it
    // must carry a timeout verdict and must never enter the result
    // cache — otherwise a shared service cache would serve a starved
    // run's crude partition to an unbudgeted run of the same cone.
    let entry = &registry_table1()[2];
    let aig = entry.build(Scale::Default);
    let cache = Arc::new(ResultCache::new());
    let degraded = (1..64).find_map(|limit| {
        let mut engine = BiDecomposer::new(work_config(Model::MusGroup, limit, 1));
        engine.set_cache(Arc::clone(&cache));
        let r = engine.decompose_circuit(&aig, GateOp::Or).expect("run");
        r.outputs
            .iter()
            .any(|o| o.timed_out && o.partition.is_some())
            .then_some(r)
    });
    let degraded = degraded.expect("some work budget must truncate the MUS mid-refinement");
    for o in degraded.outputs.iter().filter(|o| o.timed_out) {
        assert!(
            !o.solved,
            "a budget-degraded partition is not a definite answer"
        );
    }
    // The cache the starved runs shared must now serve an unlimited
    // run exactly what a cold unlimited run computes.
    let mut warm_engine = BiDecomposer::new(DecompConfig::new(Model::MusGroup));
    warm_engine.set_cache(cache);
    let warm = warm_engine
        .decompose_circuit(&aig, GateOp::Or)
        .expect("warm");
    let cold = BiDecomposer::new(DecompConfig::new(Model::MusGroup))
        .decompose_circuit(&aig, GateOp::Or)
        .expect("cold");
    assert_eq!(
        verdicts(&warm),
        verdicts(&cold),
        "starved runs must not have poisoned the shared cache"
    );
}

#[test]
fn synthesis_work_pool_truncates_identically_across_jobs() {
    // The recursive-synthesis successor of the per-circuit pool test
    // above: the whole-synthesis `Work` pool is sliced across frontier
    // expansions by the same two-phase WorkLedger (reserve a
    // deterministic slice before probing, commit actual conflicts
    // after), and the frontier is scheduled in canonical-fingerprint
    // rounds — so *which* subtrees get truncated, the networks
    // emitted, and the expansion counts are byte-identical at any
    // worker count. Clause reuse stays off (the default): with reuse
    // on, the conflicts charged to a *binding* pool are scheduling-
    // dependent (the engine's documented reuse contract).
    use qbf_bidec::step::StepService;
    use qbf_bidec::synth::{SynthDriver, SynthOptions, SynthOutput};

    let entry = &registry_table1()[2];
    assert_eq!(entry.name, "s38584.1");
    let aig = entry.build(Scale::Default);
    let render = |outs: &[SynthOutput]| -> Vec<String> {
        outs.iter()
            .map(|o| {
                format!(
                    "{}|trunc={}|expanded={}\n{}",
                    o.name,
                    o.stats.truncated,
                    o.stats.nodes_expanded,
                    o.tree.render()
                )
            })
            .collect()
    };
    let mk = |jobs: usize| {
        let service = StepService::spawn(jobs, Some(Arc::new(ResultCache::new())));
        let opts = SynthOptions {
            per_node: Budget::Work(50),
            synthesis: Budget::Work(120),
            ..SynthOptions::default()
        };
        let driver = SynthDriver::new(&service, DecompConfig::new(Model::QbfDisjoint), opts);
        driver.synthesize_circuit(&aig).expect("run")
    };
    let baseline = mk(1);
    assert!(
        baseline.iter().any(|o| o.stats.truncated),
        "work:120 must truncate some subtree"
    );
    assert!(
        baseline.iter().any(|o| o.tree.num_gates() > 0),
        "work:120 must still admit some expansions"
    );
    for o in &baseline {
        assert!(o.stats.verified, "truncated networks stay SAT-verified");
    }
    let want = render(&baseline);
    for jobs in [2usize, 3] {
        assert_eq!(
            render(&mk(jobs)),
            want,
            "jobs={jobs}: the synthesis work pool must truncate deterministically"
        );
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Small random two-output AIGs (same shape as the parallel
    /// determinism suite).
    fn build_random(ops: &[(u8, usize, usize)], n: usize) -> qbf_bidec::aig::Aig {
        let mut aig = qbf_bidec::aig::Aig::new();
        let mut pool: Vec<qbf_bidec::aig::AigLit> =
            (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
        for &(op, i, j) in ops {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let v = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => !a,
            };
            pool.push(v);
        }
        let f = pool[pool.len() - 1];
        let g = pool[pool.len() / 2];
        aig.add_output("f", f);
        aig.add_output("g", g);
        aig
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 8..24)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Random AIGs under a tight work budget: jobs ∈ {1,2,3} and
        /// cache on/off all report identical verdicts — the budget
        /// trips on the same call everywhere.
        #[test]
        fn random_aigs_truncate_identically(ops in arb_ops()) {
            let aig = build_random(&ops, 5);
            for model in [Model::MusGroup, Model::QbfDisjoint] {
                let want = verdicts(&run(&aig, model, 3, 1, false));
                for jobs in [2usize, 3] {
                    for cache in [false, true] {
                        let got = verdicts(&run(&aig, model, 3, jobs, cache));
                        prop_assert_eq!(
                            &got, &want,
                            "{} jobs={} cache={}", model, jobs, cache
                        );
                    }
                }
            }
        }
    }
}
