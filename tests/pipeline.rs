//! End-to-end integration: registry circuits → every model → verified
//! decompositions, spanning `step-circuits`, `step-core` and all solver
//! substrates.

use qbf_bidec::circuits::{registry_table1, Scale};
use qbf_bidec::step::{verify, BiDecomposer, BudgetPolicy, DecompConfig, GateOp, Model, VarClass};

fn quick_config(model: Model) -> DecompConfig {
    let mut c = DecompConfig::new(model);
    c.budget = BudgetPolicy::default();
    c
}

#[test]
fn every_model_full_pipeline_on_smoke_circuits() {
    // Three representative registry rows, all five models, extraction
    // and verification on.
    let entries = registry_table1();
    let picks = ["C880", "sbc", "ITC b07"];
    for name in picks {
        let entry = entries
            .iter()
            .find(|e| e.name == name)
            .expect("registry row");
        let aig = entry.build(Scale::Smoke);
        for model in Model::ALL {
            let engine = BiDecomposer::new(quick_config(model));
            let r = engine.decompose_circuit(&aig, GateOp::Or).expect("run");
            assert!(
                !r.timed_out,
                "{name}/{model}: generous budget must not expire"
            );
            for out in &r.outputs {
                if let Some(p) = &out.partition {
                    assert!(p.is_nontrivial(), "{name}/{model}/{}", out.name);
                    let d = out
                        .decomposition
                        .as_ref()
                        .expect("extraction enabled by default");
                    verify(d, None).unwrap_or_else(|e| {
                        panic!("{name}/{model}/{}: verification failed: {e}", out.name)
                    });
                }
            }
        }
    }
}

#[test]
fn qbf_models_never_worse_than_mg_on_their_metric() {
    // The bootstrap guarantee of the paper: STEP-{QD,QB,QDB} cannot
    // yield metrics worse than STEP-MG.
    let entries = registry_table1();
    for entry in entries.iter().take(6) {
        let aig = entry.build(Scale::Smoke);
        let mg = BiDecomposer::new(quick_config(Model::MusGroup))
            .decompose_circuit(&aig, GateOp::Or)
            .expect("run");
        for (model, metric) in [
            (Model::QbfDisjoint, 0usize),
            (Model::QbfBalanced, 1),
            (Model::QbfCombined, 2),
        ] {
            let q = BiDecomposer::new(quick_config(model))
                .decompose_circuit(&aig, GateOp::Or)
                .expect("run");
            for (qo, mo) in q.outputs.iter().zip(&mg.outputs) {
                let (Some(qp), Some(mp)) = (&qo.partition, &mo.partition) else {
                    // Decomposability must agree.
                    assert_eq!(
                        qo.partition.is_some(),
                        mo.partition.is_some(),
                        "{}/{model}/{}",
                        entry.name,
                        qo.name
                    );
                    continue;
                };
                let value = |p: &qbf_bidec::step::VarPartition| match metric {
                    0 => p.disjointness(),
                    1 => p.balancedness(),
                    _ => p.disjointness() + p.balancedness(),
                };
                assert!(
                    value(qp) <= value(mp) + 1e-9,
                    "{}/{model}/{}: {} > {}",
                    entry.name,
                    qo.name,
                    value(qp),
                    value(mp)
                );
            }
        }
    }
}

#[test]
fn all_three_operators_round_trip() {
    let entry = registry_table1()
        .into_iter()
        .find(|e| e.name == "mm9a")
        .expect("registry row");
    let aig = entry.build(Scale::Smoke);
    for op in [GateOp::Or, GateOp::And, GateOp::Xor] {
        let engine = BiDecomposer::new(quick_config(Model::QbfDisjoint));
        let r = engine.decompose_circuit(&aig, op).expect("run");
        for out in &r.outputs {
            if let Some(d) = &out.decomposition {
                verify(d, None).unwrap_or_else(|e| panic!("{op}/{}: {e}", out.name));
                // Support discipline.
                for &i in &d.aig.support(d.fa) {
                    assert_ne!(d.partition.class(i), VarClass::B);
                }
                for &i in &d.aig.support(d.fb) {
                    assert_ne!(d.partition.class(i), VarClass::A);
                }
            }
        }
    }
}

#[test]
fn decomposition_rebuild_equals_original_semantics() {
    // Exhaustive functional check of an extracted decomposition.
    let mut aig = qbf_bidec::aig::Aig::new();
    let ins: Vec<_> = (0..5).map(|i| aig.add_input(format!("x{i}"))).collect();
    let t1 = aig.and_many(&ins[0..2]);
    let t2 = aig.and_many(&ins[2..5]);
    let f = aig.or(t1, t2);
    aig.add_output("f", f);
    let engine = BiDecomposer::new(quick_config(Model::QbfCombined));
    let r = engine.decompose_output(&aig, 0, GateOp::Or).expect("run");
    let mut d = r.decomposition.expect("decomposable");
    let combined = d.combine();
    for m in 0..32u32 {
        let v: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
        assert_eq!(
            d.aig.eval_lit(combined, &v),
            aig.eval(&v)[0],
            "mismatch at {v:?}"
        );
    }
}
