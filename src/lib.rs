//! # qbf-bidec — QBF-Based Boolean Function Bi-Decomposition
//!
//! A full Rust reproduction of *"QBF-Based Boolean Function
//! Bi-Decomposition"* (Chen, Janota, Marques-Silva — DATE 2012),
//! including the STEP tool and every substrate it depends on.
//!
//! This meta-crate re-exports the workspace crates:
//!
//! * [`aig`] — And-Inverter Graphs (the role of ABC)
//! * [`cnf`] — CNF, Tseitin encoding, cardinality constraints
//! * [`sat`] — CDCL SAT solver with assumptions and proof logging
//! * [`qbf`] — CEGAR 2QBF solver (the role of AReQS)
//! * [`mus`] — (group-)MUS extraction (the role of MUSer)
//! * [`itp`] — Craig interpolation for function extraction
//! * [`bdd`] — BDD package (verification oracle / related work)
//! * [`step`] — the STEP bi-decomposition engine itself
//! * [`circuits`] — benchmark circuit generators and registry
//! * [`serve`] — the framed-JSON network front-end (`step serve` /
//!   `step client`) with per-tenant quotas and admission control
//! * [`synth`] — multi-level synthesis: recursive bi-decomposition
//!   over the service (`step synthesize`)
//!
//! # Quickstart
//!
//! ```
//! use qbf_bidec::step::{BiDecomposer, DecompConfig, GateOp, Model};
//!
//! // f = (a & b) | (c & d) is OR-decomposable with a disjoint partition.
//! let mut aig = qbf_bidec::aig::Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let d = aig.add_input("d");
//! let ab = aig.and(a, b);
//! let cd = aig.and(c, d);
//! let f = aig.or(ab, cd);
//! aig.add_output("f", f);
//!
//! let config = DecompConfig::new(Model::QbfDisjoint);
//! let engine = BiDecomposer::new(config);
//! let result = engine.decompose_output(&aig, 0, GateOp::Or).unwrap();
//! let decomp = result.decomposition.expect("decomposable");
//! assert_eq!(decomp.partition.num_shared(), 0, "optimally disjoint");
//! ```

pub use step_aig as aig;
pub use step_bdd as bdd;
pub use step_circuits as circuits;
pub use step_cnf as cnf;
pub use step_core as step;
pub use step_itp as itp;
pub use step_mus as mus;
pub use step_qbf as qbf;
pub use step_sat as sat;
pub use step_serve as serve;
pub use step_synth as synth;
