//! `step` — the command-line front-end of the reproduction, mirroring
//! the original STEP tool's usage (and the `bi_dec circuit.blif or 0 1`
//! interface of the Bi-dec baseline).
//!
//! ```text
//! step <circuit.{bench,blif,aag}> [options]
//! step cache stats|merge|verify ...
//! step serve [--addr host:port] [--jobs n] [--quota n] ...
//! step client <host:port> <circuit> [options]
//! step synthesize <circuit> [options]
//!   --model ljh|mg|qd|qb|qdb    engine (default qd)
//!   --op or|and|xor             root operator (default or)
//!   --weights <wd> <wb>         weighted cost target (implies QBF model)
//!   --output <index>            decompose a single PO
//!   --jobs <n>                  worker threads for whole-circuit runs (default 1)
//!   --progress                  stream one line per output to stderr as results
//!                               land (whole-circuit runs; completion order)
//!   --seed <n>                  engine base seed (default 0x5DEECE66D)
//!   --sat-restarts luby|ema     SAT restart policy (default luby); ema is the
//!                               Glucose-style LBD-EMA dynamic policy
//!   --sat-preprocess            bounded root-level SAT preprocessing (off by
//!                               default; charged in conflict-equivalents)
//!   --cache / --no-cache        per-op result cache keyed by canonical cone
//!                               fingerprints (default on)
//!   --cache-cap <n>             bound the cache to n entries (second-chance
//!                               eviction; default unbounded)
//!   --clause-reuse              cross-output clause reuse: completed outputs
//!                               donate pinned learnt clauses to a bank keyed by
//!                               canonical fingerprint, and structural
//!                               (near-)twins start pre-seeded (off by default)
//!   --no-clause-reuse           disable it explicitly
//!   --clause-bank-cap <n>       bound the bank's exact channel to n entries
//!                               (second-chance eviction; implies --clause-reuse)
//!   --cache-dir <path>          persistent artifact store: solved results,
//!                               donated clauses and probe certificates load from
//!                               <path> at startup and flush back at exit, so a
//!                               later run (or another replica) starts warm —
//!                               byte-identical answers, fewer conflicts
//!   --no-timing                 suppress wall-clock cells and the cache,
//!                               clause-bank and store stats lines (stable output)
//!   --emit-qdimacs              print the 3QCNF of formulation (4) and exit
//!   --emit-blif                 print decomposed netlists as BLIF
//!   --budget <spec>             per-output budget (default wall:60s)
//!   --circuit-budget <spec>     per-circuit budget (default wall:6000s)
//!   --qbf-budget <spec>         per-QBF-call budget (default wall:4s, paper)
//!   --per-call-ms <n>           legacy spelling of --qbf-budget wall:<n>ms
//!   --per-output-s <n>          legacy spelling of --budget wall:<n>s
//! ```
//!
//! A budget `<spec>` is `wall:<dur>`, `work:<conflicts>`,
//! `both:<dur>,<conflicts>` or `unlimited`
//! ([`Budget::parse`](qbf_bidec::step::Budget::parse)). A pure-work
//! `--budget work:<n>` makes the run deterministic — byte-identical
//! results (timeouts included) across machines and `--jobs` values —
//! and therefore lifts the default *wall* limits on the per-call and
//! per-circuit scopes unless those are set explicitly.
//!
//! Whole-circuit runs submit to a [`StepService`] worker pool and
//! stream per-output events off the submission handle (`--progress`
//! narrates them on stderr in completion order; the stdout table stays
//! output-ordered). Per-output results are identical for any `--jobs`
//! value, so `--no-timing` stdout can be diffed across worker counts
//! and against `--progress` runs (the CI smoke steps do exactly that).
//! The engine solves every cone in canonical input order whether or
//! not the cache is on, so `--cache` and `--no-cache` are
//! byte-identical under `--no-timing` too — the cache changes how much
//! work a run does, never what it answers. The same contract covers
//! `--clause-reuse`: imported clauses are implied by each oracle's own
//! CNF, so verdicts and partitions match a reuse-off run byte for byte
//! (the CI clause-reuse smoke step diffs exactly that); only the work
//! counters move. `--cache-dir` extends all three reuse surfaces across
//! processes under the same contract — a warm run is byte-identical to
//! a cold one under `--no-timing` (the CI warm-start smoke step diffs
//! that too).
//!
//! The `step cache` subcommand manages store directories:
//!
//! ```text
//! step cache stats  <dir>           per-namespace entry counts + load health
//! step cache merge  <out> <in>...   pool many stores into one (dedup by key)
//! step cache verify <dir>           exit 1 if any record failed to load
//! ```
//!
//! The `step serve` / `step client` subcommands put the same engine
//! behind a TCP front-end (framed JSON, per-tenant quotas, admission
//! control — see the [`qbf_bidec::serve`] crate and the README's
//! "Network service" section). A circuit decomposed through
//! `step client` prints byte-identically to an in-process run under
//! `--no-timing`: both front-ends print through
//! [`qbf_bidec::serve::table`], and the engine's answers are
//! scheduling-independent.
//!
//! The `step synthesize` subcommand recursively bi-decomposes every
//! primary output into a network of two-input OR/AND/XOR gates over
//! small leaf functions (the [`qbf_bidec::synth`] crate): every
//! frontier cone is submitted through the same service worker pool, so
//! the recursion parallelizes across `--jobs` workers and hits every
//! reuse surface above. Each emitted network is SAT-verified
//! equivalent to its cone, and the subcommand's default budgets are
//! pure work, so its stdout under `--no-timing` is byte-identical
//! across `--jobs` values (the CI synthesize smoke step diffs that).
//! See `step synthesize --help`.
//!
//! [`StepService`]: qbf_bidec::step::StepService

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use qbf_bidec::circuits::load_file;
use qbf_bidec::serve::table;
use qbf_bidec::step::optimum::Metric;
use qbf_bidec::step::oracle::CoreFormula;
use qbf_bidec::step::qbf_model::Target;
use qbf_bidec::step::qdimacs_export::{export_qdimacs, ExportOptions};
use qbf_bidec::step::{
    BiDecomposer, Budget, BudgetPolicy, ClauseBank, DecompConfig, DiskTier, EffortMeter, GateOp,
    Model, OutputResult, RestartPolicy, ResultCache, StepService, TieredStore,
};
use qbf_bidec::synth::{SynthDriver, SynthOptions, SynthOutput};

struct Cli {
    path: String,
    model: Model,
    op: GateOp,
    weights: Option<(u32, u32)>,
    output: Option<usize>,
    jobs: usize,
    progress: bool,
    seed: Option<u64>,
    sat_restarts: RestartPolicy,
    sat_preprocess: bool,
    cache: bool,
    cache_cap: Option<usize>,
    clause_reuse: bool,
    clause_bank_cap: Option<usize>,
    cache_dir: Option<std::path::PathBuf>,
    no_timing: bool,
    emit_qdimacs: bool,
    emit_blif: bool,
    budget: BudgetPolicy,
}

const USAGE: &str = "usage: step <circuit.{bench,blif,aag}> [--model ljh|mg|qd|qb|qdb] \
                     [--op or|and|xor] [--weights wd wb] [--output idx] [--jobs n] \
                     [--progress] [--seed n] [--sat-restarts luby|ema] [--sat-preprocess] \
                     [--cache] [--no-cache] [--cache-cap n] \
                     [--clause-reuse] [--no-clause-reuse] [--clause-bank-cap n] \
                     [--cache-dir path] \
                     [--no-timing] [--emit-qdimacs] [--emit-blif] \
                     [--budget spec] [--circuit-budget spec] [--qbf-budget spec] \
                     [--per-call-ms n] [--per-output-s n]\n\
                     or:    step cache stats <dir> | merge <out> <in>... | verify <dir>\n\
                     or:    step serve [--addr host:port] ... (see step serve --help)\n\
                     or:    step client <host:port> <circuit> ... (see step client --help)\n\
                     or:    step synthesize <circuit> ... (see step synthesize --help)\n\
                     budget spec: wall:<dur> | work:<conflicts> | both:<dur>,<conflicts> \
                     | unlimited (e.g. --budget work:200k for deterministic truncation)";

/// Bad invocation: usage on stderr, exit 2.
fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// Explicitly requested help: usage on stdout, exit 0.
fn help() -> ! {
    println!("{USAGE}");
    std::process::exit(0)
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        path: String::new(),
        model: Model::QbfDisjoint,
        op: GateOp::Or,
        weights: None,
        output: None,
        jobs: 1,
        progress: false,
        seed: None,
        sat_restarts: RestartPolicy::default(),
        sat_preprocess: false,
        cache: true,
        cache_cap: None,
        clause_reuse: false,
        clause_bank_cap: None,
        cache_dir: None,
        no_timing: false,
        emit_qdimacs: false,
        emit_blif: false,
        budget: BudgetPolicy::default(),
    };
    // Whether the user explicitly chose per-call/per-circuit budgets
    // (any spelling): a pure-work `--budget` lifts unset wall defaults
    // below so the determinism promise holds.
    let mut qbf_budget_set = false;
    let mut circuit_budget_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                cli.model = match args.get(i).map(String::as_str) {
                    Some("ljh") => Model::Ljh,
                    Some("mg") => Model::MusGroup,
                    Some("qd") => Model::QbfDisjoint,
                    Some("qb") => Model::QbfBalanced,
                    Some("qdb") => Model::QbfCombined,
                    _ => usage(),
                };
            }
            "--op" => {
                i += 1;
                cli.op = match args.get(i).map(String::as_str) {
                    Some("or") => GateOp::Or,
                    Some("and") => GateOp::And,
                    Some("xor") => GateOp::Xor,
                    _ => usage(),
                };
            }
            "--weights" => {
                let wd = args.get(i + 1).and_then(|s| s.parse().ok());
                let wb = args.get(i + 2).and_then(|s| s.parse().ok());
                match (wd, wb) {
                    (Some(wd), Some(wb)) => cli.weights = Some((wd, wb)),
                    _ => usage(),
                }
                i += 2;
            }
            "--output" => {
                i += 1;
                cli.output = args.get(i).and_then(|s| s.parse().ok());
                if cli.output.is_none() {
                    usage();
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cli.jobs = n,
                    _ => usage(),
                }
            }
            "--progress" => cli.progress = true,
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => cli.seed = Some(s),
                    None => usage(),
                }
            }
            "--sat-restarts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) => cli.sat_restarts = p,
                    None => usage(),
                }
            }
            "--sat-preprocess" => cli.sat_preprocess = true,
            "--cache" => cli.cache = true,
            "--no-cache" => cli.cache = false,
            "--cache-cap" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => {
                        cli.cache = true;
                        cli.cache_cap = Some(n);
                    }
                    _ => usage(),
                }
            }
            "--clause-reuse" => cli.clause_reuse = true,
            "--no-clause-reuse" => cli.clause_reuse = false,
            "--clause-bank-cap" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => {
                        cli.clause_reuse = true;
                        cli.clause_bank_cap = Some(n);
                    }
                    _ => usage(),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cli.cache_dir = Some(validated_cache_dir(Path::new(p))),
                    None => usage(),
                }
            }
            "--no-timing" => cli.no_timing = true,
            "--emit-qdimacs" => cli.emit_qdimacs = true,
            "--emit-blif" => cli.emit_blif = true,
            // Budgets: `--budget` is the per-output limit, the paper's
            // central truncation knob; a malformed spec reports why and
            // exits 2 with the usage message (never a panic).
            flag @ ("--budget" | "--circuit-budget" | "--qbf-budget") => {
                i += 1;
                match args.get(i).map(|s| Budget::parse(s)) {
                    Some(Ok(b)) => match flag {
                        "--budget" => cli.budget.per_output = b,
                        "--circuit-budget" => {
                            cli.budget.per_circuit = b;
                            circuit_budget_set = true;
                        }
                        _ => {
                            cli.budget.per_qbf_call = b;
                            qbf_budget_set = true;
                        }
                    },
                    Some(Err(e)) => {
                        eprintln!("{flag}: {e}");
                        usage();
                    }
                    None => usage(),
                }
            }
            // Legacy wall-clock spellings of the same knobs.
            "--per-call-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(ms) => {
                        cli.budget.per_qbf_call = Budget::Wall(Duration::from_millis(ms));
                        qbf_budget_set = true;
                    }
                    None => usage(),
                }
            }
            "--per-output-s" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => cli.budget.per_output = Budget::Wall(Duration::from_secs(s)),
                    None => usage(),
                }
            }
            "--help" | "-h" => help(),
            other if cli.path.is_empty() && !other.starts_with('-') => {
                cli.path = other.to_owned();
            }
            _ => usage(),
        }
        i += 1;
    }
    if cli.path.is_empty() {
        usage();
    }
    cli.budget
        .lift_unset_walls_for_pure_work(qbf_budget_set, circuit_budget_set);
    cli
}

/// Vets a `--cache-dir` argument up front: the path must be (or become)
/// a writable directory, and a bad one is a usage error (exit 2) before
/// any solving starts — not a surprise after an hour of work.
fn validated_cache_dir(path: &Path) -> std::path::PathBuf {
    if path.exists() && !path.is_dir() {
        eprintln!("--cache-dir: {} is not a directory", path.display());
        usage();
    }
    if let Err(e) = std::fs::create_dir_all(path) {
        eprintln!("--cache-dir: cannot create {}: {e}", path.display());
        usage();
    }
    // An explicit write probe: permission bits alone lie to privileged
    // users, and read-only filesystems only fail on the actual write.
    let probe = path.join(".stepstore-probe");
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
        }
        Err(e) => {
            eprintln!("--cache-dir: {} is not writable: {e}", path.display());
            usage();
        }
    }
    path.to_owned()
}

/// `step cache <verb> ...` — persistent-store management. Always exits.
fn cache_command(args: &[String]) -> ! {
    let open = |dir: &str| match DiskTier::open(Path::new(dir)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cache dir {dir}: {e}");
            std::process::exit(1);
        }
    };
    match (args.first().map(String::as_str), args.len()) {
        (Some("stats"), 2) => {
            let tier = open(&args[1]);
            println!("store: {} — {} entries", args[1], tier.len());
            for (kind, config, n) in tier.summaries() {
                println!("  {:<8} {n:>8}  [{config}]", kind.label());
            }
            println!(
                "  loaded {} record(s), {} corrupt, {} flushed",
                tier.loaded_records(),
                tier.corrupt_records(),
                tier.flushed_records()
            );
            std::process::exit(0);
        }
        (Some("merge"), n) if n >= 3 => {
            let out = open(&args[1]);
            let mut adopted = 0u64;
            for src in &args[2..] {
                adopted += out.merge_from(&open(src));
            }
            match out.flush() {
                Ok(written) => {
                    println!(
                        "merged {} store(s) into {}: {adopted} adopted, \
                         {written} written, {} entries total",
                        args.len() - 2,
                        args[1],
                        out.len()
                    );
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("error: flush {}: {e}", args[1]);
                    std::process::exit(1);
                }
            }
        }
        (Some("verify"), 2) => {
            let tier = open(&args[1]);
            if tier.corrupt_records() > 0 {
                eprintln!(
                    "{}: {} corrupt record(s) skipped, {} loaded",
                    args[1],
                    tier.corrupt_records(),
                    tier.loaded_records()
                );
                std::process::exit(1);
            }
            println!(
                "{}: ok — {} record(s) loaded cleanly",
                args[1],
                tier.loaded_records()
            );
            std::process::exit(0);
        }
        _ => usage(),
    }
}

/// The reuse-surface flags shared by the decompose and synthesize
/// front-ends: result cache, clause bank, persistent store.
struct ReuseOpts {
    cache: bool,
    cache_cap: Option<usize>,
    clause_reuse: bool,
    clause_bank_cap: Option<usize>,
    cache_dir: Option<std::path::PathBuf>,
}

impl ReuseOpts {
    /// Builds the run's tiered store: the cache/bank Arcs as tier 0,
    /// plus the persistent tier when `--cache-dir` was given (already
    /// vetted writable at parse time; a load failure here means the
    /// directory changed under us and is worth an exit, not a warn).
    fn build_store(
        &self,
    ) -> (
        Option<Arc<ResultCache>>,
        Option<Arc<ClauseBank>>,
        Arc<TieredStore>,
    ) {
        let cache: Option<Arc<ResultCache>> = self.cache.then(|| {
            Arc::new(match self.cache_cap {
                Some(cap) => ResultCache::with_capacity(cap),
                None => ResultCache::new(),
            })
        });
        let bank: Option<Arc<ClauseBank>> = self.clause_reuse.then(|| {
            Arc::new(match self.clause_bank_cap {
                Some(cap) => ClauseBank::with_capacity(cap),
                None => ClauseBank::new(),
            })
        });
        let store: Arc<TieredStore> = match &self.cache_dir {
            Some(dir) => match TieredStore::with_disk(cache.clone(), bank.clone(), dir) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("error: cache dir {}: {e}", dir.display());
                    std::process::exit(1);
                }
            },
            None => Arc::new(TieredStore::memory(cache.clone(), bank.clone())),
        };
        (cache, bank, store)
    }
}

/// The cache, clause-bank and store statistics lines. They vary with
/// scheduling under `--jobs`, so callers gate this behind
/// `--no-timing` together with the wall clocks.
fn print_reuse_stats(
    cache: &Option<Arc<ResultCache>>,
    bank: &Option<Arc<ClauseBank>>,
    store: &TieredStore,
) {
    if let Some(cache) = cache {
        println!(
            "cache: {} hits, {} misses, {} inserts, {} evictions, {} entries",
            cache.hits(),
            cache.misses(),
            cache.inserts(),
            cache.evictions(),
            cache.len()
        );
    }
    if let Some(bank) = bank {
        println!(
            "clause bank: {} hits ({} exact, {} cluster), {} misses, \
             {} donations, {} entries, {} probe hits, {} probe records",
            bank.hits(),
            bank.exact_hits(),
            bank.cluster_hits(),
            bank.misses(),
            bank.donations(),
            bank.len(),
            bank.probe_hits(),
            bank.probe_records()
        );
    }
    if let Some(disk) = store.disk() {
        println!(
            "store: {} record(s) loaded, disk hits {} results / {} clauses / \
             {} probes, {} flushed, {} corrupt",
            disk.loaded_records(),
            store.disk_result_hits(),
            store.disk_clause_hits(),
            store.disk_probe_hits(),
            disk.flushed_records(),
            disk.corrupt_records()
        );
    }
}

/// The wall-clock cell: milliseconds, or `-` under `--no-timing` so
/// output is byte-identical across runs and `--jobs` values.
fn cpu_cell(cpu: Duration, no_timing: bool) -> String {
    table::cpu_cell(cpu.as_millis() as u64, no_timing)
}

/// Prints one per-output row; returns whether the output decomposed.
/// The row formats live in [`table`], shared with the network client
/// so `step client` output is byte-identical by construction.
fn print_result(cli: &Cli, out: &OutputResult) -> bool {
    match &out.partition {
        Some(p) => {
            println!(
                "{}",
                table::partition_row(
                    &out.name,
                    out.support as u64,
                    p.num_a() as u64,
                    p.num_b() as u64,
                    p.num_shared() as u64,
                    p.disjointness(),
                    p.balancedness(),
                    out.proved_optimal,
                    &cpu_cell(out.cpu, cli.no_timing)
                )
            );
            if cli.emit_blif {
                if let Some(d) = &out.decomposition {
                    let mut d = d.clone();
                    let combined = d.combine();
                    let mut net = d.aig.clone();
                    net.add_output(format!("{}_rebuilt", out.name), combined);
                    net.add_output(format!("{}_fA", out.name), d.fa);
                    net.add_output(format!("{}_fB", out.name), d.fb);
                    println!(
                        "{}",
                        qbf_bidec::aig::blif::write(
                            &net.compact(),
                            &format!("{}_decomposed", out.name)
                        )
                    );
                }
            }
            true
        }
        None => {
            println!(
                "{}",
                table::failure_row(&out.name, out.support as u64, out.timed_out)
            );
            false
        }
    }
}

const SYNTH_USAGE: &str = "usage: step synthesize <circuit.{bench,blif,aag}> \
    [--model ljh|mg|qd|qb|qdb] [--output idx] [--jobs n] [--seed n] \
    [--target-support n] [--max-depth n] [--budget spec] [--synth-budget spec] \
    [--qbf-budget spec] [--no-bdd-fallback] [--bdd-max-support n] [--no-verify] \
    [--render] [--sat-restarts luby|ema] [--sat-preprocess] \
    [--cache] [--no-cache] [--cache-cap n] \
    [--clause-reuse] [--no-clause-reuse] [--clause-bank-cap n] \
    [--cache-dir path] [--no-timing]\n\
    recursively bi-decomposes every output into a network of two-input \
    OR/AND/XOR gates over small leaves, SAT-verified equivalent.\n\
    --budget is the per-node scope (default work:20k), --synth-budget the \
    whole-synthesis pool (default unlimited), --qbf-budget the per-QBF-call \
    scope (default unlimited here, unlike plain step): every default is pure \
    work, so stdout under --no-timing is byte-identical across --jobs values";

/// Bad `step synthesize` invocation: usage on stderr, exit 2.
fn synth_usage() -> ! {
    eprintln!("{SYNTH_USAGE}");
    std::process::exit(2)
}

struct SynthCli {
    path: String,
    model: Model,
    output: Option<usize>,
    jobs: usize,
    seed: Option<u64>,
    sat_restarts: RestartPolicy,
    sat_preprocess: bool,
    reuse: ReuseOpts,
    no_timing: bool,
    render: bool,
    opts: SynthOptions,
    qbf_budget: Budget,
}

fn parse_synth_cli(args: &[String]) -> SynthCli {
    let mut cli = SynthCli {
        path: String::new(),
        model: Model::QbfDisjoint,
        output: None,
        jobs: 1,
        seed: None,
        sat_restarts: RestartPolicy::default(),
        sat_preprocess: false,
        reuse: ReuseOpts {
            cache: true,
            cache_cap: None,
            clause_reuse: false,
            clause_bank_cap: None,
            cache_dir: None,
        },
        no_timing: false,
        render: false,
        opts: SynthOptions {
            // Deterministic defaults: a pure-work per-node scope keeps
            // the emitted network independent of machine and --jobs.
            per_node: Budget::Work(20_000),
            ..SynthOptions::default()
        },
        qbf_budget: Budget::Unlimited,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                cli.model = match args.get(i).map(String::as_str) {
                    Some("ljh") => Model::Ljh,
                    Some("mg") => Model::MusGroup,
                    Some("qd") => Model::QbfDisjoint,
                    Some("qb") => Model::QbfBalanced,
                    Some("qdb") => Model::QbfCombined,
                    _ => synth_usage(),
                };
            }
            "--output" => {
                i += 1;
                cli.output = args.get(i).and_then(|s| s.parse().ok());
                if cli.output.is_none() {
                    synth_usage();
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cli.jobs = n,
                    _ => synth_usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => cli.seed = Some(s),
                    None => synth_usage(),
                }
            }
            "--sat-restarts" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) => cli.sat_restarts = p,
                    None => synth_usage(),
                }
            }
            "--sat-preprocess" => cli.sat_preprocess = true,
            "--target-support" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cli.opts.target_support = n,
                    _ => synth_usage(),
                }
            }
            "--max-depth" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => cli.opts.max_depth = Some(n),
                    None => synth_usage(),
                }
            }
            "--no-bdd-fallback" => cli.opts.bdd_fallback = false,
            "--bdd-max-support" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => cli.opts.bdd_max_support = n,
                    None => synth_usage(),
                }
            }
            "--no-verify" => cli.opts.verify = false,
            "--render" => cli.render = true,
            "--cache" => cli.reuse.cache = true,
            "--no-cache" => cli.reuse.cache = false,
            "--cache-cap" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => {
                        cli.reuse.cache = true;
                        cli.reuse.cache_cap = Some(n);
                    }
                    _ => synth_usage(),
                }
            }
            "--clause-reuse" => cli.reuse.clause_reuse = true,
            "--no-clause-reuse" => cli.reuse.clause_reuse = false,
            "--clause-bank-cap" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => {
                        cli.reuse.clause_reuse = true;
                        cli.reuse.clause_bank_cap = Some(n);
                    }
                    _ => synth_usage(),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cli.reuse.cache_dir = Some(validated_cache_dir(Path::new(p))),
                    None => synth_usage(),
                }
            }
            "--no-timing" => cli.no_timing = true,
            flag @ ("--budget" | "--synth-budget" | "--qbf-budget") => {
                i += 1;
                match args.get(i).map(|s| Budget::parse(s)) {
                    Some(Ok(b)) => match flag {
                        "--budget" => cli.opts.per_node = b,
                        "--synth-budget" => cli.opts.synthesis = b,
                        _ => cli.qbf_budget = b,
                    },
                    Some(Err(e)) => {
                        eprintln!("{flag}: {e}");
                        synth_usage();
                    }
                    None => synth_usage(),
                }
            }
            "--help" | "-h" => {
                println!("{SYNTH_USAGE}");
                std::process::exit(0)
            }
            other if cli.path.is_empty() && !other.starts_with('-') => {
                cli.path = other.to_owned();
            }
            _ => synth_usage(),
        }
        i += 1;
    }
    if cli.path.is_empty() {
        synth_usage();
    }
    cli
}

/// One deterministic row of the synthesis table: network metrics and
/// expansion counters are pure functions of `(circuit, config,
/// options)` under deterministic budgets; only the cpu cell moves (and
/// `--no-timing` blanks it).
fn synth_row(out: &SynthOutput, no_timing: bool) -> String {
    format!(
        "{:<16} {:>4} {:>6} {:>7} {:>6} {:>8} {:>7} {:>4} {:>4}  {:<6} {:>8}",
        out.name,
        out.support,
        out.tree.num_gates(),
        out.tree.num_leaves(),
        out.tree.depth(),
        out.tree.max_leaf_support(),
        out.stats.nodes_expanded,
        out.stats.qbf_gates,
        out.stats.bdd_splits,
        if out.stats.truncated { "trunc" } else { "ok" },
        cpu_cell(out.stats.cpu, no_timing)
    )
}

/// `step synthesize <circuit> ...` — the multi-level synthesis
/// front-end over [`qbf_bidec::synth`]. Always exits.
fn synthesize_command(args: &[String]) -> ! {
    let cli = parse_synth_cli(args);
    let circuit = match load_file(Path::new(&cli.path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let comb = if circuit.is_comb() {
        circuit
    } else {
        eprintln!("note: sequential circuit, applying comb conversion");
        match circuit.comb() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    println!(
        "{}",
        table::circuit_line(
            &cli.path,
            comb.num_inputs() as u64,
            comb.num_outputs() as u64,
            comb.and_count() as u64
        )
    );

    let mut config = DecompConfig::new(cli.model);
    config.sat_restarts = cli.sat_restarts;
    config.sat_preprocess = cli.sat_preprocess;
    config.clause_reuse = cli.reuse.clause_reuse;
    config.budget.per_qbf_call = cli.qbf_budget;
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    let (cache, bank, store) = cli.reuse.build_store();
    // The recursion fans out well past the output count, so the pool
    // is NOT clamped to num_outputs here (unlike plain decomposition).
    let service = StepService::spawn_with_store(cli.jobs.max(1), Arc::clone(&store));
    let driver = SynthDriver::new(&service, config, cli.opts.clone());

    let indices: Vec<usize> = match cli.output {
        Some(i) => vec![i],
        None => (0..comb.num_outputs()).collect(),
    };
    println!(
        "{:<16} {:>4} {:>6} {:>7} {:>6} {:>8} {:>7} {:>4} {:>4}  {:<6} {:>8}",
        "output",
        "sup",
        "gates",
        "leaves",
        "depth",
        "leafsup",
        "expand",
        "qbf",
        "bdd",
        "status",
        "cpu"
    );
    let total = indices.len();
    let mut gates = 0usize;
    let mut complete = 0usize;
    for idx in indices {
        match driver.synthesize(&comb, idx) {
            Ok(out) => {
                println!("{}", synth_row(&out, cli.no_timing));
                if cli.render {
                    print!("{}", out.tree.render());
                }
                gates += out.tree.num_gates();
                if !out.stats.truncated {
                    complete += 1;
                }
            }
            Err(e) => {
                eprintln!("error on output {idx}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "synthesized {complete}/{total} output(s) to target support {}, {gates} gate(s) ({})",
        driver.options().target_support.max(1),
        cli.model
    );
    if let Err(e) = store.flush() {
        eprintln!("warning: cache flush failed: {e}");
    }
    if !cli.no_timing {
        print_reuse_stats(&cache, &bank, &store);
    }
    std::process::exit(0)
}

fn main() {
    // `step cache ...` is a subcommand, not a circuit path; dispatch on
    // the raw argument list before flag parsing would swallow `cache`
    // as the positional circuit argument.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("cache") => cache_command(&raw[1..]),
        Some("serve") => qbf_bidec::serve::server::main(&raw[1..]),
        Some("client") => qbf_bidec::serve::client::main(&raw[1..]),
        Some("synthesize") => synthesize_command(&raw[1..]),
        _ => {}
    }
    let cli = parse_cli();
    let circuit = match load_file(Path::new(&cli.path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let comb = if circuit.is_comb() {
        circuit
    } else {
        eprintln!("note: sequential circuit, applying comb conversion");
        match circuit.comb() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    println!(
        "{}",
        table::circuit_line(
            &cli.path,
            comb.num_inputs() as u64,
            comb.num_outputs() as u64,
            comb.and_count() as u64
        )
    );

    if cli.emit_qdimacs {
        let idx = cli.output.unwrap_or(0);
        let Some(out) = comb.outputs().get(idx) else {
            eprintln!("error: output {idx} out of range");
            std::process::exit(1);
        };
        let cone = comb.cone(out.lit());
        let core = CoreFormula::build(&cone.aig, cone.root, cli.op);
        let target = match cli.weights {
            Some((wd, wb)) => Target::Weighted {
                wd,
                wb,
                k: core.n.saturating_sub(2),
            },
            None => Target::Any,
        };
        let model = export_qdimacs(&core, target, &ExportOptions::default());
        print!("{}", model.text);
        return;
    }

    if let Some((wd, wb)) = cli.weights {
        if cli.jobs > 1 {
            eprintln!("note: the --weights path runs sequentially; --jobs has no effect");
        }
        run_weighted(&cli, &comb, wd, wb);
        return;
    }

    let mut config = DecompConfig::new(cli.model);
    config.budget = cli.budget;
    config.jobs = cli.jobs;
    config.sat_restarts = cli.sat_restarts;
    config.sat_preprocess = cli.sat_preprocess;
    config.clause_reuse = cli.clause_reuse;
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    // One tiered store serves the whole run: the cache/bank Arcs as
    // tier 0, plus the persistent tier when --cache-dir was given.
    let (cache, bank, store) = ReuseOpts {
        cache: cli.cache,
        cache_cap: cli.cache_cap,
        clause_reuse: cli.clause_reuse,
        clause_bank_cap: cli.clause_bank_cap,
        cache_dir: cli.cache_dir.clone(),
    }
    .build_store();

    println!("{}", table::header());
    let mut decomposed = 0usize;
    match cli.output {
        // Single output: one session, no queue.
        Some(idx) => {
            let mut engine = BiDecomposer::new(config);
            engine.set_store(std::sync::Arc::clone(&store));
            match engine.decompose_output(&comb, idx, cli.op) {
                Ok(out) => {
                    if print_result(&cli, &out) {
                        decomposed += 1;
                    }
                }
                Err(e) => {
                    eprintln!("error on output {idx}: {e}");
                    std::process::exit(1);
                }
            }
        }
        // Whole circuit: submit to a service worker pool and stream
        // per-output events off the handle (`--progress` narrates them
        // on stderr in completion order; the stdout table is printed
        // output-ordered at join, so stdout stays byte-identical to a
        // non-progress run).
        None => {
            // Clamp the pool to the output count — extra workers would
            // only idle on the queue.
            let workers = cli.jobs.min(comb.num_outputs()).max(1);
            let service = StepService::spawn_with_store(workers, std::sync::Arc::clone(&store));
            let mut handle = match service.submit(&comb, cli.op, config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            let total = handle.num_outputs();
            let mut done = 0usize;
            while let Some(event) = handle.recv() {
                done += 1;
                if cli.progress {
                    match &event.result {
                        Ok(out) => eprintln!(
                            "progress: {done}/{total} {} {}",
                            out.name,
                            if out.partition.is_some() {
                                "decomposed"
                            } else if out.timed_out {
                                "timeout"
                            } else {
                                "not decomposable"
                            }
                        ),
                        Err(e) => {
                            eprintln!(
                                "progress: {done}/{total} output {}: {e}",
                                event.output_index
                            )
                        }
                    }
                }
            }
            match handle.join() {
                Ok(result) => {
                    for out in &result.outputs {
                        if print_result(&cli, out) {
                            decomposed += 1;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("{}", table::footer(decomposed, &cli.model.to_string()));
    // Persist whatever the run learnt. A flush failure (disk full,
    // directory removed mid-run) costs the warm start, not the answers
    // already printed — warn, don't fail.
    if let Err(e) = store.flush() {
        eprintln!("warning: cache flush failed: {e}");
    }
    if !cli.no_timing {
        print_reuse_stats(&cache, &bank, &store);
    }
}

/// Weighted run: bootstrap with MG then search the weighted metric
/// directly on each selected output.
fn run_weighted(cli: &Cli, comb: &qbf_bidec::aig::Aig, wd: u32, wb: u32) {
    use qbf_bidec::step::mg;
    let indices: Vec<usize> = match cli.output {
        Some(i) => vec![i],
        None => (0..comb.num_outputs()).collect(),
    };
    println!("{}", table::header());
    let mut decomposed = 0usize;
    for idx in indices {
        let Some(out) = comb.outputs().get(idx) else {
            eprintln!("error: output {idx} out of range");
            std::process::exit(1);
        };
        let cone = comb.cone(out.lit());
        let core = CoreFormula::build(&cone.aig, cone.root, cli.op);
        let mut oracle = qbf_bidec::step::oracle::PartitionOracle::with_options(
            core.clone(),
            cli.sat_restarts,
            cli.sat_preprocess,
        );
        let start = std::time::Instant::now();
        let mut meter = EffortMeter::unlimited();
        let boot = match mg::decompose(&mut oracle, None, &mut meter) {
            mg::MgOutcome::Partition(p) | mg::MgOutcome::TruncatedPartition(p) => Some(p),
            _ => None,
        };
        let search = qbf_bidec::step::optimum::search(
            &core,
            Metric::Weighted { wd, wb },
            boot.as_ref(),
            qbf_bidec::step::SearchStrategy::MonotoneIncreasing,
            &qbf_bidec::step::qbf_model::ModelOptions {
                restarts: cli.sat_restarts,
                preprocess: cli.sat_preprocess,
                ..Default::default()
            },
            &mut meter,
        );
        match search.partition {
            Some(p) => {
                println!(
                    "{}",
                    table::partition_row(
                        out.name(),
                        cone.support_size() as u64,
                        p.num_a() as u64,
                        p.num_b() as u64,
                        p.num_shared() as u64,
                        p.disjointness(),
                        p.balancedness(),
                        search.proved_optimal,
                        &cpu_cell(start.elapsed(), cli.no_timing)
                    )
                );
                decomposed += 1;
            }
            None => println!("{:<16} not decomposable", out.name()),
        }
    }
    println!("{}", table::footer(decomposed, &cli.model.to_string()));
}
