//! Offline, in-tree shim for the subset of the [`proptest`] crate API
//! this workspace's property tests use (see the repository README's
//! "Dependency policy" section).
//!
//! Provided surface:
//!
//! * the [`proptest!`] macro, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`]
//! * [`Strategy`] implemented for half-open and inclusive integer
//!   ranges, tuples of strategies, [`collection::vec`] and
//!   [`bool::ANY`], plus [`Strategy::prop_map`]
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test function draws its cases from a deterministic
//! generator seeded from the test's name, so failures reproduce
//! exactly on every run and platform. The failure message includes the
//! case index.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use core::ops::{Range, RangeInclusive};

use rand::Rng;

pub mod test_runner {
    //! Mirror of `proptest::test_runner`: the per-test configuration
    //! and the deterministic RNG driving value generation.

    pub use rand::rngs::StdRng as TestRng;
    pub use rand::SeedableRng;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Same default as real proptest.
            Config { cases: 256 }
        }
    }
}

/// A failed test case, produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating random values of an associated type.
///
/// The shim collapses proptest's `Strategy`/`ValueTree` pair into one
/// generation method — there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $ty {
                rng.gen_range_inclusive(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

pub mod collection {
    //! Mirror of `proptest::collection`: strategies for collections.

    use super::{test_runner::TestRng, Strategy};
    use core::ops::Range;
    use rand::Rng;

    /// A `Vec` strategy with length drawn from `size` and elements
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy returned by [`vec`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Mirror of `proptest::bool`: the unbiased boolean strategy.

    use super::{test_runner::TestRng, Strategy};
    use rand::Rng;

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`: the glob-import surface.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError};
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` vs `{:?}`)",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` vs `{:?}`)",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            // FNV-1a over the test name: a stable per-test seed, so
            // every run and platform draws the same case sequence.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in stringify!($name).bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = <$crate::test_runner::TestRng as
                $crate::test_runner::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {err}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        use crate::test_runner::{SeedableRng, TestRng};
        let mut rng = TestRng::seed_from_u64(1);
        let s = crate::collection::vec(
            (0usize..5, crate::bool::ANY).prop_map(|(v, b)| if b { v + 10 } else { v }),
            2..6,
        );
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5 || (10..15).contains(&x)));
        }
    }

    #[test]
    fn inclusive_range_covers_endpoints() {
        use crate::test_runner::{SeedableRng, TestRng};
        let mut rng = TestRng::seed_from_u64(2);
        let s = 1i64..=3i64;
        let mut seen = [false; 3];
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(xs in crate::collection::vec(0u8..4, 1..10), n in 1usize..5) {
            prop_assert!(!xs.is_empty());
            prop_assert!(n >= 1, "n = {}", n);
            for x in xs {
                prop_assert!(x < 4);
            }
            if n == 0 {
                return Ok(());
            }
            prop_assert_eq!(n * 2 / 2, n, "round trip {}", n);
            prop_assert_ne!(n, 0);
        }
    }
}
