//! Offline, in-tree shim for the tiny subset of the [`rand`] crate API
//! this workspace uses (see the repository README's "Dependency
//! policy" section).
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open integer ranges (plus
//!   [`Rng::gen_range_inclusive`], which real rand spells
//!   `gen_range(low..=high)`)
//! * [`Rng::gen_bool`]
//!
//! The stream is fixed by the seed and identical on every platform,
//! which is exactly what the benchmark-circuit registry needs for
//! reproducible stand-in circuits. It is **not** the same stream as
//! the real `rand` crate, and it is not cryptographically secure.
//!
//! [`rand`]: https://crates.io/crates/rand

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers layered over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range `low..high`.
    ///
    /// (Real rand takes any range shape here; the shim keeps `Range`
    /// in the signature so integer-literal inference at call sites
    /// like `2 + rng.gen_range(0..3)` resolves through the expected
    /// result type, and offers [`Rng::gen_range_inclusive`]
    /// separately.)
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    /// Uniform sample from an inclusive integer range `low..=high`.
    ///
    /// Panics if the range is empty.
    fn gen_range_inclusive<T: SampleUniform>(&mut self, range: RangeInclusive<T>) -> T {
        T::sample_inclusive(range, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 uniform mantissa bits, same construction as rand's
        // `Standard` distribution for f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `range` using `rng`.
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;

    /// Uniform sample from the inclusive `range` using `rng`.
    fn sample_inclusive<R: RngCore + ?Sized>(range: RangeInclusive<Self>, rng: &mut R) -> Self;
}

/// Uniform draw from `[start, end)`, both already widened to `i128`
/// (every supported integer fits, including `u64::MAX + 1` as an
/// exclusive end). Multiply-shift range reduction (Lemire); the bias
/// is < 2^-64 per draw, irrelevant for circuit generation.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, start: i128, end: i128) -> i128 {
    let span = (end - start) as u128;
    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
    start + offset
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                sample_span(rng, range.start as i128, range.end as i128) as $ty
            }

            fn sample_inclusive<R: RngCore + ?Sized>(
                range: RangeInclusive<Self>,
                rng: &mut R,
            ) -> Self {
                let (start, end) = (*range.start(), *range.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                sample_span(rng, start as i128, end as i128 + 1) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64 —
    /// the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_inclusive_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.gen_range_inclusive(1u8..=3);
            assert!((1..=3).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Extreme span: the widened arithmetic must not overflow.
        let _ = rng.gen_range_inclusive(0u64..=u64::MAX);
        assert_eq!(rng.gen_range_inclusive(7usize..=7), 7);
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
