//! Offline, in-tree shim for the subset of the [`criterion`] crate API
//! this workspace's bench targets use (see the repository README's
//! "Dependency policy" section).
//!
//! Provided surface:
//!
//! * [`Criterion`], [`Criterion::benchmark_group`]
//! * [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//!   [`BenchmarkGroup::finish`]
//! * [`Bencher::iter`]
//! * [`black_box`]
//! * [`criterion_group!`] / [`criterion_main!`]
//!
//! Instead of criterion's full statistical pipeline, each benchmark
//! runs `sample_size` timed iterations (after one warm-up iteration)
//! and prints the minimum, mean and maximum wall-clock time. That is
//! enough to compare the workspace's kernels locally and to keep the
//! bench targets compiling and runnable without crates.io access.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark: time `f`'s [`Bencher::iter`] body.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples);
        self
    }

    /// End the group. (The shim reports per-benchmark, so this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples (Bencher::iter never called)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{id}: [{min:?} {mean:?} {max:?}] ({} samples)",
        samples.len()
    );
}

/// Declare a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("counting", |b| b.iter(|| calls += 1));
        g.finish();
        // one warm-up + three timed iterations
        assert_eq!(calls, 4);
    }
}
