//! Craig interpolation from resolution proofs (McMillan's system).
//!
//! Given an unsatisfiable formula whose clauses are partitioned into an
//! *A-part* and a *B-part*, and a resolution refutation logged by
//! `step-sat`, [`mcmillan`] constructs an interpolant `I` as an AIG:
//!
//! * `A → I`,
//! * `I ∧ B` is unsatisfiable,
//! * `I` only mentions *global* variables (those occurring in both
//!   parts).
//!
//! This is the mechanism the original SAT-based bi-decomposition (Lee,
//! Jiang, Hung — DAC 2008, the paper's reference \[16\]) uses to extract
//! the decomposition functions `fA` and `fB`, and `step-core` uses it
//! the same way.
//!
//! The construction is the standard one: an A-clause is labelled with
//! the disjunction of its global literals, a B-clause with constant
//! true; a resolution on an A-local pivot ORs the labels, any other
//! pivot ANDs them; the label of the empty clause is the interpolant.
//!
//! # Example
//!
//! ```
//! use step_cnf::Lit;
//! use step_itp::mcmillan;
//! use step_sat::{SolveResult, Solver};
//!
//! // A = (a) (¬a ∨ s), B = (¬s): interpolant over global var s.
//! let mut solver = Solver::new();
//! solver.enable_proof();
//! let a = Lit::pos(solver.new_var());
//! let s = Lit::pos(solver.new_var());
//! let id1 = solver.add_clause([a]).unwrap();
//! let id2 = solver.add_clause([!a, s]).unwrap();
//! let _id3 = solver.add_clause([!s]).unwrap();
//! assert_eq!(solver.solve(), SolveResult::Unsat);
//! let itp = mcmillan(solver.proof().unwrap(), &[id1, id2]).unwrap();
//! // I must be exactly `s` here: check on both assignments.
//! let v = itp.globals.iter().position(|&g| g == s.var()).unwrap();
//! let mut input = vec![false; itp.globals.len()];
//! assert!(!itp.aig.eval_lit(itp.root, &input));
//! input[v] = true;
//! assert!(itp.aig.eval_lit(itp.root, &input));
//! ```

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use step_aig::{Aig, AigLit};
use step_cnf::Var;
use step_sat::{ClauseId, Proof, ProofStep};

/// Errors from interpolant construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItpError {
    /// The proof does not derive the empty clause.
    NoRefutation,
    /// A chain references a step id that does not exist.
    DanglingReference(ClauseId),
}

impl fmt::Display for ItpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItpError::NoRefutation => write!(f, "proof has no empty-clause derivation"),
            ItpError::DanglingReference(id) => write!(f, "chain references unknown step {id}"),
        }
    }
}

impl Error for ItpError {}

/// An interpolant as an AIG: input `i` of [`Interpolant::aig`]
/// corresponds to CNF variable [`Interpolant::globals`]`[i]`.
#[derive(Debug, Clone)]
pub struct Interpolant {
    /// Circuit whose inputs are the global variables, in
    /// [`Interpolant::globals`] order.
    pub aig: Aig,
    /// The interpolant function.
    pub root: AigLit,
    /// The global (shared) CNF variables, sorted.
    pub globals: Vec<Var>,
}

impl Interpolant {
    /// Evaluates the interpolant under an assignment of *all* CNF
    /// variables (indexed by variable number).
    pub fn eval_under(&self, full_assignment: &[bool]) -> bool {
        let ins: Vec<bool> = self
            .globals
            .iter()
            .map(|v| full_assignment[v.index()])
            .collect();
        self.aig.eval_lit(self.root, &ins)
    }
}

/// Computes a McMillan interpolant from `proof` for the clause
/// partition where `a_clauses` lists the [`ClauseId`]s of the A-part
/// (all other original clauses form the B-part).
///
/// # Errors
///
/// Returns [`ItpError::NoRefutation`] if the proof lacks an empty
/// clause, or [`ItpError::DanglingReference`] on a malformed chain.
pub fn mcmillan(proof: &Proof, a_clauses: &[ClauseId]) -> Result<Interpolant, ItpError> {
    let a_set: HashSet<ClauseId> = a_clauses.iter().copied().collect();
    let empty = proof.empty_clause().ok_or(ItpError::NoRefutation)?;

    // Classify variables: A-local, B-occurring, global.
    let mut in_a: HashSet<Var> = HashSet::new();
    let mut in_b: HashSet<Var> = HashSet::new();
    for (id, step) in proof.steps().iter().enumerate() {
        if let ProofStep::Original { lits } = step {
            let target = if a_set.contains(&(id as ClauseId)) {
                &mut in_a
            } else {
                &mut in_b
            };
            for l in lits {
                target.insert(l.var());
            }
        }
    }
    let mut globals: Vec<Var> = in_a.intersection(&in_b).copied().collect();
    globals.sort_unstable();
    let global_set: HashSet<Var> = globals.iter().copied().collect();

    let mut aig = Aig::new();
    let var_input: std::collections::HashMap<Var, AigLit> = globals
        .iter()
        .map(|&v| (v, aig.add_input(format!("g{}", v.index()))))
        .collect();

    // Partial interpolant per proof step, computed in order (chains only
    // reference earlier steps).
    let mut label: Vec<AigLit> = Vec::with_capacity(proof.steps().len());
    for (id, step) in proof.steps().iter().enumerate() {
        let lit = match step {
            ProofStep::Original { lits } => {
                if a_set.contains(&(id as ClauseId)) {
                    let gl: Vec<AigLit> = lits
                        .iter()
                        .filter(|l| global_set.contains(&l.var()))
                        .map(|l| var_input[&l.var()].xor_complement(l.is_neg()))
                        .collect();
                    aig.or_many(&gl)
                } else {
                    AigLit::TRUE
                }
            }
            ProofStep::Chain {
                start, resolutions, ..
            } => {
                let get = |cid: ClauseId, label: &[AigLit]| -> Result<AigLit, ItpError> {
                    label
                        .get(cid as usize)
                        .copied()
                        .ok_or(ItpError::DanglingReference(cid))
                };
                let mut cur = get(*start, &label)?;
                for &(pivot, cid) in resolutions {
                    let other = get(cid, &label)?;
                    let a_local = in_a.contains(&pivot) && !global_set.contains(&pivot);
                    cur = if a_local {
                        aig.or(cur, other)
                    } else {
                        aig.and(cur, other)
                    };
                }
                cur
            }
        };
        label.push(lit);
    }

    let root = label[empty as usize];
    aig.add_output("interpolant", root);
    Ok(Interpolant { aig, root, globals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_cnf::Lit;
    use step_sat::{SolveResult, Solver};

    /// Builds a proof-logging solver over `nvars` variables, adds the
    /// clauses of `a` then `b`, solves (must be UNSAT) and returns the
    /// interpolant plus the original clause lists.
    fn interpolate(nvars: usize, a: &[Vec<i64>], b: &[Vec<i64>]) -> Interpolant {
        let mut s = Solver::new();
        s.enable_proof();
        s.ensure_vars(nvars);
        let mut a_ids = Vec::new();
        for c in a {
            a_ids.push(
                s.add_clause(c.iter().map(|&v| Lit::from_dimacs(v)))
                    .unwrap(),
            );
        }
        for c in b {
            s.add_clause(c.iter().map(|&v| Lit::from_dimacs(v)));
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "instance must be UNSAT");
        assert!(s.proof().unwrap().check(), "proof must replay");
        mcmillan(s.proof().unwrap(), &a_ids).unwrap()
    }

    fn clause_sat(c: &[i64], assignment: &[bool]) -> bool {
        c.iter().any(|&v| {
            let val = assignment[v.unsigned_abs() as usize - 1];
            if v > 0 {
                val
            } else {
                !val
            }
        })
    }

    /// Exhaustively verifies the interpolant contract.
    fn assert_interpolant(nvars: usize, a: &[Vec<i64>], b: &[Vec<i64>], itp: &Interpolant) {
        for m in 0..1usize << nvars {
            let assignment: Vec<bool> = (0..nvars).map(|i| m >> i & 1 == 1).collect();
            let a_sat = a.iter().all(|c| clause_sat(c, &assignment));
            let b_sat = b.iter().all(|c| clause_sat(c, &assignment));
            let i_val = itp.eval_under(&assignment);
            assert!(!(a_sat && !i_val), "A → I violated at {assignment:?}");
            assert!(
                !(i_val && b_sat),
                "I ∧ B must be UNSAT, violated at {assignment:?}"
            );
        }
    }

    #[test]
    fn textbook_example() {
        // A = (a)(¬a ∨ s), B = (¬s ∨ b)(¬b): I over {s}.
        let a = vec![vec![1], vec![-1, 2]];
        let b = vec![vec![-2, 3], vec![-3]];
        let itp = interpolate(3, &a, &b);
        assert_eq!(itp.globals, vec![Var::new(1)]);
        assert_interpolant(3, &a, &b, &itp);
    }

    #[test]
    fn a_part_unsat_alone_gives_false() {
        let a = vec![vec![1], vec![-1]];
        let b = vec![vec![2]];
        let itp = interpolate(2, &a, &b);
        assert_interpolant(2, &a, &b, &itp);
        // I must be constant false (A unsat, B sat).
        for m in 0..4usize {
            let assignment: Vec<bool> = (0..2).map(|i| m >> i & 1 == 1).collect();
            assert!(!itp.eval_under(&assignment));
        }
    }

    #[test]
    fn b_part_unsat_alone_gives_true() {
        let a = vec![vec![1]];
        let b = vec![vec![2], vec![-2]];
        let itp = interpolate(2, &a, &b);
        assert_interpolant(2, &a, &b, &itp);
        for m in 0..4usize {
            let assignment: Vec<bool> = (0..2).map(|i| m >> i & 1 == 1).collect();
            assert!(itp.eval_under(&assignment));
        }
    }

    #[test]
    fn shared_conflict_interpolant_depends_on_globals() {
        // A forces s0 ∧ s1; B forbids s0 ∧ s1.
        let a = vec![vec![1], vec![2]];
        let b = vec![vec![-1, -2]];
        let itp = interpolate(2, &a, &b);
        assert_eq!(itp.globals.len(), 2);
        assert_interpolant(2, &a, &b, &itp);
    }

    #[test]
    fn no_refutation_is_error() {
        let mut s = Solver::new();
        s.enable_proof();
        let x = Lit::pos(s.new_var());
        let id = s.add_clause([x]).unwrap();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(matches!(
            mcmillan(s.proof().unwrap(), &[id]),
            Err(ItpError::NoRefutation)
        ));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_cnf(nvars: usize, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
            let lit = (1i64..=nvars as i64, proptest::bool::ANY)
                .prop_map(|(v, neg)| if neg { -v } else { v });
            let clause = proptest::collection::vec(lit, 1..3);
            proptest::collection::vec(clause, 1..max)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            #[test]
            fn interpolants_always_satisfy_contract(
                a in arb_cnf(6, 10),
                b in arb_cnf(6, 10),
            ) {
                // Only meaningful when A ∧ B is UNSAT.
                let nvars = 6;
                let joint_unsat = !(0..1usize << nvars).any(|m| {
                    let assignment: Vec<bool> =
                        (0..nvars).map(|i| m >> i & 1 == 1).collect();
                    a.iter().all(|c| clause_sat(c, &assignment))
                        && b.iter().all(|c| clause_sat(c, &assignment))
                });
                if joint_unsat {
                    let itp = interpolate(nvars, &a, &b);
                    assert_interpolant(nvars, &a, &b, &itp);
                }
            }
        }
    }
}
