//! The STEP driver: per-output and whole-circuit bi-decomposition with
//! budgets, statistics and the model roster of the paper's evaluation
//! (LJH, STEP-MG, STEP-QD, STEP-QB, STEP-QDB).

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use step_aig::Aig;

use crate::extract::{extract, Decomposition, ExtractError};
use crate::ljh::{self, LjhOutcome};
use crate::mg::{self, MgOutcome};
use crate::optimum::{self, Metric};
use crate::oracle::{sim_filter_pairs, CoreFormula, PartitionOracle};
use crate::partition::VarPartition;
use crate::qbf_model::ModelOptions;
use crate::spec::{DecompConfig, GateOp, Model};
use crate::verify::verify;

/// Errors from the decomposition driver.
#[derive(Debug)]
pub enum StepError {
    /// The circuit has latches; convert with [`Aig::comb`] first (the
    /// circuit-level API does this automatically).
    NotCombinational,
    /// The output index is out of range.
    OutputOutOfRange(usize),
    /// An internal invariant failed (a bug — e.g. a verified partition
    /// failed extraction).
    Internal(String),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NotCombinational => write!(f, "circuit has latches; run comb() first"),
            StepError::OutputOutOfRange(i) => write!(f, "output index {i} out of range"),
            StepError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error for StepError {}

/// Result of decomposing one primary output.
#[derive(Clone, Debug)]
pub struct OutputResult {
    /// Output name.
    pub name: String,
    /// Output index in the circuit.
    pub output_index: usize,
    /// Support size of the output cone.
    pub support: usize,
    /// The best partition found (`None` = not decomposable or budget
    /// expired before any partition was found).
    pub partition: Option<VarPartition>,
    /// The extracted functions, when requested and within budget.
    pub decomposition: Option<Decomposition>,
    /// The QBF models proved this partition metric-optimal (always
    /// `false` for LJH/STEP-MG, which are heuristic).
    pub proved_optimal: bool,
    /// The model reached a definite answer within budget: an optimum
    /// (QBF models), a heuristic partition (LJH/MG), or a proof of
    /// non-decomposability.
    pub solved: bool,
    /// A budget expired somewhere.
    pub timed_out: bool,
    /// Wall-clock time spent on this output.
    pub cpu: Duration,
    /// SAT oracle calls (seed search, LJH growth, checks).
    pub sat_calls: u64,
    /// QBF solves in the optimum search.
    pub qbf_calls: u32,
    /// Total CEGAR iterations across QBF solves.
    pub cegar_iterations: u64,
}

impl OutputResult {
    /// Whether a (non-trivial) decomposition exists for this output.
    pub fn is_decomposed(&self) -> bool {
        self.partition.is_some()
    }
}

/// Result of decomposing every primary output of a circuit.
#[derive(Clone, Debug)]
pub struct CircuitResult {
    /// Per-output results, in output order.
    pub outputs: Vec<OutputResult>,
    /// Total wall-clock time.
    pub cpu: Duration,
    /// The per-circuit budget expired before all outputs were tried.
    pub timed_out: bool,
}

impl CircuitResult {
    /// Number of decomposed outputs (the `#Dec` column of Table III).
    pub fn num_decomposed(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_decomposed()).count()
    }

    /// Fraction of solved outputs (Table IV).
    pub fn solved_ratio(&self) -> f64 {
        if self.outputs.is_empty() {
            return 1.0;
        }
        self.outputs.iter().filter(|o| o.solved).count() as f64 / self.outputs.len() as f64
    }
}

/// The STEP bi-decomposition engine.
///
/// ```
/// use step_aig::Aig;
/// use step_core::{BiDecomposer, DecompConfig, GateOp, Model};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let c = aig.add_input("c");
/// let d = aig.add_input("d");
/// let ab = aig.and(a, b);
/// let cd = aig.and(c, d);
/// let f = aig.or(ab, cd);
/// aig.add_output("f", f);
///
/// let mut engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
/// let r = engine.decompose_output(&aig, 0, GateOp::Or).unwrap();
/// let p = r.partition.expect("decomposable");
/// assert_eq!(p.num_shared(), 0, "(ab)|(cd) splits disjointly");
/// assert!(r.proved_optimal);
/// ```
#[derive(Debug)]
pub struct BiDecomposer {
    config: DecompConfig,
    sim_seed: u64,
}

impl BiDecomposer {
    /// Creates an engine with the given configuration.
    pub fn new(config: DecompConfig) -> Self {
        BiDecomposer {
            config,
            sim_seed: 0x5DEECE66D,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DecompConfig {
        &self.config
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut DecompConfig {
        &mut self.config
    }

    /// Decomposes primary output `out_idx` of `aig` under `op`.
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] if the AIG has latches,
    /// [`StepError::OutputOutOfRange`] for a bad index,
    /// [`StepError::Internal`] on internal inconsistencies.
    pub fn decompose_output(
        &mut self,
        aig: &Aig,
        out_idx: usize,
        op: GateOp,
    ) -> Result<OutputResult, StepError> {
        if !aig.is_comb() {
            return Err(StepError::NotCombinational);
        }
        let output = aig
            .outputs()
            .get(out_idx)
            .ok_or(StepError::OutputOutOfRange(out_idx))?;
        let name = output.name().to_owned();
        let lit = output.lit();
        let start = Instant::now();
        let deadline = Some(start + self.config.budget.per_output);

        let cone = aig.cone(lit);
        let n = cone.support_size();
        let mut result = OutputResult {
            name,
            output_index: out_idx,
            support: n,
            partition: None,
            decomposition: None,
            proved_optimal: false,
            solved: false,
            timed_out: false,
            cpu: Duration::ZERO,
            sat_calls: 0,
            qbf_calls: 0,
            cegar_iterations: 0,
        };
        if n < 2 {
            // Constant or single-input function: no non-trivial
            // bi-decomposition exists by definition.
            result.solved = true;
            result.cpu = start.elapsed();
            return Ok(result);
        }

        let candidates = if self.config.sim_filter {
            self.sim_seed = self
                .sim_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1);
            Some(sim_filter_pairs(
                &cone.aig,
                cone.root,
                op,
                self.config.sim_rounds,
                self.sim_seed,
            ))
        } else {
            None
        };
        let core = CoreFormula::build(&cone.aig, cone.root, op);
        let mut oracle = PartitionOracle::new(core);

        let partition = match self.config.model {
            Model::Ljh => match ljh::decompose(&mut oracle, candidates.as_deref(), deadline) {
                LjhOutcome::Partition(p) => {
                    result.solved = true;
                    Some(p)
                }
                LjhOutcome::NotDecomposable => {
                    result.solved = true;
                    None
                }
                LjhOutcome::Timeout => {
                    result.timed_out = true;
                    None
                }
            },
            Model::MusGroup => match mg::decompose(&mut oracle, candidates.as_deref(), deadline) {
                MgOutcome::Partition(p) => {
                    result.solved = true;
                    Some(p)
                }
                MgOutcome::NotDecomposable => {
                    result.solved = true;
                    None
                }
                MgOutcome::Timeout => {
                    result.timed_out = true;
                    None
                }
            },
            Model::QbfDisjoint | Model::QbfBalanced | Model::QbfCombined => {
                // Bootstrap from STEP-MG, as in the paper.
                let bootstrap = match mg::decompose(&mut oracle, candidates.as_deref(), deadline) {
                    MgOutcome::Partition(p) => Some(p),
                    MgOutcome::NotDecomposable => {
                        // Proved undecomposable — the QBF search is
                        // unnecessary.
                        result.solved = true;
                        result.proved_optimal = true;
                        result.sat_calls = oracle.sat_calls;
                        result.cpu = start.elapsed();
                        return Ok(result);
                    }
                    MgOutcome::Timeout => None,
                };
                if bootstrap.is_none() {
                    result.timed_out = true;
                    None
                } else {
                    let metric = match self.config.model {
                        Model::QbfDisjoint => Metric::Disjointness,
                        Model::QbfBalanced => Metric::Balancedness,
                        _ => Metric::Combined,
                    };
                    let opts = ModelOptions {
                        symmetry_breaking: self.config.symmetry_breaking,
                        allow_both: self.config.allow_both,
                        deadline,
                        per_call_timeout: Some(self.config.budget.per_qbf_call),
                        conflicts_per_call: self.config.conflicts_per_call,
                    };
                    let search = optimum::search(
                        oracle.core(),
                        metric,
                        bootstrap.as_ref(),
                        self.config.effective_strategy(),
                        &opts,
                    );
                    result.qbf_calls = search.qbf_calls;
                    result.cegar_iterations = search.cegar_iterations;
                    result.proved_optimal = search.proved_optimal;
                    result.solved = search.proved_optimal;
                    result.timed_out = search.timeouts > 0;
                    search.partition.or(bootstrap)
                }
            }
        };
        result.sat_calls = oracle.sat_calls;

        if let Some(p) = partition {
            debug_assert!(p.is_nontrivial(), "partition must be non-trivial");
            if self.config.extract {
                match extract(&cone.aig, cone.root, op, &p, deadline) {
                    Ok(d) => {
                        if self.config.verify {
                            verify(&d, deadline).map_err(|e| {
                                StepError::Internal(format!(
                                    "extracted decomposition failed verification: {e}"
                                ))
                            })?;
                        }
                        result.decomposition = Some(d);
                    }
                    Err(ExtractError::Budget) => {
                        result.timed_out = true;
                    }
                    Err(e) => {
                        return Err(StepError::Internal(format!(
                            "extraction failed on a valid partition: {e}"
                        )))
                    }
                }
            }
            result.partition = Some(p);
        }
        result.cpu = start.elapsed();
        Ok(result)
    }

    /// Decomposes every primary output of `circuit` under `op`,
    /// converting sequential circuits combinationally (the paper's ABC
    /// `comb` step) and enforcing the per-circuit budget.
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] on internal inconsistencies (dangling
    /// latches surface here too).
    pub fn decompose_circuit(
        &mut self,
        circuit: &Aig,
        op: GateOp,
    ) -> Result<CircuitResult, StepError> {
        let start = Instant::now();
        let comb;
        let aig = if circuit.is_comb() {
            circuit
        } else {
            comb = circuit
                .comb()
                .map_err(|e| StepError::Internal(format!("comb conversion failed: {e}")))?;
            &comb
        };
        let circuit_deadline = start + self.config.budget.per_circuit;
        let mut outputs = Vec::with_capacity(aig.num_outputs());
        let mut timed_out = false;
        for idx in 0..aig.num_outputs() {
            let now = Instant::now();
            if now >= circuit_deadline {
                timed_out = true;
                outputs.push(OutputResult {
                    name: aig.outputs()[idx].name().to_owned(),
                    output_index: idx,
                    support: 0,
                    partition: None,
                    decomposition: None,
                    proved_optimal: false,
                    solved: false,
                    timed_out: true,
                    cpu: Duration::ZERO,
                    sat_calls: 0,
                    qbf_calls: 0,
                    cegar_iterations: 0,
                });
                continue;
            }
            // Shrink the per-output budget to the remaining circuit
            // budget.
            let saved = self.config.budget.per_output;
            let remaining = circuit_deadline - now;
            self.config.budget.per_output = saved.min(remaining);
            let r = self.decompose_output(aig, idx, op);
            self.config.budget.per_output = saved;
            let r = r?;
            timed_out |= r.timed_out;
            outputs.push(r);
        }
        Ok(CircuitResult {
            outputs,
            cpu: start.elapsed(),
            timed_out,
        })
    }
}
