//! The STEP circuit driver: a work-queue over per-output
//! [`SolveSession`]s with the model roster of the paper's evaluation
//! (LJH, STEP-MG, STEP-QD, STEP-QB, STEP-QDB).
//!
//! The engine layer is split in three:
//!
//! * [`OutputJob`] — the pure description of one
//!   unit of work (output index, operator, budgets, seed);
//! * [`SolveSession`] — the per-output state (cone, core formula,
//!   oracle, stats) that executes a job;
//! * [`ModelStrategy`](crate::strategy::ModelStrategy) — the pluggable
//!   per-model search, selected by
//!   [`strategy_for`](crate::strategy::strategy_for).
//!
//! Circuit-wide runs are driven by the persistent
//! [`StepService`] worker pool:
//! [`BiDecomposer::decompose_circuit`] is a compatibility wrapper that
//! submits to an ephemeral service with [`DecompConfig::jobs`] workers
//! and joins (long-running callers submit to a shared service
//! instead — see [`crate::service`]). Workers claim output indices
//! from a per-submission atomic counter, all honor one circuit
//! deadline, results land in output order, and statistics aggregate at
//! join. Per-output results are a pure function of
//! `(cone, op, config)` — every cone is solved in canonical input
//! order and the simulation seed derives from
//! [`cone_seed`](crate::job::cone_seed) over the cone's canonical
//! fingerprint, never from visitation order — so `jobs = 1` and
//! `jobs = N` produce identical results (wall-clock timeouts aside —
//! and under pure [`Budget::Work`](crate::spec::Budget::Work) budgets
//! even the timeouts are identical, see [`crate::effort`]),
//! and structurally identical cones produce identical results wherever
//! they appear. The optional [`ResultCache`] exploits exactly that
//! purity (see [`crate::cache`]).

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use step_aig::Aig;
use step_sat::EffortStats;

use crate::cache::{CacheLookup, ResultCache};
use crate::clause_bank::{BankLookup, ClauseBank, ReuseCtx};
use crate::effort::{CircuitBudget, WorkLedger, WorkPool};
use crate::extract::Decomposition;
use crate::job::OutputJob;
use crate::partition::VarPartition;
use crate::service::StepService;
use crate::session::SolveSession;
use crate::spec::{DecompConfig, GateOp};
use crate::store::TieredStore;

/// Errors from the decomposition driver and service.
///
/// Marked `#[non_exhaustive]`: the service front-end grows error kinds
/// over time (Cancelled arrived with [`StepService`]), so downstream
/// matches need a wildcard arm.
///
/// [`StepService`]: crate::service::StepService
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum StepError {
    /// The circuit has latches; convert with [`Aig::comb`] first (the
    /// circuit-level API does this automatically).
    NotCombinational,
    /// The output index is out of range.
    OutputOutOfRange(usize),
    /// The submission was cancelled (via
    /// [`SubmissionHandle::cancel`](crate::service::SubmissionHandle::cancel)
    /// or by dropping its service) before this work completed.
    Cancelled,
    /// An internal invariant failed (a bug — e.g. a verified partition
    /// failed extraction), or a worker panic caught at the service's
    /// pool boundary.
    Internal(String),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NotCombinational => write!(f, "circuit has latches; run comb() first"),
            StepError::OutputOutOfRange(i) => write!(f, "output index {i} out of range"),
            StepError::Cancelled => write!(f, "submission cancelled"),
            StepError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error for StepError {}

/// Result of decomposing one primary output.
#[derive(Clone, Debug)]
pub struct OutputResult {
    /// Output name.
    pub name: String,
    /// Output index in the circuit.
    pub output_index: usize,
    /// Support size of the output cone.
    pub support: usize,
    /// The best partition found (`None` = not decomposable or budget
    /// expired before any partition was found).
    pub partition: Option<VarPartition>,
    /// The extracted functions, when requested and within budget.
    pub decomposition: Option<Decomposition>,
    /// The QBF models proved this partition metric-optimal (always
    /// `false` for LJH/STEP-MG, which are heuristic).
    pub proved_optimal: bool,
    /// The model reached a definite answer within budget: an optimum
    /// (QBF models), a heuristic partition (LJH/MG), or a proof of
    /// non-decomposability.
    pub solved: bool,
    /// A budget expired somewhere.
    pub timed_out: bool,
    /// Wall-clock time spent on this output.
    pub cpu: Duration,
    /// SAT oracle calls (seed search, LJH growth, checks). Zero when
    /// the result was served from the cache.
    pub sat_calls: u64,
    /// QBF solves in the optimum search.
    pub qbf_calls: u32,
    /// Total CEGAR iterations across QBF solves.
    pub cegar_iterations: u64,
    /// Solver effort this output's search spent (oracle SAT calls, MUS
    /// extraction and QBF inner-SAT work alike) — the quantity `Work`
    /// budgets meter, machine-independent unlike `cpu`. Zero when the
    /// result was served from the cache.
    pub effort: EffortStats,
    /// How this output's solve interacted with the result cache.
    pub cache: CacheLookup,
    /// How this output's solve interacted with the clause bank /
    /// oracle pool (always `Bypass` when clause reuse is off).
    pub bank: BankLookup,
    /// Donated clauses imported (verbatim or vetted-through) before
    /// this output's first oracle check.
    pub imported_clauses: u64,
    /// Clauses this output donated to the bank after solving.
    pub donated_clauses: u64,
    /// Artifacts this output was served from the persistent store tier
    /// (results, clause snapshots and probe certificates alike; always
    /// zero without a [`DecompConfig::cache_dir`]).
    pub disk_hits: u64,
    /// The cone's canonical fingerprint hash (the cache/store key),
    /// when the solve got far enough to canonicalize — the exact-match
    /// key of the service's cost model. `None` for trivial cones and
    /// budget-skipped outputs.
    pub fingerprint: Option<u128>,
}

impl OutputResult {
    /// An empty result shell for output `output_index` (all statistics
    /// zero, nothing solved yet).
    pub(crate) fn pending(name: String, output_index: usize, support: usize) -> Self {
        OutputResult {
            name,
            output_index,
            support,
            partition: None,
            decomposition: None,
            proved_optimal: false,
            solved: false,
            timed_out: false,
            cpu: Duration::ZERO,
            sat_calls: 0,
            qbf_calls: 0,
            cegar_iterations: 0,
            effort: EffortStats::default(),
            cache: CacheLookup::Bypass,
            bank: BankLookup::Bypass,
            imported_clauses: 0,
            donated_clauses: 0,
            disk_hits: 0,
            fingerprint: None,
        }
    }

    /// The placeholder for an output the circuit budget never reached.
    /// `support` is the real cone support size, so skipped outputs are
    /// not mistaken for constant functions in per-support statistics.
    fn budget_exhausted(name: String, output_index: usize, support: usize) -> Self {
        let mut r = OutputResult::pending(name, output_index, support);
        r.timed_out = true;
        r
    }

    /// Whether a (non-trivial) decomposition exists for this output.
    pub fn is_decomposed(&self) -> bool {
        self.partition.is_some()
    }
}

/// Result of decomposing every primary output of a circuit.
#[derive(Clone, Debug)]
pub struct CircuitResult {
    /// Per-output results, in output order (regardless of which worker
    /// solved which output).
    pub outputs: Vec<OutputResult>,
    /// Total wall-clock time.
    pub cpu: Duration,
    /// Time the submission sat queued before its first output was
    /// claimed (always zero on the inline `jobs <= 1` path) — the
    /// provenance signal behind the bench harness's `queue_wait_s`.
    pub queue_wait: Duration,
    /// A budget expired somewhere (the circuit deadline, or any
    /// per-output budget).
    pub timed_out: bool,
}

impl CircuitResult {
    /// Number of decomposed outputs (the `#Dec` column of Table III).
    pub fn num_decomposed(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_decomposed()).count()
    }

    /// Fraction of solved outputs (Table IV).
    ///
    /// A circuit with no primary outputs has no well-defined ratio and
    /// returns [`f64::NAN`] — aggregations merging sweep shards must
    /// skip it (averaging in a fake `1.0` would inflate the totals).
    pub fn solved_ratio(&self) -> f64 {
        if self.outputs.is_empty() {
            return f64::NAN;
        }
        self.outputs.iter().filter(|o| o.solved).count() as f64 / self.outputs.len() as f64
    }

    /// Total SAT oracle calls across all outputs.
    pub fn total_sat_calls(&self) -> u64 {
        self.outputs.iter().map(|o| o.sat_calls).sum()
    }

    /// Total QBF solves across all outputs.
    pub fn total_qbf_calls(&self) -> u64 {
        self.outputs.iter().map(|o| u64::from(o.qbf_calls)).sum()
    }

    /// Total CEGAR iterations across all outputs.
    pub fn total_cegar_iterations(&self) -> u64 {
        self.outputs.iter().map(|o| o.cegar_iterations).sum()
    }

    /// Total solver effort across all outputs — the work-budget
    /// analogue of `cpu`. (Like the cache counters, scheduling can
    /// shift *where* effort is booked under `jobs > 1` with a shared
    /// cache; the per-output answers never change.)
    pub fn total_effort(&self) -> EffortStats {
        self.outputs
            .iter()
            .fold(EffortStats::default(), |acc, o| acc + o.effort)
    }

    /// Outputs served from the result cache in this run.
    pub fn cache_hits(&self) -> u64 {
        self.count_cache(CacheLookup::Hit)
    }

    /// Outputs that consulted the result cache and missed in this run.
    pub fn cache_misses(&self) -> u64 {
        self.count_cache(CacheLookup::Miss)
    }

    fn count_cache(&self, want: CacheLookup) -> u64 {
        self.outputs.iter().filter(|o| o.cache == want).count() as u64
    }

    /// Outputs seeded from the clause bank or a pooled oracle in this
    /// run (exact, cluster and pooled reuse alike).
    pub fn clause_bank_hits(&self) -> u64 {
        self.outputs.iter().filter(|o| o.bank.is_hit()).count() as u64
    }

    /// Total clauses imported from donors across all outputs.
    pub fn imported_clauses(&self) -> u64 {
        self.outputs.iter().map(|o| o.imported_clauses).sum()
    }

    /// Total clauses donated to the bank across all outputs.
    pub fn donated_clauses(&self) -> u64 {
        self.outputs.iter().map(|o| o.donated_clauses).sum()
    }

    /// Total artifacts served from the persistent store tier across
    /// all outputs (results + clause snapshots + probe certificates).
    pub fn disk_hits(&self) -> u64 {
        self.outputs.iter().map(|o| o.disk_hits).sum()
    }
}

/// The STEP bi-decomposition engine.
///
/// ```
/// use step_aig::Aig;
/// use step_core::{BiDecomposer, DecompConfig, GateOp, Model};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let c = aig.add_input("c");
/// let d = aig.add_input("d");
/// let ab = aig.and(a, b);
/// let cd = aig.and(c, d);
/// let f = aig.or(ab, cd);
/// aig.add_output("f", f);
///
/// let engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
/// let r = engine.decompose_output(&aig, 0, GateOp::Or).unwrap();
/// let p = r.partition.expect("decomposable");
/// assert_eq!(p.num_shared(), 0, "(ab)|(cd) splits disjointly");
/// assert!(r.proved_optimal);
/// ```
#[derive(Debug)]
pub struct BiDecomposer {
    config: DecompConfig,
    cache: Option<Arc<ResultCache>>,
    bank: Option<Arc<ClauseBank>>,
    store: Option<Arc<TieredStore>>,
}

impl BiDecomposer {
    /// Creates an engine with the given configuration (no result
    /// cache; attach one with [`BiDecomposer::set_cache`]).
    pub fn new(config: DecompConfig) -> Self {
        BiDecomposer {
            config,
            cache: None,
            bank: None,
            store: None,
        }
    }

    /// Attaches a result cache. Sessions consult it before solving and
    /// deposit definitive outcomes; the same `Arc` can be shared by
    /// many engines (e.g. a whole benchmark sweep) — the cache key
    /// includes every result-relevant config field.
    pub fn set_cache(&mut self, cache: Arc<ResultCache>) {
        self.cache = Some(cache);
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Attaches a clause bank for cross-output reuse
    /// ([`DecompConfig::clause_reuse`] must also be on for sessions to
    /// consult it). Sharing one `Arc` across engines extends donation
    /// reach across circuits and models, exactly like the result
    /// cache; when clause reuse is enabled without an attached bank, a
    /// run-scoped bank is created per circuit run.
    pub fn set_clause_bank(&mut self, bank: Arc<ClauseBank>) {
        self.bank = Some(bank);
    }

    /// The attached clause bank, if any.
    pub fn clause_bank(&self) -> Option<&Arc<ClauseBank>> {
        self.bank.as_ref()
    }

    /// Attaches a fully built [`TieredStore`], overriding the default
    /// per-run assembly from the attached cache/bank and
    /// [`DecompConfig::cache_dir`]. Use when several engines should
    /// share one already-loaded disk tier (the CLI and bench harness
    /// do this, so the store loads once per process).
    pub fn set_store(&mut self, store: Arc<TieredStore>) {
        self.store = Some(store);
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Arc<TieredStore>> {
        self.store.as_ref()
    }

    /// The store every run of this engine routes through: the attached
    /// one, or a fresh assembly of the attached cache/bank plus a disk
    /// tier loaded from [`DecompConfig::cache_dir`] when set.
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] if the cache directory cannot be
    /// created or listed (corrupt store *files* never error).
    fn effective_store(&self) -> Result<Arc<TieredStore>, StepError> {
        if let Some(store) = &self.store {
            return Ok(Arc::clone(store));
        }
        match &self.config.cache_dir {
            Some(dir) => TieredStore::with_disk(self.cache.clone(), self.bank.clone(), dir)
                .map(Arc::new)
                .map_err(|e| StepError::Internal(format!("cache dir {}: {e}", dir.display()))),
            None => Ok(Arc::new(TieredStore::memory(
                self.cache.clone(),
                self.bank.clone(),
            ))),
        }
    }

    /// The reuse handles for one circuit run (or single-output call):
    /// the store's tiers — with a fresh run-scoped bank overlaid when
    /// none is attached — plus a fresh oracle pool. `None` when clause
    /// reuse is off.
    fn reuse_ctx(&self, store: &TieredStore) -> Option<ReuseCtx> {
        self.config.clause_reuse.then(|| store.reuse_ctx())
    }

    /// The active configuration.
    pub fn config(&self) -> &DecompConfig {
        &self.config
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut DecompConfig {
        &mut self.config
    }

    /// Decomposes primary output `out_idx` of `aig` under `op`.
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] if the AIG has latches,
    /// [`StepError::OutputOutOfRange`] for a bad index,
    /// [`StepError::Internal`] on internal inconsistencies.
    pub fn decompose_output(
        &self,
        aig: &Aig,
        out_idx: usize,
        op: GateOp,
    ) -> Result<OutputResult, StepError> {
        let job = OutputJob::new(&self.config, out_idx, op);
        let store = self.effective_store()?;
        let reuse = self.reuse_ctx(&store);
        let result = SolveSession::new(
            aig,
            job,
            &self.config,
            store.serves_results().then_some(&*store),
            reuse.as_ref(),
        )?
        .run();
        // Persist what this call learned (best-effort: a full disk must
        // not turn a solved output into an error).
        let _ = store.flush();
        result
    }

    /// Decomposes every primary output of `circuit` under `op`,
    /// converting sequential circuits combinationally (the paper's ABC
    /// `comb` step) and enforcing the per-circuit budget.
    ///
    /// This is a thin compatibility wrapper over the service API: with
    /// `jobs > 1` it spins up an ephemeral [`StepService`] (workers
    /// clamped to the output count, sharing this engine's result
    /// cache), submits the circuit and joins; `jobs <= 1` runs the
    /// same per-output claims inline with no threads at all.
    /// Per-output computation is deterministic regardless of
    /// scheduling (see the module docs), so the result is identical
    /// for any `jobs` value; long-running callers should keep one
    /// [`StepService`] and use
    /// [`decompose_circuit_on`](BiDecomposer::decompose_circuit_on) (or
    /// [`StepService::submit`] directly) to amortize the pool.
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] on internal inconsistencies (dangling
    /// latches surface here too). Errors fail fast: workers stop
    /// claiming new outputs once any output has failed, and the error
    /// reported is the one from the lowest-indexed failing output.
    /// `CircuitResult::cpu` on the inline `jobs <= 1` path is the
    /// legacy full-call duration (comb conversion included); on the
    /// service path it is the submission's first-claim-to-last-event
    /// wall clock (comb/clone/pool-spawn excluded) — compare wall
    /// clocks only between runs with the same `jobs` regime.
    pub fn decompose_circuit(&self, circuit: &Aig, op: GateOp) -> Result<CircuitResult, StepError> {
        let start = Instant::now();
        let mut owned: Option<Aig> = None;
        if !circuit.is_comb() {
            owned = Some(
                circuit
                    .comb()
                    .map_err(|e| StepError::Internal(format!("comb conversion failed: {e}")))?,
            );
        }
        let n_out = owned.as_ref().unwrap_or(circuit).num_outputs();
        let workers = self.config.jobs.max(1).min(n_out.max(1));
        if workers <= 1 {
            // Inline fast path: the hot default (`jobs = 1`, used in
            // tight benchmark loops) pays no thread spawn. Same claim
            // logic, same fail-fast semantics, same results.
            let aig = owned.as_ref().unwrap_or(circuit);
            let deadline = self.config.budget.per_circuit.wall().map(|d| start + d);
            // The per-circuit work budget goes through the same
            // two-phase ledger the service uses (reservations never
            // block here — commits land in index order), so inline and
            // service runs share one debit order by construction.
            let ledger = self
                .config
                .budget
                .per_circuit
                .work()
                .map(|w| WorkLedger::new(w, self.config.budget.per_output.work(), n_out));
            // One oracle pool for the whole circuit run, so the inline
            // path reuses exactly like a one-worker service would.
            let store = self.effective_store()?;
            let reuse = self.reuse_ctx(&store);
            let mut outputs = Vec::with_capacity(n_out);
            let mut timed_out = false;
            for idx in 0..n_out {
                let circuit = CircuitBudget {
                    deadline,
                    work: ledger
                        .as_ref()
                        .map(|l| Arc::new(WorkPool::new(l.reserve(idx)))),
                };
                let r = run_queued(
                    aig,
                    &self.config,
                    store.serves_results().then_some(&*store),
                    reuse.as_ref(),
                    idx,
                    op,
                    &circuit,
                )?;
                if let Some(l) = &ledger {
                    l.commit(idx, r.effort.conflicts);
                }
                timed_out |= r.timed_out;
                outputs.push(r);
            }
            let _ = store.flush();
            return Ok(CircuitResult {
                outputs,
                cpu: start.elapsed(),
                queue_wait: Duration::ZERO,
                timed_out,
            });
        }
        let service = StepService::spawn_with_store(workers, self.effective_store()?);
        // Move the comb-converted copy into the submission when we own
        // one; a single clone only when the caller's circuit was
        // already combinational.
        let shared = Arc::new(match owned {
            Some(comb) => comb,
            None => circuit.clone(),
        });
        service
            .submit_shared(shared, op, self.config.clone())?
            .join()
    }

    /// [`decompose_circuit`](BiDecomposer::decompose_circuit) on a
    /// caller-supplied (typically long-running) service: submit with
    /// this engine's configuration and block for the output-ordered
    /// result. Sessions use the *service's* result cache — the shared
    /// pool owns the shared cache; an engine-attached cache only serves
    /// [`decompose_output`](BiDecomposer::decompose_output) and the
    /// ephemeral pools of
    /// [`decompose_circuit`](BiDecomposer::decompose_circuit).
    pub fn decompose_circuit_on(
        &self,
        service: &StepService,
        circuit: &Aig,
        op: GateOp,
    ) -> Result<CircuitResult, StepError> {
        // One clone into the submission's shared allocation (and no
        // second comb conversion when the caller already converted).
        let aig = StepService::comb_arc(circuit)?;
        service.submit_shared(aig, op, self.config.clone())?.join()
    }
}

/// Claims and runs one output of a circuit-wide run (the unit of work
/// a service worker executes). Internal errors are tagged with the
/// output they came from, so a failure deep in a many-output circuit
/// stays locatable.
pub(crate) fn run_queued(
    aig: &Aig,
    config: &DecompConfig,
    store: Option<&TieredStore>,
    reuse: Option<&ReuseCtx>,
    out_idx: usize,
    op: GateOp,
    circuit: &CircuitBudget,
) -> Result<OutputResult, StepError> {
    let output = &aig.outputs()[out_idx];
    let name = output.name().to_owned();
    if circuit.expired() {
        // Skipped, not solved: report the real cone support so the
        // output doesn't masquerade as a constant function in
        // per-support statistics (the support walk is linear in the
        // cone, cheap next to what was just saved).
        let support = aig.support(output.lit()).len();
        return Ok(OutputResult::budget_exhausted(name, out_idx, support));
    }
    let job = OutputJob::new(config, out_idx, op).with_circuit(circuit.clone());
    SolveSession::new(aig, job, config, store, reuse)?
        .run()
        .map_err(|e| match e {
            StepError::Internal(m) => {
                StepError::Internal(format!("output {out_idx} ({name}): {m}"))
            }
            other => other,
        })
}
