//! The effort-metering layer: one charge/check surface for every
//! budget a solve runs under.
//!
//! The paper truncates runs with wall-clock limits (4 s per QBF call,
//! 6000 s per circuit), which makes results machine- and
//! load-dependent. [`Budget::Work`] replaces the clock with solver
//! **conflicts** — the portable currency of SAT/QBF effort — and this
//! module is where those budgets are enforced:
//!
//! * [`EffortMeter`] — owned by a
//!   [`SolveSession`](crate::session::SolveSession); strategies and
//!   the [`PartitionOracle`](crate::oracle::PartitionOracle) consult
//!   it instead of doing raw `Instant` math. Every solver call charges
//!   the effort it spent ([`EffortMeter::charge`]) and derives its own
//!   limits from what remains ([`EffortMeter::call_limits`]), so a
//!   budgeted truncation falls on the same call at the same conflict
//!   count on every machine.
//! * [`WorkPool`] — a saturating conflict pool. Each output job holds
//!   a *private* pool carrying its reserved slice of the per-circuit
//!   work budget (see [`WorkLedger`]); standalone callers may still
//!   share one pool directly.
//! * [`WorkLedger`] — the two-phase reservation ledger over the
//!   per-circuit work budget: each output *reserves* its slice before
//!   solving and *commits* its actual spend after, and the slice
//!   handed out is, by construction, the one a sequential `jobs = 1`
//!   run would have seen — which is what makes per-circuit `Work`
//!   budgets deterministic at any worker count.
//! * [`CircuitBudget`] — the circuit-scope limits a job carries: the
//!   shared deadline (wall component, anchored at the submission's
//!   first claim) plus the output's work-pool slice (work component).
//!
//! **Determinism.** Per-output `Work` budgets are fully deterministic:
//! each output's meter is private, so which outputs run out of budget
//! — and the partial results they report — are byte-identical across
//! machines, `--jobs` values and background load. Per-*circuit* work
//! budgets go through the [`WorkLedger`]: output `i`'s slice is
//! `min(per-output cap, limit − Σ spend of outputs 0..i)`, a pure
//! function of earlier outputs' (themselves deterministic) spends, so
//! truncation verdicts match the sequential run byte for byte under
//! `jobs > 1` too. The price is ordering: an output whose slice
//! depends on its predecessors waits for their commits. With a finite
//! per-output work cap `c` the wait only starts past the *independent
//! prefix* (outputs `i` with `(i+1)·c ≤ limit`, whose slice is
//! provably `c` no matter what predecessors spend); without one, the
//! ledger serializes outputs — the documented price of a deterministic
//! uncapped circuit pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use step_sat::EffortStats;

use crate::spec::Budget;

/// The tighter of two optional limits (`None` = unlimited): the one
/// combining rule every budget scope in this module composes with.
fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// A shared, saturating work budget (conflicts): the per-circuit
/// analogue of a shared deadline. Outputs debit the work they spent;
/// once the pool is empty, remaining outputs are truncated.
#[derive(Debug)]
pub struct WorkPool {
    remaining: AtomicU64,
}

impl WorkPool {
    /// A pool holding `limit` conflicts.
    pub fn new(limit: u64) -> Self {
        WorkPool {
            remaining: AtomicU64::new(limit),
        }
    }

    /// Conflicts left in the pool.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Acquire)
    }

    /// Whether the pool is spent.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Debits `work` conflicts, saturating at zero.
    pub fn debit(&self, work: u64) {
        if work == 0 {
            return;
        }
        let mut cur = self.remaining.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(work);
            match self.remaining.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

/// The two-phase (reserve → commit) work-reservation ledger that makes
/// per-circuit [`Budget::Work`] budgets deterministic under `jobs > 1`.
///
/// The ledger replays the sequential debit order: output `i`'s slice
/// of the circuit pool is `limit − Σ_{j<i} spent_j`, exactly what a
/// `jobs = 1` run's shared pool would hold when output `i` starts.
/// Workers therefore:
///
/// 1. [`reserve`](WorkLedger::reserve) their output's slice (blocking
///    until it is deterministic — see below), wrap it in a private
///    [`WorkPool`] and solve under it;
/// 2. [`commit`](WorkLedger::commit) the actual conflicts spent
///    (commit `0` on every skip path — cancellation, drains, panics —
///    so blocked reservations always wake).
///
/// **Independent prefix.** With a finite per-output work cap `c`, no
/// output can spend more than `c`, so every output `i` with
/// `(i+1)·c ≤ limit` provably still finds at least `c` in the pool —
/// its slice is `c` regardless of scheduling, and `reserve` returns
/// immediately. Past that prefix (and always, without a per-output
/// cap) `reserve(i)` waits until outputs `0..i` have committed, which
/// serializes the tail: determinism is bought with ordering, never
/// with changed answers.
#[derive(Debug)]
pub struct WorkLedger {
    /// The per-circuit work budget being sliced.
    limit: u64,
    /// The per-output work cap bounding any single output's spend —
    /// the invariant the independent-prefix fast path rests on.
    per_output_cap: Option<u64>,
    state: Mutex<LedgerState>,
    ready: Condvar,
}

#[derive(Debug)]
struct LedgerState {
    /// Committed spend per output index (`None` = outstanding).
    committed: Vec<Option<u64>>,
    /// First index without a committed spend; `reserve(i)` outside the
    /// independent prefix waits for this to reach `i`.
    prefix: usize,
}

impl WorkLedger {
    /// A ledger slicing `limit` conflicts across `n_out` outputs whose
    /// individual spends are bounded by `per_output_cap` (the work
    /// component of the per-output budget, if any).
    pub fn new(limit: u64, per_output_cap: Option<u64>, n_out: usize) -> Self {
        WorkLedger {
            limit,
            per_output_cap,
            state: Mutex::new(LedgerState {
                committed: vec![None; n_out],
                prefix: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Reserves output `idx`'s slice of the circuit pool: the
    /// conflicts a sequential run would find remaining when this
    /// output starts. Blocks until the slice is deterministic (never
    /// for outputs in the independent prefix, nor once every earlier
    /// output has committed).
    pub fn reserve(&self, idx: usize) -> u64 {
        if self.limit == 0 {
            return 0;
        }
        if let Some(cap) = self.per_output_cap {
            let fits = (idx as u64)
                .checked_add(1)
                .and_then(|k| k.checked_mul(cap))
                .is_some_and(|need| need <= self.limit);
            if fits {
                // Predecessors each spend at most `cap`, so at least
                // `cap` of the pool provably survives to this output
                // whatever they do. The `max(1)` keeps a zero cap from
                // reading as an exhausted *circuit* pool: the
                // per-output meter enforces the zero, exactly as it
                // would against the true (positive) pool remainder.
                return cap.max(1);
            }
        }
        let mut st = self.state.lock().expect("work ledger lock");
        while st.prefix < idx {
            st = self.ready.wait(st).expect("work ledger lock");
        }
        let spent: u64 = st.committed[..idx].iter().map(|c| c.unwrap_or(0)).sum();
        self.limit.saturating_sub(spent)
    }

    /// Commits output `idx`'s actual spend (its meter's conflict
    /// count; `0` for skipped, cancelled or failed outputs), waking
    /// reservations waiting on it. Idempotent — the first commit for
    /// an index wins, so racing a cancellation drain is harmless.
    pub fn commit(&self, idx: usize, spent: u64) {
        // Cap at the per-output cap: the meter already bounds real
        // spend this way, and the independent-prefix grant depends on
        // the invariant.
        let spent = match self.per_output_cap {
            Some(cap) => spent.min(cap),
            None => spent,
        };
        let mut st = self.state.lock().expect("work ledger lock");
        if idx >= st.committed.len() || st.committed[idx].is_some() {
            return;
        }
        st.committed[idx] = Some(spent);
        while st.prefix < st.committed.len() && st.committed[st.prefix].is_some() {
            st.prefix += 1;
        }
        self.ready.notify_all();
    }
}

/// The circuit-scope limits one output job runs under: the shared
/// deadline (wall component of the per-circuit budget, possibly capped
/// by an explicit per-submission deadline) and the shared work pool.
/// Cheap to clone — the pool is shared, not copied.
#[derive(Clone, Debug, Default)]
pub struct CircuitBudget {
    /// The shared circuit deadline, if the per-circuit budget has a
    /// wall component (anchored at the submission's first claim).
    pub deadline: Option<Instant>,
    /// The shared work pool, if the per-circuit budget has a work
    /// component.
    pub work: Option<Arc<WorkPool>>,
}

impl CircuitBudget {
    /// The circuit budget for `budget` anchored at `start` (the
    /// inline, single-caller path; the service anchors the wall
    /// component lazily at first claim instead).
    pub fn anchored(budget: Budget, start: Instant) -> Self {
        CircuitBudget {
            deadline: budget.wall().map(|d| start + d),
            work: budget.work().map(|w| Arc::new(WorkPool::new(w))),
        }
    }

    /// Whether the circuit budget is spent (deadline passed or pool
    /// empty) — outputs claimed after this point are skipped.
    pub fn expired(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        self.work.as_deref().is_some_and(WorkPool::is_exhausted)
    }
}

/// Limits for one solver call, derived from a meter and a per-call
/// budget: hand `deadline` to `set_deadline` and `conflicts` to
/// `set_effort_budget`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CallLimits {
    /// Wall-clock deadline for the call.
    pub deadline: Option<Instant>,
    /// Conflict budget for the call.
    pub conflicts: Option<u64>,
}

/// The per-output budget meter: tracks the effort spent on one
/// output's solve and answers the two questions every solving layer
/// asks — *may I keep going?* ([`EffortMeter::exhausted`]) and *how
/// much may the next call cost?* ([`EffortMeter::call_limits`]).
///
/// The meter owns the output's wall deadline (per-output ∩ circuit)
/// and work limit, and holds the circuit's shared [`WorkPool`];
/// [`EffortMeter::charge`] feeds both. See the module docs for the
/// determinism contract.
#[derive(Debug, Default)]
pub struct EffortMeter {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    spent: EffortStats,
    pool: Option<Arc<WorkPool>>,
}

impl EffortMeter {
    /// A meter for one output starting at `start`: wall deadline from
    /// the budgets' wall components (tighter of per-output and
    /// circuit), work limit from the per-output work component, shared
    /// pool from the circuit budget.
    pub fn new(start: Instant, per_output: Budget, circuit: &CircuitBudget) -> Self {
        let deadline = tighter(per_output.wall().map(|d| start + d), circuit.deadline);
        EffortMeter {
            deadline,
            work_limit: per_output.work(),
            spent: EffortStats::default(),
            pool: circuit.work.clone(),
        }
    }

    /// A meter with no limits at all (standalone solves, tests).
    pub fn unlimited() -> Self {
        EffortMeter::default()
    }

    /// The effective wall deadline (`None` under pure work budgets —
    /// nothing on the solve path consults a clock then).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The effort charged to this meter so far.
    pub fn spent(&self) -> EffortStats {
        self.spent
    }

    /// Conflicts left before a work budget trips: the tighter of the
    /// per-output limit and the circuit pool (`None` = no work budget).
    pub fn remaining_work(&self) -> Option<u64> {
        let own = self
            .work_limit
            .map(|l| l.saturating_sub(self.spent.conflicts));
        tighter(own, self.pool.as_ref().map(|p| p.remaining()))
    }

    /// Whether any budget is spent: the wall deadline passed, or a
    /// work budget (own or circuit pool) ran out. Solving layers check
    /// this between calls and report a timeout when it trips.
    pub fn exhausted(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        self.remaining_work() == Some(0)
    }

    /// Charges solver effort to this meter (and debits the circuit
    /// pool). Every solver call on the session's solve path reports
    /// its work here — that single stream is what the work budgets
    /// meter.
    pub fn charge(&mut self, work: EffortStats) {
        self.spent += work;
        if let Some(pool) = &self.pool {
            pool.debit(work.conflicts);
        }
    }

    /// The limits for one solver call under `per_call`: the call's
    /// deadline is the tighter of the meter deadline and `now +
    /// per_call.wall()`; its conflict budget is the per-call work
    /// component capped by [`EffortMeter::remaining_work`]. With no
    /// per-call budget, pass [`Budget::Unlimited`] — the call still
    /// inherits the meter's own limits.
    pub fn call_limits(&self, per_call: Budget) -> CallLimits {
        CallLimits {
            deadline: tighter(self.deadline, per_call.wall().map(|d| Instant::now() + d)),
            conflicts: tighter(per_call.work(), self.remaining_work()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn effort(conflicts: u64) -> EffortStats {
        EffortStats {
            conflicts,
            decisions: 2 * conflicts,
            propagations: 10 * conflicts,
        }
    }

    #[test]
    fn work_pool_debits_and_saturates() {
        let pool = WorkPool::new(10);
        assert_eq!(pool.remaining(), 10);
        pool.debit(4);
        assert_eq!(pool.remaining(), 6);
        pool.debit(100);
        assert_eq!(pool.remaining(), 0);
        assert!(pool.is_exhausted());
    }

    #[test]
    fn meter_trips_on_own_work_limit() {
        let mut m = EffortMeter::new(Instant::now(), Budget::Work(10), &CircuitBudget::default());
        assert!(!m.exhausted());
        assert_eq!(m.remaining_work(), Some(10));
        assert_eq!(m.deadline(), None, "pure work budget never sets a clock");
        m.charge(effort(7));
        assert_eq!(m.remaining_work(), Some(3));
        m.charge(effort(3));
        assert!(m.exhausted());
        assert_eq!(m.spent().conflicts, 10);
    }

    #[test]
    fn meter_trips_on_the_shared_pool() {
        let circuit = CircuitBudget {
            deadline: None,
            work: Some(Arc::new(WorkPool::new(5))),
        };
        let mut a = EffortMeter::new(Instant::now(), Budget::Unlimited, &circuit);
        let b = EffortMeter::new(Instant::now(), Budget::Unlimited, &circuit);
        a.charge(effort(5));
        assert!(a.exhausted());
        assert!(b.exhausted(), "siblings share the pool");
        assert!(circuit.expired());
    }

    #[test]
    fn meter_combines_wall_components() {
        let start = Instant::now();
        let circuit = CircuitBudget {
            deadline: Some(start + Duration::from_secs(1)),
            work: None,
        };
        let m = EffortMeter::new(start, Budget::Wall(Duration::from_secs(60)), &circuit);
        assert_eq!(
            m.deadline(),
            Some(start + Duration::from_secs(1)),
            "circuit deadline caps the per-output one"
        );
        assert_eq!(m.remaining_work(), None);
    }

    #[test]
    fn call_limits_cap_per_call_work_by_remaining() {
        let mut m = EffortMeter::new(Instant::now(), Budget::Work(10), &CircuitBudget::default());
        m.charge(effort(7));
        let limits = m.call_limits(Budget::Work(100));
        assert_eq!(limits.conflicts, Some(3));
        assert_eq!(limits.deadline, None);
        let limits = m.call_limits(Budget::Work(2));
        assert_eq!(limits.conflicts, Some(2), "per-call limit can be tighter");
        let limits = m.call_limits(Budget::Unlimited);
        assert_eq!(limits.conflicts, Some(3), "meter limits apply regardless");
    }

    #[test]
    fn ledger_replays_the_sequential_debit_order() {
        // limit 10, per-output cap 4: outputs 0 and 1 are in the
        // independent prefix ((i+1)*4 <= 10); output 2 gets what the
        // sequential run would leave it; output 3 gets the rest.
        let ledger = WorkLedger::new(10, Some(4), 4);
        assert_eq!(ledger.reserve(0), 4);
        assert_eq!(ledger.reserve(1), 4, "independent prefix needs no waits");
        ledger.commit(0, 3);
        ledger.commit(1, 4);
        assert_eq!(ledger.reserve(2), 3, "10 - (3 + 4)");
        ledger.commit(2, 3);
        assert_eq!(ledger.reserve(3), 0, "pool exhausted, output skipped");
        ledger.commit(3, 0);
    }

    #[test]
    fn ledger_reservation_waits_for_predecessor_commits() {
        // No per-output cap: reserve(1) must block until output 0
        // commits (the serialized tail).
        let ledger = Arc::new(WorkLedger::new(100, None, 2));
        let l2 = Arc::clone(&ledger);
        let waiter = std::thread::spawn(move || l2.reserve(1));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "reserve(1) must wait for commit(0)");
        ledger.commit(0, 60);
        assert_eq!(waiter.join().unwrap(), 40);
    }

    #[test]
    fn ledger_commit_is_idempotent_and_first_wins() {
        let ledger = WorkLedger::new(10, None, 2);
        assert_eq!(ledger.reserve(0), 10);
        ledger.commit(0, 4);
        ledger.commit(0, 9); // a racing second commit is ignored
        assert_eq!(ledger.reserve(1), 6);
    }

    #[test]
    fn ledger_zero_cap_grant_does_not_fake_circuit_exhaustion() {
        // A per-output cap of 0 means every output's own meter trips
        // immediately, but the *circuit* pool is untouched: the grant
        // must stay positive so expired() reflects the real pool.
        let ledger = WorkLedger::new(10, Some(0), 3);
        let slice = ledger.reserve(2);
        assert!(slice >= 1);
        let circuit = CircuitBudget {
            deadline: None,
            work: Some(Arc::new(WorkPool::new(slice))),
        };
        assert!(!circuit.expired());
        let m = EffortMeter::new(Instant::now(), Budget::Work(0), &circuit);
        assert!(
            m.exhausted(),
            "the per-output meter still enforces the zero"
        );
    }

    #[test]
    fn ledger_zero_limit_is_exhausted_for_every_output() {
        let ledger = WorkLedger::new(0, Some(5), 2);
        assert_eq!(ledger.reserve(0), 0);
        assert_eq!(ledger.reserve(1), 0);
    }

    #[test]
    fn anchored_circuit_budget_splits_components() {
        let start = Instant::now();
        let b = CircuitBudget::anchored(
            Budget::Both {
                wall: Duration::from_secs(5),
                work: 42,
            },
            start,
        );
        assert_eq!(b.deadline, Some(start + Duration::from_secs(5)));
        assert_eq!(b.work.as_ref().map(|p| p.remaining()), Some(42));
        assert!(!b.expired());
        let unlimited = CircuitBudget::anchored(Budget::Unlimited, start);
        assert!(unlimited.deadline.is_none() && unlimited.work.is_none());
    }
}
