//! The effort-metering layer: one charge/check surface for every
//! budget a solve runs under.
//!
//! The paper truncates runs with wall-clock limits (4 s per QBF call,
//! 6000 s per circuit), which makes results machine- and
//! load-dependent. [`Budget::Work`] replaces the clock with solver
//! **conflicts** — the portable currency of SAT/QBF effort — and this
//! module is where those budgets are enforced:
//!
//! * [`EffortMeter`] — owned by a
//!   [`SolveSession`](crate::session::SolveSession); strategies and
//!   the [`PartitionOracle`](crate::oracle::PartitionOracle) consult
//!   it instead of doing raw `Instant` math. Every solver call charges
//!   the effort it spent ([`EffortMeter::charge`]) and derives its own
//!   limits from what remains ([`EffortMeter::call_limits`]), so a
//!   budgeted truncation falls on the same call at the same conflict
//!   count on every machine.
//! * [`WorkPool`] — the shared per-circuit work budget: an atomic pool
//!   every output of a submission debits. The analogue of the shared
//!   circuit deadline (and like it, scheduling-dependent under
//!   `jobs > 1` — see the determinism notes below).
//! * [`CircuitBudget`] — the circuit-scope limits a job carries: the
//!   shared deadline (wall component, anchored at the submission's
//!   first claim) plus the shared [`WorkPool`] (work component).
//!
//! **Determinism.** Per-output `Work` budgets are fully deterministic:
//! each output's meter is private, so which outputs run out of budget
//! — and the partial results they report — are byte-identical across
//! machines, `--jobs` values and background load. The per-*circuit*
//! work pool is debited in completion order, which under `jobs > 1`
//! depends on scheduling (exactly like the shared wall deadline it
//! parallels); at `jobs = 1` it too is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use step_sat::EffortStats;

use crate::spec::Budget;

/// The tighter of two optional limits (`None` = unlimited): the one
/// combining rule every budget scope in this module composes with.
fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// A shared, saturating work budget (conflicts): the per-circuit
/// analogue of a shared deadline. Outputs debit the work they spent;
/// once the pool is empty, remaining outputs are truncated.
#[derive(Debug)]
pub struct WorkPool {
    remaining: AtomicU64,
}

impl WorkPool {
    /// A pool holding `limit` conflicts.
    pub fn new(limit: u64) -> Self {
        WorkPool {
            remaining: AtomicU64::new(limit),
        }
    }

    /// Conflicts left in the pool.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Acquire)
    }

    /// Whether the pool is spent.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Debits `work` conflicts, saturating at zero.
    pub fn debit(&self, work: u64) {
        if work == 0 {
            return;
        }
        let mut cur = self.remaining.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(work);
            match self.remaining.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

/// The circuit-scope limits one output job runs under: the shared
/// deadline (wall component of the per-circuit budget, possibly capped
/// by an explicit per-submission deadline) and the shared work pool.
/// Cheap to clone — the pool is shared, not copied.
#[derive(Clone, Debug, Default)]
pub struct CircuitBudget {
    /// The shared circuit deadline, if the per-circuit budget has a
    /// wall component (anchored at the submission's first claim).
    pub deadline: Option<Instant>,
    /// The shared work pool, if the per-circuit budget has a work
    /// component.
    pub work: Option<Arc<WorkPool>>,
}

impl CircuitBudget {
    /// The circuit budget for `budget` anchored at `start` (the
    /// inline, single-caller path; the service anchors the wall
    /// component lazily at first claim instead).
    pub fn anchored(budget: Budget, start: Instant) -> Self {
        CircuitBudget {
            deadline: budget.wall().map(|d| start + d),
            work: budget.work().map(|w| Arc::new(WorkPool::new(w))),
        }
    }

    /// Whether the circuit budget is spent (deadline passed or pool
    /// empty) — outputs claimed after this point are skipped.
    pub fn expired(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        self.work.as_deref().is_some_and(WorkPool::is_exhausted)
    }
}

/// Limits for one solver call, derived from a meter and a per-call
/// budget: hand `deadline` to `set_deadline` and `conflicts` to
/// `set_effort_budget`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CallLimits {
    /// Wall-clock deadline for the call.
    pub deadline: Option<Instant>,
    /// Conflict budget for the call.
    pub conflicts: Option<u64>,
}

/// The per-output budget meter: tracks the effort spent on one
/// output's solve and answers the two questions every solving layer
/// asks — *may I keep going?* ([`EffortMeter::exhausted`]) and *how
/// much may the next call cost?* ([`EffortMeter::call_limits`]).
///
/// The meter owns the output's wall deadline (per-output ∩ circuit)
/// and work limit, and holds the circuit's shared [`WorkPool`];
/// [`EffortMeter::charge`] feeds both. See the module docs for the
/// determinism contract.
#[derive(Debug, Default)]
pub struct EffortMeter {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    spent: EffortStats,
    pool: Option<Arc<WorkPool>>,
}

impl EffortMeter {
    /// A meter for one output starting at `start`: wall deadline from
    /// the budgets' wall components (tighter of per-output and
    /// circuit), work limit from the per-output work component, shared
    /// pool from the circuit budget.
    pub fn new(start: Instant, per_output: Budget, circuit: &CircuitBudget) -> Self {
        let deadline = tighter(per_output.wall().map(|d| start + d), circuit.deadline);
        EffortMeter {
            deadline,
            work_limit: per_output.work(),
            spent: EffortStats::default(),
            pool: circuit.work.clone(),
        }
    }

    /// A meter with no limits at all (standalone solves, tests).
    pub fn unlimited() -> Self {
        EffortMeter::default()
    }

    /// The effective wall deadline (`None` under pure work budgets —
    /// nothing on the solve path consults a clock then).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The effort charged to this meter so far.
    pub fn spent(&self) -> EffortStats {
        self.spent
    }

    /// Conflicts left before a work budget trips: the tighter of the
    /// per-output limit and the circuit pool (`None` = no work budget).
    pub fn remaining_work(&self) -> Option<u64> {
        let own = self
            .work_limit
            .map(|l| l.saturating_sub(self.spent.conflicts));
        tighter(own, self.pool.as_ref().map(|p| p.remaining()))
    }

    /// Whether any budget is spent: the wall deadline passed, or a
    /// work budget (own or circuit pool) ran out. Solving layers check
    /// this between calls and report a timeout when it trips.
    pub fn exhausted(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        self.remaining_work() == Some(0)
    }

    /// Charges solver effort to this meter (and debits the circuit
    /// pool). Every solver call on the session's solve path reports
    /// its work here — that single stream is what the work budgets
    /// meter.
    pub fn charge(&mut self, work: EffortStats) {
        self.spent += work;
        if let Some(pool) = &self.pool {
            pool.debit(work.conflicts);
        }
    }

    /// The limits for one solver call under `per_call`: the call's
    /// deadline is the tighter of the meter deadline and `now +
    /// per_call.wall()`; its conflict budget is the per-call work
    /// component capped by [`EffortMeter::remaining_work`]. With no
    /// per-call budget, pass [`Budget::Unlimited`] — the call still
    /// inherits the meter's own limits.
    pub fn call_limits(&self, per_call: Budget) -> CallLimits {
        CallLimits {
            deadline: tighter(self.deadline, per_call.wall().map(|d| Instant::now() + d)),
            conflicts: tighter(per_call.work(), self.remaining_work()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn effort(conflicts: u64) -> EffortStats {
        EffortStats {
            conflicts,
            decisions: 2 * conflicts,
            propagations: 10 * conflicts,
        }
    }

    #[test]
    fn work_pool_debits_and_saturates() {
        let pool = WorkPool::new(10);
        assert_eq!(pool.remaining(), 10);
        pool.debit(4);
        assert_eq!(pool.remaining(), 6);
        pool.debit(100);
        assert_eq!(pool.remaining(), 0);
        assert!(pool.is_exhausted());
    }

    #[test]
    fn meter_trips_on_own_work_limit() {
        let mut m = EffortMeter::new(Instant::now(), Budget::Work(10), &CircuitBudget::default());
        assert!(!m.exhausted());
        assert_eq!(m.remaining_work(), Some(10));
        assert_eq!(m.deadline(), None, "pure work budget never sets a clock");
        m.charge(effort(7));
        assert_eq!(m.remaining_work(), Some(3));
        m.charge(effort(3));
        assert!(m.exhausted());
        assert_eq!(m.spent().conflicts, 10);
    }

    #[test]
    fn meter_trips_on_the_shared_pool() {
        let circuit = CircuitBudget {
            deadline: None,
            work: Some(Arc::new(WorkPool::new(5))),
        };
        let mut a = EffortMeter::new(Instant::now(), Budget::Unlimited, &circuit);
        let b = EffortMeter::new(Instant::now(), Budget::Unlimited, &circuit);
        a.charge(effort(5));
        assert!(a.exhausted());
        assert!(b.exhausted(), "siblings share the pool");
        assert!(circuit.expired());
    }

    #[test]
    fn meter_combines_wall_components() {
        let start = Instant::now();
        let circuit = CircuitBudget {
            deadline: Some(start + Duration::from_secs(1)),
            work: None,
        };
        let m = EffortMeter::new(start, Budget::Wall(Duration::from_secs(60)), &circuit);
        assert_eq!(
            m.deadline(),
            Some(start + Duration::from_secs(1)),
            "circuit deadline caps the per-output one"
        );
        assert_eq!(m.remaining_work(), None);
    }

    #[test]
    fn call_limits_cap_per_call_work_by_remaining() {
        let mut m = EffortMeter::new(Instant::now(), Budget::Work(10), &CircuitBudget::default());
        m.charge(effort(7));
        let limits = m.call_limits(Budget::Work(100));
        assert_eq!(limits.conflicts, Some(3));
        assert_eq!(limits.deadline, None);
        let limits = m.call_limits(Budget::Work(2));
        assert_eq!(limits.conflicts, Some(2), "per-call limit can be tighter");
        let limits = m.call_limits(Budget::Unlimited);
        assert_eq!(limits.conflicts, Some(3), "meter limits apply regardless");
    }

    #[test]
    fn anchored_circuit_budget_splits_components() {
        let start = Instant::now();
        let b = CircuitBudget::anchored(
            Budget::Both {
                wall: Duration::from_secs(5),
                work: 42,
            },
            start,
        );
        assert_eq!(b.deadline, Some(start + Duration::from_secs(5)));
        assert_eq!(b.work.as_ref().map(|p| p.remaining()), Some(42));
        assert!(!b.expired());
        let unlimited = CircuitBudget::anchored(Budget::Unlimited, start);
        assert!(unlimited.deadline.is_none() && unlimited.work.is_none());
    }
}
