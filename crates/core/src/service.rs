//! [`StepService`] — the persistent decomposition service: job
//! submission, streaming results and cancellation.
//!
//! The one-shot [`BiDecomposer::decompose_circuit`] used to spin a
//! scoped worker pool up and down per call. The paper's workload
//! (sweeps of many circuits × five models) is embarrassingly parallel
//! *across* calls too, so the service inverts the ownership: a
//! `StepService`
//! owns a pool of worker threads **spawned once** and a queue of
//! submissions, each submission being one `(circuit, op, config)`
//! decomposition request. Workers claim [`OutputJob`]-shaped units
//! (one primary output at a time) from the highest-priority queued
//! submission: already-started submissions drain first (the pop is
//! non-preemptive — a started submission's per-circuit budget is
//! anchored and ticking, so nothing may jump ahead of it), then
//! earliest explicit deadline ([`StepService::submit_with_deadline`]),
//! then FIFO among submissions without deadlines. A single large
//! circuit thus fans out over the pool exactly like the old scoped
//! driver, and independent submissions drain through the same pool
//! back-to-back, which is what lets the `table3`/`fig1` harnesses
//! shard their whole model × circuit product instead of parallelizing
//! only within a circuit.
//!
//! [`StepService::submit`] returns a [`SubmissionHandle`]:
//!
//! * **streaming** — [`SubmissionHandle::recv`] (or the handle's
//!   [`Iterator`] impl) yields one [`OutputEvent`] per primary output
//!   in *completion* order, as results land;
//! * **blocking** — [`SubmissionHandle::join`] waits for the whole
//!   circuit and reproduces the output-ordered [`CircuitResult`] of
//!   the legacy `decompose_circuit` exactly (events already consumed
//!   via `recv` are folded back in — mixing the two styles is fine);
//! * **cancellation** — [`SubmissionHandle::cancel`] stops further
//!   outputs of that submission from being claimed; `join` then
//!   returns [`StepError::Cancelled`]. In-flight outputs run to
//!   completion (they are bounded by their per-output budgets), and
//!   the pool immediately moves on to other submissions — cancelling
//!   one job never wedges the service.
//!
//! **Multi-tenant scheduling.** [`StepService::submit_with`] tags a
//! submission with a tenant name and a predicted cost
//! ([`SubmitOptions`]). Among queued *deadline-less, unstarted*
//! submissions from two or more distinct tenants, the pop switches
//! from FIFO to **deficit round-robin**: tenants take turns, each
//! turn's deficit grows by a quantum derived from the queued head
//! costs, and a tenant's cheapest head runs when its deficit covers
//! it — so a tenant flooding the queue with expensive circuits cannot
//! starve another's small ones. Costs come from the
//! [`CostModel`] (fingerprint history and
//! support-bucket EWMAs learned from every completed solve). Untagged
//! submissions keep plain FIFO among themselves and participate in
//! the rotation as one anonymous group. Started submissions still
//! drain first and explicit deadlines still beat everything unstarted
//! — fairness reorders the idle tail, never a ticking budget.
//!
//! **Determinism.** Per-output results are a pure function of
//! `(cone, op, config)` (canonical solving order + fingerprint-derived
//! sim seeds, see [`crate::session`]), so a service with any worker
//! count returns byte-identical per-output results — `jobs = 1` ≡
//! `jobs = N`, with or without the shared [`ResultCache`], queued
//! behind any other submissions. The per-circuit budget anchors when
//! a submission's *first* output is claimed, not at submit time, so
//! queue wait never eats a submission's budget; its work component is
//! sliced per output through a two-phase
//! [`WorkLedger`] reservation that replays
//! the sequential debit order, so under pure
//! [`Budget::Work`](crate::spec::Budget::Work) budgets — per-output
//! *and* per-circuit — even truncation verdicts are identical for any
//! worker count (see [`crate::effort`]).
//!
//! **Fault containment.** A panicking solve is caught at the pool
//! boundary ([`std::panic::catch_unwind`]) and surfaced as
//! [`StepError::Internal`] on the owning submission only; the worker
//! thread and the service survive and keep serving other submissions.
//!
//! [`BiDecomposer::decompose_circuit`]: crate::BiDecomposer::decompose_circuit
//! [`OutputJob`]: crate::job::OutputJob

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use step_aig::Aig;

use crate::cache::{CacheLookup, ResultCache};
use crate::clause_bank::{ClauseBank, ReuseCtx};
use crate::effort::{CircuitBudget, WorkLedger, WorkPool};
use crate::engine::{run_queued, CircuitResult, OutputResult, StepError};
use crate::predict::CostModel;
use crate::spec::{DecompConfig, GateOp};
use crate::store::TieredStore;

/// Identifies one submission within its service (monotonically
/// increasing per service instance; shown in logs and events).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SubmissionId(u64);

impl fmt::Display for SubmissionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// One streamed result: a primary output of a submission finished (or
/// failed, or was skipped by cancellation).
#[derive(Clone, Debug)]
pub struct OutputEvent {
    /// The submission this output belongs to.
    pub submission: SubmissionId,
    /// Index of the primary output within the submitted circuit.
    pub output_index: usize,
    /// The output's result. `Err(StepError::Cancelled)` marks an
    /// output skipped because the submission was cancelled (or its
    /// service dropped) before this output was solved; other errors
    /// are real failures of this output's solve.
    pub result: Result<OutputResult, StepError>,
}

/// Per-submission scheduling options for
/// [`StepService::submit_with`]: everything [`StepService::submit`]
/// defaults, in one bag.
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Absolute completion deadline (EDF queue priority; outputs not
    /// solved by it report as timed out). Only ever tightens the
    /// per-circuit budget.
    pub deadline: Option<Instant>,
    /// The submitting tenant, for deficit-round-robin fair-share
    /// ordering against other tenants' queued work. `None` keeps the
    /// legacy FIFO behaviour.
    pub tenant: Option<Arc<str>>,
    /// Predicted total conflicts for this submission. `None` asks the
    /// service to estimate from its [`CostModel`] (support-size walk
    /// over every output); ignored for untagged submissions, which do
    /// not participate in cost-aware ordering.
    pub cost_hint: Option<u64>,
}

/// How a submission's circuit-wide deadline is derived.
enum DeadlinePolicy {
    /// `first claim + config.budget.per_circuit` (the legacy rule).
    Budget,
    /// An absolute caller-supplied instant, additionally capped by the
    /// per-circuit budget. Also the submission's queue priority:
    /// deadlined submissions are claimed earliest-deadline-first.
    Explicit(Instant),
}

/// Shared state of one submission: the work description plus the claim
/// counter, flags and the event channel workers report through.
struct Submission {
    id: SubmissionId,
    aig: Arc<Aig>,
    op: GateOp,
    config: DecompConfig,
    deadline_policy: DeadlinePolicy,
    /// The work component of the per-circuit budget: a two-phase
    /// reservation ledger slicing the budget across outputs in
    /// sequential order, so truncation verdicts are deterministic at
    /// any worker count. Created at submit (work needs no anchoring —
    /// queue wait costs none).
    ledger: Option<Arc<WorkLedger>>,
    /// The submitting tenant, if the caller tagged one
    /// ([`SubmitOptions::tenant`]) — the deficit-round-robin grouping
    /// key.
    tenant: Option<Arc<str>>,
    /// Predicted total conflicts (0 for untagged submissions, which
    /// keep pure FIFO order) — the cost-aware ordering key and the
    /// DRR deficit currency.
    cost: u64,
    /// Anchored when the first output is claimed (so queue wait does
    /// not consume the per-circuit budget).
    started: OnceLock<Instant>,
    /// Stamped when the last event is delivered, so a handle joined
    /// long after completion still reports the true wall clock.
    finished: OnceLock<Instant>,
    submitted: Instant,
    n_out: usize,
    /// Claim counter: `fetch_add` hands out output indices.
    next: AtomicUsize,
    /// Clause-reuse handles (`Some` iff `config.clause_reuse`): the
    /// bank — the service-wide one, or a submission-scoped fallback —
    /// plus this submission's own oracle pool. The pool is
    /// per-submission by design: pooled oracles embed solver knobs
    /// from one `DecompConfig` and may not cross submissions.
    reuse: Option<ReuseCtx>,
    /// Set by [`SubmissionHandle::cancel`] (or service drop).
    cancelled: AtomicBool,
    /// Set when any output of this submission failed; remaining
    /// outputs are skipped (the legacy fail-fast rule).
    poisoned: AtomicBool,
    /// Events delivered so far; the sender drops (closing the channel)
    /// when this reaches `n_out`.
    sent: AtomicUsize,
    events: Mutex<Option<Sender<OutputEvent>>>,
}

impl Submission {
    /// The circuit-scope limits for output `idx`, anchoring the wall
    /// component of the per-circuit budget at the first claim. The
    /// work component is this output's slice of the per-circuit pool,
    /// reserved from the [`WorkLedger`] (may block until predecessors
    /// commit — see [`crate::effort`]) and wrapped in a private
    /// [`WorkPool`] so the session's meter needs no new plumbing.
    fn circuit_budget_for(&self, idx: usize) -> CircuitBudget {
        let start = *self.started.get_or_init(Instant::now);
        let budget = self.config.budget.per_circuit.wall().map(|d| start + d);
        let deadline = match self.deadline_policy {
            DeadlinePolicy::Budget => budget,
            DeadlinePolicy::Explicit(d) => Some(match budget {
                Some(b) => d.min(b),
                None => d,
            }),
        };
        let work = self
            .ledger
            .as_ref()
            .map(|l| Arc::new(WorkPool::new(l.reserve(idx))));
        CircuitBudget { deadline, work }
    }

    /// Commits output `idx`'s spend to the work ledger (0 on every
    /// skip path, so blocked reservations always wake).
    fn commit_work(&self, idx: usize, spent: u64) {
        if let Some(ledger) = &self.ledger {
            ledger.commit(idx, spent);
        }
    }

    /// The queue priority: an explicit deadline, if the caller set
    /// one. Queued submissions are claimed earliest-deadline-first;
    /// submissions without deadlines keep FIFO order (by id) among
    /// themselves, behind any deadlined ones.
    fn queue_deadline(&self) -> Option<Instant> {
        match self.deadline_policy {
            DeadlinePolicy::Budget => None,
            DeadlinePolicy::Explicit(d) => Some(d),
        }
    }

    /// The queue ordering key (smaller claims first): *started*
    /// submissions drain before anything else starts, then earliest
    /// explicit deadline (deadlined before deadline-less), then
    /// predicted cost (cheapest first; always 0 for untagged
    /// submissions, so they keep pure FIFO), then submission id.
    ///
    /// The trailing id is the documented deterministic tie-break: ids
    /// are monotone per service, so two submissions with equal
    /// deadlines (or equal costs, or none of either) are always
    /// claimed in submission order — the pop is a total order with no
    /// scheduling-dependent coin flips.
    ///
    /// The started-first rule makes the EDF pop **non-preemptive**: a
    /// submission's per-circuit budget anchors at its first claim, so
    /// once any output has been claimed, letting later (even tighter-
    /// deadline) arrivals jump ahead would bill the started submission
    /// for time it never got — the starvation the budget anchoring
    /// exists to prevent. Until that first claim, jumping the queue is
    /// free, which is exactly the window EDF (and the deficit
    /// round-robin layered above it, see the module docs) reorders.
    #[allow(clippy::type_complexity)]
    fn queue_rank(&self) -> (bool, u8, Option<Instant>, u64, u64) {
        // `false < true`, so started submissions (some claim handed
        // out) rank first.
        let unstarted = self.next.load(Ordering::Acquire) == 0;
        // Cost participates only for tenant-tagged submissions:
        // untagged ones promised FIFO, and their cost field is 0.
        let cost = if self.tenant.is_some() { self.cost } else { 0 };
        match self.queue_deadline() {
            Some(d) => (unstarted, 0, Some(d), cost, self.id.0),
            None => (unstarted, 1, None, cost, self.id.0),
        }
    }

    /// Whether `self` should be claimed before `other` (the
    /// non-preemptive EDF rule — see [`Submission::queue_rank`]).
    fn claims_before(&self, other: &Submission) -> bool {
        self.queue_rank() < other.queue_rank()
    }

    /// Whether claimed outputs should be skipped instead of solved.
    fn skip_work(&self) -> bool {
        self.cancelled.load(Ordering::Acquire) || self.poisoned.load(Ordering::Acquire)
    }

    /// Delivers one event and closes the channel after the last one.
    /// Exactly one event is sent per claimed output index, so the
    /// channel closes if and only if every output is accounted for.
    fn send_event(&self, output_index: usize, result: Result<OutputResult, StepError>) {
        let mut guard = self.events.lock().expect("event sender lock");
        if let Some(tx) = guard.as_ref() {
            // The receiver may be gone (handle dropped without join);
            // delivery is best-effort, accounting still proceeds.
            let _ = tx.send(OutputEvent {
                submission: self.id,
                output_index,
                result,
            });
        }
        if self.sent.fetch_add(1, Ordering::AcqRel) + 1 == self.n_out {
            let _ = self.finished.set(Instant::now());
            *guard = None;
        }
    }

    /// Claims and skips every remaining output (cancellation path).
    /// Each skipped index commits zero spend to the work ledger so
    /// reservations blocked on it wake up.
    fn drain_cancelled(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::AcqRel);
            if idx >= self.n_out {
                break;
            }
            self.commit_work(idx, 0);
            self.send_event(idx, Err(StepError::Cancelled));
        }
    }
}

/// Deficit-round-robin bookkeeping for tenant fair-share (guarded by
/// the queue mutex; `None` keys are the anonymous untagged group).
#[derive(Default)]
struct DrrState {
    /// Tenant visiting order; the front is served next, a served
    /// tenant rotates to the back.
    rotation: VecDeque<Option<Arc<str>>>,
    /// Unspent credit per tenant, in predicted conflicts. Removed
    /// (reset to zero) whenever a tenant's queue empties — the classic
    /// DRR rule that stops idle tenants from banking unbounded credit.
    deficit: HashMap<Option<Arc<str>>, u64>,
}

/// The submission queue plus the scheduling state that must move in
/// lockstep with it.
struct QueueState {
    items: VecDeque<Arc<Submission>>,
    drr: DrrState,
}

/// Picks the queue index to claim from next, or `None` when idle:
/// started submissions first, then EDF among deadlined unstarted
/// ones, then — when two or more distinct tenants have deadline-less
/// unstarted work queued — deficit round-robin across tenants;
/// otherwise the plain rank order (FIFO for untagged, cheapest-first
/// within a single tenant).
fn select_next(state: &mut QueueState) -> Option<usize> {
    let items = &state.items;
    let mut best: Option<usize> = None;
    for (i, s) in items.iter().enumerate() {
        if best.is_none_or(|b| s.claims_before(&items[b])) {
            best = Some(i);
        }
    }
    let b = best?;
    let (unstarted, group, ..) = items[b].queue_rank();
    if !unstarted || group == 0 {
        // A started submission is draining, or a deadline is in play:
        // fairness never overrides either.
        return Some(b);
    }
    // Head (best-ranked submission) and its cost per tenant group
    // among the deadline-less unstarted candidates.
    let mut heads: Vec<(Option<Arc<str>>, usize)> = Vec::new();
    for (i, s) in items.iter().enumerate() {
        let (unstarted, group, ..) = s.queue_rank();
        if !unstarted || group != 1 {
            continue;
        }
        match heads.iter_mut().find(|(t, _)| *t == s.tenant) {
            Some((_, head)) => {
                if s.claims_before(&items[*head]) {
                    *head = i;
                }
            }
            None => heads.push((s.tenant.clone(), i)),
        }
    }
    let tenants = heads.iter().filter(|(t, _)| t.is_some()).count();
    if tenants < 2 {
        return Some(b);
    }
    let drr = &mut state.drr;
    // Tenants with nothing queued leave the rotation and forfeit any
    // banked deficit; new ones join at the back in first-seen order.
    drr.rotation.retain(|t| heads.iter().any(|(ht, _)| ht == t));
    drr.deficit
        .retain(|t, _| heads.iter().any(|(ht, _)| ht == t));
    for (t, _) in &heads {
        if !drr.rotation.contains(t) {
            drr.rotation.push_back(t.clone());
        }
    }
    let cost_of = |i: usize| {
        if items[i].tenant.is_some() {
            items[i].cost
        } else {
            0
        }
    };
    let min_cost = heads.iter().map(|&(_, i)| cost_of(i)).min().unwrap_or(0);
    let max_cost = heads.iter().map(|&(_, i)| cost_of(i)).max().unwrap_or(0);
    // Large enough that the cheapest queued head always fits within
    // one visit, and that even the dearest fits within ~64 rotations.
    let quantum = 1u64.max(min_cost).max(max_cost / 64);
    loop {
        let tenant = drr.rotation.front().cloned().expect("nonempty rotation");
        let head = heads
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|&(_, i)| i)
            .expect("rotation pruned to queued tenants");
        let credit = drr.deficit.entry(tenant).or_insert(0);
        *credit = credit.saturating_add(quantum);
        if cost_of(head) <= *credit {
            *credit -= cost_of(head);
            drr.rotation.rotate_left(1);
            return Some(head);
        }
        drr.rotation.rotate_left(1);
    }
}

/// State shared between the service front-end and its workers.
struct ServiceShared {
    queue: Mutex<QueueState>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Conflict-cost estimator fed by every completed solve; prices
    /// untagged cost estimates at submit and the serve front-end's
    /// admission charges.
    cost_model: Arc<CostModel>,
    /// The tiered artifact store every session of every submission
    /// routes through: the service-wide result cache and clause bank
    /// as tier 0 (either may be absent — a store without a bank gives
    /// each reuse submission its own submission-scoped one), plus the
    /// persistent tier when the service was spawned over one. Loaded
    /// at spawn, flushed at shutdown.
    store: Arc<TieredStore>,
    next_id: AtomicU64,
}

/// A long-running decomposition service: a persistent worker pool fed
/// by a queue of circuit submissions (non-preemptive
/// earliest-deadline-first: started submissions drain first, then
/// deadlined ones by deadline, then FIFO). See the module docs.
///
/// ```
/// use step_aig::Aig;
/// use step_core::{DecompConfig, GateOp, Model, StepService};
///
/// let mut aig = Aig::new();
/// let inputs: Vec<_> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
/// let ab = aig.and(inputs[0], inputs[1]);
/// let cd = aig.and(inputs[2], inputs[3]);
/// let f = aig.or(ab, cd);
/// aig.add_output("f", f);
///
/// let service = StepService::new(2);
/// let config = DecompConfig::new(Model::QbfDisjoint);
/// let mut handle = service.submit(&aig, GateOp::Or, config).unwrap();
/// // Stream results in completion order...
/// while let Some(event) = handle.recv() {
///     let r = event.result.unwrap();
///     println!("output {} solved: {}", r.name, r.solved);
/// }
/// // ...and/or join for the output-ordered CircuitResult.
/// let result = handle.join().unwrap();
/// assert_eq!(result.outputs.len(), 1);
/// assert!(result.outputs[0].is_decomposed());
/// ```
pub struct StepService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for StepService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepService")
            .field("workers", &self.workers.len())
            .field("cache", &self.shared.store.cache().is_some())
            .field("disk", &self.shared.store.disk().is_some())
            .finish()
    }
}

impl StepService {
    /// Spawns a service with `workers` persistent worker threads (at
    /// least one) and no result cache.
    pub fn new(workers: usize) -> Self {
        Self::spawn(workers, None)
    }

    /// Spawns a service whose sessions share `cache` across every
    /// submission — the long-running analogue of
    /// [`BiDecomposer::set_cache`](crate::BiDecomposer::set_cache).
    pub fn with_cache(workers: usize, cache: Arc<ResultCache>) -> Self {
        Self::spawn(workers, Some(cache))
    }

    /// The general constructor behind [`new`](StepService::new) and
    /// [`with_cache`](StepService::with_cache): `workers` persistent
    /// threads (at least one) and an optional shared result cache —
    /// for callers that already hold an `Option<Arc<ResultCache>>`.
    pub fn spawn(workers: usize, cache: Option<Arc<ResultCache>>) -> Self {
        Self::spawn_with_bank(workers, cache, None)
    }

    /// [`spawn`](StepService::spawn) with an optional service-wide
    /// clause bank: submissions with
    /// [`DecompConfig::clause_reuse`](crate::spec::DecompConfig::clause_reuse)
    /// set donate and draw learnt clauses through it, sharing them
    /// across circuits and models the way the result cache shares
    /// solved outcomes. Without a bank, each reuse submission still
    /// gets a submission-scoped one.
    pub fn spawn_with_bank(
        workers: usize,
        cache: Option<Arc<ResultCache>>,
        bank: Option<Arc<ClauseBank>>,
    ) -> Self {
        Self::spawn_with_store(workers, Arc::new(TieredStore::memory(cache, bank)))
    }

    /// The most general constructor: `workers` persistent threads over
    /// an already-assembled [`TieredStore`] — the way to give a service
    /// a persistent tier (build the store with
    /// [`TieredStore::with_disk`], which loads the directory once; the
    /// service flushes dirty entries at shutdown and on
    /// [`flush`](StepService::flush)).
    pub fn spawn_with_store(workers: usize, store: Arc<TieredStore>) -> Self {
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                drr: DrrState::default(),
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cost_model: Arc::new(CostModel::new()),
            store,
            next_id: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("step-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        StepService { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The cache shared by every submission, if one was attached.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.shared.store.cache()
    }

    /// The clause bank shared by every clause-reuse submission, if one
    /// was attached.
    pub fn clause_bank(&self) -> Option<&Arc<ClauseBank>> {
        self.shared.store.bank()
    }

    /// The tiered store every session of this service routes through.
    pub fn store(&self) -> &Arc<TieredStore> {
        &self.shared.store
    }

    /// The conflict-cost estimator this service learns from every
    /// completed solve — serve front-ends price admission charges with
    /// it.
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.shared.cost_model
    }

    /// Number of submissions queued but not yet started (no output
    /// claimed) — the admission-control depth signal.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("service queue lock")
            .items
            .iter()
            .filter(|s| s.next.load(Ordering::Acquire) == 0)
            .count()
    }

    /// Flushes the store's dirty persistent-tier entries now (also
    /// done automatically at shutdown); returns the number of records
    /// appended (always 0 without a disk tier).
    ///
    /// # Errors
    ///
    /// I/O errors writing the store files.
    pub fn flush(&self) -> std::io::Result<u64> {
        self.shared.store.flush()
    }

    /// Enqueues one decomposition request: every primary output of
    /// `circuit` under `op` with `config`. Sequential circuits are
    /// converted combinationally first (the paper's ABC `comb` step).
    /// Returns immediately; consume results through the handle.
    ///
    /// Clones the circuit into the submission; callers submitting the
    /// same circuit many times (e.g. one per model) should use
    /// [`submit_shared`](StepService::submit_shared) to share one copy.
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] if the combinational conversion fails.
    pub fn submit(
        &self,
        circuit: &Aig,
        op: GateOp,
        config: DecompConfig,
    ) -> Result<SubmissionHandle, StepError> {
        self.submit_with(circuit, op, config, SubmitOptions::default())
    }

    /// [`submit`](StepService::submit) with explicit scheduling
    /// options: an absolute deadline, a tenant tag for fair-share
    /// ordering, and/or a predicted cost (see [`SubmitOptions`]).
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] if the combinational conversion fails.
    pub fn submit_with(
        &self,
        circuit: &Aig,
        op: GateOp,
        config: DecompConfig,
        options: SubmitOptions,
    ) -> Result<SubmissionHandle, StepError> {
        let aig = Self::comb_arc(circuit)?;
        self.submit_inner(aig, op, config, options)
    }

    /// Like [`submit`](StepService::submit), but shares an
    /// already-combinational circuit across submissions without
    /// cloning — sweep harnesses submit one `Arc` per circuit for all
    /// five models.
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] if the circuit has latches
    /// (convert with [`Aig::comb`] before wrapping in the `Arc`).
    pub fn submit_shared(
        &self,
        circuit: Arc<Aig>,
        op: GateOp,
        config: DecompConfig,
    ) -> Result<SubmissionHandle, StepError> {
        if !circuit.is_comb() {
            return Err(StepError::NotCombinational);
        }
        self.submit_inner(circuit, op, config, SubmitOptions::default())
    }

    /// [`submit_shared`](StepService::submit_shared) with explicit
    /// scheduling options ([`SubmitOptions`]) — the serve front-end's
    /// entry point.
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] if the circuit has latches.
    pub fn submit_shared_with(
        &self,
        circuit: Arc<Aig>,
        op: GateOp,
        config: DecompConfig,
        options: SubmitOptions,
    ) -> Result<SubmissionHandle, StepError> {
        if !circuit.is_comb() {
            return Err(StepError::NotCombinational);
        }
        self.submit_inner(circuit, op, config, options)
    }

    /// Like [`submit`](StepService::submit), with an absolute
    /// per-submission deadline: outputs not solved by `deadline` are
    /// reported as timed out, exactly as if the per-circuit budget had
    /// expired then. The deadline only tightens the configured
    /// per-circuit budget, never extends it.
    pub fn submit_with_deadline(
        &self,
        circuit: &Aig,
        op: GateOp,
        config: DecompConfig,
        deadline: Instant,
    ) -> Result<SubmissionHandle, StepError> {
        self.submit_with(
            circuit,
            op,
            config,
            SubmitOptions {
                deadline: Some(deadline),
                ..SubmitOptions::default()
            },
        )
    }

    /// Clones `circuit` (converting combinationally if needed) into
    /// the shared allocation a submission carries — the one-time
    /// preparation step for
    /// [`submit_shared`](StepService::submit_shared).
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] if the combinational conversion fails.
    pub fn comb_arc(circuit: &Aig) -> Result<Arc<Aig>, StepError> {
        Ok(Arc::new(if circuit.is_comb() {
            circuit.clone()
        } else {
            circuit
                .comb()
                .map_err(|e| StepError::Internal(format!("comb conversion failed: {e}")))?
        }))
    }

    fn submit_inner(
        &self,
        aig: Arc<Aig>,
        op: GateOp,
        config: DecompConfig,
        options: SubmitOptions,
    ) -> Result<SubmissionHandle, StepError> {
        let submitted = Instant::now();
        let n_out = aig.num_outputs();
        let (tx, rx) = channel();
        let ledger = config
            .budget
            .per_circuit
            .work()
            .map(|w| Arc::new(WorkLedger::new(w, config.budget.per_output.work(), n_out)));
        let deadline_policy = options
            .deadline
            .map_or(DeadlinePolicy::Budget, DeadlinePolicy::Explicit);
        // Cost-aware ordering only applies to tenant-tagged
        // submissions; the estimate is the caller's hint, else a
        // support-size walk priced by the service's cost model.
        let cost = match &options.tenant {
            Some(_) => options.cost_hint.unwrap_or_else(|| {
                aig.outputs()
                    .iter()
                    .map(|o| {
                        let support = aig.support(o.lit()).len();
                        self.shared.cost_model.predict(None, support)
                    })
                    .sum()
            }),
            None => 0,
        };
        let reuse = config.clause_reuse.then(|| self.shared.store.reuse_ctx());
        let sub = Arc::new(Submission {
            id: SubmissionId(self.shared.next_id.fetch_add(1, Ordering::Relaxed)),
            aig,
            op,
            config,
            deadline_policy,
            ledger,
            tenant: options.tenant,
            cost,
            started: OnceLock::new(),
            finished: OnceLock::new(),
            submitted,
            n_out,
            reuse,
            next: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            sent: AtomicUsize::new(0),
            // A zero-output circuit has nothing to report: close the
            // channel immediately so recv/join see completion.
            events: Mutex::new(if n_out == 0 { None } else { Some(tx) }),
        });
        if n_out == 0 {
            // Complete on the spot, so cpu measures ~zero rather than
            // however long the caller sits on the handle before join.
            let _ = sub.started.set(submitted);
            let _ = sub.finished.set(Instant::now());
        }
        if n_out > 0 {
            self.shared
                .queue
                .lock()
                .expect("service queue lock")
                .items
                .push_back(Arc::clone(&sub));
            self.shared.work.notify_all();
        }
        Ok(SubmissionHandle {
            sub,
            rx,
            slots: (0..n_out).map(|_| None).collect(),
        })
    }

    /// Shuts the service down: cancels queued submissions (their
    /// handles observe [`StepError::Cancelled`]), lets in-flight
    /// outputs finish and joins the worker threads. Dropping the
    /// service does the same.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for StepService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Drain the queue so no pending handle blocks forever: every
        // unclaimed output of every queued submission gets a Cancelled
        // event (claims are atomic, so this never races a worker into
        // double-reporting an index).
        let drained: Vec<_> = {
            let mut queue = self.shared.queue.lock().expect("service queue lock");
            queue.items.drain(..).collect()
        };
        for sub in drained {
            sub.cancelled.store(true, Ordering::Release);
            sub.drain_cancelled();
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers are gone; persist what the service learned. Best
        // effort — shutdown must not panic over a full disk.
        let _ = self.shared.store.flush();
    }
}

/// The worker loop: claim the next output index from the
/// highest-priority queued submission (started first, then earliest
/// explicit deadline, then the tenant fair-share order — see
/// [`Submission::queue_rank`] and [`select_next`]), solve it, report
/// the event; park on the condvar when the queue is empty.
fn worker_loop(shared: &ServiceShared) {
    loop {
        let claimed = {
            let mut queue = shared.queue.lock().expect("service queue lock");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Retire submissions whose every index has been handed
                // out (claims also happen outside this lock, on the
                // cancellation drain path).
                queue
                    .items
                    .retain(|s| s.next.load(Ordering::Acquire) < s.n_out);
                let best = select_next(&mut queue);
                let mut found = None;
                if let Some(b) = best {
                    let sub = Arc::clone(&queue.items[b]);
                    let idx = sub.next.fetch_add(1, Ordering::AcqRel);
                    if idx < sub.n_out {
                        found = Some((sub, idx));
                    }
                    // Else a concurrent cancel drain beat us to the
                    // last index; the retain above collects it next
                    // iteration.
                }
                if let Some(claimed) = found {
                    break claimed;
                }
                if best.is_none() {
                    queue = shared.work.wait(queue).expect("service queue lock");
                }
            }
        };
        let (sub, idx) = claimed;
        run_claimed(shared, &sub, idx);
    }
}

/// Solves one claimed output and reports it, catching panics at this
/// pool boundary so a poisoned job can never take a worker (or the
/// service) down with it.
fn run_claimed(shared: &ServiceShared, sub: &Submission, idx: usize) {
    if sub.skip_work() {
        sub.commit_work(idx, 0);
        sub.send_event(idx, Err(StepError::Cancelled));
        return;
    }
    let circuit = sub.circuit_budget_for(idx);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if sub.config.panic_on_output == Some(idx) {
            panic!("injected fault on output {idx}");
        }
        run_queued(
            &sub.aig,
            &sub.config,
            shared.store.serves_results().then_some(&*shared.store),
            sub.reuse.as_ref(),
            idx,
            sub.op,
            &circuit,
        )
    }));
    let result = match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(StepError::Internal(format!(
                "worker panicked on output {idx}: {msg}"
            )))
        }
    };
    // Resolve the two-phase work reservation: the actual conflicts on
    // success, zero on failure (a panic loses its meter; the
    // submission is poisoned either way, so remaining outputs skip).
    sub.commit_work(idx, result.as_ref().map_or(0, |r| r.effort.conflicts));
    if let Ok(r) = &result {
        // Feed the cost model: exact history for this cone, bucket
        // EWMA for its support class (cache hits only update the
        // former — they say nothing about intrinsic difficulty).
        shared.cost_model.record(
            r.fingerprint,
            r.support,
            r.effort.conflicts,
            r.cache == CacheLookup::Hit,
        );
    }
    if result.is_err() {
        // Fail fast within the submission (the legacy poisoning rule):
        // outputs claimed after this point are skipped as Cancelled.
        sub.poisoned.store(true, Ordering::Release);
    }
    sub.send_event(idx, result);
}

/// The caller's side of one submission: stream events with
/// [`recv`](SubmissionHandle::recv) (completion order), block with
/// [`join`](SubmissionHandle::join) (output order), or abort with
/// [`cancel`](SubmissionHandle::cancel). The two consumption styles
/// compose: `join` folds in everything `recv` already returned.
pub struct SubmissionHandle {
    sub: Arc<Submission>,
    rx: Receiver<OutputEvent>,
    /// Results gathered so far, indexed by output; `join` completes
    /// and consumes them.
    slots: Vec<Option<Result<OutputResult, StepError>>>,
}

impl fmt::Debug for SubmissionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmissionHandle")
            .field("id", &self.sub.id)
            .field("outputs", &self.sub.n_out)
            .field(
                "received",
                &self.slots.iter().filter(|s| s.is_some()).count(),
            )
            .finish()
    }
}

impl SubmissionHandle {
    /// This submission's id within its service.
    pub fn id(&self) -> SubmissionId {
        self.sub.id
    }

    /// Number of primary outputs the submission will report (after
    /// combinational conversion).
    pub fn num_outputs(&self) -> usize {
        self.sub.n_out
    }

    /// Requests cancellation: no further outputs of this submission
    /// will be solved (in-flight ones finish under their budgets), and
    /// [`join`](SubmissionHandle::join) will return
    /// [`StepError::Cancelled`]. The remaining outputs are drained
    /// (claimed and skipped) right here, so a cancelled submission
    /// resolves immediately even while the pool is busy with work
    /// queued ahead of it. Idempotent; never blocks on solving.
    pub fn cancel(&self) {
        self.sub.cancelled.store(true, Ordering::Release);
        // Claims are atomic, so racing the workers (or a second
        // cancel) is fine: every index is reported exactly once,
        // whether by a worker (in-flight solve or skip-marker) or by
        // this drain.
        self.sub.drain_cancelled();
    }

    /// A detachable cancellation token for this submission: lets
    /// another thread (e.g. a serve connection reader) cancel while
    /// this handle blocks in [`recv`](SubmissionHandle::recv) or
    /// [`join`](SubmissionHandle::join).
    pub fn canceller(&self) -> Canceller {
        Canceller {
            sub: Arc::clone(&self.sub),
        }
    }

    /// Whether [`cancel`](SubmissionHandle::cancel) was called (or the
    /// service was dropped with this submission still queued). A
    /// cancel that landed after every output had already completed
    /// still reads `true` here, but [`join`](SubmissionHandle::join)
    /// will return the full result — it reports
    /// [`StepError::Cancelled`] only when an output was really
    /// skipped.
    pub fn is_cancelled(&self) -> bool {
        self.sub.cancelled.load(Ordering::Acquire)
    }

    fn record(&mut self, event: &OutputEvent) {
        self.slots[event.output_index] = Some(event.result.clone());
    }

    /// Blocks for the next completed output, in completion order.
    /// Returns `None` once every output has been reported.
    pub fn recv(&mut self) -> Option<OutputEvent> {
        match self.rx.recv() {
            Ok(event) => {
                self.record(&event);
                Some(event)
            }
            Err(_) => None,
        }
    }

    /// Non-blocking [`recv`](SubmissionHandle::recv): `None` when no
    /// event is ready right now (which does not mean the submission is
    /// finished — use `recv` or [`join`](SubmissionHandle::join) to
    /// drain to completion).
    pub fn try_recv(&mut self) -> Option<OutputEvent> {
        match self.rx.try_recv() {
            Ok(event) => {
                self.record(&event);
                Some(event)
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the whole submission is done and returns the
    /// output-ordered [`CircuitResult`] — exactly what the legacy
    /// [`decompose_circuit`] returns for the same `(circuit, op,
    /// config)`, wall-clock cells aside.
    ///
    /// # Errors
    ///
    /// [`StepError::Cancelled`] if cancellation actually skipped any
    /// output (a cancel that lost the race — every output had already
    /// completed — returns the full result instead of discarding it);
    /// otherwise the lowest-indexed failing output's error (the legacy
    /// fail-fast rule), [`StepError::Internal`] for caught worker
    /// panics included.
    ///
    /// [`decompose_circuit`]: crate::BiDecomposer::decompose_circuit
    pub fn join(mut self) -> Result<CircuitResult, StepError> {
        while self.recv().is_some() {}
        // Deterministic error reporting, a pure function of the
        // delivered events: a real failure on the lowest-indexed
        // output wins over skip-markers regardless of completion
        // order, and Cancelled is reported only when some output was
        // really skipped — not when a cancel (or service drop) raced
        // in after the last output had already finished.
        let mut skipped = false;
        for slot in &mut self.slots {
            match slot {
                Some(Err(StepError::Cancelled)) => skipped = true,
                Some(Err(_)) => return Err(slot.take().expect("checked Some").unwrap_err()),
                _ => {}
            }
        }
        if skipped {
            return Err(StepError::Cancelled);
        }
        let mut outputs = Vec::with_capacity(self.slots.len());
        let mut timed_out = false;
        for slot in &mut self.slots {
            let r = slot.take().expect("every output produced an event")?;
            timed_out |= r.timed_out;
            outputs.push(r);
        }
        // True wall clock of the submission: first claim to last
        // event, not to this (possibly much later) join call — sweep
        // harnesses join handles in table order long after the pool
        // finished them.
        let started = self
            .sub
            .started
            .get()
            .copied()
            .unwrap_or(self.sub.submitted);
        let cpu = self
            .sub
            .finished
            .get()
            .map_or_else(|| started.elapsed(), |f| f.duration_since(started));
        Ok(CircuitResult {
            outputs,
            cpu,
            queue_wait: started.saturating_duration_since(self.sub.submitted),
            timed_out,
        })
    }
}

/// A cloneable cancellation token detached from its
/// [`SubmissionHandle`] (which is consumed by `join` and not `Sync`):
/// serve front-ends hand one to the connection reader so a client's
/// cancel frame can stop a submission mid-stream.
#[derive(Clone)]
pub struct Canceller {
    sub: Arc<Submission>,
}

impl fmt::Debug for Canceller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Canceller")
            .field("id", &self.sub.id)
            .finish()
    }
}

impl Canceller {
    /// The submission this token cancels.
    pub fn id(&self) -> SubmissionId {
        self.sub.id
    }

    /// Same semantics as [`SubmissionHandle::cancel`]: idempotent,
    /// never blocks on solving.
    pub fn cancel(&self) {
        self.sub.cancelled.store(true, Ordering::Release);
        self.sub.drain_cancelled();
    }
}

/// Streaming consumption as an iterator (completion order); iterate
/// `&mut handle` to keep the handle for a final
/// [`join`](SubmissionHandle::join).
impl Iterator for SubmissionHandle {
    type Item = OutputEvent;

    fn next(&mut self) -> Option<OutputEvent> {
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Model;
    use std::time::Duration;

    /// `f = (a&b)|(c&d)`, `g = (a&c)|(b&d)` — two decomposable,
    /// structurally identical (permuted-input) outputs.
    fn twin_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let cd = aig.and(c, d);
        let f = aig.or(ab, cd);
        aig.add_output("f", f);
        let ac = aig.and(a, c);
        let bd = aig.and(b, d);
        let g = aig.or(ac, bd);
        aig.add_output("g", g);
        aig
    }

    fn config(model: Model) -> DecompConfig {
        DecompConfig::new(model)
    }

    #[test]
    fn submit_join_matches_the_engine() {
        let aig = twin_aig();
        let service = StepService::new(2);
        let handle = service
            .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
            .unwrap();
        let via_service = handle.join().unwrap();
        let via_engine = crate::BiDecomposer::new(config(Model::QbfDisjoint))
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();
        assert_eq!(via_service.outputs.len(), via_engine.outputs.len());
        for (s, e) in via_service.outputs.iter().zip(&via_engine.outputs) {
            assert_eq!(s.name, e.name);
            assert_eq!(s.partition, e.partition);
            assert_eq!(s.solved, e.solved);
            assert_eq!(s.proved_optimal, e.proved_optimal);
            assert_eq!(s.sat_calls, e.sat_calls);
        }
    }

    #[test]
    fn streaming_reports_every_output_exactly_once() {
        let aig = twin_aig();
        let service = StepService::new(2);
        let mut handle = service
            .submit(&aig, GateOp::Or, config(Model::MusGroup))
            .unwrap();
        assert_eq!(handle.num_outputs(), 2);
        let mut seen = vec![0usize; 2];
        while let Some(event) = handle.recv() {
            assert_eq!(event.submission, handle.id());
            seen[event.output_index] += 1;
            assert!(event.result.unwrap().solved);
        }
        assert_eq!(seen, vec![1, 1], "one event per output");
        // recv() drained everything; join still reproduces the full
        // output-ordered result from its slots.
        let result = handle.join().unwrap();
        assert_eq!(result.outputs.len(), 2);
        assert_eq!(result.num_decomposed(), 2);
    }

    #[test]
    fn join_reports_completion_time_not_join_time() {
        // Sweep harnesses join handles long after the pool finished
        // them; cpu must be first-claim → last-event, not → join().
        let aig = twin_aig();
        let service = StepService::new(2);
        let mut handle = service
            .submit(&aig, GateOp::Or, config(Model::MusGroup))
            .unwrap();
        // Drain the stream so the submission is provably finished...
        while handle.recv().is_some() {}
        // ...then sit on the handle before joining.
        std::thread::sleep(std::time::Duration::from_millis(120));
        let result = handle.join().unwrap();
        assert!(
            result.cpu < std::time::Duration::from_millis(100),
            "cpu {:?} must not include the idle wait before join",
            result.cpu
        );
    }

    #[test]
    fn cancel_drains_the_stream_synchronously() {
        // cancel() claims and skips every not-yet-claimed output right
        // away, so a cancelled submission resolves without waiting for
        // the pool to reach it in FIFO order: after cancel() returns,
        // draining the stream terminates and join is immediate.
        let aig = twin_aig();
        let service = StepService::new(1);
        // Queue several submissions ahead so the single worker is busy
        // (or at least behind) when the last one is cancelled.
        let ahead: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
                    .unwrap()
            })
            .collect();
        let mut last = service
            .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
            .unwrap();
        last.cancel();
        // Every event is deliverable now (worker-solved or drained as
        // Cancelled by cancel itself) — recv() must terminate.
        let mut events = 0;
        while last.recv().is_some() {
            events += 1;
        }
        assert_eq!(events, 2, "one event per output, cancelled included");
        match last.join() {
            Err(StepError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        for h in ahead {
            assert_eq!(h.join().unwrap().num_decomposed(), 2);
        }
    }

    #[test]
    fn zero_output_circuits_complete_immediately() {
        let mut aig = Aig::new();
        aig.add_input("a");
        let service = StepService::new(1);
        let mut handle = service
            .submit(&aig, GateOp::Or, config(Model::MusGroup))
            .unwrap();
        assert!(handle.recv().is_none());
        let result = handle.join().unwrap();
        assert!(result.outputs.is_empty());
        assert!(!result.timed_out);
    }

    #[test]
    fn cancelled_submission_returns_cancelled_and_pool_survives() {
        let aig = twin_aig();
        let service = StepService::new(1);
        // A guard submission occupies the single worker, so the cancel
        // below provably lands before any of the target's outputs is
        // claimed (join reports Cancelled only for real skips).
        let guard = service
            .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
            .unwrap();
        let handle = service
            .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
            .unwrap();
        handle.cancel();
        assert!(handle.is_cancelled());
        match handle.join() {
            Err(StepError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(guard.join().unwrap().num_decomposed(), 2);
        // The pool keeps serving later submissions.
        let after = service
            .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(after.num_decomposed(), 2);
    }

    #[test]
    fn worker_panic_is_contained_to_its_submission() {
        // Quiet the default panic-to-stderr hook for the injected
        // fault, restoring it afterwards.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let aig = twin_aig();
        let service = StepService::new(2);
        let mut poisoned = config(Model::MusGroup);
        poisoned.panic_on_output = Some(0);
        let bad = service.submit(&aig, GateOp::Or, poisoned).unwrap();
        let err = bad.join().unwrap_err();
        std::panic::set_hook(hook);
        match &err {
            StepError::Internal(msg) => {
                assert!(msg.contains("panicked on output 0"), "{msg}");
                assert!(msg.contains("injected fault"), "{msg}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The same service (same worker threads) still serves clean
        // submissions afterwards.
        let good = service
            .submit(&aig, GateOp::Or, config(Model::MusGroup))
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(good.num_decomposed(), 2);
    }

    #[test]
    fn expired_deadline_reports_timeouts_not_errors() {
        let aig = twin_aig();
        let service = StepService::new(1);
        let handle = service
            .submit_with_deadline(
                &aig,
                GateOp::Or,
                config(Model::QbfDisjoint),
                Instant::now() - Duration::from_secs(1),
            )
            .unwrap();
        let result = handle.join().unwrap();
        assert!(result.timed_out);
        for out in &result.outputs {
            assert!(out.timed_out, "output {} skipped by deadline", out.name);
            assert!(!out.solved);
            assert_eq!(out.support, 4, "real cone support still reported");
        }
    }

    /// A detached submission shell for exercising the queue-ordering
    /// rule in isolation (never enqueued on a live service).
    fn rank_sub(id: u64, deadline: Option<Instant>) -> Submission {
        tenant_sub(id, deadline, None, 0)
    }

    /// [`rank_sub`] with a tenant tag and predicted cost, for the
    /// fair-share ordering tests.
    fn tenant_sub(
        id: u64,
        deadline: Option<Instant>,
        tenant: Option<&str>,
        cost: u64,
    ) -> Submission {
        let (tx, _rx) = channel();
        Submission {
            id: SubmissionId(id),
            aig: Arc::new(twin_aig()),
            op: GateOp::Or,
            config: config(Model::MusGroup),
            deadline_policy: deadline.map_or(DeadlinePolicy::Budget, DeadlinePolicy::Explicit),
            ledger: None,
            tenant: tenant.map(Arc::from),
            cost,
            started: OnceLock::new(),
            finished: OnceLock::new(),
            submitted: Instant::now(),
            n_out: 2,
            reuse: None,
            next: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            sent: AtomicUsize::new(0),
            events: Mutex::new(Some(tx)),
        }
    }

    #[test]
    fn queue_rank_is_nonpreemptive_edf() {
        let now = Instant::now();
        let fifo_old = rank_sub(0, None);
        let fifo_new = rank_sub(3, None);
        let loose = rank_sub(1, Some(now + Duration::from_secs(3600)));
        let tight = rank_sub(2, Some(now + Duration::from_secs(60)));
        // EDF among unstarted: tighter deadline first, deadlined before
        // deadline-less, FIFO by id among the deadline-less.
        assert!(tight.claims_before(&loose), "earlier deadline wins");
        assert!(loose.claims_before(&fifo_old), "deadlined before FIFO");
        assert!(fifo_old.claims_before(&fifo_new), "FIFO by submit order");
        assert!(!fifo_new.claims_before(&fifo_old));
        // Non-preemption: once a submission has a claim out, its
        // per-circuit budget is anchored and ticking — nothing jumps
        // ahead of it, not even a tighter deadline.
        fifo_old.next.fetch_add(1, Ordering::AcqRel);
        assert!(
            fifo_old.claims_before(&tight),
            "a started submission is never preempted"
        );
        tight.next.fetch_add(1, Ordering::AcqRel);
        assert!(
            tight.claims_before(&fifo_old),
            "among started submissions the deadline rules again"
        );
    }

    #[test]
    fn equal_deadlines_tie_break_by_submission_id() {
        // The documented stable order: among equal (or absent)
        // deadlines, the monotone submission id decides — never
        // insertion accidents or pointer order.
        let d = Instant::now() + Duration::from_secs(60);
        let first = rank_sub(1, Some(d));
        let second = rank_sub(2, Some(d));
        assert!(
            first.claims_before(&second),
            "equal deadlines: lower id first"
        );
        assert!(!second.claims_before(&first));
        // The same rule holds among started submissions...
        first.next.fetch_add(1, Ordering::AcqRel);
        second.next.fetch_add(1, Ordering::AcqRel);
        assert!(first.claims_before(&second));
        // ...and the rank is a strict total order: a submission never
        // claims before itself.
        assert!(!first.claims_before(&first));
        assert_eq!(first.queue_rank(), first.queue_rank());
    }

    #[test]
    fn drr_alternates_tenants_instead_of_fifo() {
        // Tenant A floods the queue first; tenant B arrives later.
        // Plain FIFO would drain all of A before B; DRR alternates.
        let mut state = QueueState {
            items: VecDeque::new(),
            drr: DrrState::default(),
        };
        for id in 0..3 {
            state
                .items
                .push_back(Arc::new(tenant_sub(id, None, Some("a"), 100)));
        }
        for id in 3..6 {
            state
                .items
                .push_back(Arc::new(tenant_sub(id, None, Some("b"), 100)));
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let i = select_next(&mut state).expect("work queued");
            let sub = state.items.remove(i).expect("selected index valid");
            order.push(sub.tenant.as_deref().expect("tagged").to_owned());
        }
        assert_eq!(
            order,
            ["a", "b", "a", "b", "a", "b"],
            "equal-cost tenants must alternate"
        );
    }

    #[test]
    fn drr_gives_cheap_tenant_more_turns_than_expensive_one() {
        // Tenant "big" queues 1000-conflict circuits, tenant "small"
        // 10-conflict ones: over one big service, the small tenant
        // should get through many submissions per big one.
        let mut state = QueueState {
            items: VecDeque::new(),
            drr: DrrState::default(),
        };
        for id in 0..4 {
            state
                .items
                .push_back(Arc::new(tenant_sub(id, None, Some("big"), 1000)));
        }
        for id in 4..12 {
            state
                .items
                .push_back(Arc::new(tenant_sub(id, None, Some("small"), 10)));
        }
        let mut small_before_second_big = 0;
        let mut bigs = 0;
        while bigs < 2 {
            let i = select_next(&mut state).expect("work queued");
            let sub = state.items.remove(i).expect("selected index valid");
            match sub.tenant.as_deref() {
                Some("big") => bigs += 1,
                Some("small") if bigs < 2 => small_before_second_big += 1,
                _ => {}
            }
        }
        assert!(
            small_before_second_big >= 4,
            "cheap tenant got only {small_before_second_big} turns before the second expensive one"
        );
    }

    #[test]
    fn single_tenant_and_untagged_keep_plain_order() {
        // DRR must not engage below two distinct tenants: untagged
        // submissions keep FIFO, a lone tenant gets cheapest-first.
        let mut state = QueueState {
            items: VecDeque::new(),
            drr: DrrState::default(),
        };
        state
            .items
            .push_back(Arc::new(tenant_sub(0, None, None, 0)));
        state
            .items
            .push_back(Arc::new(tenant_sub(1, None, Some("solo"), 5)));
        let i = select_next(&mut state).expect("work queued");
        assert_eq!(
            state.items[i].id.0, 0,
            "one tagged tenant is not enough for DRR"
        );
    }

    #[test]
    fn tighter_deadline_is_claimed_first() {
        // Earliest-deadline-first queue pop: with the single worker
        // pinned on guard submissions, a later-submitted but
        // tighter-deadline submission must start before an earlier,
        // looser one.
        let aig = twin_aig();
        let service = StepService::new(1);
        // Several guards keep the worker busy long enough for the
        // enqueues below to land while it is still solving.
        let guards: Vec<_> = (0..3)
            .map(|_| {
                service
                    .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
                    .unwrap()
            })
            .collect();
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() + Duration::from_secs(600);
        let mut loose = service
            .submit_with_deadline(&aig, GateOp::Or, config(Model::QbfDisjoint), far)
            .unwrap();
        let mut tight = service
            .submit_with_deadline(&aig, GateOp::Or, config(Model::QbfDisjoint), near)
            .unwrap();
        let mut fifo = service
            .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
            .unwrap();
        // Drain the streams (join would consume the handles).
        while tight.recv().is_some() {}
        while loose.recv().is_some() {}
        while fifo.recv().is_some() {}
        for g in guards {
            g.join().unwrap();
        }
        // `started` stamps the first claim of each submission; with
        // one worker those claims are strictly ordered: the tight
        // deadline before the loose one, both before the deadline-less
        // FIFO straggler.
        let started = |h: &SubmissionHandle| *h.sub.started.get().expect("submission ran");
        assert!(
            started(&tight) < started(&loose),
            "tighter deadline must be claimed first"
        );
        assert!(
            started(&loose) < started(&fifo),
            "deadlined submissions go before deadline-less ones"
        );
    }

    #[test]
    fn dropping_the_service_cancels_queued_submissions() {
        let aig = twin_aig();
        let service = StepService::new(1);
        // Enqueue more work than one worker can finish instantly, then
        // drop the service; every handle must resolve (no wedged
        // receivers), either with a result or with Cancelled.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                service
                    .submit(&aig, GateOp::Or, config(Model::QbfDisjoint))
                    .unwrap()
            })
            .collect();
        service.shutdown();
        let mut cancelled = 0;
        for handle in handles {
            match handle.join() {
                Ok(r) => assert_eq!(r.outputs.len(), 2),
                Err(StepError::Cancelled) => cancelled += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(cancelled > 0, "the drop must have caught some submissions");
    }
}
