//! Cross-output clause reuse: the sharded [`ClauseBank`] of donated
//! learnt clauses and the per-submission [`OraclePool`] of live
//! incremental oracles.
//!
//! Sessions solve every cone in *canonical* input order (PR 3), so a
//! [`PartitionOracle`]'s CNF is a pure function of
//! `(canonical fingerprint, op)`: `α` variables first, then `β`, then
//! Tseitin auxiliaries in deterministic AIG order. A completed
//! session's tier-core learnt clauses are therefore already expressed
//! in canonical-cone variable space and can be handed to any later
//! oracle with no mapping at all. The bank stores them on two
//! channels:
//!
//! * **exact** — keyed by `(fingerprint, op)`. The recipient's CNF is
//!   var-for-var identical to the donor's, so clauses import verbatim
//!   ([`PartitionOracle::import_learnts`]). Deliberately *looser* than
//!   the result cache's key (no model/strategy/seed): a sweep running
//!   five models over the same circuit gets verbatim imports the
//!   exact-result cache can never serve.
//! * **cluster** — keyed by `(op, support size)`, a small ring of
//!   recent donors per cluster. A *near*-twin cone (shared
//!   substructure, different fingerprint) carries no implication
//!   guarantee, so every clause is **vetted** before use
//!   ([`PartitionOracle::import_vetted`]): a bounded refutation probe
//!   proves the recipient's own clauses imply it, or it is discarded.
//! * **probe certificates** — keyed by `(fingerprint, op, solver
//!   knobs, target)`. A QBF probe's outcome is a pure function of
//!   that key when no budget truncates it (the CEGAR engine is
//!   deterministic), so a definitive verdict — infeasible, or
//!   *exactly this partition* — replays into any later session's
//!   optimum search with no solving at all ([`ProbeLedger`]). This is
//!   where twin-heavy circuits win big: a twin cone's `k`-search
//!   re-runs its sibling's probes as lookups, skipping the
//!   abstraction-side UNSAT proofs that dominate QBF-model cost.
//!
//! Both channels add only clauses *implied by the recipient's CNF*,
//! so verdicts and partitions are byte-identical with reuse on or off
//! — reuse changes how much work an answer costs, never the answer.
//! At `jobs = 1` even the conflict counts are deterministic (bank
//! content evolves in output order); at `jobs > 1` the bank's content
//! when a given output looks up depends on sibling completion order,
//! so conflict *counts* may vary run-to-run exactly like cache-hit
//! accounting under the shared wall deadline. Under a *binding*
//! `Work` budget, fewer conflicts per verdict can also shift which
//! call a truncation lands on — the reuse analogue of comparing runs
//! across budgets.
//!
//! The CEGAR abstraction solvers of the QBF models are deliberately
//! **not** seeded: a QBF partition *is* the abstraction solver's
//! model, and importing clauses there would steer which equally-valid
//! witness is found first — violating the identical-partitions
//! contract. The [`PartitionOracle`] is safe to seed because every
//! strategy consumes only its SAT/UNSAT verdicts. The CEGAR layer
//! instead participates through its *check side*: exact-channel
//! entries carry an optional second snapshot of counterexample-check
//! learnt clauses, harvested from a session's persistent
//! [`CounterexampleRefuter`](step_qbf::CounterexampleRefuter) and used
//! to warm the next session's refuter over the identical check CNF.
//! The refuter contributes only UNSAT answers (semantically
//! determined), so this too changes cost, never answers. Check-side
//! clauses ride the exact channel only — they live in the check CNF's
//! variable space, not the oracle's, so cluster-channel vetting could
//! never apply to them.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use step_aig::ConeFingerprint;
use step_sat::{LearntExport, RestartPolicy};

use crate::oracle::PartitionOracle;
use crate::partition::VarClass;
use crate::qbf_model::Target;
use crate::spec::GateOp;

/// Number of independently-locked bank shards.
pub const NUM_SHARDS: usize = 16;

/// Donors retained per `(op, support)` cluster ring.
const CLUSTER_DONORS: usize = 4;

/// Live oracles retained per [`OraclePool`].
const POOL_CAPACITY: usize = 32;

/// Probe certificates retained per shard (FIFO beyond this).
const PROBES_PER_SHARD: usize = 4096;

/// Identity of one donation: the canonical cone and the operator its
/// oracle CNF encodes. Everything else (model, strategy, seed,
/// budgets) is irrelevant — the oracle CNF does not depend on it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BankKey {
    /// Canonical structural identity of the cone.
    pub fingerprint: ConeFingerprint,
    /// Root operator (selects the core formula).
    pub op: GateOp,
}

/// A successful bank lookup: the donated snapshot plus which channel
/// served it (exact donors import verbatim, cluster donors must be
/// vetted clause-by-clause).
#[derive(Clone, Debug)]
pub struct BankHit {
    /// The donated clauses and activity hints.
    pub export: Arc<LearntExport>,
    /// `true` = exact channel (identical CNF, verbatim import).
    pub exact: bool,
    /// Counterexample-check learnt clauses (exact channel only): a
    /// snapshot of the donor session's refuter, expressed over the
    /// check CNF's own variable space.
    pub check: Option<Arc<LearntExport>>,
}

/// How one output's solve interacted with the clause bank and oracle
/// pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BankLookup {
    /// Clause reuse disabled, or the output never reached the bank
    /// (trivial cone, result-cache hit, expired budget).
    #[default]
    Bypass,
    /// Looked up, no donor available; solved cold (and donated after).
    Miss,
    /// Seeded verbatim from an exact (same-fingerprint) donor.
    Exact,
    /// Seeded from a near-twin donor after per-clause vetting.
    Cluster,
    /// Re-used a live pooled oracle from a sibling with the same
    /// fingerprint — no rebuild, no bank lookup needed.
    Pooled,
}

impl BankLookup {
    /// Whether this output was seeded or re-used at all.
    pub fn is_hit(self) -> bool {
        matches!(
            self,
            BankLookup::Exact | BankLookup::Cluster | BankLookup::Pooled
        )
    }
}

/// Everything besides the cone identity that a QBF probe's outcome
/// depends on: the CEGAR engine is deterministic, so the result of
/// [`solve_partition`](crate::qbf_model::solve_partition) is a pure
/// function of `(canonical cone, op, target, these knobs)` whenever no
/// budget truncates the solve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProbeCfg {
    /// `|XA| ≥ |XB|` symmetry breaking.
    pub symmetry_breaking: bool,
    /// Allow `(αᵢ, βᵢ) = (1,1)`.
    pub allow_both: bool,
    /// Restart policy of the inner SAT solvers.
    pub restarts: RestartPolicy,
    /// Bounded root-level preprocessing in the inner SAT solvers.
    pub preprocess: bool,
}

/// A recorded probe outcome — a *semantic certificate* about the cone,
/// never a heuristic: `Infeasible` is an UNSAT proof of formulation
/// (4) at the target, `Feasible` is the exact partition the
/// deterministic solve returns.
#[derive(Clone, Debug)]
pub enum ProbeVerdict {
    /// The cone admits no partition meeting the target.
    Infeasible,
    /// The deterministic CEGAR solve returns exactly this partition
    /// (canonical input order, pre-normalization).
    Feasible(Vec<VarClass>),
}

/// A session's handle for probe-certificate reuse: the tiered store
/// plus the cone identity and solver knobs every probe of the session
/// shares. Built by [`SolveSession`](crate::session::SolveSession) and
/// threaded through the optimum search alongside the refuter.
pub struct ProbeLedger {
    store: Arc<crate::store::TieredStore>,
    ns: crate::store::Namespace,
    fingerprint: ConeFingerprint,
    op: GateOp,
    /// Probe certificates served from the disk tier, shared with the
    /// owning session (the ledger is strategy-local and dropped before
    /// the session aggregates statistics).
    disk_hits: Arc<std::sync::atomic::AtomicU64>,
}

impl ProbeLedger {
    /// A ledger for one session's probes.
    pub fn new(
        store: Arc<crate::store::TieredStore>,
        fingerprint: ConeFingerprint,
        op: GateOp,
        cfg: ProbeCfg,
        disk_hits: Arc<std::sync::atomic::AtomicU64>,
    ) -> Self {
        ProbeLedger {
            store,
            ns: crate::store::Namespace::probes(cfg),
            fingerprint,
            op,
            disk_hits,
        }
    }

    /// The recorded verdict for `target`, if any sibling (or a prior
    /// run, through the disk tier) solved it.
    pub fn lookup(&self, target: Target) -> Option<ProbeVerdict> {
        use crate::store::{Artifact, ArtifactKey, ArtifactStore};
        let key = ArtifactKey::probe(self.fingerprint, self.op, target)?;
        let hit = self.store.get(&self.ns, &key)?;
        if hit.from_disk {
            self.disk_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        match hit.artifact {
            Artifact::Probe(v) => Some(v),
            _ => None,
        }
    }

    /// Records a definitive probe outcome (never record timeouts: a
    /// truncation is budget state, not a fact about the cone).
    pub fn record(&self, target: Target, verdict: ProbeVerdict) {
        use crate::store::{Artifact, ArtifactKey, ArtifactStore};
        let Some(key) = ArtifactKey::probe(self.fingerprint, self.op, target) else {
            return;
        };
        self.store.put(&self.ns, &key, Artifact::Probe(verdict));
    }
}

struct ExactSlot {
    export: Arc<LearntExport>,
    /// Check-side (refuter) snapshot, if the donor ran a QBF model.
    check: Option<Arc<LearntExport>>,
    /// Second-chance bit: set on every hit, cleared once by the clock
    /// hand before the entry becomes evictable.
    referenced: bool,
}

/// Key of one probe certificate: the cone, the solver knobs and the
/// target probed.
type ProbeKey = (BankKey, ProbeCfg, Target);

/// One cluster's donor ring: `(fingerprint hash, export)`, newest at
/// the back.
type ClusterRing = VecDeque<(u128, Arc<LearntExport>)>;

#[derive(Default)]
struct BankShard {
    exact: HashMap<BankKey, ExactSlot>,
    /// Insertion ring for the exact channel's clock hand.
    ring: VecDeque<BankKey>,
    /// Cluster rings: most recent donors per `(op, support)`, newest
    /// at the back, deduplicated by fingerprint hash.
    clusters: HashMap<(GateOp, u32), ClusterRing>,
    /// Probe certificates, FIFO-bounded at [`PROBES_PER_SHARD`].
    probes: HashMap<ProbeKey, ProbeVerdict>,
    probe_ring: VecDeque<ProbeKey>,
}

/// The sharded clause bank. See the module docs.
///
/// Create one, wrap it in an [`Arc`] and attach it to engines
/// ([`crate::BiDecomposer::set_clause_bank`]) or services
/// ([`crate::StepService::spawn_with_bank`]) to share donations across
/// outputs, circuits, models and whole sweeps.
pub struct ClauseBank {
    shards: Vec<Mutex<BankShard>>,
    /// Per-shard bound on exact entries (`None` = unbounded). Cluster
    /// rings are bounded by construction ([`CLUSTER_DONORS`] donors
    /// per distinct `(op, support)` pair).
    shard_capacity: Option<usize>,
    exact_hits: AtomicU64,
    cluster_hits: AtomicU64,
    misses: AtomicU64,
    donations: AtomicU64,
    evictions: AtomicU64,
    probe_hits: AtomicU64,
    probe_records: AtomicU64,
}

impl Default for ClauseBank {
    fn default() -> Self {
        Self::new()
    }
}

impl ClauseBank {
    /// An unbounded bank.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A bank holding at most `capacity` exact entries (rounded up to
    /// a multiple of [`NUM_SHARDS`]), evicting with second chance.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(Some(capacity.div_ceil(NUM_SHARDS).max(1)))
    }

    fn build(shard_capacity: Option<usize>) -> Self {
        ClauseBank {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(BankShard::default()))
                .collect(),
            shard_capacity,
            exact_hits: AtomicU64::new(0),
            cluster_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            donations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            probe_hits: AtomicU64::new(0),
            probe_records: AtomicU64::new(0),
        }
    }

    /// Shard by `(op, support)` so a cluster ring and every exact key
    /// that could feed it live under one lock.
    fn shard(&self, op: GateOp, support: u32) -> &Mutex<BankShard> {
        let op_ix = match op {
            GateOp::Or => 0usize,
            GateOp::And => 1,
            GateOp::Xor => 2,
        };
        &self.shards[((support as usize).wrapping_mul(3) + op_ix) % NUM_SHARDS]
    }

    /// Publishes a completed session's snapshot on both channels:
    /// oracle clauses on exact + cluster, the optional check-side
    /// (refuter) snapshot on exact only — it lives in the check CNF's
    /// variable space and could never be vetted against an oracle CNF.
    /// Snapshots empty on both sides are dropped — they could only
    /// evict something useful.
    pub fn donate(
        &self,
        fingerprint: ConeFingerprint,
        op: GateOp,
        export: LearntExport,
        check: Option<LearntExport>,
    ) {
        let check = check.filter(|c| !c.is_empty()).map(Arc::new);
        if export.is_empty() && check.is_none() {
            return;
        }
        let key = BankKey { fingerprint, op };
        let export = Arc::new(export);
        let mut shard = self
            .shard(op, fingerprint.inputs)
            .lock()
            .expect("bank shard poisoned");
        // Cluster channel: newest donor at the back, one entry per
        // fingerprint (a re-donation refreshes in place).
        if !export.is_empty() {
            let ring = shard.clusters.entry((op, fingerprint.inputs)).or_default();
            ring.retain(|(h, _)| *h != fingerprint.hash);
            ring.push_back((fingerprint.hash, Arc::clone(&export)));
            while ring.len() > CLUSTER_DONORS {
                ring.pop_front();
            }
        }
        // Exact channel, second-chance bounded like the result cache.
        // A re-donation refreshes each side it actually carries, so a
        // later SAT-only model never wipes a QBF donor's check payload.
        if let Some(slot) = shard.exact.get_mut(&key) {
            if !export.is_empty() {
                slot.export = export;
            }
            if check.is_some() {
                slot.check = check;
            }
            self.donations.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(cap) = self.shard_capacity {
            while shard.exact.len() >= cap {
                let Some(victim) = shard.ring.pop_front() else {
                    break;
                };
                let evict = match shard.exact.get_mut(&victim) {
                    Some(slot) if slot.referenced => {
                        slot.referenced = false;
                        false
                    }
                    Some(_) => true,
                    None => continue,
                };
                if evict {
                    shard.exact.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    shard.ring.push_back(victim);
                }
            }
        }
        shard.ring.push_back(key);
        shard.exact.insert(
            key,
            ExactSlot {
                export,
                check,
                referenced: false,
            },
        );
        self.donations.fetch_add(1, Ordering::Relaxed);
    }

    /// Finds the best donor for `(fingerprint, op)`: the exact channel
    /// first (identical CNF), then the most recent cluster donor with
    /// a *different* fingerprint (the same one would have hit exact).
    pub fn lookup(&self, fingerprint: ConeFingerprint, op: GateOp) -> Option<BankHit> {
        let key = BankKey { fingerprint, op };
        let mut shard = self
            .shard(op, fingerprint.inputs)
            .lock()
            .expect("bank shard poisoned");
        if let Some(slot) = shard.exact.get_mut(&key) {
            slot.referenced = true;
            self.exact_hits.fetch_add(1, Ordering::Relaxed);
            return Some(BankHit {
                export: Arc::clone(&slot.export),
                exact: true,
                check: slot.check.as_ref().map(Arc::clone),
            });
        }
        if let Some(ring) = shard.clusters.get(&(op, fingerprint.inputs)) {
            if let Some((_, export)) = ring.iter().rev().find(|(h, _)| *h != fingerprint.hash) {
                self.cluster_hits.fetch_add(1, Ordering::Relaxed);
                return Some(BankHit {
                    export: Arc::clone(export),
                    exact: false,
                    check: None,
                });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a probe certificate for `(fingerprint, op, cfg, target)`
    /// (last writer wins — all writers hold the same certificate, the
    /// outcome being a pure function of the key).
    pub fn record_probe(
        &self,
        fingerprint: ConeFingerprint,
        op: GateOp,
        cfg: ProbeCfg,
        target: Target,
        verdict: ProbeVerdict,
    ) {
        let key = (BankKey { fingerprint, op }, cfg, target);
        let mut shard = self
            .shard(op, fingerprint.inputs)
            .lock()
            .expect("bank shard poisoned");
        if shard.probes.insert(key, verdict).is_none() {
            shard.probe_ring.push_back(key);
        }
        while shard.probes.len() > PROBES_PER_SHARD {
            let Some(victim) = shard.probe_ring.pop_front() else {
                break;
            };
            shard.probes.remove(&victim);
        }
        self.probe_records.fetch_add(1, Ordering::Relaxed);
    }

    /// The recorded certificate for `(fingerprint, op, cfg, target)`.
    pub fn lookup_probe(
        &self,
        fingerprint: ConeFingerprint,
        op: GateOp,
        cfg: ProbeCfg,
        target: Target,
    ) -> Option<ProbeVerdict> {
        let key = (BankKey { fingerprint, op }, cfg, target);
        let shard = self
            .shard(op, fingerprint.inputs)
            .lock()
            .expect("bank shard poisoned");
        let hit = shard.probes.get(&key).cloned();
        if hit.is_some() {
            self.probe_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Probe-certificate hits since creation.
    pub fn probe_hits(&self) -> u64 {
        self.probe_hits.load(Ordering::Relaxed)
    }

    /// Probe certificates recorded since creation.
    pub fn probe_records(&self) -> u64 {
        self.probe_records.load(Ordering::Relaxed)
    }

    /// Exact-channel hits since creation.
    pub fn exact_hits(&self) -> u64 {
        self.exact_hits.load(Ordering::Relaxed)
    }

    /// Cluster-channel (vetted near-twin) hits since creation.
    pub fn cluster_hits(&self) -> u64 {
        self.cluster_hits.load(Ordering::Relaxed)
    }

    /// Total hits on either channel.
    pub fn hits(&self) -> u64 {
        self.exact_hits() + self.cluster_hits()
    }

    /// Lookups that found no donor.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshots donated since creation.
    pub fn donations(&self) -> u64 {
        self.donations.load(Ordering::Relaxed)
    }

    /// Exact entries evicted by the capacity bound since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Exact entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("bank shard poisoned").exact.len())
            .sum()
    }

    /// Whether the exact channel is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured exact-channel capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.shard_capacity.map(|c| c * NUM_SHARDS)
    }
}

impl fmt::Debug for ClauseBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClauseBank")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("exact_hits", &self.exact_hits())
            .field("cluster_hits", &self.cluster_hits())
            .field("misses", &self.misses())
            .field("donations", &self.donations())
            .field("evictions", &self.evictions())
            .field("probe_hits", &self.probe_hits())
            .field("probe_records", &self.probe_records())
            .finish()
    }
}

struct PoolInner {
    map: HashMap<(u128, GateOp), PartitionOracle>,
    /// Insertion order for FIFO eviction.
    ring: VecDeque<(u128, GateOp)>,
}

/// A bounded pool of *live* incremental oracles, keyed by
/// `(canonical fingerprint hash, op)`.
///
/// Within one submission (or one inline circuit run) a completed
/// session parks its oracle here instead of dropping it; a sibling
/// with the same fingerprint takes it and re-solves under assumptions
/// — no CNF rebuild, no clause replay, all learnt state intact. An
/// oracle is removed while in use, so concurrent same-fingerprint
/// workers fall back to fresh construction (plus a bank seed) rather
/// than blocking. The pool is scoped to one `DecompConfig`, so every
/// pooled oracle was built with the same restart/preprocess knobs.
pub struct OraclePool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    reuses: AtomicU64,
}

impl Default for OraclePool {
    fn default() -> Self {
        Self::new()
    }
}

impl OraclePool {
    /// A pool retaining up to `POOL_CAPACITY` (32) oracles.
    pub fn new() -> Self {
        Self::with_capacity(POOL_CAPACITY)
    }

    /// A pool retaining up to `capacity` oracles (at least one),
    /// evicting the oldest.
    pub fn with_capacity(capacity: usize) -> Self {
        OraclePool {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                ring: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            reuses: AtomicU64::new(0),
        }
    }

    /// Takes the live oracle for `(hash, op)`, if one is parked.
    pub fn take(&self, hash: u128, op: GateOp) -> Option<PartitionOracle> {
        let mut inner = self.inner.lock().expect("oracle pool poisoned");
        let oracle = inner.map.remove(&(hash, op));
        if oracle.is_some() {
            inner.ring.retain(|k| *k != (hash, op));
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        oracle
    }

    /// Parks an oracle for later siblings (latest donation wins),
    /// evicting the oldest parked oracle beyond capacity.
    pub fn put(&self, hash: u128, op: GateOp, oracle: PartitionOracle) {
        let mut inner = self.inner.lock().expect("oracle pool poisoned");
        if inner.map.insert((hash, op), oracle).is_none() {
            inner.ring.push_back((hash, op));
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.ring.pop_front() else {
                break;
            };
            inner.map.remove(&victim);
        }
    }

    /// Oracles taken (re-used) since creation.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Oracles currently parked.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("oracle pool poisoned").map.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for OraclePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OraclePool")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("reuses", &self.reuses())
            .finish()
    }
}

/// The reuse handles one session needs: the tiered artifact store
/// (whose tier-0 bank may be run-scoped or sweep-wide, and whose disk
/// tier — if any — spans processes) and the submission-scoped oracle
/// pool. Cheap to clone; built by the engine/service when
/// [`DecompConfig::clause_reuse`](crate::spec::DecompConfig::clause_reuse)
/// is on.
#[derive(Clone, Debug)]
pub struct ReuseCtx {
    /// Donated-clause and probe-certificate storage, shared as widely
    /// as the caller wants. Always carries a clause bank (see
    /// [`TieredStore::reuse_ctx`](crate::store::TieredStore::reuse_ctx)).
    pub store: Arc<crate::store::TieredStore>,
    /// Live-oracle pool, scoped to one submission / circuit run (one
    /// `DecompConfig`, so pooled oracles share solver knobs).
    pub pool: Arc<OraclePool>,
}

impl ReuseCtx {
    /// A memory-only context over `bank` with a fresh (empty) oracle
    /// pool.
    pub fn over(bank: Arc<ClauseBank>) -> Self {
        ReuseCtx {
            store: Arc::new(crate::store::TieredStore::memory(None, Some(bank))),
            pool: Arc::new(OraclePool::new()),
        }
    }

    /// The tier-0 clause bank (always present by construction).
    pub fn bank(&self) -> &Arc<ClauseBank> {
        self.store
            .bank()
            .expect("ReuseCtx stores always carry a bank")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_cnf::{Lit, Var};

    fn fp(hash: u128, inputs: u32) -> ConeFingerprint {
        ConeFingerprint {
            hash,
            inputs,
            ands: 3,
        }
    }

    fn export(tag: u32) -> LearntExport {
        LearntExport {
            clauses: vec![vec![
                Lit::pos(Var::new(tag as usize)),
                Lit::neg(Var::new(0)),
            ]],
            activities: vec![(Var::new(0), 1.0)],
        }
    }

    #[test]
    fn exact_hit_beats_cluster_and_counters_track() {
        let bank = ClauseBank::new();
        assert!(bank.lookup(fp(1, 4), GateOp::Or).is_none());
        bank.donate(fp(1, 4), GateOp::Or, export(1), None);
        bank.donate(fp(2, 4), GateOp::Or, export(2), None);
        let hit = bank.lookup(fp(1, 4), GateOp::Or).expect("exact donor");
        assert!(hit.exact);
        assert_eq!(hit.export.clauses, export(1).clauses);
        // A fingerprint never donated, same (op, support): the newest
        // *other* donor serves it on the cluster channel.
        let near = bank.lookup(fp(9, 4), GateOp::Or).expect("cluster donor");
        assert!(!near.exact);
        assert_eq!(near.export.clauses, export(2).clauses);
        assert_eq!(
            (bank.exact_hits(), bank.cluster_hits(), bank.misses()),
            (1, 1, 1)
        );
        assert_eq!(bank.donations(), 2);
    }

    #[test]
    fn channels_are_keyed_by_op_and_support() {
        let bank = ClauseBank::new();
        bank.donate(fp(1, 4), GateOp::Or, export(1), None);
        assert!(bank.lookup(fp(1, 4), GateOp::And).is_none(), "other op");
        assert!(bank.lookup(fp(9, 5), GateOp::Or).is_none(), "other support");
    }

    #[test]
    fn empty_donations_are_dropped() {
        let bank = ClauseBank::new();
        bank.donate(fp(1, 4), GateOp::Or, LearntExport::default(), None);
        assert_eq!(bank.donations(), 0);
        assert!(bank.lookup(fp(2, 4), GateOp::Or).is_none());
    }

    #[test]
    fn cluster_ring_is_bounded_and_dedups_by_fingerprint() {
        let bank = ClauseBank::new();
        for i in 0..10u32 {
            bank.donate(fp(u128::from(i % 5), 4), GateOp::Or, export(i), None);
        }
        // Ten donations over five fingerprints: the ring holds the
        // most recent CLUSTER_DONORS distinct donors. A lookup from a
        // fresh fingerprint gets the newest donor back.
        let hit = bank.lookup(fp(99, 4), GateOp::Or).expect("donors exist");
        assert!(!hit.exact);
        assert_eq!(hit.export.clauses, export(9).clauses);
    }

    #[test]
    fn exact_capacity_evicts_with_second_chance() {
        // Keys with the same (op, support) land in one shard, so a
        // 2-per-shard bound is exercised directly.
        let bank = ClauseBank::with_capacity(2 * NUM_SHARDS);
        bank.donate(fp(1, 4), GateOp::Or, export(1), None);
        bank.donate(fp(2, 4), GateOp::Or, export(2), None);
        // Touch 1 so it owns a second chance.
        assert!(bank.lookup(fp(1, 4), GateOp::Or).unwrap().exact);
        bank.donate(fp(3, 4), GateOp::Or, export(3), None);
        assert!(bank.lookup(fp(1, 4), GateOp::Or).unwrap().exact);
        assert!(
            !bank.lookup(fp(2, 4), GateOp::Or).unwrap().exact,
            "cold entry evicted from exact; cluster ring still serves it"
        );
        assert!(bank.lookup(fp(3, 4), GateOp::Or).unwrap().exact);
        assert_eq!(bank.evictions(), 1);
    }

    #[test]
    fn check_payload_rides_the_exact_channel_only() {
        let bank = ClauseBank::new();
        bank.donate(fp(1, 4), GateOp::Or, export(1), Some(export(7)));
        let hit = bank.lookup(fp(1, 4), GateOp::Or).expect("exact donor");
        assert_eq!(
            hit.check.expect("check payload round-trips").clauses,
            export(7).clauses
        );
        // A near-twin gets clauses but never the check snapshot: it
        // lives in the donor's check CNF variable space.
        let near = bank.lookup(fp(9, 4), GateOp::Or).expect("cluster donor");
        assert!(near.check.is_none());
        // Re-donation without a check snapshot keeps the earlier one.
        bank.donate(fp(1, 4), GateOp::Or, export(2), None);
        let hit = bank.lookup(fp(1, 4), GateOp::Or).unwrap();
        assert!(hit.check.is_some());
        assert_eq!(hit.export.clauses, export(2).clauses);
    }

    #[test]
    fn probe_certificates_round_trip_and_key_on_cfg() {
        let bank = ClauseBank::new();
        let cfg = ProbeCfg {
            symmetry_breaking: true,
            allow_both: false,
            restarts: RestartPolicy::Luby,
            preprocess: false,
        };
        let t = Target::DisjointAtMost(2);
        assert!(bank.lookup_probe(fp(1, 4), GateOp::Or, cfg, t).is_none());
        bank.record_probe(fp(1, 4), GateOp::Or, cfg, t, ProbeVerdict::Infeasible);
        bank.record_probe(
            fp(1, 4),
            GateOp::Or,
            cfg,
            Target::DisjointAtMost(3),
            ProbeVerdict::Feasible(vec![VarClass::A, VarClass::B, VarClass::C, VarClass::C]),
        );
        assert!(matches!(
            bank.lookup_probe(fp(1, 4), GateOp::Or, cfg, t),
            Some(ProbeVerdict::Infeasible)
        ));
        match bank.lookup_probe(fp(1, 4), GateOp::Or, cfg, Target::DisjointAtMost(3)) {
            Some(ProbeVerdict::Feasible(classes)) => {
                assert_eq!(
                    classes,
                    vec![VarClass::A, VarClass::B, VarClass::C, VarClass::C]
                );
            }
            other => panic!("expected feasible certificate, got {other:?}"),
        }
        // A verdict is a fact about (cone, op, cfg, target) — any other
        // coordinate must miss.
        let other_cfg = ProbeCfg {
            symmetry_breaking: false,
            ..cfg
        };
        assert!(bank
            .lookup_probe(fp(1, 4), GateOp::Or, other_cfg, t)
            .is_none());
        assert!(bank.lookup_probe(fp(2, 4), GateOp::Or, cfg, t).is_none());
        assert!(bank.lookup_probe(fp(1, 4), GateOp::And, cfg, t).is_none());
        assert_eq!((bank.probe_hits(), bank.probe_records()), (2, 2));
    }

    #[test]
    fn bank_lookup_hit_classification() {
        assert!(!BankLookup::Bypass.is_hit());
        assert!(!BankLookup::Miss.is_hit());
        assert!(BankLookup::Exact.is_hit());
        assert!(BankLookup::Cluster.is_hit());
        assert!(BankLookup::Pooled.is_hit());
    }
}
