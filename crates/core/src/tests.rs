use step_aig::{Aig, AigLit};
use step_bdd::Manager;

use crate::effort::EffortMeter;
use crate::engine::BiDecomposer;
use crate::extract::{extract, extract_by_quantification};
use crate::ljh::{self, LjhOutcome};
use crate::mg::{self, MgOutcome};
use crate::optimum::{self, Metric};
use crate::oracle::{sim_filter_pairs, CoreFormula, PartitionOracle};
use crate::partition::{VarClass, VarPartition};
use crate::qbf_model::{solve_partition, ModelOptions, QbfModelOutcome, Target};
use crate::spec::{Budget, BudgetPolicy, DecompConfig, GateOp, Model, SearchStrategy};
use crate::verify::verify;

/// f = (a∧b) ∨ (c∧d): disjointly OR-decomposable.
fn or_of_ands() -> (Aig, AigLit) {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d = aig.add_input("d");
    let ab = aig.and(a, b);
    let cd = aig.and(c, d);
    let f = aig.or(ab, cd);
    (aig, f)
}

/// f = s∧(a∨b) = (s∧a)∨(s∧b): OR-decomposable with |XC| ≥ 1.
fn shared_var_fn() -> (Aig, AigLit) {
    let mut aig = Aig::new();
    let s = aig.add_input("s");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let t = aig.or(a, b);
    let f = aig.and(s, t);
    (aig, f)
}

/// Majority of three: not bi-decomposable for any operator.
fn maj3() -> (Aig, AigLit) {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let ab = aig.and(a, b);
    let ac = aig.and(a, c);
    let bc = aig.and(b, c);
    let t = aig.or(ab, ac);
    let f = aig.or(t, bc);
    (aig, f)
}

/// 4-input parity: XOR-decomposable along any split.
fn parity4() -> (Aig, AigLit) {
    let mut aig = Aig::new();
    let ins: Vec<AigLit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
    let f = aig.xor_many(&ins);
    (aig, f)
}

/// Brute-force bi-decomposability of `root` under `p` using the BDD
/// oracle.
fn bdd_decomposable(aig: &Aig, root: AigLit, op: GateOp, p: &VarPartition) -> bool {
    let mut m = Manager::new(aig.num_inputs());
    let f = m.from_aig(aig, root);
    let xa = p.xa();
    let xb = p.xb();
    match op {
        GateOp::Or => m.or_decomposable(f, &xa, &xb).is_some(),
        GateOp::And => m.and_decomposable(f, &xa, &xb).is_some(),
        GateOp::Xor => m.xor_decomposable(f, &xa, &xb).is_some(),
    }
}

/// Enumerates all 3^n class assignments and returns the non-trivial
/// partitions under which `root` is decomposable (BDD ground truth).
fn bdd_all_partitions(aig: &Aig, root: AigLit, op: GateOp) -> Vec<VarPartition> {
    let n = aig.num_inputs();
    let mut found = Vec::new();
    let mut classes = vec![VarClass::C; n];
    fn rec(
        i: usize,
        n: usize,
        classes: &mut Vec<VarClass>,
        aig: &Aig,
        root: AigLit,
        op: GateOp,
        found: &mut Vec<VarPartition>,
    ) {
        if i == n {
            let p = VarPartition::new(classes.clone());
            if p.is_nontrivial() && bdd_decomposable(aig, root, op, &p) {
                found.push(p);
            }
            return;
        }
        for c in [VarClass::A, VarClass::B, VarClass::C] {
            classes[i] = c;
            rec(i + 1, n, classes, aig, root, op, found);
        }
        classes[i] = VarClass::C;
    }
    rec(0, n, &mut classes, aig, root, op, &mut found);
    found
}

// ---------------------------------------------------------------------
// partitions & metrics
// ---------------------------------------------------------------------

#[test]
fn partition_metrics() {
    let p = VarPartition::from_sets(6, &[0, 1, 2], &[3]);
    assert_eq!(p.num_a(), 3);
    assert_eq!(p.num_b(), 1);
    assert_eq!(p.num_shared(), 2);
    assert!((p.disjointness() - 2.0 / 6.0).abs() < 1e-12);
    assert!((p.balancedness() - 2.0 / 6.0).abs() < 1e-12);
    assert!((p.cost(1.0, 1.0) - 4.0 / 6.0).abs() < 1e-12);
    assert_eq!(p.k_disjoint(), 2);
    assert_eq!(p.k_balance(), 2);
    assert_eq!(p.k_combined(), 4);
    assert!(p.is_nontrivial());
    assert!(!VarPartition::from_sets(3, &[0], &[]).is_nontrivial());
}

#[test]
fn partition_normalization_swaps_blocks() {
    let p = VarPartition::from_sets(4, &[0], &[1, 2, 3]);
    let q = p.normalized();
    assert_eq!(q.num_a(), 3);
    assert_eq!(q.num_b(), 1);
    assert_eq!(p.k_balance(), q.k_balance());
}

#[test]
fn spec_types_behave() {
    use std::time::Duration;
    assert_eq!(GateOp::Or.to_string(), "OR");
    assert_eq!(GateOp::And.to_string(), "AND");
    assert_eq!(GateOp::Xor.to_string(), "XOR");
    assert_eq!(Model::Ljh.to_string(), "LJH");
    assert_eq!(Model::QbfCombined.to_string(), "STEP-QDB");
    let paper = BudgetPolicy::paper();
    assert_eq!(paper.per_qbf_call, Budget::Wall(Duration::from_secs(4)));
    assert_eq!(paper.per_circuit, Budget::Wall(Duration::from_secs(6000)));
    // Default strategy follows the paper: MD→Bin→MI for QD, MI else.
    let qd = DecompConfig::new(Model::QbfDisjoint);
    assert_eq!(qd.effective_strategy(), SearchStrategy::MdBinMi);
    let qb = DecompConfig::new(Model::QbfBalanced);
    assert_eq!(qb.effective_strategy(), SearchStrategy::MonotoneIncreasing);
    let mut custom = DecompConfig::new(Model::QbfDisjoint);
    custom.strategy = Some(SearchStrategy::Binary);
    assert_eq!(custom.effective_strategy(), SearchStrategy::Binary);
}

#[test]
fn partition_display_and_from_sets() {
    let p = VarPartition::from_sets(4, &[0], &[3]);
    assert_eq!(p.to_string(), "ACCB");
    assert_eq!(p.xa(), vec![0]);
    assert_eq!(p.xb(), vec![3]);
    assert_eq!(p.xc(), vec![1, 2]);
    assert_eq!(p.class(2), VarClass::C);
}

#[test]
#[should_panic]
fn from_sets_rejects_overlap() {
    let _ = VarPartition::from_sets(3, &[0, 1], &[1]);
}

#[test]
fn weighted_metric_arithmetic() {
    let p = VarPartition::from_sets(6, &[0, 1, 2], &[3]); // |XC|=2, diff=2
    let m = Metric::Weighted { wd: 3, wb: 2 };
    assert_eq!(m.k_of(&p), 3 * 2 + 2 * 2);
    assert_eq!(m.k_max(6), (3 + 2) * 4);
    assert_eq!(Metric::Disjointness.k_of(&p), 2);
    assert_eq!(Metric::Balancedness.k_of(&p), 2);
    assert_eq!(Metric::Combined.k_of(&p), 4);
}

// ---------------------------------------------------------------------
// core formula & oracle
// ---------------------------------------------------------------------

#[test]
fn oracle_matches_bdd_on_known_functions() {
    for (aig, f, op) in [
        (or_of_ands().0, or_of_ands().1, GateOp::Or),
        (shared_var_fn().0, shared_var_fn().1, GateOp::Or),
        (maj3().0, maj3().1, GateOp::Or),
        (parity4().0, parity4().1, GateOp::Xor),
    ] {
        let core = CoreFormula::build(&aig, f, op);
        let mut oracle = PartitionOracle::new(core);
        // Try a handful of partitions exhaustively for n ≤ 4.
        let mut meter = EffortMeter::unlimited();
        for p in enumerate_partitions(aig.num_inputs()) {
            if !p.is_nontrivial() {
                continue;
            }
            let want = bdd_decomposable(&aig, f, op, &p);
            let got = oracle.check(&p, &mut meter).expect("no budget set");
            assert_eq!(got, want, "op={op} partition={p}");
        }
    }
}

fn enumerate_partitions(n: usize) -> Vec<VarPartition> {
    let mut out = Vec::new();
    let mut total = 1usize;
    for _ in 0..n {
        total *= 3;
    }
    for mut code in 0..total {
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            classes.push(match code % 3 {
                0 => VarClass::A,
                1 => VarClass::B,
                _ => VarClass::C,
            });
            code /= 3;
        }
        out.push(VarPartition::new(classes));
    }
    out
}

#[test]
fn and_core_is_dual_of_or() {
    // f = (a∨b)∧(c∨d) is AND-decomposable disjointly.
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d = aig.add_input("d");
    let ab = aig.or(a, b);
    let cd = aig.or(c, d);
    let f = aig.and(ab, cd);
    let core = CoreFormula::build(&aig, f, GateOp::And);
    let mut oracle = PartitionOracle::new(core);
    let mut meter = EffortMeter::unlimited();
    let p = VarPartition::from_sets(4, &[0, 1], &[2, 3]);
    assert_eq!(oracle.check(&p, &mut meter), Some(true));
    let bad = VarPartition::from_sets(4, &[0, 2], &[1, 3]);
    assert_eq!(oracle.check(&bad, &mut meter), Some(false));
    assert!(
        meter.spent().propagations > 0,
        "oracle calls charge their effort to the meter"
    );
}

#[test]
fn sim_filter_is_sound() {
    // Any pair the simulation kills must be refuted by the oracle too.
    for (aig, f, op) in [
        (maj3().0, maj3().1, GateOp::Or),
        (or_of_ands().0, or_of_ands().1, GateOp::Or),
        (parity4().0, parity4().1, GateOp::Xor),
    ] {
        let n = aig.num_inputs();
        let alive = sim_filter_pairs(&aig, f, op, 8, 12345);
        let core = CoreFormula::build(&aig, f, op);
        let mut oracle = PartitionOracle::new(core);
        let mut meter = EffortMeter::unlimited();
        for i in 0..n {
            for j in 0..n {
                if i != j && !alive[i][j] {
                    assert_eq!(
                        oracle.check_seed(i, j, &mut meter),
                        Some(false),
                        "sim killed a valid seed ({i},{j}) op={op}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// LJH & MG
// ---------------------------------------------------------------------

#[test]
fn ljh_finds_disjoint_partition() {
    let (aig, f) = or_of_ands();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let mut oracle = PartitionOracle::new(core);
    match ljh::decompose(&mut oracle, None, &mut EffortMeter::unlimited()) {
        LjhOutcome::Partition(p) => {
            assert!(p.is_nontrivial());
            assert!(bdd_decomposable(&aig, f, GateOp::Or, &p));
            // Greedy growth must empty XC here.
            assert_eq!(p.num_shared(), 0, "LJH should fully grow {p}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn ljh_rejects_undecomposable() {
    let (aig, f) = maj3();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let mut oracle = PartitionOracle::new(core);
    assert_eq!(
        ljh::decompose(&mut oracle, None, &mut EffortMeter::unlimited()),
        LjhOutcome::NotDecomposable
    );
}

#[test]
fn mg_finds_valid_partition() {
    for (aig, f, op) in [
        (or_of_ands().0, or_of_ands().1, GateOp::Or),
        (shared_var_fn().0, shared_var_fn().1, GateOp::Or),
        (parity4().0, parity4().1, GateOp::Xor),
    ] {
        let core = CoreFormula::build(&aig, f, op);
        let mut oracle = PartitionOracle::new(core);
        match mg::decompose(&mut oracle, None, &mut EffortMeter::unlimited()) {
            MgOutcome::Partition(p) => {
                assert!(p.is_nontrivial());
                assert!(bdd_decomposable(&aig, f, op, &p), "op={op} partition={p}");
            }
            other => panic!("op={op}: {other:?}"),
        }
    }
}

#[test]
fn mg_rejects_undecomposable() {
    let (aig, f) = maj3();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let mut oracle = PartitionOracle::new(core);
    assert_eq!(
        mg::decompose(&mut oracle, None, &mut EffortMeter::unlimited()),
        MgOutcome::NotDecomposable
    );
}

// ---------------------------------------------------------------------
// QBF models
// ---------------------------------------------------------------------

#[test]
fn qbf_any_finds_partition_or_proves_none() {
    let (aig, f) = or_of_ands();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let (outcome, stats) = solve_partition(
        &core,
        Target::Any,
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    match outcome {
        QbfModelOutcome::Partition(p) => {
            assert!(p.is_nontrivial());
            assert!(bdd_decomposable(&aig, f, GateOp::Or, &p));
        }
        other => panic!("{other:?}"),
    }
    assert!(stats.cegar_iterations >= 1);

    let (aig, f) = maj3();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let (outcome, _) = solve_partition(
        &core,
        Target::Any,
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    assert_eq!(outcome, QbfModelOutcome::NoPartition);
}

#[test]
fn qbf_disjointness_bound_is_respected() {
    let (aig, f) = shared_var_fn();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    // k = 1: partition with at most one shared variable exists ({s}).
    let (outcome, _) = solve_partition(
        &core,
        Target::DisjointAtMost(1),
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    match outcome {
        QbfModelOutcome::Partition(p) => {
            assert!(p.num_shared() <= 1);
            assert!(bdd_decomposable(&aig, f, GateOp::Or, &p));
            assert_eq!(p.class(0), VarClass::C, "the shared var must be s: {p}");
        }
        other => panic!("{other:?}"),
    }
    // k = 0: no disjoint partition exists for s∧(a∨b).
    let (outcome, _) = solve_partition(
        &core,
        Target::DisjointAtMost(0),
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    assert_eq!(outcome, QbfModelOutcome::NoPartition);
}

#[test]
fn qbf_balancedness_window() {
    // f = (a∧b∧c)∨(d∧e): diff-0 partition exists with c shared.
    let mut aig = Aig::new();
    let ins: Vec<AigLit> = (0..5).map(|i| aig.add_input(format!("x{i}"))).collect();
    let t1 = aig.and_many(&ins[0..3]);
    let t2 = aig.and(ins[3], ins[4]);
    let f = aig.or(t1, t2);
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let (outcome, _) = solve_partition(
        &core,
        Target::BalancedWindow(0),
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    match outcome {
        QbfModelOutcome::Partition(p) => {
            assert_eq!(p.k_balance(), 0, "{p}");
            assert!(bdd_decomposable(&aig, f, GateOp::Or, &p));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn qbf_combined_target() {
    let (aig, f) = or_of_ands();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    // (ab)|(cd): k = 0 achievable (|XC|=0, |XA|=|XB|=2).
    let (outcome, _) = solve_partition(
        &core,
        Target::CombinedAtMost(0),
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    match outcome {
        QbfModelOutcome::Partition(p) => {
            assert_eq!(p.k_combined(), 0, "{p}");
        }
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------
// optimum search
// ---------------------------------------------------------------------

#[test]
fn all_strategies_agree_on_optimum() {
    let (aig, f) = shared_var_fn();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let bootstrap = {
        let mut oracle = PartitionOracle::new(core.clone());
        match mg::decompose(&mut oracle, None, &mut EffortMeter::unlimited()) {
            MgOutcome::Partition(p) => p,
            other => panic!("{other:?}"),
        }
    };
    let mut optima = Vec::new();
    for strategy in [
        SearchStrategy::MonotoneIncreasing,
        SearchStrategy::MonotoneDecreasing,
        SearchStrategy::Binary,
        SearchStrategy::MdBinMi,
    ] {
        let r = optimum::search(
            &core,
            Metric::Disjointness,
            Some(&bootstrap),
            strategy,
            &ModelOptions::default(),
            &mut EffortMeter::unlimited(),
        );
        assert!(r.proved_optimal, "{strategy:?}");
        optima.push(Metric::Disjointness.k_of(r.partition.as_ref().unwrap()));
    }
    assert!(
        optima.windows(2).all(|w| w[0] == w[1]),
        "optima differ: {optima:?}"
    );
    assert_eq!(optima[0], 1, "s∧(a∨b) needs exactly one shared variable");
}

#[test]
fn optimum_without_bootstrap_detects_undecomposable() {
    let (aig, f) = maj3();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let r = optimum::search(
        &core,
        Metric::Disjointness,
        None,
        SearchStrategy::MonotoneIncreasing,
        &ModelOptions::default(),
        &mut EffortMeter::unlimited(),
    );
    assert!(r.partition.is_none());
    assert!(r.proved_optimal);
}

// ---------------------------------------------------------------------
// extraction & verification
// ---------------------------------------------------------------------

#[test]
fn interpolation_extraction_or() {
    let (aig, f) = or_of_ands();
    let p = VarPartition::from_sets(4, &[0, 1], &[2, 3]);
    let d = extract(&aig, f, GateOp::Or, &p, None).unwrap();
    verify(&d, None).unwrap();
}

#[test]
fn interpolation_extraction_or_with_shared() {
    let (aig, f) = shared_var_fn();
    let p = VarPartition::from_sets(3, &[1], &[2]);
    let d = extract(&aig, f, GateOp::Or, &p, None).unwrap();
    verify(&d, None).unwrap();
}

#[test]
fn interpolation_extraction_and() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d_in = aig.add_input("d");
    let ab = aig.or(a, b);
    let cd = aig.or(c, d_in);
    let f = aig.and(ab, cd);
    let p = VarPartition::from_sets(4, &[0, 1], &[2, 3]);
    let d = extract(&aig, f, GateOp::And, &p, None).unwrap();
    verify(&d, None).unwrap();
}

#[test]
fn cofactor_extraction_xor() {
    let (aig, f) = parity4();
    for (xa, xb) in [(vec![0], vec![1, 2, 3]), (vec![0, 1], vec![2, 3])] {
        let p = VarPartition::from_sets(4, &xa, &xb);
        let d = extract(&aig, f, GateOp::Xor, &p, None).unwrap();
        verify(&d, None).unwrap();
    }
}

#[test]
fn quantification_extraction_agrees() {
    let (aig, f) = or_of_ands();
    let p = VarPartition::from_sets(4, &[0, 1], &[2, 3]);
    let d = extract_by_quantification(&aig, f, GateOp::Or, &p);
    verify(&d, None).unwrap();
}

#[test]
fn extraction_rejects_invalid_partition() {
    let (aig, f) = maj3();
    let p = VarPartition::from_sets(3, &[0], &[1]);
    assert!(matches!(
        extract(&aig, f, GateOp::Or, &p, None),
        Err(crate::extract::ExtractError::InvalidPartition)
    ));
}

// ---------------------------------------------------------------------
// engine end-to-end
// ---------------------------------------------------------------------

#[test]
fn engine_qd_proves_optimum() {
    let (aig_raw, f) = shared_var_fn();
    let mut aig = aig_raw;
    aig.add_output("f", f);
    let engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
    let r = engine.decompose_output(&aig, 0, GateOp::Or).unwrap();
    let p = r.partition.expect("decomposable");
    assert_eq!(p.num_shared(), 1);
    assert!(r.proved_optimal);
    assert!(r.solved);
    let d = r.decomposition.expect("extraction on");
    verify(&d, None).unwrap();
}

#[test]
fn engine_all_models_on_multi_output_circuit() {
    // Circuit with one decomposable, one undecomposable and one
    // single-input output.
    let mut aig = Aig::new();
    let ins: Vec<AigLit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
    let ab = aig.and(ins[0], ins[1]);
    let cd = aig.and(ins[2], ins[3]);
    let f = aig.or(ab, cd);
    aig.add_output("dec", f);
    let m01 = aig.and(ins[0], ins[1]);
    let m02 = aig.and(ins[0], ins[2]);
    let m12 = aig.and(ins[1], ins[2]);
    let t = aig.or(m01, m02);
    let maj = aig.or(t, m12);
    aig.add_output("maj", maj);
    aig.add_output("buf", ins[3]);

    for model in Model::ALL {
        let engine = BiDecomposer::new(DecompConfig::new(model));
        let r = engine.decompose_circuit(&aig, GateOp::Or).unwrap();
        assert_eq!(r.outputs.len(), 3, "{model}");
        assert!(r.outputs[0].is_decomposed(), "{model} must decompose `dec`");
        assert!(!r.outputs[1].is_decomposed(), "{model} must reject maj3");
        assert!(!r.outputs[2].is_decomposed(), "{model}: single-input PO");
        assert_eq!(r.num_decomposed(), 1);
        if let Some(d) = &r.outputs[0].decomposition {
            verify(d, None).unwrap();
        }
    }
}

#[test]
fn engine_handles_sequential_circuits() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let q = aig.add_latch("q", false);
    let t = aig.and(a, b);
    let n = aig.or(t, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", q);
    let engine = BiDecomposer::new(DecompConfig::new(Model::MusGroup));
    // comb conversion: PO `f` (= q, single input) plus q$next = (a∧b)∨q.
    let r = engine.decompose_circuit(&aig, GateOp::Or).unwrap();
    assert_eq!(r.outputs.len(), 2);
    assert!(r.outputs[1].is_decomposed(), "q$next = (a∧b)∨q decomposes");
}

#[test]
fn engine_respects_output_budget() {
    let (mut aig, f) = or_of_ands();
    aig.add_output("f", f);
    let mut config = DecompConfig::new(Model::QbfDisjoint);
    config.budget = BudgetPolicy {
        per_qbf_call: Budget::Wall(std::time::Duration::ZERO),
        per_output: Budget::Wall(std::time::Duration::ZERO),
        per_circuit: Budget::Wall(std::time::Duration::from_secs(60)),
    };
    let engine = BiDecomposer::new(config);
    let r = engine.decompose_output(&aig, 0, GateOp::Or).unwrap();
    assert!(r.timed_out);
    assert!(!r.solved);
}

#[test]
fn engine_rejects_bad_inputs() {
    let mut seq = Aig::new();
    let _ = seq.add_input("a");
    let q = seq.add_latch("q", false);
    seq.add_output("f", q);
    let engine = BiDecomposer::new(DecompConfig::new(Model::Ljh));
    assert!(matches!(
        engine.decompose_output(&seq, 0, GateOp::Or),
        Err(crate::StepError::NotCombinational)
    ));
    let (mut aig, f) = or_of_ands();
    aig.add_output("f", f);
    assert!(matches!(
        engine.decompose_output(&aig, 5, GateOp::Or),
        Err(crate::StepError::OutputOutOfRange(5))
    ));
}

// ---------------------------------------------------------------------
// result cache and accounting
// ---------------------------------------------------------------------

#[test]
fn permuted_twin_cones_share_a_cache_entry() {
    use crate::cache::{CacheLookup, ResultCache};
    use std::sync::Arc;

    // f = (a∧b)∨(c∧d) and g = the same structure with the input roles
    // rotated (a→b→c→d→a): structurally identical cones, permuted
    // support.
    let mut aig = Aig::new();
    let ins: Vec<AigLit> = ["a", "b", "c", "d"].map(|n| aig.add_input(n)).into();
    let ab = aig.and(ins[0], ins[1]);
    let cd = aig.and(ins[2], ins[3]);
    let f = aig.or(ab, cd);
    let bc = aig.and(ins[1], ins[2]);
    let da = aig.and(ins[3], ins[0]);
    let g = aig.or(bc, da);
    aig.add_output("f", f);
    aig.add_output("g", g);

    let cache = Arc::new(ResultCache::new());
    let mut engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
    engine.set_cache(cache.clone());
    let r = engine.decompose_circuit(&aig, GateOp::Or).unwrap();

    assert_eq!(r.outputs[0].cache, CacheLookup::Miss);
    assert_eq!(r.outputs[1].cache, CacheLookup::Hit, "g reuses f's entry");
    assert_eq!((r.cache_hits(), r.cache_misses()), (1, 1));
    assert_eq!((cache.hits(), cache.misses(), cache.inserts()), (1, 1, 1));
    assert_eq!(cache.len(), 1);

    // The hit costs no solver work, and the translated partition is a
    // real optimum for g's own variable order: it extracts, verifies
    // (config.verify is on — run() would have failed otherwise) and
    // passes the BDD ground truth.
    assert_eq!(r.outputs[1].sat_calls, 0);
    for out in &r.outputs {
        assert!(out.solved && out.proved_optimal, "{}", out.name);
        let p = out.partition.as_ref().expect("decomposable");
        assert_eq!(p.num_shared(), 0);
        let root = if out.output_index == 0 { f } else { g };
        assert!(bdd_decomposable(&aig, root, GateOp::Or, p), "{p}");
        assert!(out.decomposition.is_some());
    }
}

#[test]
fn cached_runs_match_cold_runs_exactly() {
    use crate::cache::ResultCache;
    use std::sync::Arc;

    let mut aig = Aig::new();
    let ins: Vec<AigLit> = (0..5).map(|i| aig.add_input(format!("x{i}"))).collect();
    for k in 0..4 {
        // Sliding-window copies of the same cone shape.
        let t = aig.and(ins[k], !ins[k + 1]);
        let u = aig.or(t, ins[(k + 2) % 5]);
        aig.add_output(format!("o{k}"), u);
    }
    for model in [Model::MusGroup, Model::QbfDisjoint, Model::Ljh] {
        let cold = BiDecomposer::new(DecompConfig::new(model))
            .decompose_circuit(&aig, GateOp::Or)
            .unwrap();
        let mut engine = BiDecomposer::new(DecompConfig::new(model));
        engine.set_cache(Arc::new(ResultCache::new()));
        let warm = engine.decompose_circuit(&aig, GateOp::Or).unwrap();
        assert!(warm.cache_hits() > 0, "{model}: twins must hit");
        for (c, w) in cold.outputs.iter().zip(&warm.outputs) {
            assert_eq!(c.partition, w.partition, "{model} {}", c.name);
            assert_eq!(c.solved, w.solved, "{model} {}", c.name);
            assert_eq!(c.proved_optimal, w.proved_optimal, "{model} {}", c.name);
            assert_eq!(
                c.decomposition.is_some(),
                w.decomposition.is_some(),
                "{model} {}",
                c.name
            );
        }
    }
}

#[test]
fn skipped_outputs_report_their_real_support() {
    let mut aig = Aig::new();
    let ins: Vec<AigLit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
    let ab = aig.and(ins[0], ins[1]);
    let cd = aig.and(ins[2], ins[3]);
    let f = aig.or(ab, cd);
    aig.add_output("f", f);
    let g = aig.and(ins[1], ins[2]);
    aig.add_output("g", g);

    let mut config = DecompConfig::new(Model::MusGroup);
    config.budget.per_circuit = Budget::Wall(std::time::Duration::ZERO);
    let r = BiDecomposer::new(config)
        .decompose_circuit(&aig, GateOp::Or)
        .unwrap();
    assert!(r.timed_out);
    // Outputs the deadline skipped must not masquerade as constants.
    assert_eq!(r.outputs[0].support, 4, "f has 4 support variables");
    assert_eq!(r.outputs[1].support, 2, "g has 2 support variables");
    for out in &r.outputs {
        assert!(out.timed_out && !out.solved, "{}", out.name);
        assert_eq!(out.sat_calls, 0, "no solver ran for {}", out.name);
    }
}

#[test]
fn expired_deadline_short_circuits_before_any_solver_work() {
    use crate::job::OutputJob;
    use crate::session::SolveSession;

    let (mut aig, f) = or_of_ands();
    aig.add_output("f", f);
    let config = DecompConfig::new(Model::QbfDisjoint);
    // The clock anchors at session construction, before cone
    // extraction; a circuit deadline that already passed must surface
    // as a timeout with the real support and zero oracle calls.
    let job = OutputJob::new(&config, 0, GateOp::Or).with_circuit(crate::effort::CircuitBudget {
        deadline: Some(std::time::Instant::now()),
        work: None,
    });
    let r = SolveSession::new(&aig, job, &config, None, None)
        .unwrap()
        .run()
        .unwrap();
    assert!(r.timed_out && !r.solved);
    assert_eq!(r.support, 4);
    assert_eq!(r.sat_calls, 0);
    assert_eq!(r.qbf_calls, 0);
    assert!(r.partition.is_none());
}

#[test]
fn sessions_reuse_pooled_oracles_and_bank_exports() {
    use std::sync::Arc;

    use crate::clause_bank::{BankLookup, ClauseBank, ReuseCtx};
    use crate::job::OutputJob;
    use crate::session::SolveSession;

    // maj3 is not OR-decomposable: proving that takes real conflicts,
    // so the oracle has tier-core clauses to donate.
    // MG drives the partition oracle directly (seed-pair checks plus
    // the UNSAT sweep), so refuting decomposability pins clauses.
    let (mut aig, f) = maj3();
    aig.add_output("f", f);
    aig.add_output("g", f); // same root: identical canonical cone
    let mut config = DecompConfig::new(Model::MusGroup);
    config.clause_reuse = true;
    // The sim pre-filter refutes maj3 outright (no surviving seed
    // pairs means no oracle work at all) — turn it off so the oracle
    // actually searches, conflicts, and has something to donate.
    config.sim_filter = false;
    let reuse = ReuseCtx::over(Arc::new(ClauseBank::new()));
    let run = |idx: usize, reuse: &ReuseCtx| {
        let job = OutputJob::new(&config, idx, GateOp::Or);
        SolveSession::new(&aig, job, &config, None, Some(reuse))
            .unwrap()
            .run()
            .unwrap()
    };

    let r0 = run(0, &reuse);
    assert_eq!(r0.bank, BankLookup::Miss, "empty bank, empty pool");
    assert!(r0.solved && r0.partition.is_none());
    assert!(r0.donated_clauses > 0, "the UNSAT proof pins clauses");
    assert_eq!(reuse.bank().donations(), 1);

    // The twin takes over the parked oracle — no CNF rebuild, and its
    // sat_calls report only its own share.
    let r1 = run(1, &reuse);
    assert_eq!(r1.bank, BankLookup::Pooled);
    assert_eq!(r1.partition, r0.partition, "reuse never changes answers");
    assert_eq!(r1.solved, r0.solved);
    assert_eq!(reuse.pool.reuses(), 1);

    // Same bank, fresh pool (a new submission): the donor's export now
    // serves the exact channel, imported verbatim.
    let fresh_pool = ReuseCtx::over(Arc::clone(reuse.bank()));
    let r2 = run(0, &fresh_pool);
    assert_eq!(r2.bank, BankLookup::Exact);
    assert!(r2.imported_clauses > 0, "verbatim import from the donor");
    assert_eq!(r2.partition, r0.partition);
    assert_eq!(r2.solved, r0.solved);
}

#[test]
fn solved_ratio_of_an_empty_circuit_is_nan() {
    let aig = Aig::new();
    let r = BiDecomposer::new(DecompConfig::new(Model::MusGroup))
        .decompose_circuit(&aig, GateOp::Or)
        .unwrap();
    assert!(r.outputs.is_empty());
    assert!(
        r.solved_ratio().is_nan(),
        "no outputs means no ratio, not a perfect score"
    );
    // Non-empty circuits keep their well-defined ratio.
    let (mut aig, f) = or_of_ands();
    aig.add_output("f", f);
    let r = BiDecomposer::new(DecompConfig::new(Model::MusGroup))
        .decompose_circuit(&aig, GateOp::Or)
        .unwrap();
    assert_eq!(r.solved_ratio(), 1.0);
}

// ---------------------------------------------------------------------
// randomized cross-checks
// ---------------------------------------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    fn build_random(ops: &[(u8, usize, usize)], n: usize) -> (Aig, AigLit) {
        let mut aig = Aig::new();
        let mut pool: Vec<AigLit> = (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
        for &(op, i, j) in ops {
            let a = pool[i % pool.len()];
            let b = pool[j % pool.len()];
            let v = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => !a,
            };
            pool.push(v);
        }
        (aig, *pool.last().copied().as_ref().unwrap())
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 3..25)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The oracle must agree with the BDD ground truth on every
        /// partition of random 4-input functions, for all operators.
        #[test]
        fn oracle_vs_bdd(ops in arb_ops()) {
            let (aig, f) = build_random(&ops, 4);
            // Skip functions whose support shrank (cone inputs differ).
            if aig.support(f).len() != 4 {
                return Ok(());
            }
            for op in GateOp::ALL {
                let core = CoreFormula::build(&aig, f, op);
                let mut oracle = PartitionOracle::new(core);
                let mut meter = EffortMeter::unlimited();
                for p in enumerate_partitions(4) {
                    if !p.is_nontrivial() {
                        continue;
                    }
                    let want = bdd_decomposable(&aig, f, op, &p);
                    let got = oracle.check(&p, &mut meter).unwrap();
                    prop_assert_eq!(got, want, "op={} p={}", op, p);
                }
            }
        }

        /// End-to-end: whenever the engine decomposes a random
        /// function, the extraction verifies; whenever it declines,
        /// the BDD enumeration finds no partition either.
        #[test]
        fn engine_sound_and_complete(ops in arb_ops()) {
            let (mut aig, f) = build_random(&ops, 4);
            if aig.support(f).len() != 4 {
                return Ok(());
            }
            aig.add_output("f", f);
            for op in GateOp::ALL {
                let engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
                let r = engine.decompose_output(&aig, 0, op).unwrap();
                let ground = bdd_all_partitions(&aig, f, op);
                match &r.partition {
                    Some(p) => {
                        prop_assert!(
                            bdd_decomposable(&aig, f, op, p),
                            "op={} invalid partition {}", op, p
                        );
                        let d = r.decomposition.as_ref().expect("extraction on");
                        prop_assert!(verify(d, None).is_ok());
                        // Optimality: no ground-truth partition has
                        // strictly fewer shared variables.
                        let best = ground.iter().map(|g| g.num_shared()).min().unwrap();
                        prop_assert_eq!(
                            p.num_shared(), best,
                            "op={} claimed optimum {} vs true {}", op, p.num_shared(), best
                        );
                    }
                    None => {
                        prop_assert!(
                            ground.is_empty(),
                            "op={} engine missed {:?}", op, ground.first().map(|p| p.to_string())
                        );
                    }
                }
            }
        }
    }
}
