//! Configuration types: gate operators, models, targets, budgets and
//! search strategies.
//!
//! Budgets are expressed with the [`Budget`] type at three scopes
//! ([`BudgetPolicy`]): per QBF call, per primary output and per
//! circuit. A budget limits **wall clock**, **work** (solver
//! conflicts, the machine-independent unit), or both (whichever trips
//! first). Under a pure [`Budget::Work`] policy a run is fully
//! deterministic — which outputs time out, and with what partial
//! results, is byte-identical across machines, `--jobs` values and
//! background load — because no decision anywhere consults a clock.

use std::fmt;
use std::time::Duration;

use step_sat::RestartPolicy;

/// The two-input gate at the root of the bi-decomposition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum GateOp {
    /// `f = fA ∨ fB`.
    Or,
    /// `f = fA ∧ fB` (the dual of OR, Section IV-B).
    And,
    /// `f = fA ⊕ fB`.
    Xor,
}

impl GateOp {
    /// All three operators, in the paper's order.
    pub const ALL: [GateOp; 3] = [GateOp::Or, GateOp::And, GateOp::Xor];
}

impl std::fmt::Display for GateOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateOp::Or => write!(f, "OR"),
            GateOp::And => write!(f, "AND"),
            GateOp::Xor => write!(f, "XOR"),
        }
    }
}

/// Which bi-decomposition engine to run — the tools compared in the
/// paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Model {
    /// `LJH` — the SAT-based enumeration of Lee–Jiang–Hung (DAC'08),
    /// reimplementing the `Bi-dec` tool's best-quality mode.
    Ljh,
    /// `STEP-MG` — group-oriented MUS-based partitioning.
    MusGroup,
    /// `STEP-QD` — QBF model targeting optimum disjointness (5).
    QbfDisjoint,
    /// `STEP-QB` — QBF model targeting optimum balancedness (6).
    QbfBalanced,
    /// `STEP-QDB` — QBF model with the combined cost function (8),
    /// `1·disjointness + 1·balancedness`.
    QbfCombined,
}

impl Model {
    /// The full roster of the paper's evaluation, in table order.
    pub const ALL: [Model; 5] = [
        Model::Ljh,
        Model::MusGroup,
        Model::QbfDisjoint,
        Model::QbfBalanced,
        Model::QbfCombined,
    ];
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Model::Ljh => write!(f, "LJH"),
            Model::MusGroup => write!(f, "STEP-MG"),
            Model::QbfDisjoint => write!(f, "STEP-QD"),
            Model::QbfBalanced => write!(f, "STEP-QB"),
            Model::QbfCombined => write!(f, "STEP-QDB"),
        }
    }
}

/// Strategy for searching the optimum bound `k` (Section IV-A-6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SearchStrategy {
    /// Monotonically increasing `k` (the paper's best for
    /// balancedness).
    MonotoneIncreasing,
    /// Monotonically decreasing `k`.
    MonotoneDecreasing,
    /// Dichotomic divide-and-conquer (binary search).
    Binary,
    /// The paper's best pipeline for disjointness: a few MD steps, a
    /// binary-search phase, then MI to close the interval.
    MdBinMi,
}

/// One budget: how much a unit of solving (a QBF call, an output, a
/// circuit) may cost before it is truncated.
///
/// * [`Budget::Wall`] — elapsed wall-clock time, the paper's setup.
///   Fast to check but machine- and load-dependent: the same run can
///   time out on one host and finish on another.
/// * [`Budget::Work`] — solver **conflicts**, the portable currency of
///   SAT/QBF effort (see [`step_sat::EffortStats`]). Deterministic:
///   truncation falls on the same solver call at the same conflict
///   count everywhere.
/// * [`Budget::Both`] — whichever trips first (a wall-clock safety net
///   over a deterministic work budget).
/// * [`Budget::Unlimited`] — no truncation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Budget {
    /// No limit.
    Unlimited,
    /// Wall-clock limit.
    Wall(Duration),
    /// Work limit, in solver conflicts.
    Work(u64),
    /// Both limits; whichever trips first truncates.
    Both {
        /// The wall-clock component.
        wall: Duration,
        /// The work component, in solver conflicts.
        work: u64,
    },
}

impl Budget {
    /// The wall-clock component, if any.
    pub fn wall(&self) -> Option<Duration> {
        match *self {
            Budget::Wall(d) | Budget::Both { wall: d, .. } => Some(d),
            _ => None,
        }
    }

    /// The work component (conflicts), if any.
    pub fn work(&self) -> Option<u64> {
        match *self {
            Budget::Work(w) | Budget::Both { work: w, .. } => Some(w),
            _ => None,
        }
    }

    /// Whether results under this budget are machine-independent: the
    /// budget never consults a clock (`Work` or `Unlimited`).
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Budget::Work(_) | Budget::Unlimited)
    }

    /// This budget with its work component set to `work` (keeping any
    /// wall component) — the migration shim for callers of the old
    /// `conflicts_per_call` knob.
    pub fn with_work(self, work: u64) -> Budget {
        match self {
            Budget::Wall(wall) | Budget::Both { wall, .. } => Budget::Both { wall, work },
            Budget::Work(_) | Budget::Unlimited => Budget::Work(work),
        }
    }

    /// Parses a budget specification:
    ///
    /// * `unlimited` (or `none`);
    /// * `wall:<n><ms|s|m|h>` — e.g. `wall:60s`, `wall:500ms`;
    /// * `work:<n>[k|m|g]` — conflicts, e.g. `work:200k`;
    /// * `both:<dur>,<n>` — e.g. `both:60s,200k`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed component.
    pub fn parse(s: &str) -> Result<Budget, String> {
        fn duration(s: &str) -> Result<Duration, String> {
            let (num, mul_ms) = if let Some(n) = s.strip_suffix("ms") {
                (n, 1u64)
            } else if let Some(n) = s.strip_suffix('s') {
                (n, 1000)
            } else if let Some(n) = s.strip_suffix('m') {
                (n, 60_000)
            } else if let Some(n) = s.strip_suffix('h') {
                (n, 3_600_000)
            } else {
                return Err(format!("duration `{s}` needs a unit (ms, s, m, h)"));
            };
            let n: u64 = num
                .parse()
                .map_err(|_| format!("bad duration value `{s}`"))?;
            Ok(Duration::from_millis(n.saturating_mul(mul_ms)))
        }
        fn work(s: &str) -> Result<u64, String> {
            let (num, mul) = if let Some(n) = s.strip_suffix(['k', 'K']) {
                (n, 1_000u64)
            } else if let Some(n) = s.strip_suffix(['m', 'M']) {
                (n, 1_000_000)
            } else if let Some(n) = s.strip_suffix(['g', 'G']) {
                (n, 1_000_000_000)
            } else {
                (s, 1)
            };
            let n: u64 = num
                .parse()
                .map_err(|_| format!("bad work (conflict) count `{s}`"))?;
            Ok(n.saturating_mul(mul))
        }
        match s {
            "unlimited" | "none" => Ok(Budget::Unlimited),
            _ => match s.split_once(':') {
                Some(("wall", d)) => Ok(Budget::Wall(duration(d)?)),
                Some(("work", w)) => Ok(Budget::Work(work(w)?)),
                Some(("both", rest)) => {
                    let (d, w) = rest
                        .split_once(',')
                        .ok_or_else(|| format!("`both:{rest}` needs `<duration>,<work>`"))?;
                    Ok(Budget::Both {
                        wall: duration(d)?,
                        work: work(w)?,
                    })
                }
                _ => Err(format!(
                    "bad budget `{s}` (expected wall:<dur>, work:<n>, both:<dur>,<n> \
                     or unlimited)"
                )),
            },
        }
    }
}

/// Round-trips through [`Budget::parse`].
impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn dur(f: &mut fmt::Formatter<'_>, d: Duration) -> fmt::Result {
            let ms = d.as_millis();
            if ms.is_multiple_of(1000) {
                write!(f, "{}s", ms / 1000)
            } else {
                write!(f, "{ms}ms")
            }
        }
        match *self {
            Budget::Unlimited => write!(f, "unlimited"),
            Budget::Wall(d) => {
                write!(f, "wall:")?;
                dur(f, d)
            }
            Budget::Work(w) => write!(f, "work:{w}"),
            Budget::Both { wall, work } => {
                write!(f, "both:")?;
                dur(f, wall)?;
                write!(f, ",{work}")
            }
        }
    }
}

/// Budgets at the three scopes of a run, mirroring the paper's
/// experimental setup (4 s per QBF call, 6000 s per circuit on their
/// hardware; scaled wall-clock defaults here). Any scope can instead
/// carry a deterministic [`Budget::Work`] limit — see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BudgetPolicy {
    /// Limit per QBF (CEGAR) solve; the work component bounds the
    /// total inner-SAT conflicts of the call (CEGAR iterations charge
    /// their inner-SAT work to the QBF call).
    pub per_qbf_call: Budget,
    /// Limit per primary output.
    pub per_output: Budget,
    /// Limit per circuit. The wall component anchors when the
    /// circuit's first output starts; the work component is a shared
    /// pool every output of the circuit debits.
    pub per_circuit: Budget,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        BudgetPolicy {
            per_qbf_call: Budget::Wall(Duration::from_secs(4)),
            per_output: Budget::Wall(Duration::from_secs(60)),
            per_circuit: Budget::Wall(Duration::from_secs(6000)),
        }
    }
}

impl BudgetPolicy {
    /// The paper's exact setup.
    pub fn paper() -> Self {
        BudgetPolicy {
            per_qbf_call: Budget::Wall(Duration::from_secs(4)),
            per_output: Budget::Wall(Duration::from_secs(6000)),
            per_circuit: Budget::Wall(Duration::from_secs(6000)),
        }
    }

    /// A tight budget for smoke tests and CI.
    pub fn quick() -> Self {
        BudgetPolicy {
            per_qbf_call: Budget::Wall(Duration::from_millis(500)),
            per_output: Budget::Wall(Duration::from_secs(5)),
            per_circuit: Budget::Wall(Duration::from_secs(60)),
        }
    }

    /// A pure-work policy: `per_output` conflicts per output, no
    /// wall-clock or per-call/per-circuit limits — the fully
    /// deterministic configuration (results are byte-identical across
    /// machines and worker counts).
    pub fn work(per_output: u64) -> Self {
        BudgetPolicy {
            per_qbf_call: Budget::Unlimited,
            per_output: Budget::Work(per_output),
            per_circuit: Budget::Unlimited,
        }
    }

    /// Whether every scope is deterministic (no wall-clock component
    /// anywhere): the precondition for the byte-identical-results
    /// guarantee.
    pub fn is_deterministic(&self) -> bool {
        self.per_qbf_call.is_deterministic()
            && self.per_output.is_deterministic()
            && self.per_circuit.is_deterministic()
    }

    /// The command-line rule shared by the `step` CLI and the harness
    /// binaries: a pure-work per-output budget promises
    /// machine-independent results, which the default *wall* limits on
    /// the other scopes would silently break (a slow host trips the
    /// per-call wall inside a QBF solve where a fast one finishes).
    /// So when `per_output` is pure [`Budget::Work`], lift any wall
    /// default the user did not explicitly override (`qbf_set` /
    /// `circuit_set` say which scopes were set on the command line).
    pub fn lift_unset_walls_for_pure_work(&mut self, qbf_set: bool, circuit_set: bool) {
        if !matches!(self.per_output, Budget::Work(_)) {
            return;
        }
        if !qbf_set {
            self.per_qbf_call = Budget::Unlimited;
        }
        if !circuit_set {
            self.per_circuit = Budget::Unlimited;
        }
    }
}

/// `call=…;output=…;circuit=…` — the provenance string recorded in
/// `BENCH_*.json` (each component round-trips [`Budget::parse`]).
impl fmt::Display for BudgetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "call={};output={};circuit={}",
            self.per_qbf_call, self.per_output, self.per_circuit
        )
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct DecompConfig {
    /// Which engine/model to run.
    pub model: Model,
    /// Budgets.
    pub budget: BudgetPolicy,
    /// `k`-search strategy for the QBF models. Defaults to the paper's
    /// best choice per metric (MD→Bin→MI for disjointness, MI for
    /// balancedness and combined).
    pub strategy: Option<SearchStrategy>,
    /// Add the `|XA| ≥ |XB|` symmetry-breaking constraint (paper
    /// Section IV-A-2). Always implied by the balancedness window.
    pub symmetry_breaking: bool,
    /// Permit `(αx, βx) = (1,1)` assignments (a variable usable in
    /// either block). Off by default: it never enables an otherwise
    /// impossible partition and shrinks the search space (see
    /// DESIGN.md §3.3).
    pub allow_both: bool,
    /// Extract `fA`/`fB` (interpolation / cofactoring) after
    /// partitioning.
    pub extract: bool,
    /// Verify extracted decompositions by SAT equivalence checking.
    pub verify: bool,
    /// Use 64-bit random simulation to pre-filter candidate seed pairs.
    pub sim_filter: bool,
    /// Random-simulation rounds for the pre-filter.
    pub sim_rounds: usize,
    /// Restart policy for every underlying SAT solver (the QBF models'
    /// inner CEGAR solvers and the LJH/MUS oracles). Both choices are
    /// deterministic; part of the result-cache key.
    pub sat_restarts: RestartPolicy,
    /// Enable the SAT solvers' bounded root-level preprocessing pass
    /// (subsumption, self-subsuming resolution, failed-literal
    /// probing). Off by default: the CEGAR loop's incremental re-solves
    /// usually lose more to re-preprocessing than they gain. Charged in
    /// conflict-equivalents, so `Work` budgets stay exact; part of the
    /// result-cache key.
    pub sat_preprocess: bool,
    /// Cross-output clause reuse: completed sessions donate their
    /// oracle's pinned learnt clauses to a shared
    /// [`ClauseBank`](crate::clause_bank::ClauseBank) and park live
    /// oracles in a per-submission pool for same-fingerprint siblings.
    /// Only *implied* clauses ever flow (exact donors share an
    /// identical CNF; near-twin donations are vetted per clause), so
    /// verdicts and partitions are byte-identical with this on or off;
    /// conflict counts drop, and at `jobs > 1` may vary with sibling
    /// completion order (see [`crate::clause_bank`]). Off by default;
    /// excluded from the result-cache key (it never changes answers).
    pub clause_reuse: bool,
    /// Worker threads for [`decompose_circuit`]: the ephemeral
    /// [`StepService`](crate::service::StepService) it spins up gets
    /// `jobs` persistent workers claiming outputs from the submission
    /// queue. Per-output results are identical for any value (see
    /// [`crate::job::cone_seed`]).
    ///
    /// [`decompose_circuit`]: crate::BiDecomposer::decompose_circuit
    pub jobs: usize,
    /// Base seed of the engine. Per-cone simulation seeds derive as
    /// `hash(seed, cone fingerprint)` ([`crate::job::cone_seed`]), so
    /// results depend neither on the order (or thread) in which outputs
    /// are visited nor on where in a circuit a cone appears —
    /// structurally identical cones always simulate the same patterns.
    pub seed: u64,
    /// Directory of the persistent artifact-store tier
    /// ([`crate::store`]): solved results, donated clause snapshots and
    /// probe certificates flushed here survive the process and warm
    /// later runs. `None` (the default) keeps every reuse surface
    /// in-memory. Excluded from the result-cache key — like
    /// [`clause_reuse`](Self::clause_reuse), persistence changes what
    /// answers cost, never the answers.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Fault injection for the service's panic-containment regression
    /// tests: a worker panics right before solving this output index,
    /// exercising the pool-boundary `catch_unwind`. Always `None` in
    /// real configurations; excluded from the result-cache key.
    #[doc(hidden)]
    pub panic_on_output: Option<usize>,
}

impl DecompConfig {
    /// A configuration for `model` with defaults matching the paper's
    /// experimental setup (scaled budgets).
    pub fn new(model: Model) -> Self {
        DecompConfig {
            model,
            budget: BudgetPolicy::default(),
            strategy: None,
            symmetry_breaking: true,
            allow_both: false,
            extract: true,
            verify: true,
            sim_filter: true,
            sim_rounds: 4,
            sat_restarts: RestartPolicy::default(),
            sat_preprocess: false,
            clause_reuse: false,
            jobs: 1,
            seed: 0x5DEECE66D,
            cache_dir: None,
            panic_on_output: None,
        }
    }

    /// The effective `k`-search strategy for this configuration.
    pub fn effective_strategy(&self) -> SearchStrategy {
        if let Some(s) = self.strategy {
            return s;
        }
        match self.model {
            Model::QbfDisjoint => SearchStrategy::MdBinMi,
            _ => SearchStrategy::MonotoneIncreasing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parse_accepts_the_documented_grammar() {
        assert_eq!(Budget::parse("unlimited"), Ok(Budget::Unlimited));
        assert_eq!(Budget::parse("none"), Ok(Budget::Unlimited));
        assert_eq!(
            Budget::parse("wall:60s"),
            Ok(Budget::Wall(Duration::from_secs(60)))
        );
        assert_eq!(
            Budget::parse("wall:500ms"),
            Ok(Budget::Wall(Duration::from_millis(500)))
        );
        assert_eq!(
            Budget::parse("wall:2m"),
            Ok(Budget::Wall(Duration::from_secs(120)))
        );
        assert_eq!(Budget::parse("work:200k"), Ok(Budget::Work(200_000)));
        assert_eq!(Budget::parse("work:1500"), Ok(Budget::Work(1500)));
        assert_eq!(Budget::parse("work:2M"), Ok(Budget::Work(2_000_000)));
        assert_eq!(
            Budget::parse("both:4s,10k"),
            Ok(Budget::Both {
                wall: Duration::from_secs(4),
                work: 10_000
            })
        );
    }

    #[test]
    fn budget_parse_rejects_malformed_specs() {
        for bad in [
            "", "wall:", "wall:60", "wall:xs", "work:", "work:abc", "both:4s", "both:,5", "secs:4",
            "60s",
        ] {
            assert!(Budget::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn budget_display_round_trips_through_parse() {
        for b in [
            Budget::Unlimited,
            Budget::Wall(Duration::from_secs(60)),
            Budget::Wall(Duration::from_millis(1500)),
            Budget::Work(200_000),
            Budget::Both {
                wall: Duration::from_millis(500),
                work: 123,
            },
        ] {
            assert_eq!(Budget::parse(&b.to_string()), Ok(b), "{b}");
        }
    }

    #[test]
    fn budget_components_and_determinism() {
        let both = Budget::Both {
            wall: Duration::from_secs(1),
            work: 5,
        };
        assert_eq!(both.wall(), Some(Duration::from_secs(1)));
        assert_eq!(both.work(), Some(5));
        assert_eq!(Budget::Unlimited.wall(), None);
        assert_eq!(Budget::Work(7).work(), Some(7));
        assert!(Budget::Work(7).is_deterministic());
        assert!(Budget::Unlimited.is_deterministic());
        assert!(!both.is_deterministic());
        assert!(!Budget::Wall(Duration::ZERO).is_deterministic());
        assert_eq!(
            Budget::Wall(Duration::from_secs(1)).with_work(9),
            Budget::Both {
                wall: Duration::from_secs(1),
                work: 9
            }
        );
        assert_eq!(Budget::Unlimited.with_work(9), Budget::Work(9));
        assert!(BudgetPolicy::work(100).is_deterministic());
        assert!(!BudgetPolicy::default().is_deterministic());
    }

    #[test]
    fn budget_policy_display_names_every_scope() {
        let p = BudgetPolicy::work(200_000);
        assert_eq!(
            p.to_string(),
            "call=unlimited;output=work:200000;circuit=unlimited"
        );
        assert_eq!(
            BudgetPolicy::default().to_string(),
            "call=wall:4s;output=wall:60s;circuit=wall:6000s"
        );
    }
}
