//! Configuration types: gate operators, models, targets, budgets and
//! search strategies.

use std::time::Duration;

/// The two-input gate at the root of the bi-decomposition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum GateOp {
    /// `f = fA ∨ fB`.
    Or,
    /// `f = fA ∧ fB` (the dual of OR, Section IV-B).
    And,
    /// `f = fA ⊕ fB`.
    Xor,
}

impl GateOp {
    /// All three operators, in the paper's order.
    pub const ALL: [GateOp; 3] = [GateOp::Or, GateOp::And, GateOp::Xor];
}

impl std::fmt::Display for GateOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateOp::Or => write!(f, "OR"),
            GateOp::And => write!(f, "AND"),
            GateOp::Xor => write!(f, "XOR"),
        }
    }
}

/// Which bi-decomposition engine to run — the tools compared in the
/// paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Model {
    /// `LJH` — the SAT-based enumeration of Lee–Jiang–Hung (DAC'08),
    /// reimplementing the `Bi-dec` tool's best-quality mode.
    Ljh,
    /// `STEP-MG` — group-oriented MUS-based partitioning.
    MusGroup,
    /// `STEP-QD` — QBF model targeting optimum disjointness (5).
    QbfDisjoint,
    /// `STEP-QB` — QBF model targeting optimum balancedness (6).
    QbfBalanced,
    /// `STEP-QDB` — QBF model with the combined cost function (8),
    /// `1·disjointness + 1·balancedness`.
    QbfCombined,
}

impl Model {
    /// The full roster of the paper's evaluation, in table order.
    pub const ALL: [Model; 5] = [
        Model::Ljh,
        Model::MusGroup,
        Model::QbfDisjoint,
        Model::QbfBalanced,
        Model::QbfCombined,
    ];
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Model::Ljh => write!(f, "LJH"),
            Model::MusGroup => write!(f, "STEP-MG"),
            Model::QbfDisjoint => write!(f, "STEP-QD"),
            Model::QbfBalanced => write!(f, "STEP-QB"),
            Model::QbfCombined => write!(f, "STEP-QDB"),
        }
    }
}

/// Strategy for searching the optimum bound `k` (Section IV-A-6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SearchStrategy {
    /// Monotonically increasing `k` (the paper's best for
    /// balancedness).
    MonotoneIncreasing,
    /// Monotonically decreasing `k`.
    MonotoneDecreasing,
    /// Dichotomic divide-and-conquer (binary search).
    Binary,
    /// The paper's best pipeline for disjointness: a few MD steps, a
    /// binary-search phase, then MI to close the interval.
    MdBinMi,
}

/// Wall-clock budgets mirroring the paper's experimental setup
/// (4 s per QBF call, 6000 s per circuit on their hardware; scaled
/// defaults here).
#[derive(Clone, Copy, Debug)]
pub struct BudgetPolicy {
    /// Limit per QBF (CEGAR) solve.
    pub per_qbf_call: Duration,
    /// Limit per primary output.
    pub per_output: Duration,
    /// Limit per circuit.
    pub per_circuit: Duration,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        BudgetPolicy {
            per_qbf_call: Duration::from_secs(4),
            per_output: Duration::from_secs(60),
            per_circuit: Duration::from_secs(6000),
        }
    }
}

impl BudgetPolicy {
    /// The paper's exact setup.
    pub fn paper() -> Self {
        BudgetPolicy {
            per_qbf_call: Duration::from_secs(4),
            per_output: Duration::from_secs(6000),
            per_circuit: Duration::from_secs(6000),
        }
    }

    /// A tight budget for smoke tests and CI.
    pub fn quick() -> Self {
        BudgetPolicy {
            per_qbf_call: Duration::from_millis(500),
            per_output: Duration::from_secs(5),
            per_circuit: Duration::from_secs(60),
        }
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct DecompConfig {
    /// Which engine/model to run.
    pub model: Model,
    /// Budgets.
    pub budget: BudgetPolicy,
    /// `k`-search strategy for the QBF models. Defaults to the paper's
    /// best choice per metric (MD→Bin→MI for disjointness, MI for
    /// balancedness and combined).
    pub strategy: Option<SearchStrategy>,
    /// Add the `|XA| ≥ |XB|` symmetry-breaking constraint (paper
    /// Section IV-A-2). Always implied by the balancedness window.
    pub symmetry_breaking: bool,
    /// Permit `(αx, βx) = (1,1)` assignments (a variable usable in
    /// either block). Off by default: it never enables an otherwise
    /// impossible partition and shrinks the search space (see
    /// DESIGN.md §3.3).
    pub allow_both: bool,
    /// Extract `fA`/`fB` (interpolation / cofactoring) after
    /// partitioning.
    pub extract: bool,
    /// Verify extracted decompositions by SAT equivalence checking.
    pub verify: bool,
    /// Use 64-bit random simulation to pre-filter candidate seed pairs.
    pub sim_filter: bool,
    /// Random-simulation rounds for the pre-filter.
    pub sim_rounds: usize,
    /// Deterministic budget: conflicts per inner SAT call of the QBF
    /// models (`None` = unlimited). Complements the wall-clock budgets
    /// for reproducible Table-IV-style experiments.
    pub conflicts_per_call: Option<u64>,
    /// Worker threads for [`decompose_circuit`]: the ephemeral
    /// [`StepService`](crate::service::StepService) it spins up gets
    /// `jobs` persistent workers claiming outputs from the submission
    /// queue. Per-output results are identical for any value (see
    /// [`crate::job::cone_seed`]).
    ///
    /// [`decompose_circuit`]: crate::BiDecomposer::decompose_circuit
    pub jobs: usize,
    /// Base seed of the engine. Per-cone simulation seeds derive as
    /// `hash(seed, cone fingerprint)` ([`crate::job::cone_seed`]), so
    /// results depend neither on the order (or thread) in which outputs
    /// are visited nor on where in a circuit a cone appears —
    /// structurally identical cones always simulate the same patterns.
    pub seed: u64,
    /// Fault injection for the service's panic-containment regression
    /// tests: a worker panics right before solving this output index,
    /// exercising the pool-boundary `catch_unwind`. Always `None` in
    /// real configurations; excluded from the result-cache key.
    #[doc(hidden)]
    pub panic_on_output: Option<usize>,
}

impl DecompConfig {
    /// A configuration for `model` with defaults matching the paper's
    /// experimental setup (scaled budgets).
    pub fn new(model: Model) -> Self {
        DecompConfig {
            model,
            budget: BudgetPolicy::default(),
            strategy: None,
            symmetry_breaking: true,
            allow_both: false,
            extract: true,
            verify: true,
            sim_filter: true,
            sim_rounds: 4,
            conflicts_per_call: None,
            jobs: 1,
            seed: 0x5DEECE66D,
            panic_on_output: None,
        }
    }

    /// The effective `k`-search strategy for this configuration.
    pub fn effective_strategy(&self) -> SearchStrategy {
        if let Some(s) = self.strategy {
            return s;
        }
        match self.model {
            Model::QbfDisjoint => SearchStrategy::MdBinMi,
            _ => SearchStrategy::MonotoneIncreasing,
        }
    }
}
