//! The per-op result cache: a sharded, `Send + Sync` map from
//! `(cone fingerprint, operator, cache-relevant config)` to solved
//! outcomes.
//!
//! The engine solves every non-trivial cone in *canonical* input order
//! (see [`step_aig::canonicalize`]), so a solved outcome is a pure
//! function of the [`CacheKey`]: the canonical partition stored here
//! can be handed to any structurally identical cone — including
//! permuted-input twins at other outputs, in other circuits, or in
//! later runs — and translated through that cone's input permutation.
//! Sessions consult the cache before building the core formula and
//! oracle, which is where the real cost lives.
//!
//! Only **definitive** outcomes are cached (`solved` and not
//! `timed_out`): a budget-truncated result is a property of the run,
//! not of the cone, and must never masquerade as an answer for a
//! different run. That is also the invalidation story — entries never
//! go stale, because everything budget-dependent is excluded from the
//! cache and everything result-relevant is part of the key.
//!
//! The map is sharded ([`NUM_SHARDS`] mutexes) so the parallel circuit
//! driver's workers can hit it concurrently, and optionally bounded
//! with a second-chance (clock) eviction policy — no external deps.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use step_aig::ConeFingerprint;

use crate::partition::VarClass;
use crate::spec::{DecompConfig, GateOp, Model, SearchStrategy};

/// Number of independently-locked shards.
pub const NUM_SHARDS: usize = 16;

/// Everything a solved outcome depends on: the canonical cone identity
/// plus the configuration fields that steer the search. Budgets are
/// deliberately absent — wall *and* work alike, they only decide
/// *whether* a definitive outcome is reached, never which one (a
/// budget-truncated outcome is never cached), so entries are shared
/// across runs with different [`crate::spec::BudgetPolicy`] values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Canonical structural identity of the cone.
    pub fingerprint: ConeFingerprint,
    /// Root operator.
    pub op: GateOp,
    /// Engine model.
    pub model: Model,
    /// Effective `k`-search strategy.
    pub strategy: SearchStrategy,
    /// Symmetry-breaking constraint on/off.
    pub symmetry_breaking: bool,
    /// `(α,β) = (1,1)` assignments permitted.
    pub allow_both: bool,
    /// Simulation pre-filter on/off.
    pub sim_filter: bool,
    /// Pre-filter rounds.
    pub sim_rounds: usize,
    /// Engine base seed (feeds the canonical simulation seed).
    pub seed: u64,
    /// SAT restart policy: steers which partition the search finds
    /// first, so runs with different policies must not share entries.
    pub sat_restarts: step_sat::RestartPolicy,
    /// SAT root-level preprocessing on/off (result-relevant for the
    /// same reason).
    pub sat_preprocess: bool,
}

impl CacheKey {
    /// The key for solving `fingerprint` under `op` with `config`.
    pub fn new(fingerprint: ConeFingerprint, op: GateOp, config: &DecompConfig) -> Self {
        CacheKey {
            fingerprint,
            op,
            model: config.model,
            strategy: config.effective_strategy(),
            symmetry_breaking: config.symmetry_breaking,
            allow_both: config.allow_both,
            sim_filter: config.sim_filter,
            sim_rounds: config.sim_rounds,
            seed: config.seed,
            sat_restarts: config.sat_restarts,
            sat_preprocess: config.sat_preprocess,
        }
    }
}

/// A cached definitive outcome, in canonical variable order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedResult {
    /// Per-variable classes of the best partition over the *canonical*
    /// inputs (`None` = proved not decomposable). Translate to a cone's
    /// own order with its permutation before use.
    pub partition: Option<Vec<VarClass>>,
    /// The partition was proved metric-optimal.
    pub proved_optimal: bool,
}

/// How one output's solve interacted with the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheLookup {
    /// No cache attached, or the cone was trivial (support < 2) or
    /// skipped by an expired budget before lookup.
    #[default]
    Bypass,
    /// Looked up, not found; solved from scratch.
    Miss,
    /// Served from the cache.
    Hit,
}

struct Slot {
    value: CachedResult,
    /// Second-chance bit: set on every hit, cleared once by the clock
    /// hand before the entry becomes evictable.
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Slot>,
    /// Insertion ring for the clock hand.
    ring: VecDeque<CacheKey>,
}

/// The sharded result cache. See the module docs.
///
/// Create one, wrap it in an [`std::sync::Arc`] and attach it to any
/// number of engines ([`crate::BiDecomposer::set_cache`]) to share
/// solved cones across outputs, circuits and whole benchmark sweeps.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound (`None` = unbounded).
    shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A cache holding at most `capacity` entries (rounded up to a
    /// multiple of [`NUM_SHARDS`]), evicting with second chance.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(Some(capacity.div_ceil(NUM_SHARDS).max(1)))
    }

    fn build(shard_capacity: Option<usize>) -> Self {
        ResultCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.fingerprint.hash as usize) % NUM_SHARDS]
    }

    /// Looks up a definitive outcome, bumping the hit/miss counters.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.get_mut(key) {
            Some(slot) => {
                slot.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a definitive outcome, evicting with
    /// second chance when the shard is at capacity.
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some(slot) = shard.map.get_mut(&key) {
            // Concurrent workers may race on the same cone; outcomes
            // are deterministic per key, so last write is a no-op.
            slot.value = value;
            return;
        }
        if let Some(cap) = self.shard_capacity {
            while shard.map.len() >= cap {
                let Some(victim) = shard.ring.pop_front() else {
                    break;
                };
                let evict = match shard.map.get_mut(&victim) {
                    // Recently used: spend its second chance.
                    Some(slot) if slot.referenced => {
                        slot.referenced = false;
                        false
                    }
                    Some(_) => true,
                    None => continue,
                };
                if evict {
                    shard.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    shard.ring.push_back(victim);
                }
            }
        }
        shard.ring.push_back(key);
        shard.map.insert(
            key,
            Slot {
                value,
                referenced: false,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries inserted since creation.
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured total capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.shard_capacity.map(|c| c * NUM_SHARDS)
    }
}

impl fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("inserts", &self.inserts())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Model;

    fn key(h: u128) -> CacheKey {
        CacheKey::new(
            ConeFingerprint {
                hash: h,
                inputs: 4,
                ands: 3,
            },
            GateOp::Or,
            &DecompConfig::new(Model::QbfDisjoint),
        )
    }

    fn value(tag: bool) -> CachedResult {
        CachedResult {
            partition: Some(vec![VarClass::A, VarClass::B, VarClass::C, VarClass::C]),
            proved_optimal: tag,
        }
    }

    #[test]
    fn lookup_roundtrip_and_counters() {
        let cache = ResultCache::new();
        let k = key(7);
        assert_eq!(cache.lookup(&k), None);
        cache.insert(k, value(true));
        assert_eq!(cache.lookup(&k), Some(value(true)));
        assert_eq!(
            (cache.hits(), cache.misses(), cache.inserts(), cache.len()),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let cache = ResultCache::new();
        let fp = ConeFingerprint {
            hash: 9,
            inputs: 4,
            ands: 3,
        };
        let mut c1 = DecompConfig::new(Model::QbfDisjoint);
        let mut c2 = DecompConfig::new(Model::QbfDisjoint);
        c2.seed = c1.seed ^ 1;
        c1.sim_rounds = 4;
        cache.insert(CacheKey::new(fp, GateOp::Or, &c1), value(true));
        assert_eq!(cache.lookup(&CacheKey::new(fp, GateOp::Or, &c2)), None);
        assert_eq!(cache.lookup(&CacheKey::new(fp, GateOp::And, &c1)), None);
        assert_eq!(
            cache.lookup(&CacheKey::new(fp, GateOp::Or, &c1)),
            Some(value(true))
        );
    }

    #[test]
    fn capacity_bound_evicts_with_second_chance() {
        // Single-shard-sized capacity: keys all map to one shard when
        // their hashes share `h % NUM_SHARDS`.
        let cache = ResultCache::with_capacity(2 * NUM_SHARDS);
        let shard_keys: Vec<CacheKey> = (0..3)
            .map(|i| key((i * NUM_SHARDS) as u128)) // same shard
            .collect();
        cache.insert(shard_keys[0], value(false));
        cache.insert(shard_keys[1], value(false));
        // Touch key 0 so it owns a second chance.
        assert!(cache.lookup(&shard_keys[0]).is_some());
        cache.insert(shard_keys[2], value(false));
        assert!(
            cache.lookup(&shard_keys[0]).is_some(),
            "recently-hit entry survives"
        );
        assert!(
            cache.lookup(&shard_keys[1]).is_none(),
            "cold entry is the victim"
        );
        assert!(cache.lookup(&shard_keys[2]).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache = ResultCache::with_capacity(NUM_SHARDS);
        let k = key(3);
        cache.insert(k, value(false));
        cache.insert(k, value(true));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&k), Some(value(true)));
    }
}
