//! Recursive multi-level bi-decomposition.
//!
//! The paper's introduction motivates bi-decomposition as the engine of
//! multi-level logic synthesis: a complex `f(X)` is split into two
//! simpler sub-functions, which are split again, until the leaves are
//! simple — producing a network of two-input OR/AND/XOR gates over
//! small leaf functions. This module iterates the single-step engine
//! ([`crate::BiDecomposer`]) into that flow:
//!
//! * [`decompose_tree`] recursively decomposes a primary output,
//!   trying the given operators in order at every level;
//! * the result is a [`DecompTree`] whose internal nodes are the
//!   chosen gates and whose leaves are (small) undecomposable
//!   functions with their own input supports;
//! * [`DecompTree::to_aig`] rebuilds the network as an AIG for
//!   verification ([`crate::verify()`]-style miter checks are exercised
//!   in the tests) and [`DecompTree::render`] pretty-prints the
//!   structure.

use step_aig::{Aig, AigLit};

use crate::engine::{BiDecomposer, StepError};
use crate::spec::GateOp;

/// A node of a multi-level decomposition tree.
#[derive(Clone, Debug)]
pub enum TreeNode {
    /// An undecomposable (or depth-limited) leaf function.
    Leaf {
        /// Single-output AIG computing the leaf.
        func: Aig,
        /// For each input of `func`: the index of the original input
        /// it reads.
        inputs: Vec<usize>,
    },
    /// A two-input gate over two sub-trees.
    Gate {
        /// The gate operator chosen at this level.
        op: GateOp,
        /// Left child (`fA`).
        left: Box<TreeNode>,
        /// Right child (`fB`).
        right: Box<TreeNode>,
    },
}

/// A multi-level bi-decomposition of one output function.
#[derive(Clone, Debug)]
pub struct DecompTree {
    /// The tree root.
    pub root: TreeNode,
    /// Number of original circuit inputs (leaf `inputs` index these).
    pub num_inputs: usize,
}

impl DecompTree {
    /// Number of gate (internal) nodes.
    pub fn num_gates(&self) -> usize {
        fn rec(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Gate { left, right, .. } => 1 + rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }

    /// Number of leaf functions.
    pub fn num_leaves(&self) -> usize {
        fn rec(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Gate { left, right, .. } => rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }

    /// Depth of the gate tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Gate { left, right, .. } => 1 + rec(left).max(rec(right)),
            }
        }
        rec(&self.root)
    }

    /// The maximum leaf support size — the "simplicity" measure the
    /// decomposition drives down.
    pub fn max_leaf_support(&self) -> usize {
        fn rec(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf { inputs, .. } => inputs.len(),
                TreeNode::Gate { left, right, .. } => rec(left).max(rec(right)),
            }
        }
        rec(&self.root)
    }

    /// Evaluates the tree under an assignment of the original inputs.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        fn rec(n: &TreeNode, a: &[bool]) -> bool {
            match n {
                TreeNode::Leaf { func, inputs } => {
                    let ins: Vec<bool> = inputs.iter().map(|&i| a[i]).collect();
                    func.eval(&ins)[0]
                }
                TreeNode::Gate { op, left, right } => {
                    let l = rec(left, a);
                    let r = rec(right, a);
                    match op {
                        GateOp::Or => l || r,
                        GateOp::And => l && r,
                        GateOp::Xor => l ^ r,
                    }
                }
            }
        }
        rec(&self.root, assignment)
    }

    /// Rebuilds the whole network as a single-output AIG over
    /// `num_inputs` inputs (named `x<i>`).
    pub fn to_aig(&self) -> Aig {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..self.num_inputs)
            .map(|i| aig.add_input(format!("x{i}")))
            .collect();
        fn rec(n: &TreeNode, aig: &mut Aig, inputs: &[AigLit]) -> AigLit {
            match n {
                TreeNode::Leaf {
                    func,
                    inputs: leaf_ins,
                } => {
                    let mut map = std::collections::HashMap::new();
                    for (k, &orig) in leaf_ins.iter().enumerate() {
                        map.insert(func.input_node(k), inputs[orig]);
                    }
                    let root = func.outputs()[0].lit();
                    aig.import(func, root, &mut map)
                }
                TreeNode::Gate { op, left, right } => {
                    let l = rec(left, aig, inputs);
                    let r = rec(right, aig, inputs);
                    match op {
                        GateOp::Or => aig.or(l, r),
                        GateOp::And => aig.and(l, r),
                        GateOp::Xor => aig.xor(l, r),
                    }
                }
            }
        }
        let root = rec(&self.root, &mut aig, &inputs);
        aig.add_output("f", root);
        aig
    }

    /// Pretty-prints the tree structure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        fn rec(n: &TreeNode, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match n {
                TreeNode::Leaf { inputs, func } => {
                    out.push_str(&format!(
                        "{pad}leaf({} vars: {:?}, {} ands)\n",
                        inputs.len(),
                        inputs,
                        func.and_count()
                    ));
                }
                TreeNode::Gate { op, left, right } => {
                    out.push_str(&format!("{pad}{op}\n"));
                    rec(left, indent + 1, out);
                    rec(right, indent + 1, out);
                }
            }
        }
        rec(&self.root, 0, &mut out);
        out
    }
}

/// Options for the recursive flow.
#[derive(Clone, Copy, Debug)]
pub struct TreeOptions {
    /// Operators to try, in preference order, at every level.
    pub ops: [GateOp; 3],
    /// Stop recursing below this support size.
    pub min_support: usize,
    /// Maximum recursion depth (`None` = until undecomposable).
    pub max_depth: Option<usize>,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            ops: [GateOp::Or, GateOp::And, GateOp::Xor],
            min_support: 2,
            max_depth: None,
        }
    }
}

/// Recursively bi-decomposes output `out_idx` of `aig`.
///
/// At every level the engine tries `opts.ops` in order and recurses on
/// the extracted `fA`/`fB`. Functions that no operator decomposes
/// become leaves.
///
/// # Errors
///
/// Propagates [`StepError`] from the underlying engine.
pub fn decompose_tree(
    engine: &mut BiDecomposer,
    aig: &Aig,
    out_idx: usize,
    opts: &TreeOptions,
) -> Result<DecompTree, StepError> {
    if !aig.is_comb() {
        return Err(StepError::NotCombinational);
    }
    let output = aig
        .outputs()
        .get(out_idx)
        .ok_or(StepError::OutputOutOfRange(out_idx))?;
    let cone = aig.cone(output.lit());
    let identity: Vec<usize> = cone.leaves.clone();
    let root = rec(engine, &cone.aig, cone.root, &identity, opts, 0)?;
    Ok(DecompTree {
        root,
        num_inputs: aig.num_inputs(),
    })
}

fn rec(
    engine: &mut BiDecomposer,
    func: &Aig,
    root: AigLit,
    orig_inputs: &[usize],
    opts: &TreeOptions,
    depth: usize,
) -> Result<TreeNode, StepError> {
    let make_leaf = |func: &Aig, root: AigLit, orig: &[usize]| -> TreeNode {
        let cone = func.cone(root);
        let inputs: Vec<usize> = cone.leaves.iter().map(|&l| orig[l]).collect();
        let mut leaf = cone.aig;
        leaf.add_output("leaf", cone.root);
        TreeNode::Leaf {
            func: leaf.compact(),
            inputs,
        }
    };

    let support = func.support(root);
    if support.len() < opts.min_support.max(2) || opts.max_depth.is_some_and(|d| depth >= d) {
        return Ok(make_leaf(func, root, orig_inputs));
    }

    // One standalone circuit for the engine: the cone with one output.
    let cone = func.cone(root);
    let mapped: Vec<usize> = cone.leaves.iter().map(|&l| orig_inputs[l]).collect();
    let mut sub = cone.aig.clone();
    sub.add_output("f", cone.root);

    for &op in &opts.ops {
        // Extraction must stay on for recursion.
        let saved_extract = engine.config().extract;
        engine.config_mut().extract = true;
        let r = engine.decompose_output(&sub, 0, op)?;
        engine.config_mut().extract = saved_extract;
        let Some(d) = r.decomposition else {
            continue;
        };
        let left = rec(engine, &d.aig, d.fa, &mapped, opts, depth + 1)?;
        let right = rec(engine, &d.aig, d.fb, &mapped, opts, depth + 1)?;
        return Ok(TreeNode::Gate {
            op,
            left: Box::new(left),
            right: Box::new(right),
        });
    }
    Ok(make_leaf(func, root, orig_inputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DecompConfig, Model};

    fn engine() -> BiDecomposer {
        BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint))
    }

    fn all_inputs(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1usize << n).map(move |m| (0..n).map(|i| m >> i & 1 == 1).collect())
    }

    #[test]
    fn tree_of_disjoint_cubes_is_fully_decomposed() {
        // f = (x0 x1) | (x2 x3) | (x4 x5): two OR levels, AND leaves
        // that decompose again into single literals.
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..6).map(|i| aig.add_input(format!("x{i}"))).collect();
        let c0 = aig.and(xs[0], xs[1]);
        let c1 = aig.and(xs[2], xs[3]);
        let c2 = aig.and(xs[4], xs[5]);
        let t = aig.or(c0, c1);
        let f = aig.or(t, c2);
        aig.add_output("f", f);

        let tree = decompose_tree(&mut engine(), &aig, 0, &TreeOptions::default()).unwrap();
        assert!(
            tree.num_gates() >= 3,
            "at least the three cube joins: \n{}",
            tree.render()
        );
        assert_eq!(
            tree.max_leaf_support(),
            1,
            "leaves must be literals:\n{}",
            tree.render()
        );
        // Exhaustive functional equivalence.
        for v in all_inputs(6) {
            assert_eq!(tree.eval(&v), aig.eval(&v)[0], "at {v:?}");
        }
        // Rebuilt AIG is equivalent too.
        let net = tree.to_aig();
        for v in all_inputs(6) {
            assert_eq!(net.eval(&v)[0], aig.eval(&v)[0]);
        }
    }

    #[test]
    fn parity_decomposes_into_xor_tree() {
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..5).map(|i| aig.add_input(format!("x{i}"))).collect();
        let f = aig.xor_many(&xs);
        aig.add_output("f", f);
        let opts = TreeOptions {
            ops: [GateOp::Xor, GateOp::Or, GateOp::And],
            ..TreeOptions::default()
        };
        let tree = decompose_tree(&mut engine(), &aig, 0, &opts).unwrap();
        assert_eq!(
            tree.num_gates(),
            4,
            "n-input parity needs n-1 XORs:\n{}",
            tree.render()
        );
        assert_eq!(tree.max_leaf_support(), 1);
        for v in all_inputs(5) {
            assert_eq!(tree.eval(&v), aig.eval(&v)[0]);
        }
    }

    #[test]
    fn undecomposable_function_is_a_single_leaf() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let bc = aig.and(b, c);
        let t = aig.or(ab, ac);
        let f = aig.or(t, bc);
        aig.add_output("maj", f);
        let tree = decompose_tree(&mut engine(), &aig, 0, &TreeOptions::default()).unwrap();
        assert_eq!(tree.num_gates(), 0);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.max_leaf_support(), 3);
        for v in all_inputs(3) {
            assert_eq!(tree.eval(&v), aig.eval(&v)[0]);
        }
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..8).map(|i| aig.add_input(format!("x{i}"))).collect();
        let f = aig.xor_many(&xs);
        aig.add_output("f", f);
        let opts = TreeOptions {
            ops: [GateOp::Xor, GateOp::Or, GateOp::And],
            min_support: 2,
            max_depth: Some(2),
        };
        let tree = decompose_tree(&mut engine(), &aig, 0, &opts).unwrap();
        assert!(tree.depth() <= 2, "\n{}", tree.render());
        for v in all_inputs(8) {
            assert_eq!(tree.eval(&v), aig.eval(&v)[0]);
        }
    }

    #[test]
    fn mixed_structure_round_trips() {
        // f = ((x0 ^ x1) & x2) | (x3 & x4): OR at top, then AND/XOR.
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..5).map(|i| aig.add_input(format!("x{i}"))).collect();
        let x01 = aig.xor(xs[0], xs[1]);
        let l = aig.and(x01, xs[2]);
        let r = aig.and(xs[3], xs[4]);
        let f = aig.or(l, r);
        aig.add_output("f", f);
        let tree = decompose_tree(&mut engine(), &aig, 0, &TreeOptions::default()).unwrap();
        assert!(tree.num_gates() >= 2, "\n{}", tree.render());
        for v in all_inputs(5) {
            assert_eq!(tree.eval(&v), aig.eval(&v)[0]);
        }
        let net = tree.to_aig();
        for v in all_inputs(5) {
            assert_eq!(net.eval(&v)[0], aig.eval(&v)[0]);
        }
    }
}
