//! [`OutputJob`] — the pure, immutable description of one unit of
//! decomposition work.
//!
//! A job carries everything a worker needs to decompose one primary
//! output — the output index, the root operator and the budgets (its
//! own per-output [`Budget`] plus the shared circuit-scope
//! [`CircuitBudget`]) — and nothing else. Jobs contain no solver
//! state and are safe to hand to any thread: they are the unit of
//! work a [`StepService`](crate::service::StepService) worker claims
//! from a submission's queue. The mutable solving machinery lives in
//! [`crate::session::SolveSession`], which turns the job's budgets
//! into an [`EffortMeter`](crate::effort::EffortMeter).

use crate::effort::CircuitBudget;
use crate::spec::{Budget, DecompConfig, GateOp};

/// Derives the simulation seed for a cone from the engine's base seed
/// and the cone's canonical fingerprint hash.
///
/// The seed is a pure function `hash(base, fingerprint)` (a SplitMix64
/// finalizer folding both 64-bit halves of the fingerprint), so a given
/// cone always simulates the same random patterns regardless of which
/// output, circuit, thread or visitation order it was reached through —
/// and two structurally identical cones simulate *identical* patterns.
/// This is what makes [`crate::BiDecomposer::decompose_circuit`]
/// deterministic under `jobs > 1` *and* makes solved outcomes a pure
/// function of the result-cache key ([`crate::cache::CacheKey`]).
pub fn cone_seed(base: u64, fingerprint: u128) -> u64 {
    let mut z = base
        ^ (fingerprint as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((fingerprint >> 64) as u64).rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit of work for the circuit driver: decompose one primary output.
///
/// Pure description only — no cone, no formulas, no solvers. Workers
/// turn a job into a [`crate::session::SolveSession`] when they claim
/// it from the queue. Cloning is cheap: the circuit budget shares its
/// work pool rather than copying it.
#[derive(Clone, Debug)]
pub struct OutputJob {
    /// Index of the primary output to decompose.
    pub output_index: usize,
    /// Root operator of the bi-decomposition.
    pub op: GateOp,
    /// Budget for this output (the session anchors the wall component
    /// at construction time, before cone extraction; the work
    /// component meters solver conflicts).
    pub per_output: Budget,
    /// Shared circuit-scope limits, if the job is part of a circuit
    /// run: the shared deadline caps the per-output one, and the
    /// shared work pool is debited by every sibling output.
    pub circuit: CircuitBudget,
}

impl OutputJob {
    /// Builds the job for output `output_index` under `config` (no
    /// circuit-scope limits; attach them with
    /// [`with_circuit`](OutputJob::with_circuit)).
    pub fn new(config: &DecompConfig, output_index: usize, op: GateOp) -> Self {
        OutputJob {
            output_index,
            op,
            per_output: config.budget.per_output,
            circuit: CircuitBudget::default(),
        }
    }

    /// Caps the job by the shared circuit-scope budget.
    pub fn with_circuit(mut self, circuit: CircuitBudget) -> Self {
        self.circuit = circuit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cone_seed_is_a_pure_spread_function() {
        let fp = 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233u128;
        let a = cone_seed(42, fp);
        assert_eq!(a, cone_seed(42, fp), "pure function of (base, fingerprint)");
        assert_ne!(
            a,
            cone_seed(42, fp ^ 1),
            "distinct cones get distinct seeds"
        );
        assert_ne!(a, cone_seed(43, fp), "distinct bases get distinct seeds");
        assert_ne!(
            cone_seed(0, 1u128 << 64),
            cone_seed(0, 1),
            "both fingerprint halves feed the seed"
        );
    }

    #[test]
    fn job_carries_its_budgets() {
        use crate::spec::Model;
        let mut config = DecompConfig::new(Model::QbfDisjoint);
        config.budget.per_output = Budget::Work(123);
        let start = std::time::Instant::now();
        let circuit =
            CircuitBudget::anchored(Budget::Wall(std::time::Duration::from_secs(1)), start);
        let job = OutputJob::new(&config, 3, GateOp::Or).with_circuit(circuit);
        assert_eq!(job.output_index, 3);
        assert_eq!(job.per_output, Budget::Work(123));
        assert_eq!(
            job.circuit.deadline,
            Some(start + std::time::Duration::from_secs(1))
        );
    }
}
