//! [`OutputJob`] — the pure, immutable description of one unit of
//! decomposition work.
//!
//! A job carries everything a worker needs to decompose one primary
//! output — the output index, the root operator, the wall-clock
//! budgets and the per-output simulation seed — and nothing else. Jobs
//! are `Copy`, contain no solver state, and are safe to hand to any
//! thread; the mutable solving machinery lives in
//! [`crate::session::SolveSession`].

use std::time::{Duration, Instant};

use crate::spec::{DecompConfig, GateOp};

/// Derives the per-output simulation seed from the engine's base seed.
///
/// The seed is a pure function `hash(base, output_index)` (a
/// SplitMix64 finalizer over the golden-ratio-spread index), so a given
/// output always simulates the same random patterns regardless of the
/// order — or the thread — in which outputs are visited. This is what
/// makes [`crate::BiDecomposer::decompose_circuit`] deterministic
/// under `jobs > 1`.
pub fn output_seed(base: u64, output_index: usize) -> u64 {
    let mut z = base
        ^ (output_index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit of work for the circuit driver: decompose one primary output.
///
/// Pure description only — no cone, no formulas, no solvers. Workers
/// turn a job into a [`crate::session::SolveSession`] when they claim
/// it from the queue.
#[derive(Clone, Copy, Debug)]
pub struct OutputJob {
    /// Index of the primary output to decompose.
    pub output_index: usize,
    /// Root operator of the bi-decomposition.
    pub op: GateOp,
    /// Wall-clock budget for this output (the session anchors its
    /// deadline at construction time).
    pub per_output: Duration,
    /// Shared whole-circuit deadline, if the job is part of a circuit
    /// run; the effective per-output deadline is capped by it.
    pub circuit_deadline: Option<Instant>,
    /// Seed for the 64-bit random-simulation pre-filter, derived via
    /// [`output_seed`] so it depends only on the engine seed and the
    /// output index.
    pub sim_seed: u64,
}

impl OutputJob {
    /// Builds the job for output `output_index` under `config`.
    pub fn new(config: &DecompConfig, output_index: usize, op: GateOp) -> Self {
        OutputJob {
            output_index,
            op,
            per_output: config.budget.per_output,
            circuit_deadline: None,
            sim_seed: output_seed(config.seed, output_index),
        }
    }

    /// Caps the job by a shared whole-circuit deadline.
    pub fn with_circuit_deadline(mut self, deadline: Instant) -> Self {
        self.circuit_deadline = Some(deadline);
        self
    }

    /// The effective deadline for a session starting at `start`.
    pub fn deadline_from(&self, start: Instant) -> Instant {
        let own = start + self.per_output;
        match self.circuit_deadline {
            Some(c) => own.min(c),
            None => own,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_seed_is_order_free_and_spread() {
        let a = output_seed(42, 0);
        let b = output_seed(42, 1);
        let c = output_seed(42, 0);
        assert_eq!(a, c, "pure function of (base, index)");
        assert_ne!(a, b, "distinct indices get distinct seeds");
        assert_ne!(output_seed(43, 0), a, "distinct bases get distinct seeds");
    }

    #[test]
    fn deadline_capped_by_circuit() {
        let start = Instant::now();
        let job = OutputJob {
            output_index: 0,
            op: GateOp::Or,
            per_output: Duration::from_secs(60),
            circuit_deadline: Some(start + Duration::from_secs(1)),
            sim_seed: 1,
        };
        assert_eq!(job.deadline_from(start), start + Duration::from_secs(1));
    }
}
