//! The tiered [`ArtifactStore`]: one abstraction over all three reuse
//! surfaces, with an optional persistent disk tier.
//!
//! PRs 3 and 7 grew three independent in-memory reuse surfaces —
//! [`ResultCache`] (solved partitions), [`ClauseBank`] (donated learnt
//! clauses + refuter snapshots) and the probe-certificate ledger — all
//! keyed by the same canonical 128-bit cone fingerprint, and all
//! forgotten at process exit. This module unifies them behind one
//! trait:
//!
//! * **tier 0** — the existing sharded in-memory structures, untouched
//!   (their eviction policies, counters and tests stay exactly as they
//!   were);
//! * **tier 1** — a persistent, mergeable [`DiskTier`]: one
//!   append-only, checksummed record log per `(artifact kind,
//!   result-relevant config key)` namespace, loaded at service spawn
//!   and flushed at shutdown.
//!
//! Artifacts are addressed by [`Namespace`] × [`ArtifactKey`]. The
//! namespace carries the artifact kind plus a canonical
//! [`ConfigKey`] string naming every configuration field the artifact's
//! *content* depends on — results key on the full result-relevant
//! config (model, strategy, seed, …), clause donations are
//! config-universal (the oracle CNF depends only on the cone), probe
//! certificates key on the solver knobs a verdict depends on. Distinct
//! config keys live in distinct files, so merging stores can never mix
//! incomparable artifacts.
//!
//! **Determinism contract (PR 7, preserved).** Every tier serves only
//! *semantic* artifacts: definitive solved outcomes, clauses implied by
//! the recipient's own CNF, and probe certificates that are pure
//! functions of their key. Persistence therefore changes how much work
//! an answer costs, never the answer — a warm run over a shared cache
//! directory is byte-identical (under `--no-timing`) to a cold run.
//!
//! **Corruption tolerance.** Records are length-prefixed and carry an
//! xxhash-style (XXH64) checksum. A truncated or bit-flipped tail is
//! skipped — the good prefix loads, [`DiskTier::corrupt_records`]
//! counts the damage, and nothing ever panics on a bad file. Unknown
//! format versions are skipped whole, so future layouts can evolve
//! safely.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use step_aig::ConeFingerprint;
use step_cnf::{Lit, Var};
use step_sat::LearntExport;

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::clause_bank::{ClauseBank, OraclePool, ProbeCfg, ProbeVerdict, ReuseCtx};
use crate::partition::VarClass;
use crate::qbf_model::Target;
use crate::spec::{DecompConfig, GateOp, Model, SearchStrategy};

/// Which reuse surface an artifact belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArtifactKind {
    /// A definitive solved outcome (the result cache's currency).
    Result,
    /// A donated learnt-clause snapshot (the clause bank's currency).
    Clauses,
    /// A probe certificate (the probe ledger's currency).
    Probe,
}

impl ArtifactKind {
    /// All three kinds, in reporting order.
    pub const ALL: [ArtifactKind; 3] = [
        ArtifactKind::Result,
        ArtifactKind::Clauses,
        ArtifactKind::Probe,
    ];

    /// The on-disk filename prefix and stats label.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Result => "results",
            ArtifactKind::Clauses => "clauses",
            ArtifactKind::Probe => "probes",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ArtifactKind::Result => 0,
            ArtifactKind::Clauses => 1,
            ArtifactKind::Probe => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ArtifactKind::Result),
            1 => Some(ArtifactKind::Clauses),
            2 => Some(ArtifactKind::Probe),
            _ => None,
        }
    }
}

/// The canonical rendering of every configuration field an artifact's
/// content depends on. Two runs share a namespace — and therefore a
/// store file — if and only if their config keys are equal, which is
/// what makes merged stores safe: nothing config-dependent can cross
/// configs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConfigKey(String);

impl ConfigKey {
    /// The result namespace: exactly the [`CacheKey`] config fields.
    pub fn results(config: &DecompConfig) -> Self {
        let model = match config.model {
            Model::Ljh => "ljh",
            Model::MusGroup => "mg",
            Model::QbfDisjoint => "qd",
            Model::QbfBalanced => "qb",
            Model::QbfCombined => "qdb",
        };
        let strategy = match config.effective_strategy() {
            SearchStrategy::MonotoneIncreasing => "mi",
            SearchStrategy::MonotoneDecreasing => "md",
            SearchStrategy::Binary => "bin",
            SearchStrategy::MdBinMi => "mdbinmi",
        };
        ConfigKey(format!(
            "model={model};strategy={strategy};sb={};ab={};simf={};simr={};seed={};\
             restarts={};prep={}",
            u8::from(config.symmetry_breaking),
            u8::from(config.allow_both),
            u8::from(config.sim_filter),
            config.sim_rounds,
            config.seed,
            config.sat_restarts,
            u8::from(config.sat_preprocess),
        ))
    }

    /// The clause namespace: config-universal by design — the oracle
    /// CNF is a pure function of `(fingerprint, op)`, which is exactly
    /// why the bank's exact channel serves across models and seeds.
    pub fn clauses() -> Self {
        ConfigKey("universal".to_owned())
    }

    /// The probe namespace: the solver knobs a deterministic CEGAR
    /// verdict depends on (no model, no seed — a probe's outcome is a
    /// pure function of `(cone, op, target, these knobs)`).
    pub fn probes(cfg: ProbeCfg) -> Self {
        ConfigKey(format!(
            "sb={};ab={};restarts={};prep={}",
            u8::from(cfg.symmetry_breaking),
            u8::from(cfg.allow_both),
            cfg.restarts,
            u8::from(cfg.preprocess),
        ))
    }

    /// The canonical string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// How the tier-0 structure of a namespace is addressed — the piece a
/// namespace needs beyond the config string to talk to the existing
/// sharded in-memory maps.
#[derive(Clone, Debug)]
enum Tier0Ctx {
    /// Result lookups need a full [`CacheKey`]; the namespace carries a
    /// prototype built from the config once, and each lookup stamps the
    /// fingerprint and operator in.
    Result { proto: CacheKey },
    /// Clause lookups address the bank by `(fingerprint, op)` alone.
    Clauses,
    /// Probe lookups additionally carry the solver knobs.
    Probe { cfg: ProbeCfg },
}

/// One artifact namespace: kind × result-relevant config key. Build
/// with [`Namespace::results`], [`Namespace::clauses`] or
/// [`Namespace::probes`].
#[derive(Clone, Debug)]
pub struct Namespace {
    kind: ArtifactKind,
    config: ConfigKey,
    tier0: Tier0Ctx,
}

/// A placeholder fingerprint for the namespace's prototype
/// [`CacheKey`]; every lookup overwrites it before use.
const PROTO_FP: ConeFingerprint = ConeFingerprint {
    hash: 0,
    inputs: 0,
    ands: 0,
};

impl Namespace {
    /// The solved-result namespace of `config`.
    pub fn results(config: &DecompConfig) -> Self {
        Namespace {
            kind: ArtifactKind::Result,
            config: ConfigKey::results(config),
            tier0: Tier0Ctx::Result {
                proto: CacheKey::new(PROTO_FP, GateOp::Or, config),
            },
        }
    }

    /// The (config-universal) clause-donation namespace.
    pub fn clauses() -> Self {
        Namespace {
            kind: ArtifactKind::Clauses,
            config: ConfigKey::clauses(),
            tier0: Tier0Ctx::Clauses,
        }
    }

    /// The probe-certificate namespace of `cfg`.
    pub fn probes(cfg: ProbeCfg) -> Self {
        Namespace {
            kind: ArtifactKind::Probe,
            config: ConfigKey::probes(cfg),
            tier0: Tier0Ctx::Probe { cfg },
        }
    }

    /// The artifact kind this namespace holds.
    pub fn kind(&self) -> ArtifactKind {
        self.kind
    }

    /// The canonical config key naming this namespace.
    pub fn config_key(&self) -> &ConfigKey {
        &self.config
    }

    /// The full [`CacheKey`] for a result lookup in this namespace.
    fn cache_key(&self, key: &ArtifactKey) -> Option<CacheKey> {
        match &self.tier0 {
            Tier0Ctx::Result { proto } => {
                let mut k = *proto;
                k.fingerprint = key.fingerprint;
                k.op = key.op;
                Some(k)
            }
            _ => None,
        }
    }
}

/// The per-artifact address within a namespace: the canonical cone,
/// the operator, and a kind-specific auxiliary word (a packed
/// [`Target`] for probes, zero otherwise).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// Canonical structural identity of the cone.
    pub fingerprint: ConeFingerprint,
    /// Root operator.
    pub op: GateOp,
    /// Kind-specific discriminant: [`pack_target`] output for probe
    /// certificates, `0` for results and clauses.
    pub aux: u64,
}

impl ArtifactKey {
    /// The key for a result or clause artifact.
    pub fn of(fingerprint: ConeFingerprint, op: GateOp) -> Self {
        ArtifactKey {
            fingerprint,
            op,
            aux: 0,
        }
    }

    /// The key for a probe certificate, if the target is encodable
    /// (see [`pack_target`]).
    pub fn probe(fingerprint: ConeFingerprint, op: GateOp, target: Target) -> Option<Self> {
        Some(ArtifactKey {
            fingerprint,
            op,
            aux: pack_target(target)?,
        })
    }
}

/// Weight bound of the packed [`Target::Weighted`] encoding (14 bits
/// per weight keeps the whole pack inside 63 bits).
const PACK_W_MAX: u32 = (1 << 14) - 1;

/// Packs a probe [`Target`] into a `u64` **injectively** — never by
/// hashing: two targets sharing an `aux` word would let one probe's
/// certificate answer another probe's question, corrupting answers.
/// Layout: tag in bits 60–63, payload below. Returns `None` for
/// `Weighted` targets whose weights exceed `PACK_W_MAX` — such
/// probes simply skip the store (tier 0 handles them natively).
pub fn pack_target(target: Target) -> Option<u64> {
    Some(match target {
        Target::Any => 0,
        Target::DisjointAtMost(k) => (1 << 60) | u64::from(u32::try_from(k).ok()?),
        Target::BalancedWindow(k) => (2 << 60) | u64::from(u32::try_from(k).ok()?),
        Target::CombinedAtMost(k) => (3 << 60) | u64::from(u32::try_from(k).ok()?),
        Target::Weighted { wd, wb, k } => {
            if wd > PACK_W_MAX || wb > PACK_W_MAX {
                return None;
            }
            let k = u64::from(u32::try_from(k).ok()?);
            (4 << 60) | (u64::from(wd) << 46) | (u64::from(wb) << 32) | k
        }
    })
}

/// Inverts [`pack_target`]. Returns `None` for words no target packs
/// to (e.g. read from a corrupted or foreign record).
pub fn unpack_target(aux: u64) -> Option<Target> {
    let k = (aux & 0xFFFF_FFFF) as usize;
    Some(match aux >> 60 {
        0 if aux == 0 => Target::Any,
        1 => Target::DisjointAtMost(k),
        2 => Target::BalancedWindow(k),
        3 => Target::CombinedAtMost(k),
        4 => Target::Weighted {
            wd: ((aux >> 46) & u64::from(PACK_W_MAX)) as u32,
            wb: ((aux >> 32) & u64::from(PACK_W_MAX)) as u32,
            k,
        },
        _ => return None,
    })
}

/// A donated clause snapshot as the store carries it: the oracle-side
/// export plus the optional check-side (refuter) snapshot. Disk
/// entries are always exact — the cluster channel's near-twin matching
/// is a tier-0 notion.
#[derive(Clone, Debug)]
pub struct ClausePayload {
    /// Oracle-CNF learnt clauses and activity hints.
    pub export: Arc<LearntExport>,
    /// Check-side (refuter) snapshot, if the donor ran a QBF model.
    pub check: Option<Arc<LearntExport>>,
    /// `true` = same-fingerprint donor (verbatim import); `false` =
    /// tier-0 cluster hit (vet every clause before use).
    pub exact: bool,
}

/// One stored artifact.
#[derive(Clone, Debug)]
pub enum Artifact {
    /// A definitive solved outcome.
    Result(CachedResult),
    /// A donated clause snapshot.
    Clauses(ClausePayload),
    /// A probe certificate.
    Probe(ProbeVerdict),
}

/// A successful store lookup: the artifact plus its provenance (the
/// disk-tier hit counters feed the `disk_hits` statistics).
#[derive(Clone, Debug)]
pub struct StoreHit {
    /// The artifact served.
    pub artifact: Artifact,
    /// Served by the persistent tier (and promoted into tier 0).
    pub from_disk: bool,
}

/// The unified reuse-surface interface: get/put/scan over namespaced
/// artifacts. [`TieredStore`] is the engine's implementation; the
/// trait exists so tooling (the `step cache` subcommand, tests,
/// alternative backends) can program against the surface rather than
/// the concrete tiers.
pub trait ArtifactStore: Send + Sync {
    /// Looks `key` up in `ns`, consulting tier 0 first and falling
    /// back to the disk tier (promoting disk hits into tier 0).
    fn get(&self, ns: &Namespace, key: &ArtifactKey) -> Option<StoreHit>;

    /// Stores `value` under `key` in `ns` on every tier.
    fn put(&self, ns: &Namespace, key: &ArtifactKey, value: Artifact);

    /// Visits every *persisted* entry of `ns`. Tier-0 structures
    /// deliberately expose no iteration (their sharded locks would
    /// make a consistent walk expensive); scan is the merge/stats
    /// surface, and those operate on the disk tier.
    fn scan(&self, ns: &Namespace, f: &mut dyn FnMut(&ArtifactKey, &Artifact));
}

// ---------------------------------------------------------------------
// The tiered implementation.
// ---------------------------------------------------------------------

/// The engine's [`ArtifactStore`]: the existing in-memory structures
/// as tier 0 plus an optional persistent [`DiskTier`]. Cheap to clone
/// (three `Arc`s); every handle shares the same tiers.
#[derive(Clone, Default, Debug)]
pub struct TieredStore {
    cache: Option<Arc<ResultCache>>,
    bank: Option<Arc<ClauseBank>>,
    disk: Option<Arc<DiskTier>>,
    disk_result_hits: Arc<AtomicU64>,
    disk_clause_hits: Arc<AtomicU64>,
    disk_probe_hits: Arc<AtomicU64>,
}

impl TieredStore {
    /// A memory-only store over the given tier-0 structures (either
    /// may be absent; an absent tier serves nothing of its kind).
    pub fn memory(cache: Option<Arc<ResultCache>>, bank: Option<Arc<ClauseBank>>) -> Self {
        TieredStore {
            cache,
            bank,
            disk: None,
            disk_result_hits: Arc::new(AtomicU64::new(0)),
            disk_clause_hits: Arc::new(AtomicU64::new(0)),
            disk_probe_hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A store with a persistent tier loaded from (or created at)
    /// `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or listing it. Corrupt store
    /// *files* never error — they load their good prefix (see
    /// [`DiskTier`]).
    pub fn with_disk(
        cache: Option<Arc<ResultCache>>,
        bank: Option<Arc<ClauseBank>>,
        dir: &Path,
    ) -> io::Result<Self> {
        let mut store = Self::memory(cache, bank);
        store.disk = Some(Arc::new(DiskTier::open(dir)?));
        Ok(store)
    }

    /// The tier-0 result cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// The tier-0 clause bank, if any.
    pub fn bank(&self) -> Option<&Arc<ClauseBank>> {
        self.bank.as_ref()
    }

    /// The persistent tier, if any.
    pub fn disk(&self) -> Option<&Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// Whether result lookups can be served at all (a tier-0 cache or
    /// a disk tier is present). With `--no-cache` but a cache
    /// directory, disk results still serve — they just skip tier-0
    /// promotion.
    pub fn serves_results(&self) -> bool {
        self.cache.is_some() || self.disk.is_some()
    }

    /// Result artifacts served from disk so far.
    pub fn disk_result_hits(&self) -> u64 {
        self.disk_result_hits.load(Ordering::Relaxed)
    }

    /// Clause artifacts served from disk so far.
    pub fn disk_clause_hits(&self) -> u64 {
        self.disk_clause_hits.load(Ordering::Relaxed)
    }

    /// Probe certificates served from disk so far.
    pub fn disk_probe_hits(&self) -> u64 {
        self.disk_probe_hits.load(Ordering::Relaxed)
    }

    /// The reuse handles for one submission / circuit run: this
    /// store's tiers plus a fresh oracle pool (pooled oracles embed
    /// one `DecompConfig`'s solver knobs and may not cross
    /// submissions). A store without a bank overlays a fresh
    /// submission-scoped one, preserving the pre-store semantics.
    pub fn reuse_ctx(&self) -> ReuseCtx {
        let mut store = self.clone();
        if store.bank.is_none() {
            store.bank = Some(Arc::new(ClauseBank::new()));
        }
        ReuseCtx {
            store: Arc::new(store),
            pool: Arc::new(OraclePool::new()),
        }
    }

    /// Flushes dirty disk-tier entries (no-op without a disk tier);
    /// returns the number of records appended.
    ///
    /// # Errors
    ///
    /// I/O errors writing the store files.
    pub fn flush(&self) -> io::Result<u64> {
        match &self.disk {
            Some(disk) => disk.flush(),
            None => Ok(0),
        }
    }

    /// Convenience wrapper: looks up a solved result, translating to
    /// the trait surface. Also reports whether the hit came from disk.
    pub fn lookup_result(
        &self,
        ns: &Namespace,
        fingerprint: ConeFingerprint,
        op: GateOp,
    ) -> Option<(CachedResult, bool)> {
        let hit = self.get(ns, &ArtifactKey::of(fingerprint, op))?;
        match hit.artifact {
            Artifact::Result(r) => Some((r, hit.from_disk)),
            _ => None,
        }
    }

    /// Convenience wrapper: stores a definitive solved result.
    pub fn insert_result(
        &self,
        ns: &Namespace,
        fingerprint: ConeFingerprint,
        op: GateOp,
        value: CachedResult,
    ) {
        self.put(
            ns,
            &ArtifactKey::of(fingerprint, op),
            Artifact::Result(value),
        );
    }
}

impl ArtifactStore for TieredStore {
    fn get(&self, ns: &Namespace, key: &ArtifactKey) -> Option<StoreHit> {
        match ns.kind {
            ArtifactKind::Result => {
                let cache_key = ns.cache_key(key)?;
                if let Some(cache) = &self.cache {
                    if let Some(hit) = cache.lookup(&cache_key) {
                        return Some(StoreHit {
                            artifact: Artifact::Result(hit),
                            from_disk: false,
                        });
                    }
                }
                let disk = self.disk.as_ref()?;
                let value = disk.get(ns, key)?;
                let Artifact::Result(r) = &value else {
                    return None;
                };
                // Promote, so later twins hit tier 0 directly.
                if let Some(cache) = &self.cache {
                    cache.insert(cache_key, r.clone());
                }
                self.disk_result_hits.fetch_add(1, Ordering::Relaxed);
                Some(StoreHit {
                    artifact: value,
                    from_disk: true,
                })
            }
            ArtifactKind::Clauses => {
                let bank_hit = self
                    .bank
                    .as_ref()
                    .and_then(|b| b.lookup(key.fingerprint, key.op));
                if let Some(hit) = &bank_hit {
                    if hit.exact {
                        return Some(StoreHit {
                            artifact: Artifact::Clauses(ClausePayload {
                                export: Arc::clone(&hit.export),
                                check: hit.check.as_ref().map(Arc::clone),
                                exact: true,
                            }),
                            from_disk: false,
                        });
                    }
                }
                // No exact tier-0 donor: an exact disk donor beats a
                // tier-0 cluster hit (verbatim import needs no vetting).
                if let Some(disk) = &self.disk {
                    if let Some(Artifact::Clauses(payload)) = disk.get(ns, key) {
                        if let Some(bank) = &self.bank {
                            bank.donate(
                                key.fingerprint,
                                key.op,
                                (*payload.export).clone(),
                                payload.check.as_deref().cloned(),
                            );
                        }
                        self.disk_clause_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(StoreHit {
                            artifact: Artifact::Clauses(payload),
                            from_disk: true,
                        });
                    }
                }
                let hit = bank_hit?;
                Some(StoreHit {
                    artifact: Artifact::Clauses(ClausePayload {
                        export: hit.export,
                        check: hit.check,
                        exact: false,
                    }),
                    from_disk: false,
                })
            }
            ArtifactKind::Probe => {
                let Tier0Ctx::Probe { cfg } = &ns.tier0 else {
                    return None;
                };
                let target = unpack_target(key.aux)?;
                if let Some(bank) = &self.bank {
                    if let Some(v) = bank.lookup_probe(key.fingerprint, key.op, *cfg, target) {
                        return Some(StoreHit {
                            artifact: Artifact::Probe(v),
                            from_disk: false,
                        });
                    }
                }
                let disk = self.disk.as_ref()?;
                let value = disk.get(ns, key)?;
                let Artifact::Probe(v) = &value else {
                    return None;
                };
                if let Some(bank) = &self.bank {
                    bank.record_probe(key.fingerprint, key.op, *cfg, target, v.clone());
                }
                self.disk_probe_hits.fetch_add(1, Ordering::Relaxed);
                Some(StoreHit {
                    artifact: value,
                    from_disk: true,
                })
            }
        }
    }

    fn put(&self, ns: &Namespace, key: &ArtifactKey, value: Artifact) {
        match (&value, ns.kind) {
            (Artifact::Result(r), ArtifactKind::Result) => {
                if let (Some(cache), Some(cache_key)) = (&self.cache, ns.cache_key(key)) {
                    cache.insert(cache_key, r.clone());
                }
            }
            (Artifact::Clauses(p), ArtifactKind::Clauses) => {
                if let Some(bank) = &self.bank {
                    bank.donate(
                        key.fingerprint,
                        key.op,
                        (*p.export).clone(),
                        p.check.as_deref().cloned(),
                    );
                }
            }
            (Artifact::Probe(v), ArtifactKind::Probe) => {
                if let (Some(bank), Tier0Ctx::Probe { cfg }, Some(target)) =
                    (&self.bank, &ns.tier0, unpack_target(key.aux))
                {
                    bank.record_probe(key.fingerprint, key.op, *cfg, target, v.clone());
                }
            }
            // Kind/value mismatch: a caller bug, but never corrupt a
            // tier over it.
            _ => return,
        }
        // Mirror the bank's drop-all-empty rule on disk: persisting an
        // empty donation would claim the key (first writer wins) and
        // block a later sibling's real clauses forever.
        if let Artifact::Clauses(p) = &value {
            if p.export.is_empty() && p.check.as_ref().is_none_or(|c| c.is_empty()) {
                return;
            }
        }
        if let Some(disk) = &self.disk {
            disk.put(ns, key, value);
        }
    }

    fn scan(&self, ns: &Namespace, f: &mut dyn FnMut(&ArtifactKey, &Artifact)) {
        if let Some(disk) = &self.disk {
            disk.scan(ns, f);
        }
    }
}

// ---------------------------------------------------------------------
// Disk tier: append-only, checksummed, per-namespace record logs.
// ---------------------------------------------------------------------

/// File magic of a store file.
const MAGIC: &[u8; 8] = b"STEPSTOR";

/// Store format version; unknown versions are skipped whole at load.
const FORMAT_VERSION: u32 = 1;

/// Upper bound on a record's encoded length. A corrupted length prefix
/// must never allocate unboundedly.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Filename extension of store files.
pub const STORE_EXT: &str = "stepstore";

/// Identity of one namespace inside the disk tier.
type NsId = (ArtifactKind, String);

/// The on-disk key: the fingerprint fields plus operator and aux word
/// (no `GateOp`/`ConeFingerprint` so the codec is self-contained).
type DiskKey = (u128, u32, u32, u8, u64);

fn disk_key(key: &ArtifactKey) -> DiskKey {
    (
        key.fingerprint.hash,
        key.fingerprint.inputs,
        key.fingerprint.ands,
        op_tag(key.op),
        key.aux,
    )
}

fn artifact_key(k: &DiskKey) -> Option<ArtifactKey> {
    Some(ArtifactKey {
        fingerprint: ConeFingerprint {
            hash: k.0,
            inputs: k.1,
            ands: k.2,
        },
        op: op_from_tag(k.3)?,
        aux: k.4,
    })
}

fn op_tag(op: GateOp) -> u8 {
    match op {
        GateOp::Or => 0,
        GateOp::And => 1,
        GateOp::Xor => 2,
    }
}

fn op_from_tag(tag: u8) -> Option<GateOp> {
    match tag {
        0 => Some(GateOp::Or),
        1 => Some(GateOp::And),
        2 => Some(GateOp::Xor),
        _ => None,
    }
}

/// One namespace's loaded entries plus the records appended since the
/// last flush.
#[derive(Default)]
struct NsState {
    entries: HashMap<DiskKey, Artifact>,
    dirty: Vec<(DiskKey, Artifact)>,
}

/// The persistent tier: one append-only record log per namespace,
/// loaded whole at open, appended at flush. See the module docs for
/// the format and the corruption-tolerance rules.
pub struct DiskTier {
    dir: PathBuf,
    state: Mutex<HashMap<NsId, NsState>>,
    loaded_records: AtomicU64,
    corrupt_records: AtomicU64,
    flushed_records: AtomicU64,
}

impl fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskTier")
            .field("dir", &self.dir)
            .field("len", &self.len())
            .field("loaded_records", &self.loaded_records())
            .field("corrupt_records", &self.corrupt_records())
            .finish()
    }
}

impl DiskTier {
    /// Opens (creating if needed) the store directory and loads every
    /// `.stepstore` file in it.
    ///
    /// # Errors
    ///
    /// I/O errors creating or listing the directory. Unreadable or
    /// corrupt files are tolerated per record (counted in
    /// [`corrupt_records`](DiskTier::corrupt_records)), never fatal.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let tier = DiskTier {
            dir: dir.to_owned(),
            state: Mutex::new(HashMap::new()),
            loaded_records: AtomicU64::new(0),
            corrupt_records: AtomicU64::new(0),
            flushed_records: AtomicU64::new(0),
        };
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == STORE_EXT))
            .collect();
        // Deterministic load order, so counters and first-writer-wins
        // outcomes are stable run-to-run.
        names.sort();
        let mut state = tier.state.lock().expect("disk tier poisoned");
        for path in names {
            let Ok(bytes) = fs::read(&path) else {
                tier.corrupt_records.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            tier.load_file(&bytes, &mut state);
        }
        drop(state);
        Ok(tier)
    }

    /// The directory this tier persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Parses one store file into `state`, stopping at the first
    /// damaged record and counting it.
    fn load_file(&self, bytes: &[u8], state: &mut HashMap<NsId, NsState>) {
        let mut r = Reader { buf: bytes, at: 0 };
        let header = (|| {
            let magic = r.take(8)?;
            if magic != MAGIC {
                return None;
            }
            if r.u32()? != FORMAT_VERSION {
                return None;
            }
            let kind = ArtifactKind::from_tag(r.u8()?)?;
            let len = r.u32()? as usize;
            let config = String::from_utf8(r.take(len)?.to_vec()).ok()?;
            Some((kind, config))
        })();
        let Some((kind, config)) = header else {
            self.corrupt_records.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let ns = state.entry((kind, config)).or_default();
        while r.at < r.buf.len() {
            let record = (|| {
                let len = r.u32()?;
                if len > MAX_RECORD_LEN {
                    return None;
                }
                let sum = r.u64()?;
                let payload = r.take(len as usize)?;
                if xxh64(payload, 0) != sum {
                    return None;
                }
                decode_record(kind, payload)
            })();
            let Some((key, value)) = record else {
                // Truncated or bit-flipped tail: keep the good prefix,
                // count the damage, stop reading this file.
                self.corrupt_records.fetch_add(1, Ordering::Relaxed);
                return;
            };
            // First writer wins across files too: all writers of one
            // key hold the same semantic artifact, and keeping the
            // first makes merge output independent of merge order.
            ns.entries.entry(key).or_insert(value);
            self.loaded_records.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn ns_id(ns: &Namespace) -> NsId {
        (ns.kind, ns.config.as_str().to_owned())
    }

    /// The artifact stored under `key`, if any.
    fn get(&self, ns: &Namespace, key: &ArtifactKey) -> Option<Artifact> {
        let state = self.state.lock().expect("disk tier poisoned");
        state
            .get(&Self::ns_id(ns))?
            .entries
            .get(&disk_key(key))
            .cloned()
    }

    /// Stores `value` under `key` (first writer wins: an already
    /// present key is left untouched — every writer of a key holds the
    /// same semantic artifact, and keeping the first makes warm-run
    /// output independent of completion order).
    fn put(&self, ns: &Namespace, key: &ArtifactKey, value: Artifact) {
        let mut state = self.state.lock().expect("disk tier poisoned");
        let entry = state.entry(Self::ns_id(ns)).or_default();
        let dk = disk_key(key);
        if entry.entries.contains_key(&dk) {
            return;
        }
        entry.entries.insert(dk, value.clone());
        entry.dirty.push((dk, value));
    }

    /// Visits every entry of `ns`, in sorted key order (deterministic
    /// for stats and merge tooling).
    fn scan(&self, ns: &Namespace, f: &mut dyn FnMut(&ArtifactKey, &Artifact)) {
        let state = self.state.lock().expect("disk tier poisoned");
        let Some(entry) = state.get(&Self::ns_id(ns)) else {
            return;
        };
        let mut keys: Vec<&DiskKey> = entry.entries.keys().collect();
        keys.sort();
        for dk in keys {
            if let Some(key) = artifact_key(dk) {
                f(&key, &entry.entries[dk]);
            }
        }
    }

    /// Appends every dirty record to its namespace file; returns the
    /// number of records written. Idempotent — a second flush with no
    /// new puts writes nothing.
    ///
    /// # Errors
    ///
    /// I/O errors creating or appending the store files. A namespace
    /// file whose header names a *different* config string (a filename
    /// hash collision — cosmically unlikely with 128 bits, but fatal
    /// to correctness if ignored) fails with
    /// [`io::ErrorKind::InvalidData`] rather than cross-contaminating.
    pub fn flush(&self) -> io::Result<u64> {
        let mut state = self.state.lock().expect("disk tier poisoned");
        let mut written = 0u64;
        for ((kind, config), ns) in state.iter_mut() {
            if ns.dirty.is_empty() {
                continue;
            }
            let path = self.dir.join(store_file_name(*kind, config));
            let mut file = fs::OpenOptions::new()
                .read(true)
                .append(true)
                .create(true)
                .open(&path)?;
            let mut existing_header = [0u8; 8];
            let is_new = file.metadata()?.len() == 0;
            if is_new {
                let mut header = Vec::new();
                header.extend_from_slice(MAGIC);
                header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
                header.push(kind.tag());
                let cfg = config.as_bytes();
                header.extend_from_slice(&(cfg.len() as u32).to_le_bytes());
                header.extend_from_slice(cfg);
                file.write_all(&header)?;
            } else {
                // Guard against a filename-hash collision: the header
                // must name exactly this config string.
                let mut f = fs::File::open(&path)?;
                f.read_exact(&mut existing_header)?;
                let mut rest = Vec::new();
                f.take(4 + 1 + 4 + config.len() as u64 + 1)
                    .read_to_end(&mut rest)?;
                let mut r = Reader { buf: &rest, at: 0 };
                let ok = existing_header == *MAGIC
                    && r.u32() == Some(FORMAT_VERSION)
                    && r.u8() == Some(kind.tag())
                    && r.u32() == Some(config.len() as u32)
                    && r.take(config.len()) == Some(config.as_bytes());
                if !ok {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "store file {} does not match namespace `{config}`",
                            path.display()
                        ),
                    ));
                }
            }
            let mut out = Vec::new();
            for (dk, value) in ns.dirty.drain(..) {
                let payload = encode_record(&dk, &value);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&xxh64(&payload, 0).to_le_bytes());
                out.extend_from_slice(&payload);
                written += 1;
            }
            file.write_all(&out)?;
        }
        self.flushed_records.fetch_add(written, Ordering::Relaxed);
        Ok(written)
    }

    /// Merges every entry of `other` that this tier does not already
    /// hold (dedup by `(kind, config key, artifact key)`), marking the
    /// adopted entries dirty for the next [`flush`](DiskTier::flush).
    /// Returns the number of entries adopted.
    pub fn merge_from(&self, other: &DiskTier) -> u64 {
        let other_state = other.state.lock().expect("disk tier poisoned");
        let mut state = self.state.lock().expect("disk tier poisoned");
        let mut adopted = 0u64;
        for (id, src) in other_state.iter() {
            let dst = state.entry(id.clone()).or_default();
            let mut keys: Vec<&DiskKey> = src.entries.keys().collect();
            keys.sort();
            for dk in keys {
                if !dst.entries.contains_key(dk) {
                    let value = src.entries[dk].clone();
                    dst.entries.insert(*dk, value.clone());
                    dst.dirty.push((*dk, value));
                    adopted += 1;
                }
            }
        }
        adopted
    }

    /// Per-namespace entry counts: `(kind, config key, entries)`,
    /// sorted for stable reporting.
    pub fn summaries(&self) -> Vec<(ArtifactKind, String, usize)> {
        let state = self.state.lock().expect("disk tier poisoned");
        let mut out: Vec<(ArtifactKind, String, usize)> = state
            .iter()
            .map(|((kind, config), ns)| (*kind, config.clone(), ns.entries.len()))
            .collect();
        out.sort_by(|a, b| (a.0.tag(), &a.1).cmp(&(b.0.tag(), &b.1)));
        out
    }

    /// Entries currently resident across all namespaces.
    pub fn len(&self) -> usize {
        let state = self.state.lock().expect("disk tier poisoned");
        state.values().map(|ns| ns.entries.len()).sum()
    }

    /// Whether the tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records loaded intact from disk at open.
    pub fn loaded_records(&self) -> u64 {
        self.loaded_records.load(Ordering::Relaxed)
    }

    /// Damaged records (or whole unreadable/foreign files) skipped at
    /// open.
    pub fn corrupt_records(&self) -> u64 {
        self.corrupt_records.load(Ordering::Relaxed)
    }

    /// Records appended by flushes since open.
    pub fn flushed_records(&self) -> u64 {
        self.flushed_records.load(Ordering::Relaxed)
    }
}

/// The store file name of a namespace: kind label plus a 128-bit hash
/// of the config string (two XXH64 passes under different seeds). A
/// 64-bit name would make an accidental collision between two distinct
/// configs — which would cross-contaminate namespaces at flush —
/// plausible over large fleets; 128 bits puts it out of reach, and the
/// flush-time header check turns even that into an error instead of
/// corruption.
fn store_file_name(kind: ArtifactKind, config: &str) -> String {
    let lo = xxh64(config.as_bytes(), 0x9E37_79B9_7F4A_7C15);
    let hi = xxh64(config.as_bytes(), 0xC2B2_AE3D_27D4_EB4F);
    format!("{}-{hi:016x}{lo:016x}.{STORE_EXT}", kind.label())
}

// ---------------------------------------------------------------------
// Record codec.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }
}

fn encode_classes(out: &mut Vec<u8>, classes: &[VarClass]) {
    out.extend_from_slice(&(classes.len() as u32).to_le_bytes());
    out.extend(classes.iter().map(|c| match c {
        VarClass::A => 0u8,
        VarClass::B => 1,
        VarClass::C => 2,
    }));
}

fn decode_classes(r: &mut Reader) -> Option<Vec<VarClass>> {
    let n = r.u32()?;
    if n > MAX_RECORD_LEN {
        return None;
    }
    r.take(n as usize)?
        .iter()
        .map(|b| match b {
            0 => Some(VarClass::A),
            1 => Some(VarClass::B),
            2 => Some(VarClass::C),
            _ => None,
        })
        .collect()
}

fn encode_export(out: &mut Vec<u8>, export: &LearntExport) {
    out.extend_from_slice(&(export.clauses.len() as u32).to_le_bytes());
    for clause in &export.clauses {
        out.extend_from_slice(&(clause.len() as u32).to_le_bytes());
        for lit in clause {
            out.extend_from_slice(&lit.code().to_le_bytes());
        }
    }
    out.extend_from_slice(&(export.activities.len() as u32).to_le_bytes());
    for (var, act) in &export.activities {
        out.extend_from_slice(&(var.index() as u32).to_le_bytes());
        out.extend_from_slice(&act.to_bits().to_le_bytes());
    }
}

fn decode_export(r: &mut Reader) -> Option<LearntExport> {
    let nclauses = r.u32()?;
    if nclauses > MAX_RECORD_LEN {
        return None;
    }
    let mut clauses = Vec::with_capacity(nclauses.min(1 << 16) as usize);
    for _ in 0..nclauses {
        let len = r.u32()?;
        if len > MAX_RECORD_LEN {
            return None;
        }
        let mut clause = Vec::with_capacity(len.min(1 << 16) as usize);
        for _ in 0..len {
            clause.push(Lit::from_code(r.u32()?));
        }
        clauses.push(clause);
    }
    let nacts = r.u32()?;
    if nacts > MAX_RECORD_LEN {
        return None;
    }
    let mut activities = Vec::with_capacity(nacts.min(1 << 16) as usize);
    for _ in 0..nacts {
        let var = Var::new(r.u32()? as usize);
        activities.push((var, f64::from_bits(r.u64()?)));
    }
    Some(LearntExport {
        clauses,
        activities,
    })
}

/// Encodes one record payload: the disk key, then the kind-specific
/// body.
fn encode_record(dk: &DiskKey, value: &Artifact) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&dk.0.to_le_bytes());
    out.extend_from_slice(&dk.1.to_le_bytes());
    out.extend_from_slice(&dk.2.to_le_bytes());
    out.push(dk.3);
    out.extend_from_slice(&dk.4.to_le_bytes());
    match value {
        Artifact::Result(r) => {
            let flags = u8::from(r.partition.is_some()) | (u8::from(r.proved_optimal) << 1);
            out.push(flags);
            if let Some(classes) = &r.partition {
                encode_classes(&mut out, classes);
            }
        }
        Artifact::Clauses(p) => {
            encode_export(&mut out, &p.export);
            match &p.check {
                Some(check) => {
                    out.push(1);
                    encode_export(&mut out, check);
                }
                None => out.push(0),
            }
        }
        Artifact::Probe(v) => match v {
            ProbeVerdict::Infeasible => out.push(0),
            ProbeVerdict::Feasible(classes) => {
                out.push(1);
                encode_classes(&mut out, classes);
            }
        },
    }
    out
}

/// Decodes one record payload; `None` on any malformation (the caller
/// counts it as corrupt and stops reading the file). Trailing bytes
/// beyond the decoded body are rejected too — a record is either
/// exactly right or damaged.
fn decode_record(kind: ArtifactKind, payload: &[u8]) -> Option<(DiskKey, Artifact)> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let dk: DiskKey = (r.u128()?, r.u32()?, r.u32()?, r.u8()?, r.u64()?);
    op_from_tag(dk.3)?;
    let value = match kind {
        ArtifactKind::Result => {
            let flags = r.u8()?;
            if flags > 3 {
                return None;
            }
            let partition = if flags & 1 != 0 {
                Some(decode_classes(&mut r)?)
            } else {
                None
            };
            Artifact::Result(CachedResult {
                partition,
                proved_optimal: flags & 2 != 0,
            })
        }
        ArtifactKind::Clauses => {
            let export = decode_export(&mut r)?;
            let check = match r.u8()? {
                0 => None,
                1 => Some(Arc::new(decode_export(&mut r)?)),
                _ => return None,
            };
            Artifact::Clauses(ClausePayload {
                export: Arc::new(export),
                check,
                exact: true,
            })
        }
        ArtifactKind::Probe => {
            unpack_target(dk.4)?;
            match r.u8()? {
                0 => Artifact::Probe(ProbeVerdict::Infeasible),
                1 => Artifact::Probe(ProbeVerdict::Feasible(decode_classes(&mut r)?)),
                _ => return None,
            }
        }
    };
    if r.at != payload.len() {
        return None;
    }
    Some((dk, value))
}

// ---------------------------------------------------------------------
// XXH64 — the record checksum (public-domain algorithm, implemented
// here so persistence adds no external dependency).
// ---------------------------------------------------------------------

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// The XXH64 hash of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    #[inline]
    fn round(acc: u64, input: u64) -> u64 {
        acc.wrapping_add(input.wrapping_mul(PRIME64_2))
            .rotate_left(31)
            .wrapping_mul(PRIME64_1)
    }
    #[inline]
    fn merge_round(acc: u64, val: u64) -> u64 {
        (acc ^ round(0, val))
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4)
    }
    #[inline]
    fn read64(b: &[u8]) -> u64 {
        u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
    #[inline]
    fn read32(b: &[u8]) -> u64 {
        u64::from(u32::from_le_bytes(b[..4].try_into().expect("4 bytes")))
    }

    let len = data.len();
    let mut rest = data;
    let mut h = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read64(rest));
            v2 = round(v2, read64(&rest[8..]));
            v3 = round(v3, read64(&rest[16..]));
            v4 = round(v4, read64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };
    h = h.wrapping_add(len as u64);
    while rest.len() >= 8 {
        h = (h ^ round(0, read64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ read32(rest).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Model;
    use step_sat::RestartPolicy;

    fn fp(hash: u128) -> ConeFingerprint {
        ConeFingerprint {
            hash,
            inputs: 4,
            ands: 3,
        }
    }

    fn export(tag: u32) -> LearntExport {
        LearntExport {
            clauses: vec![vec![
                Lit::pos(Var::new(tag as usize)),
                Lit::neg(Var::new(0)),
            ]],
            activities: vec![(Var::new(0), 0.5)],
        }
    }

    fn result(optimal: bool) -> CachedResult {
        CachedResult {
            partition: Some(vec![VarClass::A, VarClass::B, VarClass::C, VarClass::C]),
            proved_optimal: optimal,
        }
    }

    fn probe_cfg() -> ProbeCfg {
        ProbeCfg {
            symmetry_breaking: true,
            allow_both: false,
            restarts: RestartPolicy::Luby,
            preprocess: false,
        }
    }

    #[test]
    fn xxh64_matches_the_reference_vectors() {
        // Published reference value of the XXH64 algorithm.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_ne!(xxh64(b"", 1), xxh64(b"", 0), "seed must matter");
        // Self-consistency across the three tail paths.
        let data: Vec<u8> = (0..=255u8).collect();
        for n in [0, 1, 3, 4, 7, 8, 31, 32, 33, 63, 64, 100, 256] {
            let a = xxh64(&data[..n], 42);
            let b = xxh64(&data[..n], 42);
            assert_eq!(a, b);
            if n > 0 {
                let mut flipped = data[..n].to_vec();
                flipped[0] ^= 1;
                assert_ne!(xxh64(&flipped, 42), a, "len {n} must be sensitive");
            }
        }
    }

    #[test]
    fn target_pack_round_trips_injectively() {
        let targets = [
            Target::Any,
            Target::DisjointAtMost(0),
            Target::DisjointAtMost(17),
            Target::BalancedWindow(17),
            Target::CombinedAtMost(17),
            Target::Weighted {
                wd: 1,
                wb: 1,
                k: 17,
            },
            Target::Weighted { wd: 3, wb: 9, k: 0 },
            Target::Weighted {
                wd: PACK_W_MAX,
                wb: PACK_W_MAX,
                k: u32::MAX as usize,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for t in targets {
            let aux = pack_target(t).expect("in-range targets pack");
            assert!(seen.insert(aux), "{t:?} must pack uniquely");
            assert_eq!(unpack_target(aux), Some(t), "{t:?} must round-trip");
        }
        // Out-of-range weights refuse to pack rather than collide.
        assert_eq!(
            pack_target(Target::Weighted {
                wd: PACK_W_MAX + 1,
                wb: 1,
                k: 0
            }),
            None
        );
    }

    #[test]
    fn disk_tier_round_trips_all_three_kinds() {
        let dir = std::env::temp_dir().join(format!("step-store-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = DecompConfig::new(Model::QbfDisjoint);
        let rns = Namespace::results(&config);
        let cns = Namespace::clauses();
        let pns = Namespace::probes(probe_cfg());
        {
            let tier = DiskTier::open(&dir).unwrap();
            tier.put(
                &rns,
                &ArtifactKey::of(fp(1), GateOp::Or),
                Artifact::Result(result(true)),
            );
            tier.put(
                &cns,
                &ArtifactKey::of(fp(2), GateOp::And),
                Artifact::Clauses(ClausePayload {
                    export: Arc::new(export(3)),
                    check: Some(Arc::new(export(4))),
                    exact: true,
                }),
            );
            let pk = ArtifactKey::probe(fp(5), GateOp::Or, Target::DisjointAtMost(2)).unwrap();
            tier.put(&pns, &pk, Artifact::Probe(ProbeVerdict::Infeasible));
            assert_eq!(tier.flush().unwrap(), 3);
            assert_eq!(tier.flush().unwrap(), 0, "flush is idempotent");
        }
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.loaded_records(), 3);
        assert_eq!(tier.corrupt_records(), 0);
        match tier.get(&rns, &ArtifactKey::of(fp(1), GateOp::Or)) {
            Some(Artifact::Result(r)) => assert_eq!(r, result(true)),
            other => panic!("expected result, got {other:?}"),
        }
        match tier.get(&cns, &ArtifactKey::of(fp(2), GateOp::And)) {
            Some(Artifact::Clauses(p)) => {
                assert_eq!(p.export.clauses, export(3).clauses);
                assert_eq!(p.export.activities, export(3).activities);
                assert_eq!(p.check.unwrap().clauses, export(4).clauses);
                assert!(p.exact);
            }
            other => panic!("expected clauses, got {other:?}"),
        }
        let pk = ArtifactKey::probe(fp(5), GateOp::Or, Target::DisjointAtMost(2)).unwrap();
        assert!(matches!(
            tier.get(&pns, &pk),
            Some(Artifact::Probe(ProbeVerdict::Infeasible))
        ));
        // A different config key is a different namespace.
        let mut other = DecompConfig::new(Model::QbfDisjoint);
        other.seed ^= 1;
        assert!(tier
            .get(
                &Namespace::results(&other),
                &ArtifactKey::of(fp(1), GateOp::Or)
            )
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_writer_wins_on_disk() {
        let dir = std::env::temp_dir().join(format!("step-store-fww-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = DecompConfig::new(Model::QbfDisjoint);
        let ns = Namespace::results(&config);
        let tier = DiskTier::open(&dir).unwrap();
        let key = ArtifactKey::of(fp(1), GateOp::Or);
        tier.put(&ns, &key, Artifact::Result(result(true)));
        tier.put(&ns, &key, Artifact::Result(result(false)));
        match tier.get(&ns, &key) {
            Some(Artifact::Result(r)) => assert!(r.proved_optimal, "first write sticks"),
            other => panic!("expected result, got {other:?}"),
        }
        assert_eq!(tier.flush().unwrap(), 1, "one dirty record, not two");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Writes a valid two-record store, then damages it per `damage`
    /// and asserts the good prefix survives the reload.
    fn corruption_case(name: &str, damage: impl FnOnce(&mut Vec<u8>)) {
        let dir =
            std::env::temp_dir().join(format!("step-store-corrupt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = DecompConfig::new(Model::QbfDisjoint);
        let ns = Namespace::results(&config);
        {
            let tier = DiskTier::open(&dir).unwrap();
            tier.put(
                &ns,
                &ArtifactKey::of(fp(1), GateOp::Or),
                Artifact::Result(result(true)),
            );
            tier.put(
                &ns,
                &ArtifactKey::of(fp(2), GateOp::Or),
                Artifact::Result(result(false)),
            );
            tier.flush().unwrap();
        }
        let path = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == STORE_EXT))
            .expect("store file exists");
        let mut bytes = fs::read(&path).unwrap();
        damage(&mut bytes);
        fs::write(&path, &bytes).unwrap();
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.corrupt_records(), 1, "{name}: damage counted");
        assert_eq!(tier.loaded_records(), 1, "{name}: good prefix kept");
        assert!(
            tier.get(&ns, &ArtifactKey::of(fp(1), GateOp::Or)).is_some(),
            "{name}: first record survives"
        );
        assert!(
            tier.get(&ns, &ArtifactKey::of(fp(2), GateOp::Or)).is_none(),
            "{name}: damaged tail skipped"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_keeps_the_good_prefix() {
        corruption_case("truncate", |bytes| {
            let n = bytes.len();
            bytes.truncate(n - 7);
        });
    }

    #[test]
    fn bit_flipped_tail_keeps_the_good_prefix() {
        corruption_case("bitflip", |bytes| {
            let n = bytes.len();
            bytes[n - 1] ^= 0x40;
        });
    }

    #[test]
    fn foreign_version_skips_the_whole_file() {
        let dir = std::env::temp_dir().join(format!("step-store-foreign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = DecompConfig::new(Model::QbfDisjoint);
        let ns = Namespace::results(&config);
        {
            let tier = DiskTier::open(&dir).unwrap();
            tier.put(
                &ns,
                &ArtifactKey::of(fp(1), GateOp::Or),
                Artifact::Result(result(true)),
            );
            tier.flush().unwrap();
        }
        let path = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == STORE_EXT))
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xFF; // version low byte
        fs::write(&path, &bytes).unwrap();
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.loaded_records(), 0, "foreign file contributes nothing");
        assert_eq!(tier.corrupt_records(), 1, "and bumps the counter");
        assert!(tier.get(&ns, &ArtifactKey::of(fp(1), GateOp::Or)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_dedups_by_key_and_survives_flush() {
        let base = std::env::temp_dir().join(format!("step-store-merge-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let config = DecompConfig::new(Model::QbfDisjoint);
        let ns = Namespace::results(&config);
        let a = DiskTier::open(&base.join("a")).unwrap();
        let b = DiskTier::open(&base.join("b")).unwrap();
        a.put(
            &ns,
            &ArtifactKey::of(fp(1), GateOp::Or),
            Artifact::Result(result(true)),
        );
        a.put(
            &ns,
            &ArtifactKey::of(fp(2), GateOp::Or),
            Artifact::Result(result(true)),
        );
        b.put(
            &ns,
            &ArtifactKey::of(fp(2), GateOp::Or),
            Artifact::Result(result(false)),
        );
        b.put(
            &ns,
            &ArtifactKey::of(fp(3), GateOp::Or),
            Artifact::Result(result(true)),
        );
        a.flush().unwrap();
        b.flush().unwrap();
        let out = DiskTier::open(&base.join("out")).unwrap();
        assert_eq!(out.merge_from(&a), 2);
        assert_eq!(out.merge_from(&b), 1, "shared key deduplicated");
        assert_eq!(out.flush().unwrap(), 3);
        let reread = DiskTier::open(&base.join("out")).unwrap();
        assert_eq!(reread.len(), 3);
        for h in 1..=3u128 {
            assert!(reread
                .get(&ns, &ArtifactKey::of(fp(h), GateOp::Or))
                .is_some());
        }
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn tiered_get_promotes_disk_hits_into_tier_0() {
        let dir = std::env::temp_dir().join(format!("step-store-promote-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = DecompConfig::new(Model::QbfDisjoint);
        let rns = Namespace::results(&config);
        let cns = Namespace::clauses();
        let pns = Namespace::probes(probe_cfg());
        {
            let seed = TieredStore::with_disk(None, None, &dir).unwrap();
            seed.put(
                &rns,
                &ArtifactKey::of(fp(1), GateOp::Or),
                Artifact::Result(result(true)),
            );
            seed.put(
                &cns,
                &ArtifactKey::of(fp(2), GateOp::Or),
                Artifact::Clauses(ClausePayload {
                    export: Arc::new(export(9)),
                    check: None,
                    exact: true,
                }),
            );
            let pk = ArtifactKey::probe(fp(3), GateOp::Or, Target::Any).unwrap();
            seed.put(&pns, &pk, Artifact::Probe(ProbeVerdict::Infeasible));
            seed.flush().unwrap();
        }
        let cache = Arc::new(ResultCache::new());
        let bank = Arc::new(ClauseBank::new());
        let store = TieredStore::with_disk(Some(Arc::clone(&cache)), Some(Arc::clone(&bank)), &dir)
            .unwrap();
        // First lookup: disk. Second: tier 0 (promoted).
        let key = ArtifactKey::of(fp(1), GateOp::Or);
        assert!(store.get(&rns, &key).unwrap().from_disk);
        assert!(!store.get(&rns, &key).unwrap().from_disk);
        assert_eq!(store.disk_result_hits(), 1);
        assert_eq!(cache.len(), 1, "promotion lands in the cache");
        let ckey = ArtifactKey::of(fp(2), GateOp::Or);
        let hit = store.get(&cns, &ckey).unwrap();
        assert!(hit.from_disk);
        let Artifact::Clauses(p) = hit.artifact else {
            panic!("clauses expected")
        };
        assert!(p.exact, "disk donors import verbatim");
        assert!(!store.get(&cns, &ckey).unwrap().from_disk);
        assert_eq!(bank.exact_hits(), 1, "promotion lands in the bank");
        let pk = ArtifactKey::probe(fp(3), GateOp::Or, Target::Any).unwrap();
        assert!(store.get(&pns, &pk).unwrap().from_disk);
        assert!(!store.get(&pns, &pk).unwrap().from_disk);
        assert_eq!(store.disk_probe_hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_store_serves_tier_0_only() {
        let cache = Arc::new(ResultCache::new());
        let store = TieredStore::memory(Some(Arc::clone(&cache)), None);
        assert!(store.serves_results());
        let config = DecompConfig::new(Model::QbfDisjoint);
        let ns = Namespace::results(&config);
        assert!(store.lookup_result(&ns, fp(1), GateOp::Or).is_none());
        store.insert_result(&ns, fp(1), GateOp::Or, result(true));
        let (hit, from_disk) = store.lookup_result(&ns, fp(1), GateOp::Or).unwrap();
        assert_eq!(hit, result(true));
        assert!(!from_disk);
        assert_eq!(store.flush().unwrap(), 0, "no disk tier, nothing to flush");
        assert!(!TieredStore::memory(None, None).serves_results());
    }

    #[test]
    fn scan_walks_persisted_entries_in_key_order() {
        let dir = std::env::temp_dir().join(format!("step-store-scan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = TieredStore::with_disk(None, None, &dir).unwrap();
        let config = DecompConfig::new(Model::QbfDisjoint);
        let ns = Namespace::results(&config);
        for h in [3u128, 1, 2] {
            store.put(
                &ns,
                &ArtifactKey::of(fp(h), GateOp::Or),
                Artifact::Result(result(true)),
            );
        }
        let mut seen = Vec::new();
        store.scan(&ns, &mut |key, _| seen.push(key.fingerprint.hash));
        assert_eq!(seen, vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }
}
