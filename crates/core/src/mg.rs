//! STEP-MG: group-oriented MUS-based variable partitioning (the
//! paper's reference \[7\], Chen & Marques-Silva, VLSI-SoC 2011).
//!
//! The core formula with *all* equality constraints asserted is
//! trivially unsatisfiable. Each variable contributes two clause
//! groups — its `X≡X'` equalities (dropping them puts the variable in
//! `XA`) and its `X≡X''` equalities (`XB`). After fixing a seed pair to
//! rule out trivial partitions, a **group MUS** of the equality groups
//! yields a minimal set of equalities that keep the core UNSAT; every
//! dropped group frees its variable from one copy, giving a partition
//! with heuristically good disjointness in a single MUS extraction —
//! which is why STEP-MG is the fastest model in the paper's Table III
//! and is used to bootstrap the QBF search bounds.

use step_cnf::{tseitin::AigCnf, Cnf, Lit};
use step_mus::{group_mus_with_effort, MusConfig};

use crate::effort::EffortMeter;
use crate::oracle::{CoreFormula, PartitionOracle};
use crate::partition::{VarClass, VarPartition};
use crate::spec::GateOp;

/// Outcome of a STEP-MG run.
#[derive(Clone, Debug, PartialEq)]
pub enum MgOutcome {
    /// A partition was found by a complete MUS refinement — the
    /// definitive STEP-MG answer for this cone (a pure function of the
    /// core, cacheable).
    Partition(VarPartition),
    /// A budget truncated the MUS refinement: the partition is valid
    /// but possibly cruder than an unbudgeted run's (the bare seed
    /// pair in the worst case). Budget-dependent — callers must report
    /// it as a timeout and never cache it as the cone's answer.
    TruncatedPartition(VarPartition),
    /// No non-trivial partition exists for this operator.
    NotDecomposable,
    /// The budget expired before any partition was found.
    Timeout,
}

/// Runs STEP-MG, charging every SAT call (seed search and MUS
/// extraction alike) to `meter`. `oracle` supplies the seed search
/// (and must wrap the same core the groups are built from);
/// `candidates` optionally pre-filters seed pairs.
pub fn decompose(
    oracle: &mut PartitionOracle,
    candidates: Option<&[Vec<bool>]>,
    meter: &mut EffortMeter,
) -> MgOutcome {
    let n = oracle.core().n;
    if n < 2 {
        return MgOutcome::NotDecomposable;
    }
    // Seed pair (complete for existence: a valid partition restricted
    // to single representatives stays valid by monotonicity).
    let mut seed = None;
    'seeds: for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if let Some(c) = candidates {
                if !c[i][j] {
                    continue;
                }
            }
            match oracle.check_seed(i, j, meter) {
                Some(true) => {
                    seed = Some((i, j));
                    break 'seeds;
                }
                Some(false) => {}
                None => return MgOutcome::Timeout,
            }
        }
    }
    let Some((si, sj)) = seed else {
        return MgOutcome::NotDecomposable;
    };

    match partition_from_mus(oracle.core(), si, sj, meter) {
        Some((p, true)) => MgOutcome::Partition(p),
        // Non-minimal MUS: sound, but a budget cut the refinement
        // short — a different budget would refine further.
        Some((p, false)) => MgOutcome::TruncatedPartition(p),
        None => {
            // Even the initial MUS solve was truncated (the instance is
            // UNSAT by construction once a seed validates, so `None`
            // can only mean budget); the seed partition is still valid.
            let mut classes = vec![VarClass::C; n];
            classes[si] = VarClass::A;
            classes[sj] = VarClass::B;
            MgOutcome::TruncatedPartition(VarPartition::new(classes))
        }
    }
}

/// Builds the group-MUS instance and maps its result to a partition
/// plus whether minimality was fully established (budgets may cut the
/// refinement short — such partitions are budget-dependent). The
/// extraction runs under `meter`'s limits (deadline plus remaining
/// work) and charges the effort it spent.
fn partition_from_mus(
    core: &CoreFormula,
    seed_a: usize,
    seed_b: usize,
    meter: &mut EffortMeter,
) -> Option<(VarPartition, bool)> {
    let n = core.n;
    // Hard part: the operator body (copies of f), *without* the
    // equality constraints — those become the groups.
    let mut cnf = Cnf::new();
    let mut enc = AigCnf::new();
    // Bind every circuit-copy input to a fresh CNF variable.
    let bind_block = |cnf: &mut Cnf, enc: &mut AigCnf, block: &[usize]| -> Vec<Lit> {
        block
            .iter()
            .map(|&pi| {
                let l = Lit::pos(cnf.new_var());
                enc.bind(core.aig.input_node(pi), l);
                l
            })
            .collect()
    };
    let x = bind_block(&mut cnf, &mut enc, &core.x);
    let xp = bind_block(&mut cnf, &mut enc, &core.xp);
    let xpp = bind_block(&mut cnf, &mut enc, &core.xpp);
    let xppp = bind_block(&mut cnf, &mut enc, &core.xppp);

    // The body is the core with all α/β forced true (equalities off).
    let mut aig = core.aig.clone();
    let forced: std::collections::HashMap<_, _> = core
        .alpha
        .iter()
        .chain(core.beta.iter())
        .map(|&pi| (aig.input_node(pi), step_aig::Aig::constant(true)))
        .collect();
    let body = aig.substitute(core.root, &forced);
    let body_lit = enc.encode(&mut cnf, &aig, body);
    cnf.add_unit(body_lit);

    // Equality groups: group 2i = α-equalities of var i, 2i+1 = β.
    let eq = |a: Lit, b: Lit| -> Vec<Vec<Lit>> { vec![vec![!a, b], vec![a, !b]] };
    let mut groups: Vec<Vec<Vec<Lit>>> = Vec::with_capacity(2 * n);
    let mut group_of: Vec<(usize, VarClass)> = Vec::new();
    for i in 0..n {
        if i != seed_a {
            let mut g = eq(x[i], xp[i]);
            if core.op == GateOp::Xor {
                g.extend(eq(xppp[i], xpp[i]));
            }
            group_of.push((i, VarClass::A));
            groups.push(g);
        }
        if i != seed_b {
            let mut g = eq(x[i], xpp[i]);
            if core.op == GateOp::Xor {
                g.extend(eq(xppp[i], xp[i]));
            }
            group_of.push((i, VarClass::B));
            groups.push(g);
        }
    }

    let config = MusConfig {
        deadline: meter.deadline(),
        conflicts_per_call: None,
        effort_budget: meter.remaining_work(),
    };
    let (mus, effort) = group_mus_with_effort(&cnf, &groups, &config);
    meter.charge(effort);
    let mus = mus?;
    let minimal = mus.minimal;

    // Kept group ⇒ the equality stays ⇒ the variable is NOT freed on
    // that side. Dropped α-group ⇒ variable may join XA, etc.
    let mut free_a = vec![false; n];
    let mut free_b = vec![false; n];
    free_a[seed_a] = true;
    free_b[seed_b] = true;
    let kept: std::collections::HashSet<usize> = mus.groups.iter().copied().collect();
    for (g, &(var, side)) in group_of.iter().enumerate() {
        if !kept.contains(&g) {
            match side {
                VarClass::A => free_a[var] = true,
                VarClass::B => free_b[var] = true,
                VarClass::C => unreachable!(),
            }
        }
    }
    // Assemble: freed on one side → that block; freed on both → assign
    // to the smaller block; freed on none → shared.
    let mut classes = vec![VarClass::C; n];
    classes[seed_a] = VarClass::A;
    classes[seed_b] = VarClass::B;
    let mut num_a = 1usize;
    let mut num_b = 1usize;
    for i in 0..n {
        if i == seed_a || i == seed_b {
            continue;
        }
        classes[i] = match (free_a[i], free_b[i]) {
            (true, false) => {
                num_a += 1;
                VarClass::A
            }
            (false, true) => {
                num_b += 1;
                VarClass::B
            }
            (true, true) => {
                if num_a <= num_b {
                    num_a += 1;
                    VarClass::A
                } else {
                    num_b += 1;
                    VarClass::B
                }
            }
            (false, false) => VarClass::C,
        };
    }
    Some((VarPartition::new(classes), minimal))
}
