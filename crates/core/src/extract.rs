//! Extraction of the decomposition functions `fA` and `fB`.
//!
//! For OR (and, by duality, AND) the functions are obtained by **Craig
//! interpolation**, following the interpolation-based construction of
//! the original SAT-based bi-decomposition (\[16\], DAC'08) that the
//! paper reuses:
//!
//! * `fA = ITP( f(X) ∧ ¬f(X'_A,XB,XC) ; ¬f(XA,X''_B,XC) )` — an
//!   interpolant over the shared variables `XA ∪ XC`;
//! * `fB = ITP( f(X) ∧ ¬fA(XA,XC) ; ¬f(X'_A,XB,XC) )` — computed
//!   **relative to fA**, over `XB ∪ XC`.
//!
//! The second step must be relative: an interpolant pair computed
//! independently need not cover `f`. Proof of correctness (both steps
//! assume formulation (1) is UNSAT for the partition):
//!
//! 1. *Soundness of fA*: `fA ∧ ¬f(XA,X''_B,XC)` UNSAT means
//!    `fA ≤ ∀XB.f ≤ f`.
//! 2. *Step-2 premise is UNSAT*: suppose `f(a,b,c) ∧ ¬fA(a,c) ∧
//!    ¬f(a',b,c)` were satisfiable; then `(a,b,c,a')` satisfies step
//!    1's A-part, forcing `fA(a,c) = 1` — contradiction.
//! 3. *Soundness of fB*: `fB ∧ ¬f(X'_A..)` UNSAT means `fB ≤ ∀XA.f ≤ f`.
//! 4. *Coverage*: if `f(a,b,c) = 1` and `fA(a,c) = 0`, then `(a,b,c)`
//!    satisfies step 2's A-part, so `fB(b,c) = 1`. Hence
//!    `f = fA ∨ fB`.
//!
//! XOR uses the classical cofactor construction
//! (`fA = f|XB←0`, `fB = f|XA←0 ⊕ f|XA←0,XB←0`), valid exactly under
//! the rectangle-parity condition the XOR core enforces. A
//! quantification-based reference extractor is provided for
//! cross-checking.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

use step_aig::{Aig, AigLit};
use step_cnf::{tseitin::AigCnf, Cnf, Lit, Var};
use step_itp::{mcmillan, Interpolant, ItpError};
use step_sat::{ClauseId, SolveResult, Solver};

use crate::partition::VarPartition;
use crate::spec::GateOp;

/// A completed bi-decomposition: `f = fa <op> fb` inside `aig`.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The cone circuit extended with the extracted functions. Inputs
    /// are identical (same order) to the cone the partition refers to.
    pub aig: Aig,
    /// The original function.
    pub f: AigLit,
    /// `fA(XA, XC)`.
    pub fa: AigLit,
    /// `fB(XB, XC)`.
    pub fb: AigLit,
    /// The root operator.
    pub op: GateOp,
    /// The variable partition used.
    pub partition: VarPartition,
}

impl Decomposition {
    /// Rebuilds `fa <op> fb` (adds the root gate to `aig`).
    pub fn combine(&mut self) -> AigLit {
        match self.op {
            GateOp::Or => self.aig.or(self.fa, self.fb),
            GateOp::And => self.aig.and(self.fa, self.fb),
            GateOp::Xor => self.aig.xor(self.fa, self.fb),
        }
    }
}

/// Errors during extraction.
#[derive(Debug)]
pub enum ExtractError {
    /// The partition does not decompose the function (the premise
    /// formula was satisfiable).
    InvalidPartition,
    /// A SAT call exhausted its budget.
    Budget,
    /// Interpolation failed (malformed proof — indicates a bug).
    Interpolation(ItpError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::InvalidPartition => write!(f, "partition does not decompose f"),
            ExtractError::Budget => write!(f, "budget expired during extraction"),
            ExtractError::Interpolation(e) => write!(f, "interpolation failed: {e}"),
        }
    }
}

impl Error for ExtractError {}

impl From<ItpError> for ExtractError {
    fn from(e: ItpError) -> Self {
        ExtractError::Interpolation(e)
    }
}

/// Extracts `fA`/`fB` for `root` of `cone` under `op` and `partition`.
///
/// # Errors
///
/// [`ExtractError::InvalidPartition`] if the partition is not a valid
/// bi-decomposition partition, [`ExtractError::Budget`] on timeout.
pub fn extract(
    cone: &Aig,
    root: AigLit,
    op: GateOp,
    partition: &VarPartition,
    deadline: Option<Instant>,
) -> Result<Decomposition, ExtractError> {
    match op {
        GateOp::Or => extract_or(cone, root, partition, deadline, false),
        GateOp::And => extract_or(cone, root, partition, deadline, true),
        GateOp::Xor => Ok(extract_xor(cone, root, partition)),
    }
}

/// OR extraction by two relative interpolations; with `dual`, extracts
/// AND via `f = ¬(gA ∨ gB)` for `g = ¬f`.
fn extract_or(
    cone: &Aig,
    root: AigLit,
    partition: &VarPartition,
    deadline: Option<Instant>,
    dual: bool,
) -> Result<Decomposition, ExtractError> {
    let g = if dual { !root } else { root };
    let xa = partition.xa();
    let xb = partition.xb();
    let n = cone.num_inputs();

    let mut result = cone.clone();

    // ---- Step 1: fA = ITP(g(X) ∧ ¬g(X'), ¬g(X'')).
    let itp_a = {
        let mut cnf = Cnf::new();
        let x_vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        let xp_vars: HashMap<usize, Var> = xa.iter().map(|&i| (i, cnf.new_var())).collect();
        let xpp_vars: HashMap<usize, Var> = xb.iter().map(|&i| (i, cnf.new_var())).collect();

        // Copy 1: g over X.
        let mut enc1 = AigCnf::new();
        for i in 0..n {
            enc1.bind(cone.input_node(i), Lit::pos(x_vars[i]));
        }
        let r1 = enc1.encode(&mut cnf, cone, g);
        cnf.add_unit(r1);
        // Copy 2: ¬g over (X'_A, XB, XC).
        let mut enc2 = AigCnf::new();
        for i in 0..n {
            let v = xp_vars.get(&i).copied().unwrap_or(x_vars[i]);
            enc2.bind(cone.input_node(i), Lit::pos(v));
        }
        let r2 = enc2.encode(&mut cnf, cone, g);
        cnf.add_unit(!r2);
        let a_end = cnf.num_clauses();
        // Copy 3 (B-part): ¬g over (XA, X''_B, XC).
        let mut enc3 = AigCnf::new();
        for i in 0..n {
            let v = xpp_vars.get(&i).copied().unwrap_or(x_vars[i]);
            enc3.bind(cone.input_node(i), Lit::pos(v));
        }
        let r3 = enc3.encode(&mut cnf, cone, g);
        cnf.add_unit(!r3);

        interpolate(&cnf, a_end, deadline)?
    };
    let fa = graft_interpolant(&mut result, &itp_a, |v| v.index());

    // ---- Step 2: fB = ITP(g(X) ∧ ¬fA(XA,XC), ¬g(X'_A, XB, XC)).
    let itp_b = {
        let mut cnf = Cnf::new();
        let x_vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        let xp_vars: HashMap<usize, Var> = xa.iter().map(|&i| (i, cnf.new_var())).collect();

        let mut enc1 = AigCnf::new();
        for i in 0..n {
            enc1.bind(cone.input_node(i), Lit::pos(x_vars[i]));
        }
        let r1 = enc1.encode(&mut cnf, cone, g);
        cnf.add_unit(r1);
        // ¬fA over the same X variables (fA lives in `result`).
        let mut enc_fa = AigCnf::new();
        for i in 0..n {
            enc_fa.bind(result.input_node(i), Lit::pos(x_vars[i]));
        }
        let ra = enc_fa.encode(&mut cnf, &result, fa);
        cnf.add_unit(!ra);
        let a_end = cnf.num_clauses();
        // B-part: ¬g over (X'_A, XB, XC).
        let mut enc2 = AigCnf::new();
        for i in 0..n {
            let v = xp_vars.get(&i).copied().unwrap_or(x_vars[i]);
            enc2.bind(cone.input_node(i), Lit::pos(v));
        }
        let r2 = enc2.encode(&mut cnf, cone, g);
        cnf.add_unit(!r2);

        interpolate(&cnf, a_end, deadline)?
    };
    let fb = graft_interpolant(&mut result, &itp_b, |v| v.index());

    let (fa, fb) = if dual { (!fa, !fb) } else { (fa, fb) };
    Ok(Decomposition {
        aig: result,
        f: root,
        fa,
        fb,
        op: if dual { GateOp::And } else { GateOp::Or },
        partition: partition.clone(),
    })
}

/// Solves the (A = clauses before `a_end`, B = rest) split with proof
/// logging and returns the interpolant.
fn interpolate(
    cnf: &Cnf,
    a_end: usize,
    deadline: Option<Instant>,
) -> Result<Interpolant, ExtractError> {
    let mut solver = Solver::new();
    solver.enable_proof();
    solver.ensure_vars(cnf.num_vars());
    solver.set_deadline(deadline);
    let mut a_ids: Vec<ClauseId> = Vec::with_capacity(a_end);
    for (k, clause) in cnf.clauses().iter().enumerate() {
        let id = solver
            .add_clause(clause.iter().copied())
            .expect("proof logging is on");
        if k < a_end {
            a_ids.push(id);
        }
    }
    match solver.solve() {
        SolveResult::Unsat => {}
        SolveResult::Sat => return Err(ExtractError::InvalidPartition),
        SolveResult::Unknown => return Err(ExtractError::Budget),
    }
    let proof = solver.proof().expect("proof logging is on");
    Ok(mcmillan(proof, &a_ids)?)
}

/// Imports an interpolant into `dst`, mapping its global CNF variables
/// through `var_to_input` (CNF var → `dst` input index).
fn graft_interpolant(
    dst: &mut Aig,
    itp: &Interpolant,
    var_to_input: impl Fn(Var) -> usize,
) -> AigLit {
    let mut map = HashMap::new();
    for (k, &gvar) in itp.globals.iter().enumerate() {
        let input = var_to_input(gvar);
        map.insert(itp.aig.input_node(k), dst.input(input));
    }
    dst.import(&itp.aig, itp.root, &mut map)
}

/// XOR extraction by cofactoring: `fA = f|XB←0`,
/// `fB = f|XA←0 ⊕ f|XA←0,XB←0`.
fn extract_xor(cone: &Aig, root: AigLit, partition: &VarPartition) -> Decomposition {
    let mut result = cone.clone();
    let zero_b: Vec<(usize, bool)> = partition.xb().iter().map(|&i| (i, false)).collect();
    let zero_a: Vec<(usize, bool)> = partition.xa().iter().map(|&i| (i, false)).collect();
    let fa = result.cofactor_many(root, &zero_b);
    let t1 = result.cofactor_many(root, &zero_a);
    let t2 = result.cofactor_many(t1, &zero_b);
    let fb = result.xor(t1, t2);
    Decomposition {
        aig: result,
        f: root,
        fa,
        fb,
        op: GateOp::Xor,
        partition: partition.clone(),
    }
}

/// Reference extractor by Boolean quantification (exponential in the
/// quantified block; for tests and small cones):
/// OR: `fA = ∀XB.f`, `fB = ∀XA.f`; AND: `fA = ∃XB.f`, `fB = ∃XA.f`;
/// XOR: same as [`extract`].
pub fn extract_by_quantification(
    cone: &Aig,
    root: AigLit,
    op: GateOp,
    partition: &VarPartition,
) -> Decomposition {
    let mut result = cone.clone();
    let xa = partition.xa();
    let xb = partition.xb();
    let (fa, fb) = match op {
        GateOp::Or => {
            let fa = result.forall(root, &xb);
            let fb = result.forall(root, &xa);
            (fa, fb)
        }
        GateOp::And => {
            let fa = result.exists(root, &xb);
            let fb = result.exists(root, &xa);
            (fa, fb)
        }
        GateOp::Xor => return extract_xor(cone, root, partition),
    };
    Decomposition {
        aig: result,
        f: root,
        fa,
        fb,
        op,
        partition: partition.clone(),
    }
}
