//! Variable partitions `X = {XA | XB | XC}` and their quality metrics
//! (Definitions 2–4 of the paper).

use std::fmt;

/// Which block of the partition a variable belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarClass {
    /// Exclusive input of `fA`.
    A,
    /// Exclusive input of `fB`.
    B,
    /// Shared input (common to `fA` and `fB`).
    C,
}

/// A partition of the `n` support variables of a function into
/// `{XA | XB | XC}`.
///
/// ```
/// use step_core::{VarClass, VarPartition};
/// let p = VarPartition::new(vec![
///     VarClass::A, VarClass::A, VarClass::B, VarClass::C,
/// ]);
/// assert_eq!(p.num_a(), 2);
/// assert!((p.disjointness() - 0.25).abs() < 1e-9);
/// assert!((p.balancedness() - 0.25).abs() < 1e-9);
/// assert!(p.is_nontrivial());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct VarPartition {
    classes: Vec<VarClass>,
}

impl VarPartition {
    /// Creates a partition from per-variable classes.
    pub fn new(classes: Vec<VarClass>) -> Self {
        VarPartition { classes }
    }

    /// Builds a partition from index lists (`xa`, `xb`; the rest is
    /// shared).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or appears in both lists.
    pub fn from_sets(n: usize, xa: &[usize], xb: &[usize]) -> Self {
        let mut classes = vec![VarClass::C; n];
        for &i in xa {
            classes[i] = VarClass::A;
        }
        for &i in xb {
            assert!(classes[i] != VarClass::A, "variable {i} in both XA and XB");
            classes[i] = VarClass::B;
        }
        VarPartition { classes }
    }

    /// Number of support variables.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the partition is over zero variables.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class of variable `i`.
    pub fn class(&self, i: usize) -> VarClass {
        self.classes[i]
    }

    /// The per-variable classes.
    pub fn classes(&self) -> &[VarClass] {
        &self.classes
    }

    fn count(&self, c: VarClass) -> usize {
        self.classes.iter().filter(|&&x| x == c).count()
    }

    /// `|XA|`.
    pub fn num_a(&self) -> usize {
        self.count(VarClass::A)
    }

    /// `|XB|`.
    pub fn num_b(&self) -> usize {
        self.count(VarClass::B)
    }

    /// `|XC|` — the number of shared variables.
    pub fn num_shared(&self) -> usize {
        self.count(VarClass::C)
    }

    /// Indices in `XA`.
    pub fn xa(&self) -> Vec<usize> {
        self.indices(VarClass::A)
    }

    /// Indices in `XB`.
    pub fn xb(&self) -> Vec<usize> {
        self.indices(VarClass::B)
    }

    /// Indices in `XC`.
    pub fn xc(&self) -> Vec<usize> {
        self.indices(VarClass::C)
    }

    fn indices(&self, c: VarClass) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Disjointness `εD = |XC| / |X|` (Definition 2); 0 is best.
    pub fn disjointness(&self) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        self.num_shared() as f64 / self.classes.len() as f64
    }

    /// Balancedness `εB = ||XA| − |XB|| / |X|` (Definition 3); 0 is
    /// best.
    pub fn balancedness(&self) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        (self.num_a() as f64 - self.num_b() as f64).abs() / self.classes.len() as f64
    }

    /// Weighted cost `ϖD·εD + ϖB·εB` (Definition 4).
    pub fn cost(&self, weight_d: f64, weight_b: f64) -> f64 {
        weight_d * self.disjointness() + weight_b * self.balancedness()
    }

    /// Integer disjointness count `|XC|` — the `k` of constraint (5).
    pub fn k_disjoint(&self) -> usize {
        self.num_shared()
    }

    /// Integer balance difference `||XA| − |XB||` — the `k` of (6).
    pub fn k_balance(&self) -> usize {
        self.num_a().abs_diff(self.num_b())
    }

    /// Integer combined objective `|XC| + ||XA| − |XB||` — the `k` of
    /// (8) when `|XA| ≥ |XB|`.
    pub fn k_combined(&self) -> usize {
        self.k_disjoint() + self.k_balance()
    }

    /// Non-trivial per the paper: both `XA` and `XB` non-empty.
    pub fn is_nontrivial(&self) -> bool {
        self.num_a() > 0 && self.num_b() > 0
    }

    /// Swaps the roles of `XA` and `XB` (the paper's symmetry) so that
    /// `|XA| ≥ |XB|`.
    pub fn normalized(&self) -> VarPartition {
        if self.num_a() >= self.num_b() {
            return self.clone();
        }
        let classes = self
            .classes
            .iter()
            .map(|c| match c {
                VarClass::A => VarClass::B,
                VarClass::B => VarClass::A,
                VarClass::C => VarClass::C,
            })
            .collect();
        VarPartition { classes }
    }
}

impl fmt::Debug for VarPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VarPartition {{ |XA|={}, |XB|={}, |XC|={}, εD={:.3}, εB={:.3} }}",
            self.num_a(),
            self.num_b(),
            self.num_shared(),
            self.disjointness(),
            self.balancedness()
        )
    }
}

impl fmt::Display for VarPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.classes {
            let ch = match c {
                VarClass::A => 'A',
                VarClass::B => 'B',
                VarClass::C => 'C',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}
