//! Strategy wrapper for STEP-MG ([`crate::mg`]).

use super::{ModelStrategy, StrategyOutcome};
use crate::mg::{self, MgOutcome};
use crate::session::SolveSession;
use crate::spec::Model;

/// `STEP-MG` — group-MUS partitioning (heuristic, fastest model in the
/// paper's Table III).
pub struct MgStrategy;

impl ModelStrategy for MgStrategy {
    fn model(&self) -> Model {
        Model::MusGroup
    }

    fn name(&self) -> &'static str {
        "STEP-MG"
    }

    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome {
        let deadline = session.deadline();
        let (oracle, candidates) = session.oracle_parts();
        let mut out = StrategyOutcome::default();
        match mg::decompose(oracle, candidates, deadline) {
            MgOutcome::Partition(p) => {
                out.solved = true;
                out.partition = Some(p);
            }
            MgOutcome::NotDecomposable => out.solved = true,
            MgOutcome::Timeout => out.timed_out = true,
        }
        out
    }
}
