//! Strategy wrapper for STEP-MG ([`crate::mg`]).

use super::{ModelStrategy, StrategyOutcome};
use crate::mg::{self, MgOutcome};
use crate::session::SolveSession;
use crate::spec::Model;

/// `STEP-MG` — group-MUS partitioning (heuristic, fastest model in the
/// paper's Table III).
pub struct MgStrategy;

impl ModelStrategy for MgStrategy {
    fn model(&self) -> Model {
        Model::MusGroup
    }

    fn name(&self) -> &'static str {
        "STEP-MG"
    }

    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome {
        let (oracle, candidates, meter) = session.solve_parts();
        let mut out = StrategyOutcome::default();
        match mg::decompose(oracle, candidates, meter) {
            MgOutcome::Partition(p) => {
                out.solved = true;
                out.partition = Some(p);
            }
            MgOutcome::TruncatedPartition(p) => {
                // Budget-degraded: keep the (valid) partition but
                // report the truncation — the session caches only
                // `solved && !timed_out` outcomes, and a partition
                // whose quality depends on the budget must never be
                // served as this cone's definitive answer.
                out.timed_out = true;
                out.partition = Some(p);
            }
            MgOutcome::NotDecomposable => out.solved = true,
            MgOutcome::Timeout => out.timed_out = true,
        }
        out
    }
}
