//! Strategy for STEP-QB: optimum balancedness (equation (6)).

use super::qbf::solve_with_metric;
use super::{ModelStrategy, StrategyOutcome};
use crate::optimum::Metric;
use crate::session::SolveSession;
use crate::spec::Model;

/// `STEP-QB` — QBF search minimizing `|XA| − |XB|` under `|XA| ≥ |XB|`.
pub struct QbStrategy;

impl ModelStrategy for QbStrategy {
    fn model(&self) -> Model {
        Model::QbfBalanced
    }

    fn name(&self) -> &'static str {
        "STEP-QB"
    }

    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome {
        solve_with_metric(session, Metric::Balancedness)
    }
}
