//! Strategy for STEP-QDB: the combined cost function (equation (8)).

use super::qbf::solve_with_metric;
use super::{ModelStrategy, StrategyOutcome};
use crate::optimum::Metric;
use crate::session::SolveSession;
use crate::spec::Model;

/// `STEP-QDB` — QBF search minimizing `|XC| + |XA| − |XB|`.
pub struct QdbStrategy;

impl ModelStrategy for QdbStrategy {
    fn model(&self) -> Model {
        Model::QbfCombined
    }

    fn name(&self) -> &'static str {
        "STEP-QDB"
    }

    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome {
        solve_with_metric(session, Metric::Combined)
    }
}
