//! Shared machinery of the three QBF strategies: the STEP-MG bootstrap
//! followed by the optimum `k`-search of Section IV-A-6.

use super::StrategyOutcome;
use crate::mg::{self, MgOutcome};
use crate::optimum::{self, Metric};
use crate::qbf_model::ModelOptions;
use crate::session::SolveSession;

/// Bootstraps with STEP-MG (as in the paper), then searches the
/// optimum bound for `metric`. Both phases charge the session's
/// [`EffortMeter`](crate::effort::EffortMeter), so wall and work
/// budgets apply uniformly across the bootstrap's SAT/MUS calls and
/// the search's QBF probes.
pub(super) fn solve_with_metric(session: &mut SolveSession<'_>, metric: Metric) -> StrategyOutcome {
    let mut out = StrategyOutcome::default();
    let bootstrap = {
        let (oracle, candidates, meter) = session.solve_parts();
        match mg::decompose(oracle, candidates, meter) {
            // A truncated bootstrap is still a sound starting bound;
            // the meter is (near-)exhausted, so the search below will
            // immediately report the truncation.
            MgOutcome::Partition(p) | MgOutcome::TruncatedPartition(p) => Some(p),
            MgOutcome::NotDecomposable => {
                // Proved undecomposable — the QBF search is unnecessary.
                out.solved = true;
                out.proved_optimal = true;
                return out;
            }
            MgOutcome::Timeout => {
                out.timed_out = true;
                return out;
            }
        }
    };

    let config = session.config();
    let opts = ModelOptions {
        symmetry_breaking: config.symmetry_breaking,
        allow_both: config.allow_both,
        per_call: config.budget.per_qbf_call,
        restarts: config.sat_restarts,
        preprocess: config.sat_preprocess,
    };
    let strategy = config.effective_strategy();
    // Under clause reuse, a persistent refuter answers each probe's
    // final UNSAT counterexample check from accumulated learnt clauses
    // (the CEGAR engine rebuilds its own solvers every probe), and the
    // probe ledger replays definitive verdicts recorded by sibling
    // sessions over the same canonical cone. The session donates its
    // clauses to the bank afterwards.
    let mut refuter = session.make_refuter();
    let ledger = session.make_probe_ledger();
    let (oracle, _, meter) = session.solve_parts();
    let search = optimum::search_with_reuse(
        oracle.core(),
        metric,
        bootstrap.as_ref(),
        strategy,
        &opts,
        meter,
        &mut refuter,
        ledger.as_ref(),
    );
    session.set_refuter(refuter);
    out.qbf_calls = search.qbf_calls;
    out.cegar_iterations = search.cegar_iterations;
    out.proved_optimal = search.proved_optimal;
    out.solved = search.proved_optimal;
    out.timed_out = search.truncated;
    out.partition = search.partition.or(bootstrap);
    out
}
