//! Shared machinery of the three QBF strategies: the STEP-MG bootstrap
//! followed by the optimum `k`-search of Section IV-A-6.

use super::StrategyOutcome;
use crate::mg::{self, MgOutcome};
use crate::optimum::{self, Metric};
use crate::qbf_model::ModelOptions;
use crate::session::SolveSession;

/// Bootstraps with STEP-MG (as in the paper), then searches the
/// optimum bound for `metric`.
pub(super) fn solve_with_metric(session: &mut SolveSession<'_>, metric: Metric) -> StrategyOutcome {
    let deadline = session.deadline();
    let mut out = StrategyOutcome::default();
    let bootstrap = {
        let (oracle, candidates) = session.oracle_parts();
        match mg::decompose(oracle, candidates, deadline) {
            MgOutcome::Partition(p) => Some(p),
            MgOutcome::NotDecomposable => {
                // Proved undecomposable — the QBF search is unnecessary.
                out.solved = true;
                out.proved_optimal = true;
                return out;
            }
            MgOutcome::Timeout => {
                out.timed_out = true;
                return out;
            }
        }
    };

    let config = session.config();
    let opts = ModelOptions {
        symmetry_breaking: config.symmetry_breaking,
        allow_both: config.allow_both,
        deadline,
        per_call_timeout: Some(config.budget.per_qbf_call),
        conflicts_per_call: config.conflicts_per_call,
    };
    let strategy = config.effective_strategy();
    let (oracle, _) = session.oracle_parts();
    let search = optimum::search(oracle.core(), metric, bootstrap.as_ref(), strategy, &opts);
    out.qbf_calls = search.qbf_calls;
    out.cegar_iterations = search.cegar_iterations;
    out.proved_optimal = search.proved_optimal;
    out.solved = search.proved_optimal;
    out.timed_out = search.timeouts > 0;
    out.partition = search.partition.or(bootstrap);
    out
}
