//! Strategy wrapper for the LJH baseline ([`crate::ljh`]).

use super::{ModelStrategy, StrategyOutcome};
use crate::ljh::{self, LjhOutcome};
use crate::session::SolveSession;
use crate::spec::Model;

/// `LJH` — SAT-based enumeration with greedy growth (heuristic, never
/// proves optimality).
pub struct LjhStrategy;

impl ModelStrategy for LjhStrategy {
    fn model(&self) -> Model {
        Model::Ljh
    }

    fn name(&self) -> &'static str {
        "LJH"
    }

    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome {
        let (oracle, candidates, meter) = session.solve_parts();
        let mut out = StrategyOutcome::default();
        match ljh::decompose(oracle, candidates, meter) {
            LjhOutcome::Partition(p) => {
                out.solved = true;
                out.partition = Some(p);
            }
            LjhOutcome::NotDecomposable => out.solved = true,
            LjhOutcome::Timeout => out.timed_out = true,
        }
        out
    }
}
