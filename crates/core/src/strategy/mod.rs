//! [`ModelStrategy`] — one pluggable search strategy per roster model.
//!
//! The paper's evaluation compares five tools (LJH, STEP-MG, STEP-QD,
//! STEP-QB, STEP-QDB). Each lives in its own module here behind the
//! common [`ModelStrategy`] trait: a strategy receives a
//! [`SolveSession`] (oracle, candidate filter, budgets) and returns a
//! [`StrategyOutcome`] (partition + solve flags + QBF statistics).
//! [`strategy_for`] maps a [`Model`] to its singleton strategy — the
//! single dispatch point replacing the old `match config.model` block
//! in the driver.
//!
//! Strategies are stateless (`&'static` singletons shared across
//! worker threads); all mutable state lives in the session.

mod ljh;
mod mg;
mod qb;
mod qbf;
mod qd;
mod qdb;

pub use ljh::LjhStrategy;
pub use mg::MgStrategy;
pub use qb::QbStrategy;
pub use qd::QdStrategy;
pub use qdb::QdbStrategy;

use crate::partition::VarPartition;
use crate::session::SolveSession;
use crate::spec::Model;

/// What a model strategy concluded about one output.
#[derive(Clone, Debug, Default)]
pub struct StrategyOutcome {
    /// The best partition found (`None` = not decomposable, or the
    /// budget expired before any partition was found).
    pub partition: Option<VarPartition>,
    /// The model reached a definite answer within budget.
    pub solved: bool,
    /// The partition was proved metric-optimal (QBF models only).
    pub proved_optimal: bool,
    /// A budget expired somewhere along the way.
    pub timed_out: bool,
    /// QBF solves performed.
    pub qbf_calls: u32,
    /// Total CEGAR iterations across QBF solves.
    pub cegar_iterations: u64,
}

/// A per-model search strategy. See the module docs.
pub trait ModelStrategy: Sync {
    /// The roster model this strategy implements.
    fn model(&self) -> Model;

    /// The paper's name for the model (`LJH`, `STEP-MG`, …).
    fn name(&self) -> &'static str;

    /// Searches for a partition of the session's output.
    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome;
}

/// The singleton strategy implementing `model`.
pub fn strategy_for(model: Model) -> &'static dyn ModelStrategy {
    match model {
        Model::Ljh => &LjhStrategy,
        Model::MusGroup => &MgStrategy,
        Model::QbfDisjoint => &QdStrategy,
        Model::QbfBalanced => &QbStrategy,
        Model::QbfCombined => &QdbStrategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_maps_to_distinct_named_strategies() {
        let names: Vec<&str> = [
            Model::Ljh,
            Model::MusGroup,
            Model::QbfDisjoint,
            Model::QbfBalanced,
            Model::QbfCombined,
        ]
        .into_iter()
        .map(|m| {
            let s = strategy_for(m);
            assert_eq!(s.model(), m, "strategy reports its own model");
            s.name()
        })
        .collect();
        assert_eq!(names, ["LJH", "STEP-MG", "STEP-QD", "STEP-QB", "STEP-QDB"]);
    }
}
