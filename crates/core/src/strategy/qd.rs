//! Strategy for STEP-QD: optimum disjointness (equation (5)).

use super::qbf::solve_with_metric;
use super::{ModelStrategy, StrategyOutcome};
use crate::optimum::Metric;
use crate::session::SolveSession;
use crate::spec::Model;

/// `STEP-QD` — QBF search minimizing `|XC|`.
pub struct QdStrategy;

impl ModelStrategy for QdStrategy {
    fn model(&self) -> Model {
        Model::QbfDisjoint
    }

    fn name(&self) -> &'static str {
        "STEP-QD"
    }

    fn solve(&self, session: &mut SolveSession<'_>) -> StrategyOutcome {
        solve_with_metric(session, Metric::Disjointness)
    }
}
