//! The QBF formulations (Section IV) and their CEGAR solving.
//!
//! Formulation (4) of the paper:
//!
//! ```text
//!   ∃α,β ∀X,X',X''. ¬core(α,β,X,X',X'') ∧ fN(α,β) ∧ fT(α,β)
//! ```
//!
//! where `core` is [`crate::oracle::CoreFormula`], `fN` enforces
//! non-triviality (`AtLeast1(α) ∧ AtLeast1(β)`) and `fT` the metric
//! target:
//!
//! * disjointness (5):  `Σ ᾱᵢβ̄ᵢ ≤ k`
//! * balancedness (6):  `0 ≤ Σ αᵢβ̄ᵢ − Σ ᾱᵢβᵢ ≤ k`
//! * combined (8):      `0 ≤ Σ ᾱᵢβ̄ᵢ + Σ αᵢβ̄ᵢ − Σ ᾱᵢβᵢ ≤ k`
//!
//! plus the `|XA| ≥ |XB|` symmetry-breaking constraint (Section
//! IV-A-2). The paper hands the *negated* prenex form (9) to AReQS and
//! reads the partition from the counterexample; our CEGAR engine
//! (`step-qbf`) solves the ∃∀ form directly and returns the witness,
//! which is the same object.

use step_cnf::card::{assert_count_dominates, assert_diff_le, at_least_one, Totalizer};
use step_cnf::{Cnf, Lit};
use step_qbf::{CounterexampleRefuter, ExistsForall, Qbf2Config, Qbf2Result};

use crate::effort::EffortMeter;
use crate::oracle::CoreFormula;
use crate::partition::{VarClass, VarPartition};
use crate::spec::Budget;

/// The `fT` target constraint attached to formulation (4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    /// No target — plain existence, formulation (3) + `fN`.
    Any,
    /// Equation (5): at most `k` shared variables.
    DisjointAtMost(usize),
    /// Equation (6): `0 ≤ |XA| − |XB| ≤ k`.
    BalancedWindow(usize),
    /// Equation (8): `0 ≤ |XC| + |XA| − |XB| ≤ k`.
    CombinedAtMost(usize),
    /// The general cost function of Definition 4 with integer weights:
    /// `0 ≤ wd·|XC| + wb·(|XA| − |XB|) ≤ k` under `|XA| ≥ |XB|`.
    /// `Weighted { wd: 1, wb: 1, .. }` coincides with
    /// [`Target::CombinedAtMost`]; other weights trade the two metrics
    /// off (the paper's "user-specified cost functions").
    Weighted {
        /// Weight `ϖD` of the disjointness count.
        wd: u32,
        /// Weight `ϖB` of the balance difference.
        wb: u32,
        /// The bound.
        k: usize,
    },
}

/// Options shared by all QBF model solves. Run-scope limits (the
/// per-output deadline and work budget) live in the
/// [`EffortMeter`] handed to [`solve_partition`]; the options only
/// carry the per-call budget.
#[derive(Clone, Copy, Debug)]
pub struct ModelOptions {
    /// Add `|XA| ≥ |XB|` (implied by the balanced/combined windows).
    pub symmetry_breaking: bool,
    /// Allow `(αᵢ, βᵢ) = (1,1)` (see DESIGN.md §3.3).
    pub allow_both: bool,
    /// Budget for one QBF solve — the paper's 4-second per-call
    /// timeout, or its deterministic [`Budget::Work`] analogue (total
    /// inner-SAT conflicts of the CEGAR call).
    pub per_call: Budget,
    /// Restart policy for the CEGAR engine's inner SAT solvers.
    pub restarts: step_sat::RestartPolicy,
    /// Bounded root-level preprocessing in the inner SAT solvers.
    pub preprocess: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            symmetry_breaking: true,
            allow_both: false,
            per_call: Budget::Unlimited,
            restarts: step_sat::RestartPolicy::default(),
            preprocess: false,
        }
    }
}

/// Outcome of one QBF model solve (one point of the `k` search).
#[derive(Clone, Debug, PartialEq)]
pub enum QbfModelOutcome {
    /// A partition meeting the target.
    Partition(VarPartition),
    /// No partition meets the target.
    NoPartition,
    /// Budget expired.
    Timeout,
}

/// Statistics of a QBF model solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct QbfModelStats {
    /// CEGAR iterations of the underlying 2QBF engine.
    pub cegar_iterations: u64,
}

/// Solves formulation (4) for the given target. The call's limits are
/// the per-call budget in `opts` capped by what remains of `meter`
/// (deadline and work alike), and the whole CEGAR run's inner-SAT
/// effort is charged to `meter` afterwards — so per-output work
/// budgets account QBF solving exactly like oracle SAT calls.
pub fn solve_partition(
    core: &CoreFormula,
    target: Target,
    opts: &ModelOptions,
    meter: &mut EffortMeter,
) -> (QbfModelOutcome, QbfModelStats) {
    let mut no_refuter = None;
    solve_partition_with_refuter(core, target, opts, meter, &mut no_refuter)
}

/// [`solve_partition`] with a persistent [`CounterexampleRefuter`]
/// threaded through: the refuter (if any) is attached to the CEGAR
/// engine for this call and handed back afterwards, warm with the
/// call's check-side learnt clauses. Its conflicts are charged to
/// `meter` alongside the CEGAR engine's own effort.
pub fn solve_partition_with_refuter(
    core: &CoreFormula,
    target: Target,
    opts: &ModelOptions,
    meter: &mut EffortMeter,
    refuter: &mut Option<CounterexampleRefuter>,
) -> (QbfModelOutcome, QbfModelStats) {
    if meter.exhausted() {
        return (QbfModelOutcome::Timeout, QbfModelStats::default());
    }
    let n = core.n;
    let matrix = !core.root; // ∀Y. ¬core
    let mut solver = ExistsForall::new(core.aig.clone(), matrix, core.e_pis(), core.y_pis());
    let limits = meter.call_limits(opts.per_call);
    solver.set_config(Qbf2Config {
        max_iterations: None,
        deadline: limits.deadline,
        conflicts_per_call: None,
        effort_budget: limits.conflicts,
        restarts: opts.restarts,
        preprocess: opts.preprocess,
    });
    let refuter_before = refuter.as_ref().map(|r| r.effort()).unwrap_or_default();
    solver.set_refuter(refuter.take());

    let symmetry = opts.symmetry_breaking;
    let allow_both = opts.allow_both;
    solver.add_exists_cnf(|cnf, e| {
        let alpha = &e[..n];
        let beta = &e[n..];
        // fN: non-trivial partition.
        at_least_one(cnf, alpha);
        at_least_one(cnf, beta);
        if !allow_both {
            for i in 0..n {
                cnf.add_clause([!alpha[i], !beta[i]]);
            }
        }
        // Product literals for the three pair kinds.
        let shared: Vec<Lit> = (0..n)
            .map(|i| define_and(cnf, !alpha[i], !beta[i]))
            .collect();
        let in_a: Vec<Lit> = (0..n)
            .map(|i| define_and(cnf, alpha[i], !beta[i]))
            .collect();
        let in_b: Vec<Lit> = (0..n)
            .map(|i| define_and(cnf, !alpha[i], beta[i]))
            .collect();
        match target {
            Target::Any => {
                if symmetry {
                    let ta = Totalizer::new(cnf, &in_a);
                    let tb = Totalizer::new(cnf, &in_b);
                    assert_count_dominates(cnf, &ta, &tb);
                }
            }
            Target::DisjointAtMost(k) => {
                let tc = Totalizer::new(cnf, &shared);
                tc.assert_le(cnf, k);
                if symmetry {
                    let ta = Totalizer::new(cnf, &in_a);
                    let tb = Totalizer::new(cnf, &in_b);
                    assert_count_dominates(cnf, &ta, &tb);
                }
            }
            Target::BalancedWindow(k) => {
                // 0 ≤ |XA| − |XB| ≤ k (symmetry inherent).
                let ta = Totalizer::new(cnf, &in_a);
                let tb = Totalizer::new(cnf, &in_b);
                assert_count_dominates(cnf, &ta, &tb);
                assert_diff_le(cnf, &ta, &tb, k);
            }
            Target::CombinedAtMost(k) => {
                // 0 ≤ |XC| + |XA| − |XB| ≤ k; lower bound and symmetry
                // come from |XA| ≥ |XB|.
                let ta = Totalizer::new(cnf, &in_a);
                let tb = Totalizer::new(cnf, &in_b);
                assert_count_dominates(cnf, &ta, &tb);
                let mut plus = shared.clone();
                plus.extend_from_slice(&in_a);
                let tplus = Totalizer::new(cnf, &plus);
                assert_diff_le(cnf, &tplus, &tb, k);
            }
            Target::Weighted { wd, wb, k } => {
                // Integer weights by literal repetition inside the
                // totalizers: wd·|XC| + wb·|XA| − wb·|XB| ≤ k with
                // |XA| ≥ |XB|.
                let ta = Totalizer::new(cnf, &in_a);
                let tb = Totalizer::new(cnf, &in_b);
                assert_count_dominates(cnf, &ta, &tb);
                let mut plus = Vec::new();
                for _ in 0..wd {
                    plus.extend_from_slice(&shared);
                }
                for _ in 0..wb {
                    plus.extend_from_slice(&in_a);
                }
                let mut minus = Vec::new();
                for _ in 0..wb {
                    minus.extend_from_slice(&in_b);
                }
                let tplus = Totalizer::new(cnf, &plus);
                let tminus = Totalizer::new(cnf, &minus);
                assert_diff_le(cnf, &tplus, &tminus, k);
            }
        }
    });

    let outcome = match solver.solve() {
        Qbf2Result::Valid(witness) => QbfModelOutcome::Partition(witness_to_partition(&witness, n)),
        Qbf2Result::Invalid => QbfModelOutcome::NoPartition,
        Qbf2Result::Unknown => QbfModelOutcome::Timeout,
    };
    // Charge the CEGAR iterations' inner-SAT work to the QBF call,
    // plus what the refuter fast path spent during it (the refuter is
    // not part of `ExistsForall::effort`, so this never double-counts
    // across probes sharing one refuter).
    *refuter = solver.take_refuter();
    meter.charge(solver.effort());
    if let Some(r) = refuter.as_ref() {
        meter.charge(r.effort().since(refuter_before));
    }
    let stats = QbfModelStats {
        cegar_iterations: solver.stats().iterations,
    };
    (outcome, stats)
}

/// Defines `t ↔ a ∧ b` with a fresh variable; returns `t`.
fn define_and(cnf: &mut Cnf, a: Lit, b: Lit) -> Lit {
    let t = Lit::pos(cnf.new_var());
    cnf.add_clause([!t, a]);
    cnf.add_clause([!t, b]);
    cnf.add_clause([t, !a, !b]);
    t
}

/// Maps a QBF witness over `[α₀..αₙ₋₁, β₀..βₙ₋₁]` to a partition.
/// `(1,1)` variables (possible only with `allow_both`) are assigned
/// greedily to the smaller block.
fn witness_to_partition(witness: &[bool], n: usize) -> VarPartition {
    let mut classes = Vec::with_capacity(n);
    let mut num_a = 0usize;
    let mut num_b = 0usize;
    let mut both = Vec::new();
    for i in 0..n {
        let (a, b) = (witness[i], witness[n + i]);
        classes.push(match (a, b) {
            (true, false) => {
                num_a += 1;
                VarClass::A
            }
            (false, true) => {
                num_b += 1;
                VarClass::B
            }
            (false, false) => VarClass::C,
            (true, true) => {
                both.push(i);
                VarClass::C // placeholder, fixed below
            }
        });
    }
    for i in both {
        if num_a <= num_b {
            classes[i] = VarClass::A;
            num_a += 1;
        } else {
            classes[i] = VarClass::B;
            num_b += 1;
        }
    }
    VarPartition::new(classes)
}
