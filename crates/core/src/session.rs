//! [`SolveSession`] — the per-output solving state machine.
//!
//! A session is the stateful counterpart of a pure
//! [`OutputJob`]: it owns the extracted cone,
//! the core formula, the incremental [`PartitionOracle`], the
//! simulation pre-filter and the per-output statistics, and drives one
//! output from job to [`OutputResult`]. Model-specific search lives
//! behind the [`ModelStrategy`](crate::strategy::ModelStrategy) trait;
//! the session supplies it the oracle, candidate filter and deadline,
//! then finishes with extraction and verification.
//!
//! **Canonical solving.** The session never searches on the cone as
//! extracted: it first rewrites it into canonical input order
//! ([`step_aig::canonicalize`]) and runs the sim filter, core formula
//! and strategy there, translating the winning partition back through
//! the canonical permutation. Because the canonical cone — and the
//! simulation seed, which derives from the canonical fingerprint
//! ([`cone_seed`]) — is byte-identical for every structurally identical
//! cone, solved outcomes are a pure function of
//! `(fingerprint, op, config)`. That purity is what the result cache
//! ([`crate::cache::ResultCache`]) keys on: a session consults it
//! before building the core formula and oracle, and a hit skips the
//! entire search (the dominant cost) while producing the same
//! `OutputResult` the search would have.
//!
//! Sessions are created and consumed by one worker thread; nothing in
//! them is shared except the (internally synchronized) cache, which is
//! what lets the [`StepService`](crate::service::StepService) pool run
//! many of them concurrently — across outputs of one submission and
//! across submissions alike.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use step_aig::{canonicalize, Aig, CanonicalCone, Cone, ConeFingerprint};
use step_qbf::CounterexampleRefuter;
use step_sat::LearntExport;

use crate::cache::{CacheLookup, CachedResult};
use crate::clause_bank::{BankLookup, ProbeCfg, ProbeLedger, ReuseCtx};
use crate::effort::EffortMeter;
use crate::engine::{OutputResult, StepError};
use crate::extract::{extract, ExtractError};
use crate::job::{cone_seed, OutputJob};
use crate::oracle::{
    sim_filter_pairs, CoreFormula, PartitionOracle, BANK_MAX_ACTIVITIES, BANK_MAX_CLAUSES,
};
use crate::partition::VarPartition;
use crate::spec::DecompConfig;
use crate::store::{Artifact, ArtifactKey, ArtifactStore, ClausePayload, Namespace, TieredStore};
use crate::strategy::strategy_for;
use crate::verify::verify;

/// Per-output solving state: cone, core formula, oracle, seed-pair
/// candidates and budgets. See the module docs.
pub struct SolveSession<'a> {
    config: &'a DecompConfig,
    store: Option<&'a TieredStore>,
    reuse: Option<&'a ReuseCtx>,
    job: OutputJob,
    name: String,
    cone: Cone,
    start: Instant,
    meter: EffortMeter,
    candidates: Option<Vec<Vec<bool>>>,
    oracle: Option<PartitionOracle>,
    /// Check-side donor snapshot from an exact bank hit, held until a
    /// QBF strategy asks for a refuter to warm with it.
    check_seed: Option<Arc<LearntExport>>,
    /// The persistent counterexample refuter, handed back by the
    /// strategy after its optimum search for donation at session end.
    refuter: Option<CounterexampleRefuter>,
    /// Clauses imported into the refuter from the bank's check payload.
    refuter_imported: u64,
    /// Canonical fingerprint of the cone, set by [`run`] once the cone
    /// is canonicalized — the probe ledger keys on it.
    ///
    /// [`run`]: SolveSession::run
    fingerprint: Option<ConeFingerprint>,
    /// Probe certificates served from the disk tier. The ledger is
    /// strategy-local, so it shares this counter with the session and
    /// the session folds it into the output statistics after the
    /// strategy returns.
    probe_disk_hits: Arc<AtomicU64>,
}

impl<'a> SolveSession<'a> {
    /// Opens a session for `job` on `aig`, consulting `store` (if any)
    /// for a solved result before solving.
    ///
    /// The wall clock anchors **first**, so cone extraction — which can
    /// dominate on huge outputs — is charged against the per-output
    /// budget rather than running outside it. The core formula and
    /// oracle are built lazily by [`run`] (trivial and cache-hit cones
    /// never need them).
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] if the AIG has latches,
    /// [`StepError::OutputOutOfRange`] for a bad index.
    ///
    /// [`run`]: SolveSession::run
    pub fn new(
        aig: &Aig,
        job: OutputJob,
        config: &'a DecompConfig,
        store: Option<&'a TieredStore>,
        reuse: Option<&'a ReuseCtx>,
    ) -> Result<Self, StepError> {
        let start = Instant::now();
        if !aig.is_comb() {
            return Err(StepError::NotCombinational);
        }
        let output = aig
            .outputs()
            .get(job.output_index)
            .ok_or(StepError::OutputOutOfRange(job.output_index))?;
        let name = output.name().to_owned();
        let meter = EffortMeter::new(start, job.per_output, &job.circuit);
        let cone = aig.cone(output.lit());
        Ok(SolveSession {
            config,
            store,
            reuse,
            job,
            name,
            cone,
            start,
            meter,
            candidates: None,
            oracle: None,
            check_seed: None,
            refuter: None,
            refuter_imported: 0,
            fingerprint: None,
            probe_disk_hits: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The job this session executes.
    pub fn job(&self) -> &OutputJob {
        &self.job
    }

    /// The engine configuration (decoupled from the session borrow, so
    /// strategies can read it while holding the oracle mutably).
    pub fn config(&self) -> &'a DecompConfig {
        self.config
    }

    /// The effective wall deadline (`None` under pure work budgets).
    pub fn deadline(&self) -> Option<Instant> {
        self.meter.deadline()
    }

    /// Support size of the output cone.
    pub fn support(&self) -> usize {
        self.cone.support_size()
    }

    /// Splits the session into the pieces a strategy needs: the
    /// incremental oracle (mutable), the surviving seed-pair
    /// candidates (shared) and the budget meter (mutable) — one
    /// borrow per disjoint field, so a strategy can drive the oracle
    /// while charging the meter.
    ///
    /// # Panics
    ///
    /// Panics if called before [`run`](SolveSession::run) has built the
    /// oracle — strategies are only ever invoked from `run`.
    pub fn solve_parts(
        &mut self,
    ) -> (&mut PartitionOracle, Option<&[Vec<bool>]>, &mut EffortMeter) {
        let oracle = self
            .oracle
            .as_mut()
            .expect("oracle is built before the strategy runs");
        (oracle, self.candidates.as_deref(), &mut self.meter)
    }

    /// Builds the session's persistent [`CounterexampleRefuter`] (QBF
    /// strategies only), warm from an exact donor's check-side payload
    /// when the bank carried one. `None` when clause reuse is off: the
    /// refuter is part of the reuse machinery, and keeping it off the
    /// baseline path keeps reuse-off runs work-comparable with earlier
    /// versions.
    pub fn make_refuter(&mut self) -> Option<CounterexampleRefuter> {
        self.reuse?;
        let core = self.oracle.as_ref()?.core();
        let mut refuter =
            CounterexampleRefuter::new(&core.aig, !core.root, &core.e_pis(), &core.y_pis());
        if let Some(seed) = self.check_seed.take() {
            self.refuter_imported += refuter.import_learnts(&seed);
        }
        Some(refuter)
    }

    /// Hands the refuter back after the strategy's search, so the
    /// session can donate its check-side learnt clauses at the end.
    pub fn set_refuter(&mut self, refuter: Option<CounterexampleRefuter>) {
        self.refuter = refuter;
    }

    /// Builds the session's [`ProbeLedger`] over the shared store (QBF
    /// strategies only, `None` when clause reuse is off). Solved
    /// outcomes are a pure function of `(fingerprint, op, config)`, so
    /// the ledger keys on the fingerprint plus every configuration knob
    /// a probe's verdict can depend on.
    pub fn make_probe_ledger(&self) -> Option<ProbeLedger> {
        let reuse = self.reuse?;
        let fingerprint = self.fingerprint?;
        Some(ProbeLedger::new(
            Arc::clone(&reuse.store),
            fingerprint,
            self.job.op,
            ProbeCfg {
                symmetry_breaking: self.config.symmetry_breaking,
                allow_both: self.config.allow_both,
                restarts: self.config.sat_restarts,
                preprocess: self.config.sat_preprocess,
            },
            Arc::clone(&self.probe_disk_hits),
        ))
    }

    /// Translates a canonical-order partition into this session's cone
    /// input order (`original[i] = canonical[perm[i]]`).
    fn translate(
        &self,
        canon: &CanonicalCone,
        classes: &[crate::partition::VarClass],
    ) -> VarPartition {
        VarPartition::new(
            (0..self.cone.support_size())
                .map(|i| classes[canon.perm[i]])
                .collect(),
        )
    }

    /// Extraction + verification of a found partition, shared by the
    /// cold and cache-hit paths.
    fn finish_partition(
        &mut self,
        p: VarPartition,
        result: &mut OutputResult,
    ) -> Result<(), StepError> {
        debug_assert!(p.is_nontrivial(), "partition must be non-trivial");
        if self.config.extract {
            match extract(
                &self.cone.aig,
                self.cone.root,
                self.job.op,
                &p,
                self.meter.deadline(),
            ) {
                Ok(d) => {
                    if self.config.verify {
                        verify(&d, self.meter.deadline()).map_err(|e| {
                            StepError::Internal(format!(
                                "extracted decomposition failed verification: {e}"
                            ))
                        })?;
                    }
                    result.decomposition = Some(d);
                }
                Err(ExtractError::Budget) => {
                    result.timed_out = true;
                }
                Err(e) => {
                    return Err(StepError::Internal(format!(
                        "extraction failed on a valid partition: {e}"
                    )))
                }
            }
        }
        result.partition = Some(p);
        Ok(())
    }

    /// Runs the session to completion: canonicalization, cache lookup,
    /// then (on a miss) sim-filter, core construction and the model
    /// strategy, then extraction and verification.
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] on internal inconsistencies (e.g. a
    /// verified partition failing extraction).
    pub fn run(mut self) -> Result<OutputResult, StepError> {
        let n = self.cone.support_size();
        let mut result = OutputResult::pending(self.name.clone(), self.job.output_index, n);
        if n < 2 {
            // Constant or single-input function: no non-trivial
            // bi-decomposition exists by definition.
            result.solved = true;
            result.cpu = self.start.elapsed();
            return Ok(result);
        }
        // The budget (anchored before cone extraction) may already be
        // gone — typically a shared circuit deadline or work pool that
        // expired while this output waited in the queue. Report it
        // honestly instead of opening solvers that would only confirm
        // the timeout.
        if self.meter.exhausted() {
            result.timed_out = true;
            result.cpu = self.start.elapsed();
            return Ok(result);
        }

        let canon = canonicalize(&self.cone.aig, self.cone.root);
        self.fingerprint = Some(canon.fingerprint);
        result.fingerprint = Some(canon.fingerprint.hash);
        let result_ns = self.store.map(|_| Namespace::results(self.config));

        if let (Some(store), Some(ns)) = (self.store, &result_ns) {
            if let Some((hit, from_disk)) = store.lookup_result(ns, canon.fingerprint, self.job.op)
            {
                result.cache = CacheLookup::Hit;
                result.disk_hits += u64::from(from_disk);
                result.solved = true;
                result.proved_optimal = hit.proved_optimal;
                if let Some(classes) = &hit.partition {
                    let p = self.translate(&canon, classes);
                    self.finish_partition(p, &mut result)?;
                }
                result.cpu = self.start.elapsed();
                return Ok(result);
            }
            result.cache = CacheLookup::Miss;
        }

        if self.config.sim_filter {
            self.candidates = Some(sim_filter_pairs(
                &canon.aig,
                canon.root,
                self.job.op,
                self.config.sim_rounds,
                cone_seed(self.config.seed, canon.fingerprint.hash),
            ));
        }
        // Clause reuse, layer by layer: a parked sibling oracle for
        // this exact fingerprint skips CNF construction entirely;
        // otherwise a fresh oracle is seeded from the bank — verbatim
        // from an exact donor (identical CNF by canonicalization),
        // clause-by-clause vetted from a near-twin. Every path adds
        // only clauses implied by this oracle's own CNF, so the
        // strategy sees identical verdicts either way.
        let mut pooled_calls = 0;
        if let Some(reuse) = self.reuse {
            if let Some(oracle) = reuse.pool.take(canon.fingerprint.hash, self.job.op) {
                pooled_calls = oracle.sat_calls;
                result.bank = BankLookup::Pooled;
                self.oracle = Some(oracle);
            }
        }
        if self.oracle.is_none() {
            let core = CoreFormula::build(&canon.aig, canon.root, self.job.op);
            let mut oracle = PartitionOracle::with_options(
                core,
                self.config.sat_restarts,
                self.config.sat_preprocess,
            );
            if let Some(reuse) = self.reuse {
                let cns = Namespace::clauses();
                let ckey = ArtifactKey::of(canon.fingerprint, self.job.op);
                match reuse.store.get(&cns, &ckey) {
                    Some(hit) => {
                        result.disk_hits += u64::from(hit.from_disk);
                        if let Artifact::Clauses(payload) = hit.artifact {
                            if payload.exact {
                                result.imported_clauses = oracle.import_learnts(&payload.export);
                                self.check_seed = payload.check;
                                result.bank = BankLookup::Exact;
                            } else {
                                result.imported_clauses =
                                    oracle.import_vetted(&payload.export, &mut self.meter);
                                result.bank = BankLookup::Cluster;
                            }
                        }
                    }
                    None => result.bank = BankLookup::Miss,
                }
            }
            self.oracle = Some(oracle);
        }

        let outcome = strategy_for(self.config.model).solve(&mut self);
        // A pooled oracle arrives with its donor's call count; report
        // only this output's own share.
        result.sat_calls = self
            .oracle
            .as_ref()
            .map_or(0, |o| o.sat_calls - pooled_calls);
        result.imported_clauses += self.refuter_imported;
        result.effort = self.meter.spent();
        result.qbf_calls = outcome.qbf_calls;
        result.cegar_iterations = outcome.cegar_iterations;
        result.proved_optimal = outcome.proved_optimal;
        result.solved = outcome.solved;
        result.timed_out = outcome.timed_out;
        result.disk_hits += self.probe_disk_hits.load(Ordering::Relaxed);

        // Only definitive, budget-free outcomes enter the store: they
        // are pure functions of the key, a timeout is not.
        if let (Some(store), Some(ns)) = (self.store, &result_ns) {
            if outcome.solved && !outcome.timed_out {
                store.insert_result(
                    ns,
                    canon.fingerprint,
                    self.job.op,
                    CachedResult {
                        partition: outcome.partition.as_ref().map(|p| p.classes().to_vec()),
                        proved_optimal: outcome.proved_optimal,
                    },
                );
            }
        }

        // Donate the oracle's pinned clauses — timeouts included, a
        // learnt clause is implied by the CNF no matter how the search
        // ended, which is exactly how truncated siblings still pay
        // forward — plus the refuter's check-side snapshot if a QBF
        // strategy ran one, and park the live oracle for the next
        // sibling with this fingerprint.
        if let Some(reuse) = self.reuse {
            if let Some(oracle) = self.oracle.take() {
                let export = oracle.export_learnts();
                let check = self
                    .refuter
                    .take()
                    .map(|r| r.export_learnts(BANK_MAX_CLAUSES, BANK_MAX_ACTIVITIES))
                    .filter(|c| !c.is_empty());
                result.donated_clauses = export.num_clauses() as u64
                    + check.as_ref().map_or(0, |c| c.num_clauses() as u64);
                reuse.store.put(
                    &Namespace::clauses(),
                    &ArtifactKey::of(canon.fingerprint, self.job.op),
                    Artifact::Clauses(ClausePayload {
                        export: Arc::new(export),
                        check: check.map(Arc::new),
                        exact: true,
                    }),
                );
                reuse.pool.put(canon.fingerprint.hash, self.job.op, oracle);
            }
        }

        if let Some(p) = outcome.partition {
            // The strategy searched the canonical cone; translate its
            // partition back to this cone's own input order.
            let p = self.translate(&canon, p.classes());
            self.finish_partition(p, &mut result)?;
        }
        result.cpu = self.start.elapsed();
        Ok(result)
    }
}
