//! [`SolveSession`] — the per-output solving state machine.
//!
//! A session is the stateful counterpart of a pure
//! [`OutputJob`]: it owns the extracted cone,
//! the core formula, the incremental [`PartitionOracle`], the
//! simulation pre-filter and the per-output statistics, and drives one
//! output from job to [`OutputResult`]. Model-specific search lives
//! behind the [`ModelStrategy`](crate::strategy::ModelStrategy) trait;
//! the session supplies it the oracle, candidate filter and deadline,
//! then finishes with extraction and verification.
//!
//! Sessions are created and consumed by one worker thread; nothing in
//! them is shared, which is what lets the circuit driver run many of
//! them concurrently.

use std::time::Instant;

use step_aig::{Aig, Cone};

use crate::engine::{OutputResult, StepError};
use crate::extract::{extract, ExtractError};
use crate::job::OutputJob;
use crate::oracle::{sim_filter_pairs, CoreFormula, PartitionOracle};
use crate::spec::DecompConfig;
use crate::strategy::strategy_for;
use crate::verify::verify;

/// Per-output solving state: cone, core formula, oracle, seed-pair
/// candidates and budgets. See the module docs.
pub struct SolveSession<'a> {
    config: &'a DecompConfig,
    job: OutputJob,
    name: String,
    cone: Cone,
    start: Instant,
    deadline: Option<Instant>,
    candidates: Option<Vec<Vec<bool>>>,
    oracle: Option<PartitionOracle>,
}

impl<'a> SolveSession<'a> {
    /// Opens a session for `job` on `aig`.
    ///
    /// Validates the circuit and output index and extracts the cone;
    /// the core formula and oracle are built lazily by [`run`] (trivial
    /// cones never need them).
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] if the AIG has latches,
    /// [`StepError::OutputOutOfRange`] for a bad index.
    ///
    /// [`run`]: SolveSession::run
    pub fn new(aig: &Aig, job: OutputJob, config: &'a DecompConfig) -> Result<Self, StepError> {
        if !aig.is_comb() {
            return Err(StepError::NotCombinational);
        }
        let output = aig
            .outputs()
            .get(job.output_index)
            .ok_or(StepError::OutputOutOfRange(job.output_index))?;
        let name = output.name().to_owned();
        let cone = aig.cone(output.lit());
        let start = Instant::now();
        let deadline = Some(job.deadline_from(start));
        Ok(SolveSession {
            config,
            job,
            name,
            cone,
            start,
            deadline,
            candidates: None,
            oracle: None,
        })
    }

    /// The job this session executes.
    pub fn job(&self) -> &OutputJob {
        &self.job
    }

    /// The engine configuration (decoupled from the session borrow, so
    /// strategies can read it while holding the oracle mutably).
    pub fn config(&self) -> &'a DecompConfig {
        self.config
    }

    /// The effective per-output deadline.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Support size of the output cone.
    pub fn support(&self) -> usize {
        self.cone.support_size()
    }

    /// Splits the session into the pieces a strategy needs: the
    /// incremental oracle (mutable) and the surviving seed-pair
    /// candidates (shared).
    ///
    /// # Panics
    ///
    /// Panics if called before [`run`](SolveSession::run) has built the
    /// oracle — strategies are only ever invoked from `run`.
    pub fn oracle_parts(&mut self) -> (&mut PartitionOracle, Option<&[Vec<bool>]>) {
        let oracle = self
            .oracle
            .as_mut()
            .expect("oracle is built before the strategy runs");
        (oracle, self.candidates.as_deref())
    }

    /// Runs the session to completion: sim-filter, core construction,
    /// model strategy, then extraction and verification.
    ///
    /// # Errors
    ///
    /// [`StepError::Internal`] on internal inconsistencies (e.g. a
    /// verified partition failing extraction).
    pub fn run(mut self) -> Result<OutputResult, StepError> {
        let n = self.cone.support_size();
        let mut result = OutputResult::pending(self.name.clone(), self.job.output_index, n);
        if n < 2 {
            // Constant or single-input function: no non-trivial
            // bi-decomposition exists by definition.
            result.solved = true;
            result.cpu = self.start.elapsed();
            return Ok(result);
        }

        if self.config.sim_filter {
            self.candidates = Some(sim_filter_pairs(
                &self.cone.aig,
                self.cone.root,
                self.job.op,
                self.config.sim_rounds,
                self.job.sim_seed,
            ));
        }
        let core = CoreFormula::build(&self.cone.aig, self.cone.root, self.job.op);
        self.oracle = Some(PartitionOracle::new(core));

        let outcome = strategy_for(self.config.model).solve(&mut self);
        result.sat_calls = self.oracle.as_ref().map_or(0, |o| o.sat_calls);
        result.qbf_calls = outcome.qbf_calls;
        result.cegar_iterations = outcome.cegar_iterations;
        result.proved_optimal = outcome.proved_optimal;
        result.solved = outcome.solved;
        result.timed_out = outcome.timed_out;

        if let Some(p) = outcome.partition {
            debug_assert!(p.is_nontrivial(), "partition must be non-trivial");
            if self.config.extract {
                match extract(
                    &self.cone.aig,
                    self.cone.root,
                    self.job.op,
                    &p,
                    self.deadline,
                ) {
                    Ok(d) => {
                        if self.config.verify {
                            verify(&d, self.deadline).map_err(|e| {
                                StepError::Internal(format!(
                                    "extracted decomposition failed verification: {e}"
                                ))
                            })?;
                        }
                        result.decomposition = Some(d);
                    }
                    Err(ExtractError::Budget) => {
                        result.timed_out = true;
                    }
                    Err(e) => {
                        return Err(StepError::Internal(format!(
                            "extraction failed on a valid partition: {e}"
                        )))
                    }
                }
            }
            result.partition = Some(p);
        }
        result.cpu = self.start.elapsed();
        Ok(result)
    }
}
