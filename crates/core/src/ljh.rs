//! The LJH baseline: SAT-based bi-decomposition with heuristic variable
//! partitioning, reimplementing the `Bi-dec` tool of Lee–Jiang–Hung
//! (DAC 2008, the paper's reference \[16\]) in its best-quality mode
//! (`bi_dec circuit.blif or 0 1`).
//!
//! The algorithm: find a *seed pair* `(i, j)` such that the trivial
//! partition `XA = {i}, XB = {j}` is already a valid bi-decomposition
//! partition (Proposition 1 via the incremental oracle), then greedily
//! grow `XA`/`XB` by trying to move each remaining shared variable out
//! of `XC` — preferring the smaller block to keep the result balanced,
//! exactly the quality-directed variant the paper benchmarks.

use crate::effort::EffortMeter;
use crate::oracle::PartitionOracle;
use crate::partition::{VarClass, VarPartition};

/// Outcome of an LJH run.
#[derive(Clone, Debug, PartialEq)]
pub enum LjhOutcome {
    /// A (maximal, heuristic) partition was found.
    Partition(VarPartition),
    /// The function has no non-trivial bi-decomposition for this
    /// operator.
    NotDecomposable,
    /// The budget expired before an answer.
    Timeout,
}

/// Runs the LJH heuristic on the oracle's core, charging every SAT
/// call to `meter` (a timeout is reported when any of its budgets —
/// wall or work — runs out).
///
/// `candidates[i][j]` (from [`crate::oracle::sim_filter_pairs`])
/// pre-filters seed pairs; pass `None` to try all pairs.
pub fn decompose(
    oracle: &mut PartitionOracle,
    candidates: Option<&[Vec<bool>]>,
    meter: &mut EffortMeter,
) -> LjhOutcome {
    let n = oracle.core().n;
    if n < 2 {
        return LjhOutcome::NotDecomposable;
    }
    // 1. Seed search.
    let mut seed = None;
    'seeds: for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if let Some(c) = candidates {
                if !c[i][j] {
                    continue;
                }
            }
            match oracle.check_seed(i, j, meter) {
                Some(true) => {
                    seed = Some((i, j));
                    break 'seeds;
                }
                Some(false) => {}
                None => return LjhOutcome::Timeout,
            }
        }
    }
    let Some((si, sj)) = seed else {
        return LjhOutcome::NotDecomposable;
    };

    // 2. Greedy growth out of XC.
    let mut classes = vec![VarClass::C; n];
    classes[si] = VarClass::A;
    classes[sj] = VarClass::B;
    let mut num_a = 1usize;
    let mut num_b = 1usize;
    for v in 0..n {
        if classes[v] != VarClass::C {
            continue;
        }
        // Try the smaller block first (quality mode prefers balance),
        // fall back to the other, else leave shared.
        let order = if num_a <= num_b {
            [VarClass::A, VarClass::B]
        } else {
            [VarClass::B, VarClass::A]
        };
        for target in order {
            classes[v] = target;
            let p = VarPartition::new(classes.clone());
            match oracle.check(&p, meter) {
                Some(true) => {
                    if target == VarClass::A {
                        num_a += 1;
                    } else {
                        num_b += 1;
                    }
                    break;
                }
                Some(false) => {
                    classes[v] = VarClass::C;
                }
                None => return LjhOutcome::Timeout,
            }
        }
    }
    LjhOutcome::Partition(VarPartition::new(classes))
}
