//! The *core formula* of the paper's formulations and the incremental
//! SAT oracle built on it.
//!
//! For a completely specified function `f` (an AIG cone) and operator
//! `<OP>`, [`CoreFormula::build`] constructs, as one AIG:
//!
//! * OR (formulation (2)):
//!   `f(X) ∧ ¬f(X') ∧ ∧ᵢ((xᵢ≡x'ᵢ)∨αᵢ) ∧ ¬f(X'') ∧ ∧ᵢ((xᵢ≡x''ᵢ)∨βᵢ)`
//! * AND: the OR core of `¬f` (duality, Section IV-B);
//! * XOR: the four-copy rectangle-parity core
//!   `(f(X)⊕f(X')⊕f(X'')⊕f(X''')) ∧ equalities`, with `X'''` tied to
//!   `X''` modulo `α` and to `X'` modulo `β`.
//!
//! An assignment of the `α`/`β` control inputs encodes a variable
//! partition (`(1,0)→XA`, `(0,1)→XB`, `(0,0)→XC`); the partition yields
//! a valid bi-decomposition iff the core is **unsatisfiable** under it
//! (Proposition 1 and its AND/XOR analogues).
//!
//! [`PartitionOracle`] Tseitin-encodes the core once into an
//! incremental SAT solver and answers per-partition queries through
//! assumptions — the engine behind the LJH baseline, seed-pair search
//! and decomposability checks. Every query runs under an
//! [`EffortMeter`]: the oracle derives the call's deadline and
//! conflict budget from it and charges the work the call spent, so
//! truncation under a [`Work`](crate::spec::Budget::Work) budget is
//! deterministic. [`sim_filter_pairs`] is the 64-bit
//! random-simulation pre-filter that discards seed pairs with a
//! simulated counterexample before any SAT call.

use step_aig::{Aig, AigLit};
use step_cnf::{tseitin::AigCnf, Cnf, Lit};
use step_sat::{LearntExport, SolveResult, Solver};

use crate::effort::EffortMeter;
use crate::partition::{VarClass, VarPartition};
use crate::spec::{Budget, GateOp};

/// Cap on clauses one oracle donates to the clause bank.
pub const BANK_MAX_CLAUSES: usize = 512;
/// Cap on variable activities carried in one donation.
pub const BANK_MAX_ACTIVITIES: usize = 256;
/// Per-clause conflict budget when vetting a near-twin donation
/// ([`PartitionOracle::import_vetted`]). A clause the recipient's unit
/// propagation (plus a few conflicts) cannot refute the negation of is
/// discarded, never trusted.
const VET_CONFLICTS: u64 = 8;

/// The paper's core formula as an AIG with designated control inputs.
#[derive(Clone, Debug)]
pub struct CoreFormula {
    /// The formula graph.
    pub aig: Aig,
    /// The core: satisfiable under `(α,β)` iff that partition fails.
    pub root: AigLit,
    /// Support size of the decomposed function.
    pub n: usize,
    /// The operator this core tests.
    pub op: GateOp,
    /// Primary-input indices of the `X` copy.
    pub x: Vec<usize>,
    /// Primary-input indices of the `X'` copy (α-relaxed).
    pub xp: Vec<usize>,
    /// Primary-input indices of the `X''` copy (β-relaxed).
    pub xpp: Vec<usize>,
    /// Primary-input indices of the `X'''` copy (XOR only; empty
    /// otherwise).
    pub xppp: Vec<usize>,
    /// Primary-input indices of the `α` controls.
    pub alpha: Vec<usize>,
    /// Primary-input indices of the `β` controls.
    pub beta: Vec<usize>,
}

impl CoreFormula {
    /// Builds the core for `root` of `cone` under `op`.
    ///
    /// `cone` must be a combinational AIG whose inputs are exactly the
    /// support of `root` (use [`step_aig::Aig::cone`]).
    pub fn build(cone: &Aig, root: AigLit, op: GateOp) -> Self {
        let n = cone.num_inputs();
        let mut aig = Aig::new();
        let add_block = |aig: &mut Aig, tag: &str| -> Vec<usize> {
            (0..n)
                .map(|i| {
                    aig.add_input(format!("{tag}{i}"));
                    aig.num_inputs() - 1
                })
                .collect()
        };
        let x = add_block(&mut aig, "x");
        let xp = add_block(&mut aig, "xp");
        let xpp = add_block(&mut aig, "xpp");
        let xppp = if op == GateOp::Xor {
            add_block(&mut aig, "xppp")
        } else {
            Vec::new()
        };
        let alpha = add_block(&mut aig, "a");
        let beta = add_block(&mut aig, "b");

        let import_copy = |aig: &mut Aig, block: &[usize]| -> AigLit {
            let mut map = std::collections::HashMap::new();
            for i in 0..n {
                map.insert(cone.input_node(i), aig.input(block[i]));
            }
            aig.import(cone, root, &mut map)
        };
        let f1 = import_copy(&mut aig, &x);
        let f2 = import_copy(&mut aig, &xp);
        let f3 = import_copy(&mut aig, &xpp);

        let body = match op {
            GateOp::Or => {
                let t = aig.and(f1, !f2);
                aig.and(t, !f3)
            }
            GateOp::And => {
                // OR core of ¬f.
                let t = aig.and(!f1, f2);
                aig.and(t, f3)
            }
            GateOp::Xor => {
                let f4 = import_copy(&mut aig, &xppp);
                let t = aig.xor(f1, f2);
                let u = aig.xor(f3, f4);
                aig.xor(t, u)
            }
        };

        let mut eqs = Vec::with_capacity(2 * n + 2 * xppp.len());
        for i in 0..n {
            let xi = aig.input(x[i]);
            let xpi = aig.input(xp[i]);
            let xppi = aig.input(xpp[i]);
            let ai = aig.input(alpha[i]);
            let bi = aig.input(beta[i]);
            let e1 = aig.xnor(xi, xpi);
            eqs.push(aig.or(e1, ai));
            let e2 = aig.xnor(xi, xppi);
            eqs.push(aig.or(e2, bi));
            if op == GateOp::Xor {
                let x3 = aig.input(xppp[i]);
                let e3 = aig.xnor(x3, xppi);
                eqs.push(aig.or(e3, ai));
                let e4 = aig.xnor(x3, xpi);
                eqs.push(aig.or(e4, bi));
            }
        }
        let eq_all = aig.and_many(&eqs);
        let core = aig.and(body, eq_all);

        CoreFormula {
            aig,
            root: core,
            n,
            op,
            x,
            xp,
            xpp,
            xppp,
            alpha,
            beta,
        }
    }

    /// All universal (`Y`) inputs: the circuit copies.
    pub fn y_pis(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(4 * self.n);
        v.extend_from_slice(&self.x);
        v.extend_from_slice(&self.xp);
        v.extend_from_slice(&self.xpp);
        v.extend_from_slice(&self.xppp);
        v
    }

    /// All existential inputs: `α` then `β`.
    pub fn e_pis(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(2 * self.n);
        v.extend_from_slice(&self.alpha);
        v.extend_from_slice(&self.beta);
        v
    }
}

/// Incremental SAT oracle answering "is partition `p` a valid
/// bi-decomposition partition?" through assumptions on the `α`/`β`
/// literals of one persistent CNF.
pub struct PartitionOracle {
    core: CoreFormula,
    solver: Solver,
    alpha_lits: Vec<Lit>,
    beta_lits: Vec<Lit>,
    /// SAT calls made so far (statistics for the evaluation tables).
    pub sat_calls: u64,
}

impl PartitionOracle {
    /// Encodes `core` into a fresh incremental solver with the default
    /// kernel knobs (Luby restarts, no preprocessing).
    pub fn new(core: CoreFormula) -> Self {
        Self::with_options(core, step_sat::RestartPolicy::default(), false)
    }

    /// Encodes `core` into a fresh incremental solver with the given
    /// restart policy and preprocessing flag.
    pub fn with_options(
        core: CoreFormula,
        restarts: step_sat::RestartPolicy,
        preprocess: bool,
    ) -> Self {
        let mut cnf = Cnf::new();
        let mut enc = AigCnf::new();
        let alpha_lits: Vec<Lit> = core
            .alpha
            .iter()
            .map(|&pi| {
                let l = Lit::pos(cnf.new_var());
                enc.bind(core.aig.input_node(pi), l);
                l
            })
            .collect();
        let beta_lits: Vec<Lit> = core
            .beta
            .iter()
            .map(|&pi| {
                let l = Lit::pos(cnf.new_var());
                enc.bind(core.aig.input_node(pi), l);
                l
            })
            .collect();
        let r = enc.encode(&mut cnf, &core.aig, core.root);
        cnf.add_unit(r);
        let mut solver = Solver::new();
        solver.set_restart_policy(restarts);
        solver.set_preprocess(preprocess);
        solver.add_cnf(&cnf);
        PartitionOracle {
            core,
            solver,
            alpha_lits,
            beta_lits,
            sat_calls: 0,
        }
    }

    /// The underlying core formula.
    pub fn core(&self) -> &CoreFormula {
        &self.core
    }

    /// Checks a full partition. `Some(true)` = valid bi-decomposition
    /// partition (core UNSAT), `Some(false)` = invalid, `None` = budget
    /// expired.
    pub fn check(&mut self, p: &VarPartition, meter: &mut EffortMeter) -> Option<bool> {
        debug_assert_eq!(p.len(), self.core.n);
        let alpha: Vec<bool> = p.classes().iter().map(|&c| c == VarClass::A).collect();
        let beta: Vec<bool> = p.classes().iter().map(|&c| c == VarClass::B).collect();
        self.check_raw(&alpha, &beta, meter)
    }

    /// Checks raw `α`/`β` vectors (a variable may be relaxed in both
    /// copies). The call runs under `meter`'s limits and charges the
    /// effort it spent; an exhausted meter short-circuits to `None`
    /// without touching the solver.
    pub fn check_raw(
        &mut self,
        alpha: &[bool],
        beta: &[bool],
        meter: &mut EffortMeter,
    ) -> Option<bool> {
        if meter.exhausted() {
            return None;
        }
        let assumptions: Vec<Lit> = self
            .alpha_lits
            .iter()
            .zip(alpha)
            .map(|(&l, &v)| l.xor_sign(!v))
            .chain(
                self.beta_lits
                    .iter()
                    .zip(beta)
                    .map(|(&l, &v)| l.xor_sign(!v)),
            )
            .collect();
        let limits = meter.call_limits(Budget::Unlimited);
        self.solver.set_deadline(limits.deadline);
        self.solver.set_effort_budget(limits.conflicts);
        self.sat_calls += 1;
        let before = self.solver.effort();
        let result = self.solver.solve_with_assumptions(&assumptions);
        meter.charge(self.solver.effort().since(before));
        match result {
            SolveResult::Unsat => Some(true),
            SolveResult::Sat => Some(false),
            SolveResult::Unknown => None,
        }
    }

    /// Checks the seed partition `XA = {i}`, `XB = {j}`, rest shared.
    pub fn check_seed(&mut self, i: usize, j: usize, meter: &mut EffortMeter) -> Option<bool> {
        let mut alpha = vec![false; self.core.n];
        let mut beta = vec![false; self.core.n];
        alpha[i] = true;
        beta[j] = true;
        self.check_raw(&alpha, &beta, meter)
    }

    /// Snapshots this oracle's pinned (tier-core) learnt clauses and
    /// hottest variable activities for donation to the clause bank.
    ///
    /// Because the oracle CNF is a pure function of the *canonical*
    /// cone and the operator — `α` variables first, then `β`, then
    /// Tseitin auxiliaries in deterministic AIG order — the snapshot is
    /// already expressed in canonical-cone variable space: any oracle
    /// built for the same `(fingerprint, op)` has the identical CNF
    /// var-for-var, and the export needs no further mapping.
    pub fn export_learnts(&self) -> LearntExport {
        self.solver
            .export_learnts(BANK_MAX_CLAUSES, BANK_MAX_ACTIVITIES)
    }

    /// Seeds this oracle verbatim from a donor built over the
    /// *identical* CNF (same canonical fingerprint, same operator).
    ///
    /// Learnt clauses are implied by the donor's clause database alone
    /// (assumption literals persist in clauses learnt under them), so
    /// replaying them into an identical database adds only implied
    /// clauses: verdicts and partitions cannot change, only the work
    /// needed to reach them. Returns the number of clauses added.
    pub fn import_learnts(&mut self, export: &LearntExport) -> u64 {
        self.solver.import_learnts(export)
    }

    /// Seeds this oracle from a *near-twin* donor (same operator and
    /// support size, different fingerprint), vetting every clause.
    ///
    /// The donor's CNF is not identical, so its clauses carry no
    /// implication guarantee here. Each candidate `C` is probed by
    /// solving under the assumptions `¬C` with a tiny conflict budget:
    /// UNSAT proves the recipient's own clauses imply `C`, so adding it
    /// is answer-preserving; SAT or an exhausted probe discards it.
    /// Probes run under `meter` and charge the effort they spend; they
    /// are bookkeeping, not partition queries, so [`sat_calls`] is not
    /// incremented. Returns the number of clauses that survived vetting
    /// and were added.
    ///
    /// [`sat_calls`]: PartitionOracle::sat_calls
    pub fn import_vetted(&mut self, export: &LearntExport, meter: &mut EffortMeter) -> u64 {
        let nvars = self.solver.num_vars();
        let mut kept = LearntExport::default();
        for clause in &export.clauses {
            if meter.exhausted() {
                break;
            }
            if clause.iter().any(|l| l.var().index() >= nvars) {
                continue;
            }
            let limits = meter.call_limits(Budget::Work(VET_CONFLICTS));
            self.solver.set_deadline(limits.deadline);
            self.solver.set_effort_budget(limits.conflicts);
            let before = self.solver.effort();
            let negated: Vec<Lit> = clause.iter().map(|&l| !l).collect();
            let result = self.solver.solve_with_assumptions(&negated);
            meter.charge(self.solver.effort().since(before));
            if result == SolveResult::Unsat {
                kept.clauses.push(clause.clone());
            }
        }
        // Activity hints only steer branching order; merging them is
        // heuristically useful and needs no vetting.
        kept.activities = export.activities.clone();
        self.solver.import_learnts(&kept)
    }
}

/// 64-bit random-simulation pre-filter: returns an `n×n` matrix where
/// `m[i][j] == false` means the seed pair `(i ∈ XA, j ∈ XB)` was
/// refuted by a simulated counterexample (the pair cannot seed a valid
/// partition). Surviving pairs still need the SAT oracle.
pub fn sim_filter_pairs(
    cone: &Aig,
    root: AigLit,
    op: GateOp,
    rounds: usize,
    seed: u64,
) -> Vec<Vec<bool>> {
    let n = cone.num_inputs();
    let mut alive = vec![vec![true; n]; n];
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..rounds {
        let base: Vec<u64> = (0..n).map(|_| rnd()).collect();
        let base_words = cone.sim64(&base);
        let f0 = cone.sim_word(root, &base_words);
        // f with input i flipped, for every i.
        let mut flips = Vec::with_capacity(n);
        for i in 0..n {
            let mut w = base.clone();
            w[i] = !w[i];
            let words = cone.sim64(&w);
            flips.push(cone.sim_word(root, &words));
        }
        match op {
            GateOp::Or => {
                // Kill (i,j) when ∃ pattern: f=1 ∧ f^i=0 ∧ f^j=0.
                for i in 0..n {
                    let wi = f0 & !flips[i];
                    if wi == 0 {
                        continue;
                    }
                    for j in 0..n {
                        if i != j && alive[i][j] && wi & !flips[j] != 0 {
                            alive[i][j] = false;
                        }
                    }
                }
            }
            GateOp::And => {
                // Dual: f=0 ∧ f^i=1 ∧ f^j=1.
                for i in 0..n {
                    let wi = !f0 & flips[i];
                    if wi == 0 {
                        continue;
                    }
                    for j in 0..n {
                        if i != j && alive[i][j] && wi & flips[j] != 0 {
                            alive[i][j] = false;
                        }
                    }
                }
            }
            GateOp::Xor => {
                // Rectangle parity: f ⊕ f^i ⊕ f^j ⊕ f^{ij} = 1 kills.
                for i in 0..n {
                    for j in i + 1..n {
                        if !alive[i][j] && !alive[j][i] {
                            continue;
                        }
                        let mut w = base.clone();
                        w[i] = !w[i];
                        w[j] = !w[j];
                        let words = cone.sim64(&w);
                        let fij = cone.sim_word(root, &words);
                        if (f0 ^ flips[i] ^ flips[j] ^ fij) != 0 {
                            alive[i][j] = false;
                            alive[j][i] = false;
                        }
                    }
                }
            }
        }
    }
    for i in 0..n {
        alive[i][i] = false;
    }
    alive
}
