//! QDIMACS export of the paper's QBF models.
//!
//! Section IV-A-5 of the paper observes that putting formulation (4)
//! into CNF requires auxiliary Tseitin variables, which — existentially
//! quantified innermost — turn the 2QBF into a **3QCNF**
//! `∃α,β ∀X,X',X''(,X''') ∃aux . M`. This module emits exactly that
//! prenex form in QDIMACS, so the models can be handed to any
//! standalone QBF solver (the paper instead solves the negation (9)
//! with the CEGAR engine, as `step-qbf` does natively).
//!
//! The matrix `M` contains:
//!
//! * the Tseitin definition of the core AIG with the unit `¬core`
//!   (the `¬[…]` of formulation (4));
//! * the `fN` (non-triviality) clauses;
//! * the `fT` cardinality clauses for the requested [`Target`];
//! * the symmetry-breaking constraint when enabled.

use step_cnf::card::{assert_count_dominates, assert_diff_le, at_least_one, Totalizer};
use step_cnf::{tseitin::AigCnf, write_qdimacs, Cnf, Lit, Quant};

use crate::oracle::CoreFormula;
use crate::qbf_model::Target;

/// Options for the export (mirrors the solving options).
#[derive(Clone, Copy, Debug)]
pub struct ExportOptions {
    /// Include the `|XA| ≥ |XB|` symmetry constraint.
    pub symmetry_breaking: bool,
    /// Allow `(α,β) = (1,1)` assignments.
    pub allow_both: bool,
}

impl Default for ExportOptions {
    fn default() -> Self {
        ExportOptions {
            symmetry_breaking: true,
            allow_both: false,
        }
    }
}

/// The structured export: the QDIMACS text plus the variable layout
/// needed to interpret certificates from an external solver.
#[derive(Clone, Debug)]
pub struct QdimacsModel {
    /// The QDIMACS text (3 quantifier blocks `e`/`a`/`e`).
    pub text: String,
    /// CNF variable index of `αᵢ` (0-based), per support variable.
    pub alpha_vars: Vec<usize>,
    /// CNF variable index of `βᵢ` (0-based), per support variable.
    pub beta_vars: Vec<usize>,
    /// CNF variable indices of the universal block (circuit copies).
    pub universal_vars: Vec<usize>,
}

/// Emits formulation (4) + `fN` + `fT` for `core` as a 3QCNF QDIMACS
/// file.
pub fn export_qdimacs(core: &CoreFormula, target: Target, opts: &ExportOptions) -> QdimacsModel {
    let n = core.n;
    let mut cnf = Cnf::new();
    let mut enc = AigCnf::new();

    // Outermost ∃ block: α then β.
    let alpha_lits: Vec<Lit> = core
        .alpha
        .iter()
        .map(|&pi| {
            let l = Lit::pos(cnf.new_var());
            enc.bind(core.aig.input_node(pi), l);
            l
        })
        .collect();
    let beta_lits: Vec<Lit> = core
        .beta
        .iter()
        .map(|&pi| {
            let l = Lit::pos(cnf.new_var());
            enc.bind(core.aig.input_node(pi), l);
            l
        })
        .collect();

    // ∀ block: the circuit copies.
    let mut universal_vars = Vec::with_capacity(4 * n);
    for &pi in core
        .x
        .iter()
        .chain(&core.xp)
        .chain(&core.xpp)
        .chain(&core.xppp)
    {
        let v = cnf.new_var();
        enc.bind(core.aig.input_node(pi), Lit::pos(v));
        universal_vars.push(v.index());
    }

    // Innermost ∃ block: Tseitin auxiliaries (everything allocated from
    // here on).
    let aux_start = cnf.num_vars();
    let root = enc.encode(&mut cnf, &core.aig, core.root);
    cnf.add_unit(!root); // ¬core must hold for all universal values

    // fN: non-trivial partition.
    at_least_one(&mut cnf, &alpha_lits);
    at_least_one(&mut cnf, &beta_lits);
    if !opts.allow_both {
        for i in 0..n {
            cnf.add_clause([!alpha_lits[i], !beta_lits[i]]);
        }
    }
    // Product literals (these auxiliaries also sit in the inner block).
    let define_and = |cnf: &mut Cnf, a: Lit, b: Lit| -> Lit {
        let t = Lit::pos(cnf.new_var());
        cnf.add_clause([!t, a]);
        cnf.add_clause([!t, b]);
        cnf.add_clause([t, !a, !b]);
        t
    };
    let shared: Vec<Lit> = (0..n)
        .map(|i| define_and(&mut cnf, !alpha_lits[i], !beta_lits[i]))
        .collect();
    let in_a: Vec<Lit> = (0..n)
        .map(|i| define_and(&mut cnf, alpha_lits[i], !beta_lits[i]))
        .collect();
    let in_b: Vec<Lit> = (0..n)
        .map(|i| define_and(&mut cnf, !alpha_lits[i], beta_lits[i]))
        .collect();
    match target {
        Target::Any => {
            if opts.symmetry_breaking {
                let ta = Totalizer::new(&mut cnf, &in_a);
                let tb = Totalizer::new(&mut cnf, &in_b);
                assert_count_dominates(&mut cnf, &ta, &tb);
            }
        }
        Target::DisjointAtMost(k) => {
            let tc = Totalizer::new(&mut cnf, &shared);
            tc.assert_le(&mut cnf, k);
            if opts.symmetry_breaking {
                let ta = Totalizer::new(&mut cnf, &in_a);
                let tb = Totalizer::new(&mut cnf, &in_b);
                assert_count_dominates(&mut cnf, &ta, &tb);
            }
        }
        Target::BalancedWindow(k) => {
            let ta = Totalizer::new(&mut cnf, &in_a);
            let tb = Totalizer::new(&mut cnf, &in_b);
            assert_count_dominates(&mut cnf, &ta, &tb);
            assert_diff_le(&mut cnf, &ta, &tb, k);
        }
        Target::CombinedAtMost(k) => {
            let ta = Totalizer::new(&mut cnf, &in_a);
            let tb = Totalizer::new(&mut cnf, &in_b);
            assert_count_dominates(&mut cnf, &ta, &tb);
            let mut plus = shared.clone();
            plus.extend_from_slice(&in_a);
            let tplus = Totalizer::new(&mut cnf, &plus);
            assert_diff_le(&mut cnf, &tplus, &tb, k);
        }
        Target::Weighted { wd, wb, k } => {
            let ta = Totalizer::new(&mut cnf, &in_a);
            let tb = Totalizer::new(&mut cnf, &in_b);
            assert_count_dominates(&mut cnf, &ta, &tb);
            let mut plus = Vec::new();
            for _ in 0..wd {
                plus.extend_from_slice(&shared);
            }
            for _ in 0..wb {
                plus.extend_from_slice(&in_a);
            }
            let mut minus = Vec::new();
            for _ in 0..wb {
                minus.extend_from_slice(&in_b);
            }
            let tplus = Totalizer::new(&mut cnf, &plus);
            let tminus = Totalizer::new(&mut cnf, &minus);
            assert_diff_le(&mut cnf, &tplus, &tminus, k);
        }
    }

    let exist_outer: Vec<usize> = alpha_lits
        .iter()
        .chain(&beta_lits)
        .map(|l| l.var().index())
        .collect();
    let exist_inner: Vec<usize> = (aux_start..cnf.num_vars()).collect();
    let prefix = vec![
        (Quant::Exists, exist_outer),
        (Quant::Forall, universal_vars.clone()),
        (Quant::Exists, exist_inner),
    ];
    QdimacsModel {
        text: write_qdimacs(&prefix, &cnf),
        alpha_vars: alpha_lits.iter().map(|l| l.var().index()).collect(),
        beta_vars: beta_lits.iter().map(|l| l.var().index()).collect(),
        universal_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{VarClass, VarPartition};
    use crate::qbf_model::{solve_partition, ModelOptions, QbfModelOutcome};
    use step_aig::Aig;
    use step_cnf::parse_qdimacs;
    use step_sat::{SolveResult, Solver};

    fn or_of_ands() -> (Aig, step_aig::AigLit) {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let cd = aig.and(c, d);
        let f = aig.or(ab, cd);
        (aig, f)
    }

    #[test]
    fn export_has_three_blocks() {
        let (aig, f) = or_of_ands();
        let core = CoreFormula::build(&aig, f, crate::GateOp::Or);
        let model = export_qdimacs(&core, Target::DisjointAtMost(0), &ExportOptions::default());
        let parsed = parse_qdimacs(&model.text).expect("well-formed qdimacs");
        assert_eq!(parsed.prefix.len(), 3);
        assert_eq!(parsed.prefix[0].0, Quant::Exists);
        assert_eq!(parsed.prefix[1].0, Quant::Forall);
        assert_eq!(parsed.prefix[2].0, Quant::Exists);
        assert_eq!(parsed.prefix[0].1.len(), 8, "α and β for 4 inputs");
        assert_eq!(parsed.prefix[1].1.len(), 12, "three 4-input copies");
        assert!(!parsed.matrix.clauses().is_empty());
    }

    /// For fixed (α, β) and fixed universal values, the matrix is
    /// satisfiable (over the auxiliaries) iff `¬core ∧ fN ∧ fT` holds
    /// semantically — checked against direct AIG evaluation.
    #[test]
    fn matrix_semantics_match_core_evaluation() {
        let (aig, f) = or_of_ands();
        let core = CoreFormula::build(&aig, f, crate::GateOp::Or);
        let target = Target::DisjointAtMost(0);
        let opts = ExportOptions {
            symmetry_breaking: false,
            allow_both: false,
        };
        let model = export_qdimacs(&core, target, &opts);
        let parsed = parse_qdimacs(&model.text).expect("parse");

        // Valid partition: {a,b} | {c,d}; an invalid one: {a,c} | {b,d}.
        let good = VarPartition::from_sets(4, &[0, 1], &[2, 3]);
        let bad = VarPartition::from_sets(4, &[0, 2], &[1, 3]);
        for (p, label) in [(&good, "good"), (&bad, "bad")] {
            let alpha: Vec<bool> = p.classes().iter().map(|&c| c == VarClass::A).collect();
            let beta: Vec<bool> = p.classes().iter().map(|&c| c == VarClass::B).collect();
            // Probe a handful of universal assignments.
            let mut failures = 0usize;
            for pattern in 0..64u32 {
                let mut assumptions = Vec::new();
                for i in 0..4 {
                    assumptions.push(Lit::new(step_cnf::Var::new(model.alpha_vars[i]), !alpha[i]));
                    assumptions.push(Lit::new(step_cnf::Var::new(model.beta_vars[i]), !beta[i]));
                }
                let mut uvals = Vec::new();
                for (k, &uv) in model.universal_vars.iter().enumerate() {
                    let val = pattern >> (k % 12) & 1 == 1 || (pattern / 13) & (k as u32) == 3;
                    uvals.push(val);
                    assumptions.push(Lit::new(step_cnf::Var::new(uv), !val));
                }
                let mut solver = Solver::new();
                solver.add_cnf(&parsed.matrix);
                let got = solver.solve_with_assumptions(&assumptions);
                // Semantic ground truth: core must be FALSE under this
                // assignment (and fN/fT hold for the partition).
                let mut full = vec![false; core.aig.num_inputs()];
                for (k, &pi) in core.x.iter().chain(&core.xp).chain(&core.xpp).enumerate() {
                    full[pi] = uvals[k];
                }
                for i in 0..4 {
                    full[core.alpha[i]] = alpha[i];
                    full[core.beta[i]] = beta[i];
                }
                let core_val = core.aig.eval_lit(core.root, &full);
                let want_sat = !core_val; // fN, fT hold for both probes? fT k=0: only `good` is disjoint.
                let ft_holds = p.num_shared() == 0;
                let expect = want_sat && ft_holds;
                match (got, expect) {
                    (SolveResult::Sat, true) | (SolveResult::Unsat, false) => {}
                    _ => failures += 1,
                }
            }
            assert_eq!(failures, 0, "{label}: matrix/semantics mismatch");
        }
    }

    /// The exported model and the CEGAR solver must agree on
    /// feasibility per target (checked through the solver since we
    /// cannot run an external 3QBF tool here).
    #[test]
    fn export_agrees_with_cegar_feasibility() {
        let (aig, f) = or_of_ands();
        let core = CoreFormula::build(&aig, f, crate::GateOp::Or);
        for (target, feasible) in [
            (Target::DisjointAtMost(0), true),
            (Target::BalancedWindow(0), true),
            (Target::Weighted { wd: 2, wb: 1, k: 0 }, true),
        ] {
            let model = export_qdimacs(&core, target, &ExportOptions::default());
            assert!(parse_qdimacs(&model.text).is_ok());
            let mut meter = crate::effort::EffortMeter::unlimited();
            let (outcome, _) = solve_partition(&core, target, &ModelOptions::default(), &mut meter);
            assert_eq!(
                matches!(outcome, QbfModelOutcome::Partition(_)),
                feasible,
                "{target:?}"
            );
        }
    }

    #[test]
    fn weighted_target_prefers_disjointness_when_heavy() {
        // f = s∧(a∨b): |XC| ≥ 1 forced; weighted optimum with heavy wd
        // must still find the |XC| = 1 partition.
        let mut aig = Aig::new();
        let s = aig.add_input("s");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let t = aig.or(a, b);
        let f = aig.and(s, t);
        let core = CoreFormula::build(&aig, f, crate::GateOp::Or);
        let mut meter = crate::effort::EffortMeter::unlimited();
        let (outcome, _) = solve_partition(
            &core,
            Target::Weighted { wd: 3, wb: 1, k: 3 },
            &ModelOptions::default(),
            &mut meter,
        );
        match outcome {
            QbfModelOutcome::Partition(p) => {
                assert_eq!(p.num_shared(), 1, "{p}");
                assert_eq!(p.k_balance(), 0, "{p}");
            }
            other => panic!("{other:?}"),
        }
        // k = 2 is infeasible: 3·1 + 1·0 = 3 > 2.
        let (outcome, _) = solve_partition(
            &core,
            Target::Weighted { wd: 3, wb: 1, k: 2 },
            &ModelOptions::default(),
            &mut meter,
        );
        assert_eq!(outcome, QbfModelOutcome::NoPartition);
    }
}
