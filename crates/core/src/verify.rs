//! Independent verification of computed decompositions.
//!
//! Every decomposition can be checked on two axes:
//!
//! * **support**: `fA` may only depend on `XA ∪ XC` and `fB` on
//!   `XB ∪ XC` (structural check on the AIG);
//! * **function**: `f ≡ fA <op> fB`, checked by a SAT call on the
//!   miter (and optionally cross-checked canonically with the BDD
//!   package in tests).

use std::error::Error;
use std::fmt;
use std::time::Instant;

use step_cnf::tseitin::encode_standalone;
use step_sat::{SolveResult, Solver};

use crate::extract::Decomposition;
use crate::partition::VarClass;

/// Why a decomposition failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// `fA` (side `'A'`) or `fB` (side `'B'`) depends on a variable
    /// outside its block.
    SupportViolation {
        /// `'A'` or `'B'`.
        side: char,
        /// The offending input index.
        input: usize,
    },
    /// `f` and `fA <op> fB` differ (a counterexample exists).
    NotEquivalent,
    /// The SAT check ran out of budget.
    Budget,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::SupportViolation { side, input } => {
                write!(
                    f,
                    "f{} depends on out-of-block input {}",
                    side.to_lowercase(),
                    input
                )
            }
            VerifyError::NotEquivalent => write!(f, "f differs from fA <op> fB"),
            VerifyError::Budget => write!(f, "verification budget expired"),
        }
    }
}

impl Error for VerifyError {}

/// Verifies a decomposition (support + SAT equivalence).
///
/// # Errors
///
/// See [`VerifyError`].
pub fn verify(decomp: &Decomposition, deadline: Option<Instant>) -> Result<(), VerifyError> {
    let p = &decomp.partition;
    for &i in &decomp.aig.support(decomp.fa) {
        if p.class(i) == VarClass::B {
            return Err(VerifyError::SupportViolation {
                side: 'A',
                input: i,
            });
        }
    }
    for &i in &decomp.aig.support(decomp.fb) {
        if p.class(i) == VarClass::A {
            return Err(VerifyError::SupportViolation {
                side: 'B',
                input: i,
            });
        }
    }

    // Miter f ⊕ (fA <op> fB); UNSAT ⟺ equivalent.
    let mut scratch = decomp.aig.clone();
    let combined = match decomp.op {
        crate::spec::GateOp::Or => scratch.or(decomp.fa, decomp.fb),
        crate::spec::GateOp::And => scratch.and(decomp.fa, decomp.fb),
        crate::spec::GateOp::Xor => scratch.xor(decomp.fa, decomp.fb),
    };
    let miter = scratch.xor(decomp.f, combined);
    let (mut cnf, _inputs, root) = encode_standalone(&scratch, miter);
    cnf.add_unit(root);
    let mut solver = Solver::new();
    solver.set_deadline(deadline);
    solver.add_cnf(&cnf);
    match solver.solve() {
        SolveResult::Unsat => Ok(()),
        SolveResult::Sat => Err(VerifyError::NotEquivalent),
        SolveResult::Unknown => Err(VerifyError::Budget),
    }
}
