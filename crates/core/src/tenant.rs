//! Per-tenant work accounting: quotas, two-phase reservations and the
//! typed over-quota verdict the serve front-end turns into an error
//! frame.
//!
//! A [`TenantLedger`] tracks, per tenant, a conflict **quota** and two
//! counters against it: work **reserved** by admitted-but-unfinished
//! requests and work **spent** by finished ones. Admission is
//! two-phase, mirroring the [`WorkLedger`](crate::effort::WorkLedger)
//! shape:
//!
//! 1. [`reserve`](TenantLedger::reserve) the request's estimated
//!    charge up front — refused with a typed [`OverQuota`] when it
//!    does not fit;
//! 2. [`commit`](WorkReservation::commit) the actual effort when the
//!    request finishes (releasing the reservation), or
//!    [`rollback`](WorkReservation::rollback) on failure or
//!    cancellation. Dropping an unresolved reservation rolls back, so
//!    error paths cannot leak quota.
//!
//! The ledger is pure accounting: it decides *admission*, never
//! results — an admitted request runs under exactly the budgets the
//! client asked for, so a decomposition answered through the service
//! stays byte-identical to the same run in-process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A refused reservation: the typed payload of the serve front-end's
/// `over_quota` error frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverQuota {
    /// The tenant whose quota was insufficient.
    pub tenant: String,
    /// Conflicts the request tried to reserve.
    pub requested: u64,
    /// Conflicts still available under the tenant's quota.
    pub available: u64,
}

impl fmt::Display for OverQuota {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant {} over quota: requested {} conflicts, {} available",
            self.tenant, self.requested, self.available
        )
    }
}

#[derive(Debug, Default)]
struct Account {
    /// Explicit quota override (else the ledger default applies).
    quota: Option<u64>,
    reserved: u64,
    spent: u64,
}

/// The per-tenant quota ledger. Cheap to share (`Arc`); all methods
/// take `&self`.
#[derive(Debug)]
pub struct TenantLedger {
    default_quota: u64,
    accounts: Mutex<HashMap<Arc<str>, Account>>,
}

impl TenantLedger {
    /// A ledger granting every tenant `default_quota` conflicts unless
    /// overridden with [`set_quota`](TenantLedger::set_quota).
    pub fn new(default_quota: u64) -> Self {
        TenantLedger {
            default_quota,
            accounts: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides one tenant's quota.
    pub fn set_quota(&self, tenant: &str, quota: u64) {
        let mut accounts = self.accounts.lock().expect("tenant ledger lock");
        accounts.entry(Arc::from(tenant)).or_default().quota = Some(quota);
    }

    /// Conflicts still available to `tenant` (quota − spent − reserved).
    pub fn available(&self, tenant: &str) -> u64 {
        let accounts = self.accounts.lock().expect("tenant ledger lock");
        match accounts.get(tenant) {
            Some(a) => a
                .quota
                .unwrap_or(self.default_quota)
                .saturating_sub(a.spent)
                .saturating_sub(a.reserved),
            None => self.default_quota,
        }
    }

    /// Conflicts `tenant` has committed as spent so far.
    pub fn spent(&self, tenant: &str) -> u64 {
        let accounts = self.accounts.lock().expect("tenant ledger lock");
        accounts.get(tenant).map_or(0, |a| a.spent)
    }

    /// Phase one of admission: reserves `amount` conflicts against
    /// `tenant`'s quota, to be resolved by
    /// [`commit`](WorkReservation::commit) or
    /// [`rollback`](WorkReservation::rollback).
    ///
    /// # Errors
    ///
    /// [`OverQuota`] when the amount exceeds what remains under the
    /// quota; the ledger is unchanged.
    pub fn reserve(
        self: &Arc<Self>,
        tenant: &str,
        amount: u64,
    ) -> Result<WorkReservation, OverQuota> {
        let key: Arc<str> = Arc::from(tenant);
        let mut accounts = self.accounts.lock().expect("tenant ledger lock");
        let account = accounts.entry(Arc::clone(&key)).or_default();
        let available = account
            .quota
            .unwrap_or(self.default_quota)
            .saturating_sub(account.spent)
            .saturating_sub(account.reserved);
        if amount > available {
            return Err(OverQuota {
                tenant: tenant.to_owned(),
                requested: amount,
                available,
            });
        }
        account.reserved += amount;
        Ok(WorkReservation {
            ledger: Arc::clone(self),
            tenant: key,
            amount,
            resolved: false,
        })
    }

    fn resolve(&self, tenant: &Arc<str>, amount: u64, spent: Option<u64>) {
        let mut accounts = self.accounts.lock().expect("tenant ledger lock");
        if let Some(account) = accounts.get_mut(tenant) {
            account.reserved = account.reserved.saturating_sub(amount);
            if let Some(spent) = spent {
                account.spent = account.spent.saturating_add(spent);
            }
        }
    }
}

/// An outstanding quota reservation (phase one of two-phase
/// admission). Resolve it with [`commit`](WorkReservation::commit) or
/// [`rollback`](WorkReservation::rollback); dropping an unresolved
/// reservation rolls back.
#[derive(Debug)]
pub struct WorkReservation {
    ledger: Arc<TenantLedger>,
    tenant: Arc<str>,
    amount: u64,
    resolved: bool,
}

impl WorkReservation {
    /// The reserved amount.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// Phase two, success: release the reservation and charge the
    /// request's *actual* spend against the quota.
    pub fn commit(mut self, actual: u64) {
        self.resolved = true;
        self.ledger.resolve(&self.tenant, self.amount, Some(actual));
    }

    /// Phase two, failure: release the reservation, charging nothing.
    pub fn rollback(mut self) {
        self.resolved = true;
        self.ledger.resolve(&self.tenant, self.amount, None);
    }
}

impl Drop for WorkReservation {
    fn drop(&mut self) {
        if !self.resolved {
            self.ledger.resolve(&self.tenant, self.amount, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_commit_charges_actual_spend() {
        let ledger = Arc::new(TenantLedger::new(100));
        let r = ledger.reserve("acme", 60).unwrap();
        assert_eq!(ledger.available("acme"), 40);
        r.commit(35);
        assert_eq!(ledger.spent("acme"), 35);
        assert_eq!(ledger.available("acme"), 65);
    }

    #[test]
    fn over_quota_is_typed_and_leaves_ledger_unchanged() {
        let ledger = Arc::new(TenantLedger::new(100));
        let _held = ledger.reserve("acme", 80).unwrap();
        let err = ledger.reserve("acme", 30).unwrap_err();
        assert_eq!(err.tenant, "acme");
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert_eq!(
            ledger.available("acme"),
            20,
            "failed reserve charges nothing"
        );
    }

    #[test]
    fn rollback_and_drop_release_the_reservation() {
        let ledger = Arc::new(TenantLedger::new(100));
        ledger.reserve("a", 70).unwrap().rollback();
        assert_eq!(ledger.available("a"), 100);
        drop(ledger.reserve("a", 70).unwrap());
        assert_eq!(ledger.available("a"), 100, "drop must not leak quota");
    }

    #[test]
    fn quotas_are_per_tenant_with_overrides() {
        let ledger = Arc::new(TenantLedger::new(50));
        ledger.set_quota("big", 1000);
        assert_eq!(ledger.available("big"), 1000);
        assert_eq!(ledger.available("small"), 50);
        assert!(ledger.reserve("small", 51).is_err());
        assert!(ledger.reserve("big", 51).is_ok());
    }
}
