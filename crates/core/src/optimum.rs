//! Optimum search over the target bound `k` (Section IV-A-6).
//!
//! Feasibility is monotone in `k` (a larger bound only weakens `fT`),
//! so the optimum is the smallest feasible `k`. The search maintains an
//! interval `[lo, hi]` where `hi` is the best *achieved* bound (from
//! the STEP-MG bootstrap or a previous probe) and `lo-1` is the largest
//! refuted bound, and picks probes according to the strategy:
//! **MI** probes `lo`, **MD** probes `hi−1`, **Bin** probes the middle,
//! and **MD→Bin→MI** follows the paper's best-for-disjointness
//! pipeline.

use crate::clause_bank::{ProbeLedger, ProbeVerdict};
use crate::effort::EffortMeter;
use crate::oracle::CoreFormula;
use crate::partition::VarPartition;
use crate::qbf_model::{solve_partition_with_refuter, ModelOptions, QbfModelOutcome, Target};
use crate::spec::SearchStrategy;
use step_qbf::CounterexampleRefuter;

/// Which metric the bound `k` constrains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// `k = |XC|` (equation (5)).
    Disjointness,
    /// `k = |XA| − |XB|` with `|XA| ≥ |XB|` (equation (6)).
    Balancedness,
    /// `k = |XC| + |XA| − |XB|` (equation (8)).
    Combined,
    /// `k = wd·|XC| + wb·(|XA| − |XB|)` — Definition 4 with arbitrary
    /// integer weights.
    Weighted {
        /// Weight `ϖD` of the disjointness count.
        wd: u32,
        /// Weight `ϖB` of the balance difference.
        wb: u32,
    },
}

impl Metric {
    /// The metric value of a (normalized) partition.
    pub fn k_of(self, p: &VarPartition) -> usize {
        let p = p.normalized();
        match self {
            Metric::Disjointness => p.k_disjoint(),
            Metric::Balancedness => p.k_balance(),
            Metric::Combined => p.k_combined(),
            Metric::Weighted { wd, wb } => {
                wd as usize * p.k_disjoint() + wb as usize * p.k_balance()
            }
        }
    }

    /// The loosest meaningful bound for support size `n` (any
    /// non-trivial partition satisfies it).
    pub fn k_max(self, n: usize) -> usize {
        match self {
            Metric::Weighted { wd, wb } => (wd as usize + wb as usize) * n.saturating_sub(2),
            _ => n.saturating_sub(2),
        }
    }

    fn target(self, k: usize) -> Target {
        match self {
            Metric::Disjointness => Target::DisjointAtMost(k),
            Metric::Balancedness => Target::BalancedWindow(k),
            Metric::Combined => Target::CombinedAtMost(k),
            Metric::Weighted { wd, wb } => Target::Weighted { wd, wb, k },
        }
    }
}

/// Result of the optimum search.
#[derive(Clone, Debug)]
pub struct OptimumResult {
    /// The best partition found (the bootstrap if nothing better was
    /// proven in budget; `None` only if no bootstrap was given and
    /// existence itself timed out or failed).
    pub partition: Option<VarPartition>,
    /// Whether optimality of `partition` was proved.
    pub proved_optimal: bool,
    /// QBF solves performed.
    pub qbf_calls: u32,
    /// QBF solves that timed out.
    pub timeouts: u32,
    /// A budget truncated the search before optimality was settled —
    /// either a probe timed out, or the meter ran dry between probes.
    /// (`timeouts == 0 && truncated` is possible: the budget can trip
    /// on the bootstrap's last SAT call, leaving nothing for QBF.)
    pub truncated: bool,
    /// Total CEGAR iterations across calls.
    pub cegar_iterations: u64,
}

/// Searches the optimum `k` for `metric`, starting from an optional
/// bootstrap partition (the paper bootstraps with STEP-MG, so the
/// result is never worse than the bootstrap). Every QBF probe runs
/// under `meter` (which also supplies the per-call limits via
/// `opts.per_call`) and charges its inner-SAT effort to it.
pub fn search(
    core: &CoreFormula,
    metric: Metric,
    bootstrap: Option<&VarPartition>,
    strategy: SearchStrategy,
    opts: &ModelOptions,
    meter: &mut EffortMeter,
) -> OptimumResult {
    let mut no_refuter = None;
    search_with_reuse(
        core,
        metric,
        bootstrap,
        strategy,
        opts,
        meter,
        &mut no_refuter,
        None,
    )
}

/// [`search`] with the clause-reuse machinery threaded through every
/// probe. The [`CounterexampleRefuter`] persists across probes (the
/// CEGAR engine rebuilds its own solvers each time), so each probe's
/// final UNSAT counterexample check can be answered from accumulated
/// check-side learnt clauses. The [`ProbeLedger`] replays definitive
/// probe verdicts recorded by sibling sessions over the same canonical
/// cone — the searched `k` sequence, the verdicts and the returned
/// partition are identical either way, only the solving is skipped.
#[allow(clippy::too_many_arguments)]
pub fn search_with_reuse(
    core: &CoreFormula,
    metric: Metric,
    bootstrap: Option<&VarPartition>,
    strategy: SearchStrategy,
    opts: &ModelOptions,
    meter: &mut EffortMeter,
    refuter: &mut Option<CounterexampleRefuter>,
    ledger: Option<&ProbeLedger>,
) -> OptimumResult {
    let n = core.n;
    let mut result = OptimumResult {
        partition: bootstrap.map(|p| p.normalized()),
        proved_optimal: false,
        qbf_calls: 0,
        timeouts: 0,
        truncated: false,
        cegar_iterations: 0,
    };
    if n < 2 {
        return result;
    }

    // hi = best achieved bound + 1 conceptually; we track best_k as the
    // metric of the best partition, and probe within [lo, best_k - 1].
    let mut best_k = match &result.partition {
        Some(p) => metric.k_of(p),
        None => {
            // No bootstrap: establish existence at the loosest bound.
            let k = metric.k_max(n);
            match probe(core, metric, k, opts, meter, refuter, ledger, &mut result) {
                ProbeResult::Feasible(p) => {
                    let kk = metric.k_of(&p);
                    result.partition = Some(p);
                    kk
                }
                ProbeResult::Infeasible => {
                    result.proved_optimal = true; // not decomposable at all
                    return result;
                }
                ProbeResult::Timeout => return result,
            }
        }
    };
    let mut lo = 0usize;
    let mut md_steps = 0u32;
    let mut mi_mode = false;

    while lo < best_k {
        if meter.exhausted() {
            result.truncated = true;
            return result;
        }
        let k = match strategy {
            SearchStrategy::MonotoneIncreasing => lo,
            SearchStrategy::MonotoneDecreasing => best_k - 1,
            SearchStrategy::Binary => lo + (best_k - 1 - lo) / 2,
            SearchStrategy::MdBinMi => {
                if md_steps < 2 {
                    md_steps += 1;
                    best_k - 1
                } else if !mi_mode && best_k - lo > 2 {
                    lo + (best_k - 1 - lo) / 2
                } else {
                    mi_mode = true;
                    lo
                }
            }
        };
        match probe(core, metric, k, opts, meter, refuter, ledger, &mut result) {
            ProbeResult::Feasible(p) => {
                best_k = metric.k_of(&p).min(k);
                result.partition = Some(p);
            }
            ProbeResult::Infeasible => {
                lo = k + 1;
            }
            ProbeResult::Timeout => return result,
        }
    }
    result.proved_optimal = true;
    result
}

enum ProbeResult {
    Feasible(VarPartition),
    Infeasible,
    Timeout,
}

#[allow(clippy::too_many_arguments)]
fn probe(
    core: &CoreFormula,
    metric: Metric,
    k: usize,
    opts: &ModelOptions,
    meter: &mut EffortMeter,
    refuter: &mut Option<CounterexampleRefuter>,
    ledger: Option<&ProbeLedger>,
    result: &mut OptimumResult,
) -> ProbeResult {
    result.qbf_calls += 1;
    let target = metric.target(k);
    // A sibling's certificate replays the exact outcome the
    // deterministic solve below would produce — see the ledger docs.
    if let Some(verdict) = ledger.and_then(|l| l.lookup(target)) {
        return match verdict {
            ProbeVerdict::Infeasible => ProbeResult::Infeasible,
            ProbeVerdict::Feasible(classes) => {
                ProbeResult::Feasible(VarPartition::new(classes).normalized())
            }
        };
    }
    let (outcome, stats) = solve_partition_with_refuter(core, target, opts, meter, refuter);
    result.cegar_iterations += stats.cegar_iterations;
    match outcome {
        QbfModelOutcome::Partition(p) => {
            if let Some(l) = ledger {
                l.record(target, ProbeVerdict::Feasible(p.classes().to_vec()));
            }
            ProbeResult::Feasible(p.normalized())
        }
        QbfModelOutcome::NoPartition => {
            if let Some(l) = ledger {
                l.record(target, ProbeVerdict::Infeasible);
            }
            ProbeResult::Infeasible
        }
        QbfModelOutcome::Timeout => {
            result.timeouts += 1;
            result.truncated = true;
            ProbeResult::Timeout
        }
    }
}
