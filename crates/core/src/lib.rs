//! # STEP — Satisfiability-based funcTion dEcomPosition
//!
//! A from-scratch reproduction of *"QBF-Based Boolean Function
//! Bi-Decomposition"* (Chen, Janota, Marques-Silva — DATE 2012).
//!
//! Given a Boolean function `f(X)` (a primary-output cone of an AIG),
//! the engine finds a non-trivial variable partition
//! `X = {XA | XB | XC}` and functions with
//! `f = fA(XA,XC) <OP> fB(XB,XC)` for `<OP> ∈ {OR, AND, XOR}`:
//!
//! * [`Model::Ljh`] — the SAT-based enumeration baseline (`Bi-dec`);
//! * [`Model::MusGroup`] — group-MUS partitioning (`STEP-MG`);
//! * [`Model::QbfDisjoint`] / [`Model::QbfBalanced`] /
//!   [`Model::QbfCombined`] — the paper's QBF models (`STEP-QD`,
//!   `STEP-QB`, `STEP-QDB`), which compute partitions with **optimum**
//!   disjointness / balancedness / combined cost via CEGAR 2QBF
//!   solving with iterated cardinality bounds.
//!
//! The crate is organized as the paper is:
//!
//! * [`oracle`] — the core formula (2) and the incremental
//!   Proposition-1 oracle;
//! * [`qbf_model`] — formulations (3)/(4)/(9) with `fN`/`fT`
//!   constraints (5), (6), (8) and symmetry breaking;
//! * [`optimum`] — the MI/MD/Bin/(MD→Bin→MI) `k`-search
//!   (Section IV-A-6);
//! * [`ljh`] / [`mg`] — the two baselines the evaluation compares
//!   against;
//! * [`extract`](mod@extract) — interpolation/cofactor extraction of
//!   `fA`, `fB`;
//! * [`verify`](mod@verify) — support + SAT equivalence checking;
//! * [`engine`] — the per-output / per-circuit driver with the
//!   paper's budget structure.
//!
//! See the crate-level example on [`BiDecomposer`].

pub mod engine;
pub mod extract;
pub mod ljh;
pub mod mg;
pub mod network;
pub mod optimum;
pub mod oracle;
pub mod partition;
pub mod qbf_model;
pub mod qdimacs_export;
pub mod spec;
pub mod verify;

pub use engine::{BiDecomposer, CircuitResult, OutputResult, StepError};
pub use extract::{extract, extract_by_quantification, Decomposition, ExtractError};
pub use network::{decompose_tree, DecompTree, TreeNode, TreeOptions};
pub use partition::{VarClass, VarPartition};
pub use spec::{BudgetPolicy, DecompConfig, GateOp, Model, SearchStrategy};
pub use verify::{verify, VerifyError};

#[cfg(test)]
mod tests;
