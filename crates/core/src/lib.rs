//! # STEP — Satisfiability-based funcTion dEcomPosition
//!
//! A from-scratch reproduction of *"QBF-Based Boolean Function
//! Bi-Decomposition"* (Chen, Janota, Marques-Silva — DATE 2012).
//!
//! Given a Boolean function `f(X)` (a primary-output cone of an AIG),
//! the engine finds a non-trivial variable partition
//! `X = {XA | XB | XC}` and functions with
//! `f = fA(XA,XC) <OP> fB(XB,XC)` for `<OP> ∈ {OR, AND, XOR}`:
//!
//! * [`Model::Ljh`] — the SAT-based enumeration baseline (`Bi-dec`);
//! * [`Model::MusGroup`] — group-MUS partitioning (`STEP-MG`);
//! * [`Model::QbfDisjoint`] / [`Model::QbfBalanced`] /
//!   [`Model::QbfCombined`] — the paper's QBF models (`STEP-QD`,
//!   `STEP-QB`, `STEP-QDB`), which compute partitions with **optimum**
//!   disjointness / balancedness / combined cost via CEGAR 2QBF
//!   solving with iterated cardinality bounds.
//!
//! The crate is organized as the paper is:
//!
//! * [`oracle`] — the core formula (2) and the incremental
//!   Proposition-1 oracle;
//! * [`qbf_model`] — formulations (3)/(4)/(9) with `fN`/`fT`
//!   constraints (5), (6), (8) and symmetry breaking;
//! * [`optimum`] — the MI/MD/Bin/(MD→Bin→MI) `k`-search
//!   (Section IV-A-6);
//! * [`ljh`] / [`mg`] — the two baselines the evaluation compares
//!   against;
//! * [`extract`](mod@extract) — interpolation/cofactor extraction of
//!   `fA`, `fB`;
//! * [`verify`](mod@verify) — support + SAT equivalence checking;
//! * [`engine`] — the circuit driver with the paper's budget
//!   structure, built as a solve-session pipeline: a pure [`job`]
//!   description per output, a stateful [`session`] that executes it,
//!   and a pluggable [`strategy`] per roster model;
//! * [`service`] — the primary circuit-scale API: a persistent
//!   [`StepService`] worker pool with job submission, streaming
//!   per-output results and cancellation
//!   ([`BiDecomposer::decompose_circuit`] is a submit-and-join
//!   compatibility wrapper over it);
//! * [`cache`] — the per-op result cache: sessions solve every cone in
//!   canonical input order (`step_aig::canonicalize`), so definitive
//!   outcomes are memoizable by `(fingerprint, op, config)` and
//!   translate to any permuted-input twin of the cone;
//! * [`clause_bank`] — cross-output clause reuse: completed sessions
//!   donate tier-core learnt clauses (keyed by `(fingerprint, op)`
//!   exactly, and by `(op, support)` for vetted near-twin seeding) and
//!   park live oracles for same-fingerprint siblings — answers are
//!   identical with reuse on or off, only the conflicts to reach them
//!   drop;
//! * [`store`] — the tiered [`ArtifactStore`] unifying all three reuse
//!   surfaces (results, clause donations, probe certificates) behind
//!   one get/put/scan interface, with the in-memory structures as
//!   tier 0 and an optional persistent, mergeable disk tier
//!   ([`DecompConfig::cache_dir`]) that warm-starts later runs;
//! * [`predict`] / [`tenant`] — the multi-tenant layer under the
//!   `step-serve` network front-end: a conflict-cost estimator
//!   (fingerprint history + support-bucket EWMAs) feeding the
//!   service's deficit-round-robin fair-share pop, and the per-tenant
//!   quota ledger behind admission control.
//!
//! See the crate-level example on [`BiDecomposer`].

pub mod cache;
pub mod clause_bank;
pub mod effort;
pub mod engine;
pub mod extract;
pub mod job;
pub mod ljh;
pub mod mg;
pub mod network;
pub mod optimum;
pub mod oracle;
pub mod partition;
pub mod predict;
pub mod qbf_model;
pub mod qdimacs_export;
pub mod service;
pub mod session;
pub mod spec;
pub mod store;
pub mod strategy;
pub mod tenant;
pub mod verify;

pub use cache::{CacheKey, CacheLookup, CachedResult, ResultCache};
pub use clause_bank::{BankHit, BankKey, BankLookup, ClauseBank, OraclePool, ReuseCtx};
pub use effort::{CallLimits, CircuitBudget, EffortMeter, WorkLedger, WorkPool};
pub use engine::{BiDecomposer, CircuitResult, OutputResult, StepError};
pub use extract::{extract, extract_by_quantification, Decomposition, ExtractError};
pub use job::{cone_seed, OutputJob};
pub use network::{decompose_tree, DecompTree, TreeNode, TreeOptions};
pub use partition::{VarClass, VarPartition};
pub use predict::CostModel;
pub use service::{
    Canceller, OutputEvent, StepService, SubmissionHandle, SubmissionId, SubmitOptions,
};
pub use session::SolveSession;
pub use spec::{Budget, BudgetPolicy, DecompConfig, GateOp, Model, SearchStrategy};
pub use store::{
    Artifact, ArtifactKey, ArtifactKind, ArtifactStore, ClausePayload, ConfigKey, DiskTier,
    Namespace, StoreHit, TieredStore,
};
pub use tenant::{OverQuota, TenantLedger, WorkReservation};
// The effort-counter vocabulary is shared with the solver layers, as
// is the restart-policy knob `DecompConfig::sat_restarts` takes.
pub use step_sat::{EffortStats, RestartPolicy};
pub use strategy::{strategy_for, ModelStrategy, StrategyOutcome};
pub use verify::{verify, VerifyError};

// Compile-time audit of the parallel solve path: the service is
// submitted to from any thread (`Sync`), its handles move to consumer
// threads (`Send`; the mpsc receiver keeps them `!Sync`), workers own
// a `PartitionOracle` each, and `OutputResult`s / `StepError`s travel
// across the event channel.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    fn assert_send<T: Send>() {}
    assert_sync::<BiDecomposer>();
    assert_sync::<StepService>();
    assert_sync::<spec::DecompConfig>();
    assert_sync::<ResultCache>();
    // Clause reuse crosses the same thread boundaries the cache does:
    // the bank is shared by every worker, pooled oracles migrate
    // between them.
    assert_sync::<ClauseBank>();
    assert_sync::<OraclePool>();
    // The tiered store (and its disk tier) is the one object every
    // worker of a persistent service shares.
    assert_sync::<TieredStore>();
    assert_sync::<DiskTier>();
    assert_send::<SubmissionHandle>();
    assert_send::<OutputEvent>();
    // The multi-tenant layer: the ledger and cost model are shared by
    // every serve connection thread; cancellers migrate to readers.
    assert_sync::<TenantLedger>();
    assert_sync::<CostModel>();
    assert_sync::<WorkLedger>();
    assert_send::<Canceller>();
    assert_sync::<Canceller>();
    assert_send::<oracle::PartitionOracle>();
    assert_send::<OutputResult>();
    assert_send::<StepError>();
};

#[cfg(test)]
mod tests;
