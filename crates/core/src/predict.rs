//! Per-output effort prediction: the cost model behind effort-aware
//! queue ordering and admission-time charge estimates.
//!
//! The service already holds two cheap signals about how expensive an
//! output will be: the cone's **support size** (computed for every
//! result) and its **canonical fingerprint** (the
//! [`ResultCache`](crate::cache::ResultCache)/
//! [`ArtifactStore`](crate::store::ArtifactStore) key — an output seen
//! before, in this process or a previous one, costs what it cost last
//! time, or nothing at all if the cache still holds it). The
//! [`CostModel`] folds both into a conflict estimate:
//!
//! 1. exact fingerprint history, when this cone has been solved (or
//!    served) before;
//! 2. a per-`log2(support)` bucket EWMA of observed conflicts, learned
//!    from every solve the service completes;
//! 3. a support-proportional prior when neither has data yet.
//!
//! Predictions feed two consumers: [`Submission`
//! cost](crate::StepService::submit_with) for the deficit-round-robin
//! queue ordering, and the serve front-end's admission charge when a
//! request carries no explicit work budget. They are *scheduling*
//! hints only — a misprediction reorders work, it never changes an
//! answer (the determinism contract of [`crate::service`]).

use std::collections::HashMap;
use std::sync::Mutex;

/// Bound on the exact-fingerprint history; at the cap the map is
/// cleared (the bucket EWMAs retain the aggregate signal).
const FP_CAP: usize = 65_536;

/// EWMA smoothing: `avg += (x - avg) / 2^EWMA_SHIFT`.
const EWMA_SHIFT: u32 = 3;

/// Fallback conflicts-per-support-variable prior for cones with no
/// history at all.
const PRIOR_CONFLICTS_PER_VAR: u64 = 32;

/// A concurrent conflict-cost estimator for output cones. See the
/// module docs for the estimation ladder.
#[derive(Debug, Default)]
pub struct CostModel {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// EWMA of observed conflicts per `log2(support)` bucket.
    buckets: HashMap<u32, u64>,
    /// Last observed conflicts per canonical cone fingerprint.
    by_fingerprint: HashMap<u128, u64>,
}

fn bucket(support: usize) -> u32 {
    usize::BITS - support.leading_zeros()
}

impl CostModel {
    /// An empty model (predictions fall back to the support prior).
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Predicted conflicts to solve a cone with this `fingerprint`
    /// (when known) and `support` size. Always at least 1 except for
    /// cones with exact zero-cost history (a cached result is free).
    pub fn predict(&self, fingerprint: Option<u128>, support: usize) -> u64 {
        let inner = self.inner.lock().expect("cost model lock");
        if let Some(fp) = fingerprint {
            if let Some(&c) = inner.by_fingerprint.get(&fp) {
                return c;
            }
        }
        match inner.buckets.get(&bucket(support)) {
            Some(&avg) => avg.max(1),
            None => (support as u64)
                .saturating_mul(PRIOR_CONFLICTS_PER_VAR)
                .max(1),
        }
    }

    /// Records one completed solve. A `cache_hit` updates only the
    /// exact-fingerprint history (to zero — the cone is now free),
    /// never the bucket EWMA: a hit says nothing about the cone's
    /// intrinsic difficulty.
    pub fn record(
        &self,
        fingerprint: Option<u128>,
        support: usize,
        conflicts: u64,
        cache_hit: bool,
    ) {
        let mut inner = self.inner.lock().expect("cost model lock");
        if !cache_hit {
            let avg = inner.buckets.entry(bucket(support)).or_insert(conflicts);
            if conflicts >= *avg {
                *avg += (conflicts - *avg) >> EWMA_SHIFT;
            } else {
                *avg -= (*avg - conflicts) >> EWMA_SHIFT;
            }
        }
        if let Some(fp) = fingerprint {
            if inner.by_fingerprint.len() >= FP_CAP {
                inner.by_fingerprint.clear();
            }
            inner
                .by_fingerprint
                .insert(fp, if cache_hit { 0 } else { conflicts });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_scales_with_support_and_stays_positive() {
        let m = CostModel::new();
        assert_eq!(m.predict(None, 10), 320);
        assert_eq!(
            m.predict(None, 0),
            1,
            "never a zero estimate from the prior"
        );
    }

    #[test]
    fn fingerprint_history_is_exact_and_hits_are_free() {
        let m = CostModel::new();
        m.record(Some(7), 10, 500, false);
        assert_eq!(m.predict(Some(7), 10), 500);
        m.record(Some(7), 10, 0, true);
        assert_eq!(m.predict(Some(7), 10), 0, "a cached cone costs nothing");
        // The zero-cost hit must not have dragged the bucket EWMA down.
        assert_eq!(m.predict(Some(99), 10), 500);
    }

    #[test]
    fn bucket_ewma_converges_toward_observations() {
        let m = CostModel::new();
        m.record(None, 16, 1000, false);
        for _ in 0..64 {
            m.record(None, 17, 100, false); // same log2 bucket as 16
        }
        let est = m.predict(None, 16);
        assert!(est < 200, "EWMA must track the recent level, got {est}");
    }
}
