//! A 2QBF solver based on counterexample-guided abstraction refinement
//! (CEGAR) — the algorithm of AReQS (Janota & Marques-Silva, SAT 2011),
//! which the paper uses to solve its bi-decomposition models.
//!
//! The central object is [`ExistsForall`], which decides formulas
//!
//! ```text
//!   ∃E ∀U . φ(E, U)
//! ```
//!
//! where the matrix `φ` is an AIG over two disjoint sets of primary
//! inputs. The paper's formulation (9) is the negation of its model
//! (4); instead of negating, this solver works on (4) directly and
//! returns the *witness* for the existential block — exactly the
//! variable partition STEP needs (the counterexample AReQS would report
//! for (9)).
//!
//! Pure-existential side constraints (the paper's `fN` and `fT`
//! cardinality constraints) can be added as CNF over the abstraction
//! solver's variables via [`ExistsForall::add_exists_cnf`], avoiding a
//! circuit encoding of the totalizers.
//!
//! A QDIMACS front-end ([`solve_qdimacs`]) handles standard 2QBF
//! instances for testing and interoperability.
//!
//! # Example
//!
//! ```
//! use step_aig::Aig;
//! use step_qbf::{ExistsForall, Qbf2Result};
//!
//! // ∃x ∀y . (x ∨ y) — valid with witness x = 1.
//! let mut aig = Aig::new();
//! let x = aig.add_input("x");
//! let y = aig.add_input("y");
//! let m = aig.or(x, y);
//! let mut solver = ExistsForall::new(aig, m, vec![0], vec![1]);
//! match solver.solve() {
//!     Qbf2Result::Valid(witness) => assert!(witness[0]),
//!     other => panic!("expected Valid, got {other:?}"),
//! }
//! ```

mod cegar;
mod qdimacs;

pub use cegar::{
    CounterexampleRefuter, ExistsForall, Qbf2Config, Qbf2Result, Qbf2Stats, REFUTER_CONFLICTS,
};
pub use qdimacs::{solve_qdimacs, QbfOutcome, QdimacsError};
// The effort-counter vocabulary is shared with the SAT layer: a QBF
// call's effort is the sum of its inner solvers' (`ExistsForall::effort`).
// Likewise the restart-policy knob, which `Qbf2Config` forwards to the
// inner candidate and counterexample solvers.
pub use step_sat::{EffortStats, RestartPolicy};

// Compile-time audit: CEGAR solvers run inside worker threads of the
// parallel circuit driver (step-core), so they must stay
// `Send + Sync` — no `Rc` or thread-bound state on the solve path.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExistsForall>();
};

#[cfg(test)]
mod tests;
