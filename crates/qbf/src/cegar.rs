use std::time::Instant;

use step_aig::{Aig, AigLit};
use step_cnf::{tseitin::AigCnf, Cnf, Lit, Var};
use step_sat::{EffortStats, LearntExport, RestartPolicy, SolveResult, Solver};

/// Result of a 2QBF solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Qbf2Result {
    /// `∃E ∀U. φ` holds; the witness assigns the existential block
    /// (indexed like the `e_pis` passed to [`ExistsForall::new`]).
    Valid(Vec<bool>),
    /// No assignment of the existential block works.
    Invalid,
    /// A budget expired first.
    Unknown,
}

/// Budgets for a 2QBF solve, mirroring the paper's per-QBF-call limits.
#[derive(Clone, Copy, Debug, Default)]
pub struct Qbf2Config {
    /// Maximum CEGAR iterations (`None` = unlimited).
    pub max_iterations: Option<u64>,
    /// Wall-clock deadline (`None` = unlimited).
    pub deadline: Option<Instant>,
    /// Conflict budget per underlying SAT call (`None` = unlimited).
    pub conflicts_per_call: Option<u64>,
    /// Total conflict budget for the whole QBF call (`None` =
    /// unlimited): every CEGAR iteration's inner-SAT work — candidate
    /// *and* counterexample solves — is charged against it, and the
    /// solve returns [`Qbf2Result::Unknown`] once it is spent. Unlike
    /// `deadline`, the cut-off is deterministic (conflicts, not wall
    /// clock), so a budgeted `Unknown` falls in the same place on
    /// every machine.
    pub effort_budget: Option<u64>,
    /// Restart policy for both inner SAT solvers (candidate and
    /// counterexample). Deterministic either way.
    pub restarts: RestartPolicy,
    /// Enables the inner solvers' bounded root-level preprocessing
    /// pass. Off by default: CEGAR re-solves the same formulas
    /// incrementally, where re-preprocessing rarely pays for itself.
    pub preprocess: bool,
}

/// Counters from a CEGAR run.
#[derive(Clone, Copy, Default, Debug)]
pub struct Qbf2Stats {
    /// Candidate/counterexample iterations performed.
    pub iterations: u64,
    /// AND nodes added to the matrix AIG by refinement cofactoring.
    pub refinement_nodes: usize,
}

/// Builds the counterexample query `¬φ(E,U)` as an incremental SAT
/// solver: existential inputs bound to the first block of variables,
/// universal inputs to the second, Tseitin auxiliaries after — a pure
/// function of `(aig, matrix, e_pis, u_pis)`, so two calls with the
/// same arguments produce var-for-var identical solvers. Shared by
/// [`ExistsForall::new`] and [`CounterexampleRefuter::new`].
fn build_check(
    aig: &Aig,
    matrix: AigLit,
    e_pis: &[usize],
    u_pis: &[usize],
) -> (Solver, Vec<Var>, Vec<Var>) {
    let mut check = Solver::new();
    let mut ccnf = Cnf::new();
    let mut cenc = AigCnf::new();
    let check_e_vars: Vec<Var> = e_pis
        .iter()
        .map(|&p| {
            let v = ccnf.new_var();
            cenc.bind(aig.input_node(p), Lit::pos(v));
            v
        })
        .collect();
    let check_u_vars: Vec<Var> = u_pis
        .iter()
        .map(|&p| {
            let v = ccnf.new_var();
            cenc.bind(aig.input_node(p), Lit::pos(v));
            v
        })
        .collect();
    let r = cenc.encode(&mut ccnf, aig, matrix);
    ccnf.add_unit(!r);
    check.add_cnf(&ccnf);
    (check, check_e_vars, check_u_vars)
}

/// A persistent, seedable duplicate of the counterexample (check)
/// solver: the same CNF `¬φ(E,U)` with the same variable numbering as
/// the check solver [`ExistsForall::new`] builds for the same
/// arguments.
///
/// Attached to a CEGAR solve ([`ExistsForall::set_refuter`]), it is
/// consulted **before** the real counterexample check: if the refuter
/// proves a candidate has no counterexample (UNSAT), the real check —
/// typically the most expensive call of the whole solve — is skipped.
/// An UNSAT verdict is semantically determined by the CNF, so the
/// skip cannot change the result; on SAT or Unknown the real check
/// runs exactly as it would have, so the counterexample *trajectory*
/// (which refinements happen, which witness is found) is byte-
/// identical with or without a refuter attached.
///
/// Two guards keep the fast path from costing more than it saves.
/// The refuter is only consulted once *warm* — seeded with clauses
/// from a donor or from a previous probe's harvested check proof — so
/// a cold session never duplicates its check calls. And each consult
/// is capped at [`REFUTER_CONFLICTS`] conflicts: a warm refuter
/// re-proves a known UNSAT mostly by propagation, while a SAT
/// candidate (where the consult is pure overhead) bails out at the
/// cap and falls through. Whenever the real check does prove UNSAT,
/// its learnt clauses are harvested into the refuter verbatim (same
/// CNF, same numbering), so warming costs no extra solving.
///
/// What makes the refuter pay is persistence: unlike the check solver,
/// which is rebuilt for every probe of an optimum search, one refuter
/// lives across all probes of a session — and, via
/// [`import_learnts`](CounterexampleRefuter::import_learnts) /
/// [`export_learnts`](CounterexampleRefuter::export_learnts), across
/// sessions solving the same formula (same canonical cone and
/// operator, any model).
pub struct CounterexampleRefuter {
    solver: Solver,
    e_vars: Vec<Var>,
    /// Whether the refuter holds any donated or harvested clauses —
    /// consultation is skipped until it does.
    warm: bool,
}

/// Conflict cap per refuter consult. A warm refuter settles a
/// re-proof almost entirely by propagation; anything that needs more
/// conflicts than this is cheaper to leave to the real check.
pub const REFUTER_CONFLICTS: u64 = 64;

/// Caps on the check-proof harvest replayed into the refuter after
/// each real UNSAT check (same spirit as the clause bank's donation
/// caps: keep the hot core, drop the tail).
const HARVEST_CLAUSES: usize = 512;
const HARVEST_ACTIVITIES: usize = 256;

impl CounterexampleRefuter {
    /// Builds the refuter for `∃E ∀U. φ` — same arguments, same CNF,
    /// same variable numbering as [`ExistsForall::new`]'s check solver.
    pub fn new(aig: &Aig, matrix: AigLit, e_pis: &[usize], u_pis: &[usize]) -> Self {
        let (solver, e_vars, _) = build_check(aig, matrix, e_pis, u_pis);
        CounterexampleRefuter {
            solver,
            e_vars,
            warm: false,
        }
    }

    /// Replays a donor refuter's snapshot (same formula, so the CNFs
    /// are var-for-var identical and clauses import verbatim) and
    /// marks the refuter warm. Returns the number of clauses added.
    pub fn import_learnts(&mut self, export: &LearntExport) -> u64 {
        let added = self.solver.import_learnts(export);
        self.warm = self.warm || !export.clauses.is_empty();
        added
    }

    /// Snapshots the pinned (tier-core) learnt clauses and hottest
    /// variable activities for donation to a later refuter over the
    /// same formula.
    pub fn export_learnts(&self, max_clauses: usize, max_activities: usize) -> LearntExport {
        self.solver.export_learnts(max_clauses, max_activities)
    }

    /// Monotone snapshot of the conflicts/decisions/propagations this
    /// refuter has spent — tracked by the owner (it is *not* part of
    /// [`ExistsForall::effort`], which covers only the trajectory
    /// solvers).
    pub fn effort(&self) -> EffortStats {
        self.solver.effort()
    }

    /// Whether the refuter holds donated or harvested clauses yet.
    /// Cold refuters are never consulted during a solve.
    pub fn is_warm(&self) -> bool {
        self.warm
    }
}

/// CEGAR solver for `∃E ∀U. φ(E,U)` with an AIG matrix.
///
/// See the [crate docs](crate) for the algorithm and an example.
pub struct ExistsForall {
    aig: Aig,
    matrix: AigLit,
    e_pis: Vec<usize>,
    u_pis: Vec<usize>,
    abs: Solver,
    abs_cnf: Cnf,
    abs_sent: usize,
    abs_enc: AigCnf,
    e_vars: Vec<Var>,
    check: Solver,
    check_e_vars: Vec<Var>,
    check_u_vars: Vec<Var>,
    refuter: Option<CounterexampleRefuter>,
    config: Qbf2Config,
    stats: Qbf2Stats,
}

impl ExistsForall {
    /// Creates a solver for `∃E ∀U. φ` where `matrix` = φ is a literal
    /// of `aig`, and `e_pis`/`u_pis` are the primary-input indices of
    /// the existential and universal blocks.
    ///
    /// # Panics
    ///
    /// Panics if the blocks overlap or do not cover the structural
    /// support of `matrix`.
    pub fn new(aig: Aig, matrix: AigLit, e_pis: Vec<usize>, u_pis: Vec<usize>) -> Self {
        let mut covered = vec![false; aig.num_inputs()];
        for &p in &e_pis {
            assert!(!covered[p], "input {p} in both blocks");
            covered[p] = true;
        }
        for &p in &u_pis {
            assert!(!covered[p], "input {p} in both blocks");
            covered[p] = true;
        }
        for p in aig.support(matrix) {
            assert!(covered[p], "matrix support input {p} not quantified");
        }

        // Abstraction solver: one stable variable per existential input.
        let mut abs = Solver::new();
        let mut abs_cnf = Cnf::new();
        let mut abs_enc = AigCnf::new();
        let e_vars: Vec<Var> = e_pis
            .iter()
            .map(|&p| {
                let v = abs_cnf.new_var();
                abs.ensure_vars(abs_cnf.num_vars());
                abs_enc.bind(aig.input_node(p), Lit::pos(v));
                v
            })
            .collect();

        // Check solver: ¬φ(E,U), solved under assumptions E = candidate.
        let (check, check_e_vars, check_u_vars) = build_check(&aig, matrix, &e_pis, &u_pis);

        ExistsForall {
            aig,
            matrix,
            e_pis,
            u_pis,
            abs,
            abs_cnf,
            abs_sent: 0,
            abs_enc,
            e_vars,
            check,
            check_e_vars,
            check_u_vars,
            refuter: None,
            config: Qbf2Config::default(),
            stats: Qbf2Stats::default(),
        }
    }

    /// Replaces the solve budgets.
    pub fn set_config(&mut self, config: Qbf2Config) {
        self.config = config;
    }

    /// Attaches a [`CounterexampleRefuter`] (built for the **same**
    /// formula) to be consulted before each counterexample check; pass
    /// `None` to detach. The refuter's effort is *not* part of
    /// [`effort`](ExistsForall::effort) — reclaim it with
    /// [`take_refuter`](ExistsForall::take_refuter) and account its
    /// [`CounterexampleRefuter::effort`] separately.
    pub fn set_refuter(&mut self, refuter: Option<CounterexampleRefuter>) {
        self.refuter = refuter;
    }

    /// Detaches and returns the attached refuter, if any, with all the
    /// learnt state it accumulated during [`solve`](ExistsForall::solve).
    pub fn take_refuter(&mut self) -> Option<CounterexampleRefuter> {
        self.refuter.take()
    }

    /// Counters from the CEGAR run so far.
    pub fn stats(&self) -> Qbf2Stats {
        self.stats
    }

    /// A monotone snapshot of the inner-SAT effort expended so far,
    /// summed over the abstraction and counterexample solvers — the
    /// per-QBF-call analogue of [`Solver::effort`](step_sat::Solver::effort).
    /// This is the quantity [`Qbf2Config::effort_budget`] bounds:
    /// CEGAR iterations charge their inner-SAT work to the QBF call.
    pub fn effort(&self) -> EffortStats {
        self.abs.effort() + self.check.effort()
    }

    /// Sets the total conflict budget for subsequent
    /// [`solve`](ExistsForall::solve) work (the deterministic analogue
    /// of a per-call wall-clock timeout; see
    /// [`Qbf2Config::effort_budget`]).
    pub fn set_effort_budget(&mut self, conflicts: Option<u64>) {
        self.config.effort_budget = conflicts;
    }

    /// The abstraction-solver variable carrying existential input
    /// `e_index` (position in the `e_pis` vector).
    pub fn exists_var(&self, e_index: usize) -> Var {
        self.e_vars[e_index]
    }

    /// The primary-input indices of the existential block.
    pub fn exists_pis(&self) -> &[usize] {
        &self.e_pis
    }

    /// The primary-input indices of the universal block.
    pub fn forall_pis(&self) -> &[usize] {
        &self.u_pis
    }

    /// Adds side constraints over the existential block (and fresh
    /// auxiliary variables) to the abstraction. The closure receives a
    /// CNF whose variable pool already contains every abstraction
    /// variable, plus the literals of the existential inputs in block
    /// order; clauses and variables it adds are transferred to the
    /// abstraction solver.
    ///
    /// This is how STEP attaches the paper's `fN` (non-triviality) and
    /// `fT` (cardinality target) constraints.
    pub fn add_exists_cnf(&mut self, build: impl FnOnce(&mut Cnf, &[Lit])) {
        let e_lits: Vec<Lit> = self.e_vars.iter().map(|&v| Lit::pos(v)).collect();
        let before = self.abs_cnf.num_clauses();
        build(&mut self.abs_cnf, &e_lits);
        self.abs.ensure_vars(self.abs_cnf.num_vars());
        for i in before..self.abs_cnf.num_clauses() {
            self.abs
                .add_clause(self.abs_cnf.clauses()[i].iter().copied());
        }
        self.abs_sent = self.abs_cnf.num_clauses();
    }

    /// The conflict budget for the next inner SAT call: the per-call
    /// limit capped by what is left of the whole-call effort budget.
    fn inner_budget(&self, effort_start: u64) -> Option<u64> {
        let remaining = self
            .config
            .effort_budget
            .map(|b| b.saturating_sub(self.effort().conflicts - effort_start));
        match (self.config.conflicts_per_call, remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Runs CEGAR to completion (or budget exhaustion).
    pub fn solve(&mut self) -> Qbf2Result {
        self.abs.set_deadline(self.config.deadline);
        self.check.set_deadline(self.config.deadline);
        self.abs.set_restart_policy(self.config.restarts);
        self.check.set_restart_policy(self.config.restarts);
        self.abs.set_preprocess(self.config.preprocess);
        self.check.set_preprocess(self.config.preprocess);
        if let Some(rf) = self.refuter.as_mut() {
            rf.solver.set_deadline(self.config.deadline);
            rf.solver.set_restart_policy(self.config.restarts);
            rf.solver.set_preprocess(self.config.preprocess);
        }
        // Baseline for the whole-call effort budget: every inner SAT
        // call below is capped by what remains of it, so the solve
        // stops at a deterministic, machine-independent conflict count.
        let effort_start = self.effort().conflicts;
        loop {
            if let Some(max) = self.config.max_iterations {
                if self.stats.iterations >= max {
                    return Qbf2Result::Unknown;
                }
            }
            if let Some(d) = self.config.deadline {
                if Instant::now() >= d {
                    return Qbf2Result::Unknown;
                }
            }
            if let Some(b) = self.config.effort_budget {
                if self.effort().conflicts - effort_start >= b {
                    return Qbf2Result::Unknown;
                }
            }
            self.stats.iterations += 1;

            // 1. Candidate from the abstraction.
            let budget = self.inner_budget(effort_start);
            self.abs.set_effort_budget(budget);
            let candidate = match self.abs.solve() {
                SolveResult::Unsat => return Qbf2Result::Invalid,
                SolveResult::Unknown => return Qbf2Result::Unknown,
                SolveResult::Sat => {
                    let m: Vec<bool> = self
                        .e_vars
                        .iter()
                        .map(|&v| self.abs.model_value(Lit::pos(v)).unwrap_or(false))
                        .collect();
                    m
                }
            };

            // 2a. Refuter fast path: a persistent solver over the same
            // check CNF, warm from previous probes (and possibly previous
            // sessions). Only its UNSAT answer is used — UNSAT is
            // semantically determined, and Valid is the loop's last step,
            // so skipping the real check there cannot perturb the CEGAR
            // trajectory. SAT/Unknown fall through to the real check.
            // Cold refuters are never consulted, and warm consults are
            // conflict-capped — see the [`CounterexampleRefuter`] docs.
            let refuter_budget = self
                .inner_budget(effort_start)
                .map_or(REFUTER_CONFLICTS, |b| b.min(REFUTER_CONFLICTS));
            if let Some(rf) = self.refuter.as_mut().filter(|rf| rf.warm) {
                rf.solver.set_effort_budget(Some(refuter_budget));
                let assumptions: Vec<Lit> = rf
                    .e_vars
                    .iter()
                    .zip(&candidate)
                    .map(|(&v, &val)| Lit::new(v, !val))
                    .collect();
                if rf.solver.solve_with_assumptions(&assumptions) == SolveResult::Unsat {
                    return Qbf2Result::Valid(candidate);
                }
            }

            // 2b. Counterexample check: ∃U. ¬φ(candidate, U)?
            let budget = self.inner_budget(effort_start);
            self.check.set_effort_budget(budget);
            let assumptions: Vec<Lit> = self
                .check_e_vars
                .iter()
                .zip(&candidate)
                .map(|(&v, &val)| Lit::new(v, !val))
                .collect();
            match self.check.solve_with_assumptions(&assumptions) {
                SolveResult::Unsat => {
                    // Harvest the proof into the refuter: the clauses
                    // are over the identical CNF, so the next probe's
                    // consult can re-derive this UNSAT by propagation.
                    if let Some(rf) = self.refuter.as_mut() {
                        rf.import_learnts(
                            &self
                                .check
                                .export_learnts(HARVEST_CLAUSES, HARVEST_ACTIVITIES),
                        );
                    }
                    return Qbf2Result::Valid(candidate);
                }
                SolveResult::Unknown => return Qbf2Result::Unknown,
                SolveResult::Sat => {
                    let u_star: Vec<(usize, bool)> = self
                        .u_pis
                        .iter()
                        .zip(&self.check_u_vars)
                        .map(|(&pi, &v)| (pi, self.check.model_value(Lit::pos(v)).unwrap_or(false)))
                        .collect();
                    self.refine(&u_star);
                }
            }
        }
    }

    /// Adds the expansion copy `φ(E, u★)` to the abstraction.
    fn refine(&mut self, u_star: &[(usize, bool)]) {
        let nodes_before = self.aig.node_count();
        let cof = self.aig.cofactor_many(self.matrix, u_star);
        self.stats.refinement_nodes += self.aig.node_count() - nodes_before;
        let lit = self.abs_enc.encode(&mut self.abs_cnf, &self.aig, cof);
        self.abs_cnf.add_unit(lit);
        self.abs.ensure_vars(self.abs_cnf.num_vars());
        for i in self.abs_sent..self.abs_cnf.num_clauses() {
            self.abs
                .add_clause(self.abs_cnf.clauses()[i].iter().copied());
        }
        self.abs_sent = self.abs_cnf.num_clauses();
    }
}
