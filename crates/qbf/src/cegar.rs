use std::time::Instant;

use step_aig::{Aig, AigLit};
use step_cnf::{tseitin::AigCnf, Cnf, Lit, Var};
use step_sat::{EffortStats, RestartPolicy, SolveResult, Solver};

/// Result of a 2QBF solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Qbf2Result {
    /// `∃E ∀U. φ` holds; the witness assigns the existential block
    /// (indexed like the `e_pis` passed to [`ExistsForall::new`]).
    Valid(Vec<bool>),
    /// No assignment of the existential block works.
    Invalid,
    /// A budget expired first.
    Unknown,
}

/// Budgets for a 2QBF solve, mirroring the paper's per-QBF-call limits.
#[derive(Clone, Copy, Debug, Default)]
pub struct Qbf2Config {
    /// Maximum CEGAR iterations (`None` = unlimited).
    pub max_iterations: Option<u64>,
    /// Wall-clock deadline (`None` = unlimited).
    pub deadline: Option<Instant>,
    /// Conflict budget per underlying SAT call (`None` = unlimited).
    pub conflicts_per_call: Option<u64>,
    /// Total conflict budget for the whole QBF call (`None` =
    /// unlimited): every CEGAR iteration's inner-SAT work — candidate
    /// *and* counterexample solves — is charged against it, and the
    /// solve returns [`Qbf2Result::Unknown`] once it is spent. Unlike
    /// `deadline`, the cut-off is deterministic (conflicts, not wall
    /// clock), so a budgeted `Unknown` falls in the same place on
    /// every machine.
    pub effort_budget: Option<u64>,
    /// Restart policy for both inner SAT solvers (candidate and
    /// counterexample). Deterministic either way.
    pub restarts: RestartPolicy,
    /// Enables the inner solvers' bounded root-level preprocessing
    /// pass. Off by default: CEGAR re-solves the same formulas
    /// incrementally, where re-preprocessing rarely pays for itself.
    pub preprocess: bool,
}

/// Counters from a CEGAR run.
#[derive(Clone, Copy, Default, Debug)]
pub struct Qbf2Stats {
    /// Candidate/counterexample iterations performed.
    pub iterations: u64,
    /// AND nodes added to the matrix AIG by refinement cofactoring.
    pub refinement_nodes: usize,
}

/// CEGAR solver for `∃E ∀U. φ(E,U)` with an AIG matrix.
///
/// See the [crate docs](crate) for the algorithm and an example.
pub struct ExistsForall {
    aig: Aig,
    matrix: AigLit,
    e_pis: Vec<usize>,
    u_pis: Vec<usize>,
    abs: Solver,
    abs_cnf: Cnf,
    abs_sent: usize,
    abs_enc: AigCnf,
    e_vars: Vec<Var>,
    check: Solver,
    check_e_vars: Vec<Var>,
    check_u_vars: Vec<Var>,
    config: Qbf2Config,
    stats: Qbf2Stats,
}

impl ExistsForall {
    /// Creates a solver for `∃E ∀U. φ` where `matrix` = φ is a literal
    /// of `aig`, and `e_pis`/`u_pis` are the primary-input indices of
    /// the existential and universal blocks.
    ///
    /// # Panics
    ///
    /// Panics if the blocks overlap or do not cover the structural
    /// support of `matrix`.
    pub fn new(aig: Aig, matrix: AigLit, e_pis: Vec<usize>, u_pis: Vec<usize>) -> Self {
        let mut covered = vec![false; aig.num_inputs()];
        for &p in &e_pis {
            assert!(!covered[p], "input {p} in both blocks");
            covered[p] = true;
        }
        for &p in &u_pis {
            assert!(!covered[p], "input {p} in both blocks");
            covered[p] = true;
        }
        for p in aig.support(matrix) {
            assert!(covered[p], "matrix support input {p} not quantified");
        }

        // Abstraction solver: one stable variable per existential input.
        let mut abs = Solver::new();
        let mut abs_cnf = Cnf::new();
        let mut abs_enc = AigCnf::new();
        let e_vars: Vec<Var> = e_pis
            .iter()
            .map(|&p| {
                let v = abs_cnf.new_var();
                abs.ensure_vars(abs_cnf.num_vars());
                abs_enc.bind(aig.input_node(p), Lit::pos(v));
                v
            })
            .collect();

        // Check solver: ¬φ(E,U), solved under assumptions E = candidate.
        let mut check = Solver::new();
        let mut ccnf = Cnf::new();
        let mut cenc = AigCnf::new();
        let check_e_vars: Vec<Var> = e_pis
            .iter()
            .map(|&p| {
                let v = ccnf.new_var();
                cenc.bind(aig.input_node(p), Lit::pos(v));
                v
            })
            .collect();
        let check_u_vars: Vec<Var> = u_pis
            .iter()
            .map(|&p| {
                let v = ccnf.new_var();
                cenc.bind(aig.input_node(p), Lit::pos(v));
                v
            })
            .collect();
        let r = cenc.encode(&mut ccnf, &aig, matrix);
        ccnf.add_unit(!r);
        check.add_cnf(&ccnf);

        ExistsForall {
            aig,
            matrix,
            e_pis,
            u_pis,
            abs,
            abs_cnf,
            abs_sent: 0,
            abs_enc,
            e_vars,
            check,
            check_e_vars,
            check_u_vars,
            config: Qbf2Config::default(),
            stats: Qbf2Stats::default(),
        }
    }

    /// Replaces the solve budgets.
    pub fn set_config(&mut self, config: Qbf2Config) {
        self.config = config;
    }

    /// Counters from the CEGAR run so far.
    pub fn stats(&self) -> Qbf2Stats {
        self.stats
    }

    /// A monotone snapshot of the inner-SAT effort expended so far,
    /// summed over the abstraction and counterexample solvers — the
    /// per-QBF-call analogue of [`Solver::effort`](step_sat::Solver::effort).
    /// This is the quantity [`Qbf2Config::effort_budget`] bounds:
    /// CEGAR iterations charge their inner-SAT work to the QBF call.
    pub fn effort(&self) -> EffortStats {
        self.abs.effort() + self.check.effort()
    }

    /// Sets the total conflict budget for subsequent
    /// [`solve`](ExistsForall::solve) work (the deterministic analogue
    /// of a per-call wall-clock timeout; see
    /// [`Qbf2Config::effort_budget`]).
    pub fn set_effort_budget(&mut self, conflicts: Option<u64>) {
        self.config.effort_budget = conflicts;
    }

    /// The abstraction-solver variable carrying existential input
    /// `e_index` (position in the `e_pis` vector).
    pub fn exists_var(&self, e_index: usize) -> Var {
        self.e_vars[e_index]
    }

    /// The primary-input indices of the existential block.
    pub fn exists_pis(&self) -> &[usize] {
        &self.e_pis
    }

    /// The primary-input indices of the universal block.
    pub fn forall_pis(&self) -> &[usize] {
        &self.u_pis
    }

    /// Adds side constraints over the existential block (and fresh
    /// auxiliary variables) to the abstraction. The closure receives a
    /// CNF whose variable pool already contains every abstraction
    /// variable, plus the literals of the existential inputs in block
    /// order; clauses and variables it adds are transferred to the
    /// abstraction solver.
    ///
    /// This is how STEP attaches the paper's `fN` (non-triviality) and
    /// `fT` (cardinality target) constraints.
    pub fn add_exists_cnf(&mut self, build: impl FnOnce(&mut Cnf, &[Lit])) {
        let e_lits: Vec<Lit> = self.e_vars.iter().map(|&v| Lit::pos(v)).collect();
        let before = self.abs_cnf.num_clauses();
        build(&mut self.abs_cnf, &e_lits);
        self.abs.ensure_vars(self.abs_cnf.num_vars());
        for i in before..self.abs_cnf.num_clauses() {
            self.abs
                .add_clause(self.abs_cnf.clauses()[i].iter().copied());
        }
        self.abs_sent = self.abs_cnf.num_clauses();
    }

    /// The conflict budget for the next inner SAT call: the per-call
    /// limit capped by what is left of the whole-call effort budget.
    fn inner_budget(&self, effort_start: u64) -> Option<u64> {
        let remaining = self
            .config
            .effort_budget
            .map(|b| b.saturating_sub(self.effort().conflicts - effort_start));
        match (self.config.conflicts_per_call, remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Runs CEGAR to completion (or budget exhaustion).
    pub fn solve(&mut self) -> Qbf2Result {
        self.abs.set_deadline(self.config.deadline);
        self.check.set_deadline(self.config.deadline);
        self.abs.set_restart_policy(self.config.restarts);
        self.check.set_restart_policy(self.config.restarts);
        self.abs.set_preprocess(self.config.preprocess);
        self.check.set_preprocess(self.config.preprocess);
        // Baseline for the whole-call effort budget: every inner SAT
        // call below is capped by what remains of it, so the solve
        // stops at a deterministic, machine-independent conflict count.
        let effort_start = self.effort().conflicts;
        loop {
            if let Some(max) = self.config.max_iterations {
                if self.stats.iterations >= max {
                    return Qbf2Result::Unknown;
                }
            }
            if let Some(d) = self.config.deadline {
                if Instant::now() >= d {
                    return Qbf2Result::Unknown;
                }
            }
            if let Some(b) = self.config.effort_budget {
                if self.effort().conflicts - effort_start >= b {
                    return Qbf2Result::Unknown;
                }
            }
            self.stats.iterations += 1;

            // 1. Candidate from the abstraction.
            let budget = self.inner_budget(effort_start);
            self.abs.set_effort_budget(budget);
            let candidate = match self.abs.solve() {
                SolveResult::Unsat => return Qbf2Result::Invalid,
                SolveResult::Unknown => return Qbf2Result::Unknown,
                SolveResult::Sat => {
                    let m: Vec<bool> = self
                        .e_vars
                        .iter()
                        .map(|&v| self.abs.model_value(Lit::pos(v)).unwrap_or(false))
                        .collect();
                    m
                }
            };

            // 2. Counterexample check: ∃U. ¬φ(candidate, U)?
            let budget = self.inner_budget(effort_start);
            self.check.set_effort_budget(budget);
            let assumptions: Vec<Lit> = self
                .check_e_vars
                .iter()
                .zip(&candidate)
                .map(|(&v, &val)| Lit::new(v, !val))
                .collect();
            match self.check.solve_with_assumptions(&assumptions) {
                SolveResult::Unsat => return Qbf2Result::Valid(candidate),
                SolveResult::Unknown => return Qbf2Result::Unknown,
                SolveResult::Sat => {
                    let u_star: Vec<(usize, bool)> = self
                        .u_pis
                        .iter()
                        .zip(&self.check_u_vars)
                        .map(|(&pi, &v)| (pi, self.check.model_value(Lit::pos(v)).unwrap_or(false)))
                        .collect();
                    self.refine(&u_star);
                }
            }
        }
    }

    /// Adds the expansion copy `φ(E, u★)` to the abstraction.
    fn refine(&mut self, u_star: &[(usize, bool)]) {
        let nodes_before = self.aig.node_count();
        let cof = self.aig.cofactor_many(self.matrix, u_star);
        self.stats.refinement_nodes += self.aig.node_count() - nodes_before;
        let lit = self.abs_enc.encode(&mut self.abs_cnf, &self.aig, cof);
        self.abs_cnf.add_unit(lit);
        self.abs.ensure_vars(self.abs_cnf.num_vars());
        for i in self.abs_sent..self.abs_cnf.num_clauses() {
            self.abs
                .add_clause(self.abs_cnf.clauses()[i].iter().copied());
        }
        self.abs_sent = self.abs_cnf.num_clauses();
    }
}
