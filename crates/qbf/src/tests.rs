use step_aig::{Aig, AigLit};
use step_cnf::card::{at_least_one, at_most_k, CardEncoding};

use crate::{solve_qdimacs, ExistsForall, Qbf2Config, Qbf2Result, QbfOutcome};

/// Brute-force decision of ∃E ∀U. φ by full expansion.
fn brute_exists_forall(aig: &Aig, matrix: AigLit, e: &[usize], u: &[usize]) -> Option<Vec<bool>> {
    let n = aig.num_inputs();
    'outer: for em in 0..1usize << e.len() {
        let mut base = vec![false; n];
        for (i, &pi) in e.iter().enumerate() {
            base[pi] = em >> i & 1 == 1;
        }
        for um in 0..1usize << u.len() {
            let mut v = base.clone();
            for (i, &pi) in u.iter().enumerate() {
                v[pi] = um >> i & 1 == 1;
            }
            if !aig.eval_lit(matrix, &v) {
                continue 'outer;
            }
        }
        return Some((0..e.len()).map(|i| em >> i & 1 == 1).collect());
    }
    None
}

#[test]
fn trivial_valid() {
    // ∃x ∀y. x ∨ y
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let y = aig.add_input("y");
    let m = aig.or(x, y);
    let mut s = ExistsForall::new(aig, m, vec![0], vec![1]);
    match s.solve() {
        Qbf2Result::Valid(w) => assert_eq!(w, vec![true]),
        other => panic!("expected Valid, got {other:?}"),
    }
    assert!(s.stats().iterations >= 1);
}

#[test]
fn trivial_invalid() {
    // ∃x ∀y. x ∧ y — no x makes it true for y = 0.
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let y = aig.add_input("y");
    let m = aig.and(x, y);
    let mut s = ExistsForall::new(aig, m, vec![0], vec![1]);
    assert_eq!(s.solve(), Qbf2Result::Invalid);
}

#[test]
fn xor_is_invalid_equiv_needs_matching() {
    // ∃x ∀y. x ⊕ y is invalid; ∃x ∀y. (x ⊕ y) ∨ (x ↔ y) is valid.
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let y = aig.add_input("y");
    let m = aig.xor(x, y);
    let mut s = ExistsForall::new(aig.clone(), m, vec![0], vec![1]);
    assert_eq!(s.solve(), Qbf2Result::Invalid);

    let xn = aig.xnor(x, y);
    let both = aig.or(m, xn);
    let mut s2 = ExistsForall::new(aig, both, vec![0], vec![1]);
    assert!(matches!(s2.solve(), Qbf2Result::Valid(_)));
}

#[test]
fn refuter_preserves_results_and_exports() {
    use crate::CounterexampleRefuter;
    use step_cnf::{Lit, Var};
    use step_sat::LearntExport;
    // ∃x0,x1 ∀y0,y1. (x0 ∨ y0 ∨ y1) ∧ (x1 ∨ ¬y0) — valid (x0=x1=1),
    // with enough structure for a couple of CEGAR refinements.
    let mut aig = Aig::new();
    let x0 = aig.add_input("x0");
    let x1 = aig.add_input("x1");
    let y0 = aig.add_input("y0");
    let y1 = aig.add_input("y1");
    let ys = aig.or(y0, y1);
    let c0 = aig.or(x0, ys);
    let c1 = aig.or(x1, !y0);
    let m = aig.and(c0, c1);
    let (e, u) = (vec![0, 1], vec![2, 3]);

    let mut plain = ExistsForall::new(aig.clone(), m, e.clone(), u.clone());
    let baseline = plain.solve();
    assert!(matches!(baseline, Qbf2Result::Valid(_)));

    // A cold refuter must not change the result or the trajectory: it
    // is never even consulted, and the final UNSAT check's proof is
    // harvested into it.
    let cold = CounterexampleRefuter::new(&aig, m, &e, &u);
    assert!(!cold.is_warm());
    let mut with_cold = ExistsForall::new(aig.clone(), m, e.clone(), u.clone());
    with_cold.set_refuter(Some(cold));
    assert_eq!(with_cold.solve(), baseline);
    assert_eq!(with_cold.stats().iterations, plain.stats().iterations);
    let harvested = with_cold.take_refuter().expect("refuter survives solve");

    // A warm refuter (here seeded with an implied clause over the
    // check CNF's first variable, which binds x0) may short-circuit
    // the final check but must agree with the baseline. Seeding it
    // from the harvested refuter's snapshot is the cross-session path.
    let mut seeded = CounterexampleRefuter::new(&aig, m, &e, &u);
    seeded.import_learnts(&harvested.export_learnts(64, 64));
    seeded.import_learnts(&LearntExport {
        // The check CNF asserts ¬m, which implies ¬x0 ∨ ¬x1 (setting
        // both makes m true); vars 0 and 1 bind the existentials.
        clauses: vec![vec![Lit::neg(Var::new(0)), Lit::neg(Var::new(1))]],
        activities: vec![],
    });
    assert!(seeded.is_warm());
    let mut with_warm = ExistsForall::new(aig.clone(), m, e.clone(), u.clone());
    with_warm.set_refuter(Some(seeded));
    assert_eq!(with_warm.solve(), baseline);

    // Invalid instances are untouched too (the refuter never answers
    // their abstraction-side refutation).
    let inv = aig.and(x0, y0);
    let mut plain_inv = ExistsForall::new(aig.clone(), inv, e.clone(), u.clone());
    let mut with_inv = ExistsForall::new(aig.clone(), inv, e.clone(), u.clone());
    with_inv.set_refuter(Some(CounterexampleRefuter::new(&aig, inv, &e, &u)));
    assert_eq!(plain_inv.solve(), Qbf2Result::Invalid);
    assert_eq!(with_inv.solve(), Qbf2Result::Invalid);
}

#[test]
fn no_universals_reduces_to_sat() {
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let y = aig.add_input("y");
    let m = aig.and(x, !y);
    let mut s = ExistsForall::new(aig, m, vec![0, 1], vec![]);
    match s.solve() {
        Qbf2Result::Valid(w) => assert_eq!(w, vec![true, false]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn no_existentials_reduces_to_validity() {
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let taut = aig.or(x, !x);
    let mut s = ExistsForall::new(aig.clone(), taut, vec![], vec![0]);
    assert!(matches!(s.solve(), Qbf2Result::Valid(_)));
    let mut s2 = ExistsForall::new(aig, x, vec![], vec![0]);
    assert_eq!(s2.solve(), Qbf2Result::Invalid);
}

#[test]
fn constant_matrices() {
    let mut aig = Aig::new();
    let _ = aig.add_input("x");
    let mut s = ExistsForall::new(aig.clone(), AigLit::TRUE, vec![0], vec![]);
    assert!(matches!(s.solve(), Qbf2Result::Valid(_)));
    let mut s2 = ExistsForall::new(aig, AigLit::FALSE, vec![0], vec![]);
    assert_eq!(s2.solve(), Qbf2Result::Invalid);
}

#[test]
fn side_constraints_restrict_witness() {
    // ∃x0 x1 ∀y. (x0 ∨ x1 ∨ y) with side constraint at-most-1(x0,x1)
    // and at-least-1(x0,x1): witness must set exactly one xi, and the
    // matrix then needs that xi to cover y = 0 — both single-x choices
    // work.
    let mut aig = Aig::new();
    let x0 = aig.add_input("x0");
    let x1 = aig.add_input("x1");
    let y = aig.add_input("y");
    let t = aig.or(x0, x1);
    let m = aig.or(t, y);
    let mut s = ExistsForall::new(aig, m, vec![0, 1], vec![2]);
    s.add_exists_cnf(|cnf, e| {
        at_least_one(cnf, e);
        at_most_k(cnf, e, 1, CardEncoding::Pairwise);
    });
    match s.solve() {
        Qbf2Result::Valid(w) => {
            assert_eq!(w.iter().filter(|&&b| b).count(), 1, "exactly one: {w:?}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn side_constraints_can_make_invalid() {
    // ∃x ∀y. x ∨ y needs x = 1, but we forbid it.
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let y = aig.add_input("y");
    let m = aig.or(x, y);
    let mut s = ExistsForall::new(aig, m, vec![0], vec![1]);
    s.add_exists_cnf(|cnf, e| {
        cnf.add_unit(!e[0]);
    });
    assert_eq!(s.solve(), Qbf2Result::Invalid);
}

#[test]
fn iteration_budget_reports_unknown() {
    // A formula needing several refinements: ∃x1..x4 ∀y1..y4. ∧(xi↔yi)
    // is invalid, and CEGAR needs iterations to learn it.
    let mut aig = Aig::new();
    let xs: Vec<_> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
    let ys: Vec<_> = (0..4).map(|i| aig.add_input(format!("y{i}"))).collect();
    let eqs: Vec<_> = (0..4).map(|i| aig.xnor(xs[i], ys[i])).collect();
    let m = aig.and_many(&eqs);
    let mut s = ExistsForall::new(aig, m, (0..4).collect(), (4..8).collect());
    s.set_config(Qbf2Config {
        max_iterations: Some(1),
        ..Qbf2Config::default()
    });
    assert_eq!(s.solve(), Qbf2Result::Unknown);
}

#[test]
fn effort_budget_truncates_deterministically_and_charges_inner_work() {
    // A pigeonhole matrix (5 pigeons, 4 holes) over the existential
    // block: once a refinement copies it into the abstraction, the
    // refutation needs real conflicts. Under a total-conflict budget
    // the solve must stop at the same effort snapshot every time (the
    // machine-independence the Work budgets of step-core rely on).
    let build = || {
        let (pigeons, holes) = (5, 4);
        let mut aig = Aig::new();
        let x: Vec<Vec<_>> = (0..pigeons)
            .map(|p| {
                (0..holes)
                    .map(|h| aig.add_input(format!("x{p}_{h}")))
                    .collect()
            })
            .collect();
        let mut parts = Vec::new();
        for p in 0..pigeons {
            let row = x[p].clone();
            parts.push(aig.or_many(&row));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    let both = aig.and(x[p1][h], x[p2][h]);
                    parts.push(!both);
                }
            }
        }
        let m = aig.and_many(&parts);
        let n = aig.num_inputs();
        ExistsForall::new(aig, m, (0..n).collect(), Vec::new())
    };
    // Unbudgeted: Invalid, with nonzero effort across the solvers.
    let mut free = build();
    assert_eq!(free.solve(), Qbf2Result::Invalid);
    let full = free.effort();
    assert!(full.conflicts > 0, "refutation needs conflicts: {full:?}");
    assert!(full.propagations > 0);
    // Budget one conflict below the full cost: Unknown, at an exact,
    // reproducible truncation point.
    let run_budgeted = || {
        let mut s = build();
        s.set_effort_budget(Some(full.conflicts - 1));
        let r = s.solve();
        (r, s.effort())
    };
    let (r1, e1) = run_budgeted();
    let (r2, e2) = run_budgeted();
    assert_eq!(r1, Qbf2Result::Unknown);
    assert_eq!((r1, e1), (r2, e2), "truncation point must be exact");
    assert!(e1.conflicts < full.conflicts, "budget is a hard cap");
}

#[test]
fn deadline_reports_unknown() {
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let y = aig.add_input("y");
    let m = aig.or(x, y);
    let mut s = ExistsForall::new(aig, m, vec![0], vec![1]);
    s.set_config(Qbf2Config {
        deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        ..Qbf2Config::default()
    });
    assert_eq!(s.solve(), Qbf2Result::Unknown);
}

// ---------------------------------------------------------------------
// QDIMACS front-end
// ---------------------------------------------------------------------

#[test]
fn qdimacs_forall_exists_true() {
    // ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y): y = ¬x always works.
    let text = "p cnf 2 2\na 1 0\ne 2 0\n1 2 0\n-1 -2 0\n";
    assert_eq!(
        solve_qdimacs(text, Qbf2Config::default()).unwrap(),
        QbfOutcome::True
    );
}

#[test]
fn qdimacs_exists_forall_false() {
    // ∃y ∀x. (x ∨ y) ∧ (¬x ∨ ¬y): no fixed y works for both x values.
    let text = "p cnf 2 2\ne 2 0\na 1 0\n1 2 0\n-1 -2 0\n";
    assert_eq!(
        solve_qdimacs(text, Qbf2Config::default()).unwrap(),
        QbfOutcome::False
    );
}

#[test]
fn qdimacs_free_variables_are_existential() {
    // Free var 1 with clause (1): satisfiable.
    let text = "p cnf 1 1\n1 0\n";
    assert_eq!(
        solve_qdimacs(text, Qbf2Config::default()).unwrap(),
        QbfOutcome::True
    );
    let text2 = "p cnf 1 2\n1 0\n-1 0\n";
    assert_eq!(
        solve_qdimacs(text2, Qbf2Config::default()).unwrap(),
        QbfOutcome::False
    );
}

#[test]
fn qdimacs_pure_forall() {
    let taut = "p cnf 1 1\na 1 0\n1 -1 0\n";
    assert_eq!(
        solve_qdimacs(taut, Qbf2Config::default()).unwrap(),
        QbfOutcome::True
    );
    let not_taut = "p cnf 1 1\na 1 0\n1 0\n";
    assert_eq!(
        solve_qdimacs(not_taut, Qbf2Config::default()).unwrap(),
        QbfOutcome::False
    );
}

#[test]
fn qdimacs_rejects_3qbf() {
    let text = "p cnf 3 1\ne 1 0\na 2 0\ne 3 0\n1 2 3 0\n";
    assert!(solve_qdimacs(text, Qbf2Config::default()).is_err());
}

// ---------------------------------------------------------------------
// randomized cross-checks against expansion
// ---------------------------------------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..30)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn cegar_matches_expansion(ops in arb_ops(), ne in 1usize..4) {
            let n = 6usize;
            let ne = ne.min(n - 1);
            let mut aig = Aig::new();
            let mut pool: Vec<AigLit> =
                (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
            for (op, i, j) in ops {
                let a = pool[i % pool.len()];
                let b = pool[j % pool.len()];
                let v = match op {
                    0 => aig.and(a, b),
                    1 => aig.or(a, b),
                    2 => aig.xor(a, b),
                    _ => !a,
                };
                pool.push(v);
            }
            let matrix = *pool.last().unwrap();
            let e: Vec<usize> = (0..ne).collect();
            let u: Vec<usize> = (ne..n).collect();
            let want = brute_exists_forall(&aig, matrix, &e, &u);
            let mut s = ExistsForall::new(aig.clone(), matrix, e.clone(), u.clone());
            match s.solve() {
                Qbf2Result::Valid(w) => {
                    prop_assert!(want.is_some(), "CEGAR said Valid, expansion says Invalid");
                    // Verify the witness truly beats every u assignment.
                    let mut base = vec![false; n];
                    for (i, &pi) in e.iter().enumerate() {
                        base[pi] = w[i];
                    }
                    for um in 0..1usize << u.len() {
                        let mut v = base.clone();
                        for (i, &pi) in u.iter().enumerate() {
                            v[pi] = um >> i & 1 == 1;
                        }
                        prop_assert!(aig.eval_lit(matrix, &v), "witness fails at u={um}");
                    }
                }
                Qbf2Result::Invalid => prop_assert!(want.is_none()),
                Qbf2Result::Unknown => prop_assert!(false, "no budget was set"),
            }
        }
    }
}
