//! Minimal QDIMACS front-end for the CEGAR 2QBF solver.
//!
//! Usage: `qbf2_solve <file.qdimacs|-> [--max-iters n]`
//!
//! Prints `s cnf 1` (true) or `s cnf 0` (false), the QDIMACS-standard
//! result lines.

use std::io::Read;

use step_qbf::{solve_qdimacs, Qbf2Config, QbfOutcome};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut max_iters = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-iters" => {
                i += 1;
                max_iters = args.get(i).and_then(|s| s.parse().ok());
            }
            p if path.is_none() => path = Some(p.to_owned()),
            _ => {
                eprintln!("usage: qbf2_solve <file.qdimacs|-> [--max-iters n]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: qbf2_solve <file.qdimacs|-> [--max-iters n]");
        std::process::exit(2);
    };
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let config = Qbf2Config {
        max_iterations: max_iters,
        ..Qbf2Config::default()
    };
    match solve_qdimacs(&text, config) {
        Ok(QbfOutcome::True) => {
            println!("s cnf 1");
            std::process::exit(10);
        }
        Ok(QbfOutcome::False) => {
            println!("s cnf 0");
            std::process::exit(20);
        }
        Ok(QbfOutcome::Unknown) => {
            println!("s cnf -1");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
