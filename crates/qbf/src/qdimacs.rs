//! QDIMACS front-end for (up to) two quantifier blocks.

use std::error::Error;
use std::fmt;

use step_aig::{Aig, AigLit};
use step_cnf::{parse_qdimacs, Quant};

use crate::cegar::{ExistsForall, Qbf2Config, Qbf2Result};

/// Truth value of a closed QBF.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QbfOutcome {
    /// The formula is true.
    True,
    /// The formula is false.
    False,
    /// A budget expired.
    Unknown,
}

/// Error for unsupported or malformed QDIMACS input.
#[derive(Debug)]
pub struct QdimacsError(String);

impl fmt::Display for QdimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qdimacs error: {}", self.0)
    }
}

impl Error for QdimacsError {}

/// Solves a (≤2)-block QDIMACS formula with the CEGAR engine.
///
/// Free (unquantified) variables are bound to an outermost existential
/// block, per QDIMACS convention.
///
/// # Errors
///
/// Returns [`QdimacsError`] on parse failures, more than two blocks, or
/// two blocks with the same quantifier.
pub fn solve_qdimacs(text: &str, config: Qbf2Config) -> Result<QbfOutcome, QdimacsError> {
    let file = parse_qdimacs(text).map_err(|e| QdimacsError(e.to_string()))?;
    let n = file.matrix.num_vars();

    // Normalize the prefix: collapse adjacent same-quantifier blocks,
    // attach free variables to an outermost ∃ block.
    let mut blocks: Vec<(Quant, Vec<usize>)> = Vec::new();
    let mut quantified = vec![false; n];
    for (q, vars) in &file.prefix {
        for &v in vars {
            quantified[v] = true;
        }
        match blocks.last_mut() {
            Some((lq, lv)) if *lq == *q => lv.extend(vars.iter().copied()),
            _ => blocks.push((*q, vars.clone())),
        }
    }
    let free: Vec<usize> = (0..n).filter(|&v| !quantified[v]).collect();
    if !free.is_empty() {
        match blocks.first_mut() {
            Some((Quant::Exists, vars)) => vars.extend(free),
            _ => blocks.insert(0, (Quant::Exists, free)),
        }
    }
    if blocks.len() > 2 {
        return Err(QdimacsError(format!(
            "{} quantifier blocks; only 2QBF supported",
            blocks.len()
        )));
    }

    // Build the matrix AIG.
    let mut aig = Aig::new();
    let inputs: Vec<AigLit> = (0..n).map(|v| aig.add_input(format!("x{v}"))).collect();
    let mut clause_lits = Vec::with_capacity(file.matrix.num_clauses());
    for clause in file.matrix.clauses() {
        let ls: Vec<AigLit> = clause
            .iter()
            .map(|l| inputs[l.var().index()].xor_complement(l.is_neg()))
            .collect();
        clause_lits.push(aig.or_many(&ls));
    }
    let matrix = aig.and_many(&clause_lits);

    match blocks.as_slice() {
        [] => {
            // Ground formula.
            Ok(if matrix == AigLit::TRUE {
                QbfOutcome::True
            } else {
                QbfOutcome::False
            })
        }
        [(Quant::Exists, evars)] => run(aig, matrix, evars.clone(), Vec::new(), config, false),
        [(Quant::Forall, uvars)] => {
            // ∀U.φ ≡ ¬∃U.¬φ
            run(aig, !matrix, uvars.clone(), Vec::new(), config, true)
        }
        [(Quant::Exists, evars), (Quant::Forall, uvars)] => {
            run(aig, matrix, evars.clone(), uvars.clone(), config, false)
        }
        [(Quant::Forall, uvars), (Quant::Exists, evars)] => {
            // ∀U ∃E.φ ≡ ¬(∃U ∀E.¬φ)
            run(aig, !matrix, uvars.clone(), evars.clone(), config, true)
        }
        _ => Err(QdimacsError("two blocks with the same quantifier".into())),
    }
}

fn run(
    aig: Aig,
    matrix: AigLit,
    e: Vec<usize>,
    u: Vec<usize>,
    config: Qbf2Config,
    negate: bool,
) -> Result<QbfOutcome, QdimacsError> {
    let mut solver = ExistsForall::new(aig, matrix, e, u);
    solver.set_config(config);
    Ok(match solver.solve() {
        Qbf2Result::Valid(_) => {
            if negate {
                QbfOutcome::False
            } else {
                QbfOutcome::True
            }
        }
        Qbf2Result::Invalid => {
            if negate {
                QbfOutcome::True
            } else {
                QbfOutcome::False
            }
        }
        Qbf2Result::Unknown => QbfOutcome::Unknown,
    })
}
