//! Minimal Unsatisfiable Subformula (MUS) extraction.
//!
//! This crate plays the role of MUSer in the original STEP pipeline:
//! the paper bootstraps the QBF search bounds from the group-oriented
//! MUS-based bi-decomposition of \[7\] (`STEP-MG`), and that model maps
//! each candidate variable's equality constraints to a *group* of
//! clauses whose minimal unsatisfiable subset yields a good variable
//! partition.
//!
//! The algorithm is deletion-based with core-guided trimming: every
//! group gets a selector literal, an initial solve under all selectors
//! returns an unsat core (a subset of groups), and each remaining group
//! is then tested for necessity, re-trimming with every new core.
//!
//! # Example
//!
//! ```
//! use step_cnf::{Cnf, Lit};
//! use step_mus::{group_mus, MusConfig};
//!
//! // hard: (x), groups: {(¬x)}, {(y)} — the MUS is just group 0.
//! let mut hard = Cnf::new();
//! let x = Lit::pos(hard.new_var());
//! let y = Lit::pos(hard.new_var());
//! hard.add_unit(x);
//! let groups = vec![vec![vec![!x]], vec![vec![y]]];
//! let mus = group_mus(&hard, &groups, &MusConfig::default()).unwrap();
//! assert_eq!(mus.groups, vec![0]);
//! assert!(mus.minimal);
//! ```

use std::time::Instant;

use step_cnf::{Cnf, Lit};
use step_sat::{EffortStats, SolveResult, Solver};

/// Budgets for MUS extraction.
#[derive(Clone, Copy, Debug, Default)]
pub struct MusConfig {
    /// Wall-clock deadline; when hit, the current (sound but possibly
    /// non-minimal) over-approximation is returned with
    /// `minimal = false`.
    pub deadline: Option<Instant>,
    /// Conflict budget per SAT call (`None` = unlimited). A call that
    /// exhausts its budget is treated as "keep the group" (sound).
    pub conflicts_per_call: Option<u64>,
    /// Total conflict budget for the whole extraction (`None` =
    /// unlimited): each SAT call is capped by what remains of it, and
    /// the deletion loop stops (soundly, `minimal = false`) once it is
    /// spent. The deterministic analogue of `deadline` — the cut-off
    /// falls on the same call on every machine.
    pub effort_budget: Option<u64>,
}

/// Result of a group-MUS extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MusResult {
    /// Indices of the kept groups (sorted); the hard clauses together
    /// with these groups are unsatisfiable.
    pub groups: Vec<usize>,
    /// Whether minimality was fully established (budgets may cut the
    /// minimization short).
    pub minimal: bool,
}

/// Extracts a minimal subset of `groups` (each a set of clauses) whose
/// union with the `hard` clauses is unsatisfiable.
///
/// Returns `None` if `hard ∧ ⋃ groups` is satisfiable (no MUS exists)
/// or a budget expired before the initial solve finished.
pub fn group_mus(hard: &Cnf, groups: &[Vec<Vec<Lit>>], config: &MusConfig) -> Option<MusResult> {
    group_mus_with_effort(hard, groups, config).0
}

/// The conflict budget for the next SAT call: the per-call limit
/// capped by what remains of the whole-extraction effort budget.
fn call_budget(config: &MusConfig, solver: &Solver) -> Option<u64> {
    let remaining = config
        .effort_budget
        .map(|b| b.saturating_sub(solver.effort().conflicts));
    match (config.conflicts_per_call, remaining) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

/// Whether a budget (wall or effort) is spent.
fn out_of_budget(config: &MusConfig, solver: &Solver) -> bool {
    if let Some(d) = config.deadline {
        if Instant::now() >= d {
            return true;
        }
    }
    if let Some(b) = config.effort_budget {
        if solver.effort().conflicts >= b {
            return true;
        }
    }
    false
}

/// [`group_mus`] plus the effort the extraction expended, so callers
/// charging solver work to an external budget can account it even when
/// no MUS exists. The effort counters start at zero for each call (the
/// extraction owns a fresh solver).
pub fn group_mus_with_effort(
    hard: &Cnf,
    groups: &[Vec<Vec<Lit>>],
    config: &MusConfig,
) -> (Option<MusResult>, EffortStats) {
    let mut solver = Solver::new();
    solver.add_cnf(hard);
    solver.set_deadline(config.deadline);
    // One selector per group: clauses become (¬s_g ∨ clause).
    let selectors: Vec<Lit> = groups
        .iter()
        .map(|clauses| {
            let s = Lit::pos(solver.new_var());
            for c in clauses {
                for l in c {
                    solver.ensure_vars(l.var().index() + 1);
                }
                let mut cl = Vec::with_capacity(c.len() + 1);
                cl.push(!s);
                cl.extend_from_slice(c);
                solver.add_clause(cl);
            }
            s
        })
        .collect();

    let all: Vec<Lit> = selectors.clone();
    solver.set_effort_budget(call_budget(config, &solver));
    let mut current: Vec<usize> = match solver.solve_with_assumptions(&all) {
        SolveResult::Sat | SolveResult::Unknown => return (None, solver.effort()),
        SolveResult::Unsat => {
            // Trim to the initial core.
            core_groups(&solver, &selectors)
        }
    };
    current.sort_unstable();

    // Deletion loop with core-based re-trimming.
    let mut minimal = true;
    let mut i = 0;
    while i < current.len() {
        if out_of_budget(config, &solver) {
            minimal = false;
            break;
        }
        let candidate = current[i];
        let assumptions: Vec<Lit> = current
            .iter()
            .filter(|&&g| g != candidate)
            .map(|&g| selectors[g])
            .collect();
        solver.set_effort_budget(call_budget(config, &solver));
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat => {
                // Necessary: keep it, move on.
                i += 1;
            }
            SolveResult::Unknown => {
                // Cannot prove redundancy within budget: keep (sound).
                minimal = false;
                i += 1;
            }
            SolveResult::Unsat => {
                // Redundant; re-trim with the new core.
                let mut next = core_groups(&solver, &selectors);
                next.sort_unstable();
                // Preserve position: groups before `i` were proven
                // necessary and stay; the core may only shrink the rest.
                let head: Vec<usize> = current[..i].to_vec();
                let tail: Vec<usize> = next
                    .into_iter()
                    .filter(|g| !head.contains(g) && *g != candidate)
                    .collect();
                current = head;
                current.extend(tail);
            }
        }
    }
    (
        Some(MusResult {
            groups: current,
            minimal,
        }),
        solver.effort(),
    )
}

fn core_groups(solver: &Solver, selectors: &[Lit]) -> Vec<usize> {
    let core = solver.failed_assumptions();
    if core.is_empty() {
        // Hard clauses alone are UNSAT: the empty group set is the MUS.
        return Vec::new();
    }
    selectors
        .iter()
        .enumerate()
        .filter(|(_, s)| core.contains(s))
        .map(|(g, _)| g)
        .collect()
}

/// Extracts a plain clause-level MUS of `cnf` (every clause its own
/// group). Returns the indices of a minimal unsatisfiable clause
/// subset, or `None` if `cnf` is satisfiable.
pub fn mus(cnf: &Cnf, config: &MusConfig) -> Option<MusResult> {
    let hard = Cnf::with_vars(cnf.num_vars());
    let groups: Vec<Vec<Vec<Lit>>> = cnf.clauses().iter().map(|c| vec![c.clone()]).collect();
    group_mus(&hard, &groups, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v)
    }

    fn is_unsat(hard: &Cnf, groups: &[Vec<Vec<Lit>>], keep: &[usize]) -> bool {
        let mut s = Solver::new();
        s.add_cnf(hard);
        for &g in keep {
            for c in &groups[g] {
                for l in c {
                    s.ensure_vars(l.var().index() + 1);
                }
                s.add_clause(c.iter().copied());
            }
        }
        s.solve() == SolveResult::Unsat
    }

    /// Checks the MUS contract: unsat as returned, and removing any
    /// single group restores satisfiability.
    fn assert_is_mus(hard: &Cnf, groups: &[Vec<Vec<Lit>>], result: &MusResult) {
        assert!(
            is_unsat(hard, groups, &result.groups),
            "kept groups must be UNSAT"
        );
        assert!(result.minimal);
        for &g in &result.groups {
            let rest: Vec<usize> = result.groups.iter().copied().filter(|&x| x != g).collect();
            assert!(
                !is_unsat(hard, groups, &rest),
                "dropping group {g} must make it SAT"
            );
        }
    }

    #[test]
    fn sat_input_returns_none() {
        let mut hard = Cnf::new();
        let x = Lit::pos(hard.new_var());
        let groups = vec![vec![vec![x]]];
        assert!(group_mus(&hard, &groups, &MusConfig::default()).is_none());
    }

    #[test]
    fn hard_clauses_alone_unsat_gives_empty_mus() {
        let mut hard = Cnf::new();
        let x = Lit::pos(hard.new_var());
        hard.add_unit(x);
        hard.add_unit(!x);
        let groups = vec![vec![vec![x]]];
        let r = group_mus(&hard, &groups, &MusConfig::default()).unwrap();
        assert!(r.groups.is_empty());
    }

    #[test]
    fn single_necessary_group() {
        let mut hard = Cnf::new();
        let x = Lit::pos(hard.new_var());
        let y = Lit::pos(hard.new_var());
        hard.add_unit(x);
        let groups = vec![vec![vec![!x]], vec![vec![y]]];
        let r = group_mus(&hard, &groups, &MusConfig::default()).unwrap();
        assert_eq!(r.groups, vec![0]);
        assert_is_mus(&hard, &groups, &r);
    }

    #[test]
    fn chain_mus() {
        // x1, x1->x2, x2->x3, ¬x3 plus an irrelevant group.
        let mut hard = Cnf::new();
        let n = 4;
        hard.ensure_vars(n);
        let groups = vec![
            vec![vec![lit(1)]],
            vec![vec![lit(-1), lit(2)]],
            vec![vec![lit(-2), lit(3)]],
            vec![vec![lit(-3)]],
            vec![vec![lit(4)]], // irrelevant
        ];
        let r = group_mus(&hard, &groups, &MusConfig::default()).unwrap();
        assert_eq!(r.groups, vec![0, 1, 2, 3]);
        assert_is_mus(&hard, &groups, &r);
    }

    #[test]
    fn picks_some_minimal_subset_when_overlapping() {
        // Two independent contradictions; a MUS contains exactly one.
        let mut hard = Cnf::new();
        hard.ensure_vars(2);
        let groups = vec![
            vec![vec![lit(1)]],
            vec![vec![lit(-1)]],
            vec![vec![lit(2)]],
            vec![vec![lit(-2)]],
        ];
        let r = group_mus(&hard, &groups, &MusConfig::default()).unwrap();
        assert_eq!(r.groups.len(), 2);
        assert_is_mus(&hard, &groups, &r);
    }

    #[test]
    fn multi_clause_groups() {
        // Group 0 carries two clauses that together with hard are unsat.
        let mut hard = Cnf::new();
        hard.ensure_vars(3);
        hard.add_clause([lit(1), lit(2)]);
        let groups = vec![vec![vec![lit(-1)], vec![lit(-2)]], vec![vec![lit(3)]]];
        let r = group_mus(&hard, &groups, &MusConfig::default()).unwrap();
        assert_eq!(r.groups, vec![0]);
        assert_is_mus(&hard, &groups, &r);
    }

    #[test]
    fn plain_mus_on_clauses() {
        let mut cnf = Cnf::new();
        cnf.ensure_vars(3);
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1), lit(2)]);
        cnf.add_clause([lit(-2)]);
        cnf.add_clause([lit(3)]); // irrelevant
        let r = mus(&cnf, &MusConfig::default()).unwrap();
        assert_eq!(r.groups, vec![0, 1, 2]);
    }

    #[test]
    fn deadline_gives_sound_overapproximation() {
        let mut hard = Cnf::new();
        hard.ensure_vars(4);
        let groups: Vec<Vec<Vec<Lit>>> = vec![
            vec![vec![lit(1)]],
            vec![vec![lit(-1), lit(2)]],
            vec![vec![lit(-2), lit(3)]],
            vec![vec![lit(-3)]],
            vec![vec![lit(4)]],
        ];
        let config = MusConfig {
            deadline: Some(Instant::now()),
            ..MusConfig::default()
        };
        // Deadline hits after the initial UNSAT call: either None (if
        // even that was cut) or a sound over-approximation.
        if let Some(r) = group_mus(&hard, &groups, &config) {
            assert!(is_unsat(&hard, &groups, &r.groups));
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_groups() -> impl Strategy<Value = Vec<Vec<Vec<Lit>>>> {
            let clause = proptest::collection::vec(
                (0usize..5, proptest::bool::ANY)
                    .prop_map(|(v, n)| Lit::new(step_cnf::Var::new(v), n)),
                1..3,
            );
            let group = proptest::collection::vec(clause, 1..3);
            proptest::collection::vec(group, 1..8)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn mus_contract_holds(groups in arb_groups()) {
                let mut hard = Cnf::new();
                hard.ensure_vars(5);
                match group_mus(&hard, &groups, &MusConfig::default()) {
                    None => {
                        let all: Vec<usize> = (0..groups.len()).collect();
                        prop_assert!(!is_unsat(&hard, &groups, &all));
                    }
                    Some(r) => {
                        prop_assert!(is_unsat(&hard, &groups, &r.groups));
                        for &g in &r.groups {
                            let rest: Vec<usize> = r
                                .groups
                                .iter()
                                .copied()
                                .filter(|&x| x != g)
                                .collect();
                            prop_assert!(!is_unsat(&hard, &groups, &rest));
                        }
                    }
                }
            }
        }
    }
}
