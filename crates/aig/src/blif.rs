//! Reader/writer for the Berkeley Logic Interchange Format (BLIF),
//! the input format of the `Bi-dec` tool the paper compares against
//! (`bi_dec [circuit.blif] or 0 1`).
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names`
//! (SOP covers with `0`/`1`/`-` cubes, on-set and off-set), `.latch`
//! and `.end`, with `\` line continuations and `#` comments.
//!
//! ```
//! let text = "\
//! .model xor2
//! .inputs a b
//! .outputs f
//! .names a b f
//! 10 1
//! 01 1
//! .end
//! ";
//! let aig = step_aig::blif::parse(text)?;
//! assert_eq!(aig.eval(&[true, false]), vec![true]);
//! assert_eq!(aig.eval(&[true, true]), vec![false]);
//! # Ok::<(), step_aig::ParseError>(())
//! ```

use std::collections::HashMap;

use crate::error::ParseError;
use crate::graph::Aig;
use crate::lit::AigLit;

#[derive(Debug)]
struct NamesDef {
    line: usize,
    inputs: Vec<String>,
    output: String,
    cubes: Vec<(String, char)>,
}

/// Parses BLIF text into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed directives, inconsistent cube
/// widths, undefined signals or combinational cycles.
pub fn parse(text: &str) -> Result<Aig, ParseError> {
    // Join continuation lines, strip comments.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("");
        let cont = line.trim_end().ends_with('\\');
        let body = line.trim_end().trim_end_matches('\\');
        if pending.is_empty() {
            pending_line = lineno;
        }
        pending.push_str(body);
        pending.push(' ');
        if !cont {
            let full = pending.trim().to_owned();
            if !full.is_empty() {
                logical.push((pending_line, full));
            }
            pending.clear();
        }
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(usize, String, String, bool)> = Vec::new(); // line, in, out, init
    let mut names: Vec<NamesDef> = Vec::new();

    let mut i = 0;
    while i < logical.len() {
        let (lineno, line) = &logical[i];
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap_or("");
        match head {
            ".model" => {}
            ".inputs" => inputs.extend(toks.map(str::to_owned)),
            ".outputs" => outputs.extend(toks.map(str::to_owned)),
            ".latch" => {
                let args: Vec<&str> = toks.collect();
                if args.len() < 2 {
                    return Err(ParseError::new(*lineno, ".latch needs input and output"));
                }
                // Optional: <type> <control> before the init value.
                let init = match args.last() {
                    Some(&"0") | Some(&"2") | Some(&"3") => false,
                    Some(&"1") => true,
                    _ => false,
                };
                latches.push((*lineno, args[0].to_owned(), args[1].to_owned(), init));
            }
            ".names" => {
                let sig: Vec<String> = toks.map(str::to_owned).collect();
                if sig.is_empty() {
                    return Err(ParseError::new(*lineno, ".names needs at least an output"));
                }
                let output = sig.last().unwrap().clone();
                let ins = sig[..sig.len() - 1].to_vec();
                let mut cubes = Vec::new();
                while i + 1 < logical.len() && !logical[i + 1].1.starts_with('.') {
                    i += 1;
                    let (cl, cube_line) = &logical[i];
                    let parts: Vec<&str> = cube_line.split_whitespace().collect();
                    let (cube, val) = if ins.is_empty() {
                        if parts.len() != 1 {
                            return Err(ParseError::new(*cl, "constant cover expects one token"));
                        }
                        (String::new(), parts[0])
                    } else {
                        if parts.len() != 2 {
                            return Err(ParseError::new(*cl, "cube expects `<mask> <value>`"));
                        }
                        (parts[0].to_owned(), parts[1])
                    };
                    if cube.len() != ins.len() {
                        return Err(ParseError::new(*cl, "cube width mismatch"));
                    }
                    let val = match val {
                        "0" => '0',
                        "1" => '1',
                        _ => return Err(ParseError::new(*cl, "cube value must be 0 or 1")),
                    };
                    cubes.push((cube, val));
                }
                names.push(NamesDef {
                    line: *lineno,
                    inputs: ins,
                    output,
                    cubes,
                });
            }
            ".end" => break,
            ".exdc" | ".wire_load_slope" | ".gate" | ".mlatch" => {
                return Err(ParseError::new(
                    *lineno,
                    format!("unsupported directive {head}"),
                ))
            }
            _ if head.starts_with('.') => {
                // Ignore unknown dot-directives (e.g. .default_input_arrival).
            }
            _ => {
                return Err(ParseError::new(
                    *lineno,
                    format!("unexpected line `{line}`"),
                ));
            }
        }
        i += 1;
    }

    let mut aig = Aig::new();
    let mut sig: HashMap<String, AigLit> = HashMap::new();
    for name in &inputs {
        let lit = aig.add_input(name.clone());
        sig.insert(name.clone(), lit);
    }
    let mut latch_next: Vec<(usize, String)> = Vec::new();
    for (_, input, output, init) in &latches {
        let idx = aig.latches().len();
        let lit = aig.add_latch(output.clone(), *init);
        sig.insert(output.clone(), lit);
        latch_next.push((idx, input.clone()));
    }
    let by_output: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(k, n)| (n.output.clone(), k))
        .collect();

    // Resolve .names definitions (any order, cycle detection).
    fn resolve(
        target: &str,
        names: &[NamesDef],
        by_output: &HashMap<String, usize>,
        sig: &mut HashMap<String, AigLit>,
        aig: &mut Aig,
    ) -> Result<AigLit, ParseError> {
        if let Some(&l) = sig.get(target) {
            return Ok(l);
        }
        let mut stack = vec![target.to_owned()];
        let mut visiting: HashMap<String, bool> = HashMap::new();
        while let Some(name) = stack.last().cloned() {
            if sig.contains_key(&name) {
                stack.pop();
                continue;
            }
            let &k = by_output
                .get(&name)
                .ok_or_else(|| ParseError::new(0, format!("undefined signal `{name}`")))?;
            let def = &names[k];
            let pending: Vec<&String> = def
                .inputs
                .iter()
                .filter(|a| !sig.contains_key(*a))
                .collect();
            if pending.is_empty() {
                let lit = build_sop(aig, def, sig)?;
                sig.insert(name.clone(), lit);
                visiting.remove(&name);
                stack.pop();
            } else {
                if *visiting.get(&name).unwrap_or(&false) {
                    return Err(ParseError::new(
                        def.line,
                        format!("combinational cycle through `{name}`"),
                    ));
                }
                visiting.insert(name.clone(), true);
                for p in pending {
                    stack.push(p.clone());
                }
            }
        }
        Ok(sig[target])
    }

    for def in &names {
        resolve(&def.output, &names, &by_output, &mut sig, &mut aig)?;
    }
    for (idx, src) in latch_next {
        let lit = resolve(&src, &names, &by_output, &mut sig, &mut aig)?;
        aig.set_latch_next(idx, lit)
            .map_err(|e| ParseError::new(0, e.to_string()))?;
    }
    for name in &outputs {
        let lit = resolve(name, &names, &by_output, &mut sig, &mut aig)?;
        aig.add_output(name.clone(), lit);
    }
    Ok(aig)
}

fn build_sop(
    aig: &mut Aig,
    def: &NamesDef,
    sig: &HashMap<String, AigLit>,
) -> Result<AigLit, ParseError> {
    if def.cubes.is_empty() {
        // Empty cover = constant 0.
        return Ok(AigLit::FALSE);
    }
    let polarity = def.cubes[0].1;
    if def.cubes.iter().any(|(_, v)| *v != polarity) {
        return Err(ParseError::new(def.line, "mixed on-set/off-set cover"));
    }
    let ins: Vec<AigLit> = def.inputs.iter().map(|n| sig[n]).collect();
    let mut terms = Vec::with_capacity(def.cubes.len());
    for (cube, _) in &def.cubes {
        let mut lits = Vec::new();
        for (ch, &lit) in cube.chars().zip(ins.iter()) {
            match ch {
                '1' => lits.push(lit),
                '0' => lits.push(!lit),
                '-' => {}
                other => {
                    return Err(ParseError::new(
                        def.line,
                        format!("invalid cube character `{other}`"),
                    ))
                }
            }
        }
        terms.push(aig.and_many(&lits));
    }
    let cover = aig.or_many(&terms);
    Ok(cover.xor_complement(polarity == '0'))
}

/// Serializes a combinational or sequential [`Aig`] as BLIF.
pub fn write(aig: &Aig, model: &str) -> String {
    use crate::graph::AigNode;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let _ = write!(out, ".inputs");
    for pi in 0..aig.num_inputs() {
        let _ = write!(out, " {}", aig.input_name(pi));
    }
    let _ = writeln!(out);
    let _ = write!(out, ".outputs");
    for o in aig.outputs() {
        let _ = write!(out, " {}", o.name());
    }
    let _ = writeln!(out);
    let name_of = |lit: AigLit| -> (String, bool) {
        let id = lit.node();
        let base = match aig.node(id) {
            AigNode::Const => "__const0".to_owned(),
            AigNode::Input { pi } => aig.input_name(pi as usize).to_owned(),
            AigNode::Latch { idx } => aig.latches()[idx as usize].name().to_owned(),
            AigNode::And { .. } => format!("n{}", id.index()),
        };
        (base, lit.is_complement())
    };
    let mut used_const = false;
    for l in aig.latches() {
        if let Some(next) = l.next() {
            let (src, c) = name_of(next);
            let drv = format!("{}$in", l.name());
            let _ = writeln!(out, ".latch {} {} {}", drv, l.name(), u8::from(l.init()));
            let _ = writeln!(out, ".names {src} {drv}");
            let _ = writeln!(out, "{} 1", if c { '0' } else { '1' });
            if next.is_const() {
                used_const = true;
            }
        }
    }
    for (id, node) in aig.iter_nodes() {
        if let AigNode::And { f0, f1 } = node {
            let (a, ca) = name_of(f0);
            let (b, cb) = name_of(f1);
            used_const |= f0.is_const() || f1.is_const();
            let _ = writeln!(out, ".names {a} {b} n{}", id.index());
            let _ = writeln!(
                out,
                "{}{} 1",
                if ca { '0' } else { '1' },
                if cb { '0' } else { '1' }
            );
        }
    }
    for o in aig.outputs() {
        let (src, c) = name_of(o.lit());
        used_const |= o.lit().is_const();
        if src == o.name() && !c {
            continue;
        }
        let _ = writeln!(out, ".names {} {}", src, o.name());
        let _ = writeln!(out, "{} 1", if c { '0' } else { '1' });
    }
    if used_const {
        let _ = writeln!(out, ".names __const0");
    }
    let _ = writeln!(out, ".end");
    out
}
