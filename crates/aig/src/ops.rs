//! Structural and functional operations: support, substitution,
//! cofactors, Boolean quantification, levels.

use std::collections::HashMap;

use crate::graph::{Aig, AigNode, NodeId};
use crate::lit::AigLit;

impl Aig {
    /// The structural support of `root`: the sorted list of primary-input
    /// indices reachable from it. Latch leaves are reported through
    /// [`Aig::support_nodes`]; this method ignores them.
    pub fn support(&self, root: AigLit) -> Vec<usize> {
        let mut sup: Vec<usize> = self
            .support_nodes(root)
            .into_iter()
            .filter_map(|id| self.input_index_of(id))
            .collect();
        sup.sort_unstable();
        sup
    }

    /// The leaf nodes (inputs and latch outputs) reachable from `root`.
    pub fn support_nodes(&self, root: AigLit) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![root.node()];
        let mut leaves = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.node(id) {
                AigNode::Const => {}
                AigNode::Input { .. } | AigNode::Latch { .. } => leaves.push(id),
                AigNode::And { f0, f1 } => {
                    stack.push(f0.node());
                    stack.push(f1.node());
                }
            }
        }
        leaves.sort_unstable();
        leaves
    }

    /// Joint structural support of several roots (sorted input indices).
    pub fn support_many(&self, roots: &[AigLit]) -> Vec<usize> {
        let mut seen = vec![false; self.node_count()];
        let mut stack: Vec<NodeId> = roots.iter().map(|l| l.node()).collect();
        let mut sup = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.node(id) {
                AigNode::Const | AigNode::Latch { .. } => {}
                AigNode::Input { pi } => sup.push(pi as usize),
                AigNode::And { f0, f1 } => {
                    stack.push(f0.node());
                    stack.push(f1.node());
                }
            }
        }
        sup.sort_unstable();
        sup
    }

    /// Rebuilds the cone of `root` with the leaves in `subs` replaced by
    /// the given literals. Nodes not reachable from `root` are untouched;
    /// new nodes are appended (strashing keeps duplicates away).
    pub fn substitute(&mut self, root: AigLit, subs: &HashMap<NodeId, AigLit>) -> AigLit {
        let mut memo: HashMap<NodeId, AigLit> = subs.clone();
        let mut stack = vec![root.node()];
        while let Some(&id) = stack.last() {
            if memo.contains_key(&id) {
                stack.pop();
                continue;
            }
            match self.node(id) {
                AigNode::Const => {
                    memo.insert(id, AigLit::FALSE);
                    stack.pop();
                }
                AigNode::Input { .. } | AigNode::Latch { .. } => {
                    memo.insert(id, AigLit::new(id, false));
                    stack.pop();
                }
                AigNode::And { f0, f1 } => {
                    let m0 = memo.get(&f0.node()).copied();
                    let m1 = memo.get(&f1.node()).copied();
                    match (m0, m1) {
                        (Some(a), Some(b)) => {
                            let a = a.xor_complement(f0.is_complement());
                            let b = b.xor_complement(f1.is_complement());
                            let v = self.and(a, b);
                            memo.insert(id, v);
                            stack.pop();
                        }
                        _ => {
                            if m0.is_none() {
                                stack.push(f0.node());
                            }
                            if m1.is_none() {
                                stack.push(f1.node());
                            }
                        }
                    }
                }
            }
        }
        memo[&root.node()].xor_complement(root.is_complement())
    }

    /// The cofactor of `root` with primary input `pi` fixed to `value`.
    pub fn cofactor(&mut self, root: AigLit, pi: usize, value: bool) -> AigLit {
        let mut subs = HashMap::new();
        subs.insert(self.input_node(pi), Aig::constant(value));
        self.substitute(root, &subs)
    }

    /// Simultaneous cofactor over several inputs.
    pub fn cofactor_many(&mut self, root: AigLit, assignment: &[(usize, bool)]) -> AigLit {
        let subs: HashMap<NodeId, AigLit> = assignment
            .iter()
            .map(|&(pi, v)| (self.input_node(pi), Aig::constant(v)))
            .collect();
        self.substitute(root, &subs)
    }

    /// Existential quantification `∃ pis . root` by cofactor expansion.
    ///
    /// Worst-case cost is exponential in `pis.len()`; intended for small
    /// variable sets (reference implementations, tests).
    pub fn exists(&mut self, root: AigLit, pis: &[usize]) -> AigLit {
        let mut cur = root;
        for &pi in pis {
            let hi = self.cofactor(cur, pi, true);
            let lo = self.cofactor(cur, pi, false);
            cur = self.or(hi, lo);
        }
        cur
    }

    /// Universal quantification `∀ pis . root` by cofactor expansion.
    ///
    /// Worst-case cost is exponential in `pis.len()`; intended for small
    /// variable sets (reference implementations, tests).
    pub fn forall(&mut self, root: AigLit, pis: &[usize]) -> AigLit {
        let mut cur = root;
        for &pi in pis {
            let hi = self.cofactor(cur, pi, true);
            let lo = self.cofactor(cur, pi, false);
            cur = self.and(hi, lo);
        }
        cur
    }

    /// The logic level (longest leaf-to-root path, leaves at level 0) of
    /// `root`.
    pub fn level(&self, root: AigLit) -> usize {
        let mut levels: Vec<u32> = vec![0; self.node_count()];
        // Nodes are in topological order, so one forward pass suffices,
        // but only nodes in the cone matter; a full pass is simpler and
        // the graph is compact.
        for (i, node) in self.iter_nodes() {
            if let AigNode::And { f0, f1 } = node {
                levels[i.index()] = 1 + levels[f0.node().index()].max(levels[f1.node().index()]);
            }
        }
        levels[root.node().index()] as usize
    }

    /// Returns a copy with all nodes unreachable from the outputs and
    /// latch next-state functions removed (garbage collection after
    /// heavy cofactoring/substitution). Inputs and latches are kept —
    /// also unused ones, so input indexing is stable.
    pub fn compact(&self) -> Aig {
        let mut dst = Aig::new();
        let mut map: HashMap<NodeId, AigLit> = HashMap::new();
        for pi in 0..self.num_inputs() {
            let lit = dst.add_input(self.input_name(pi).to_owned());
            map.insert(self.input_node(pi), lit);
        }
        for l in self.latches() {
            let lit = dst.add_latch(l.name().to_owned(), l.init());
            map.insert(l.node(), lit);
        }
        let outputs: Vec<(String, AigLit)> = self
            .outputs()
            .iter()
            .map(|o| (o.name().to_owned(), o.lit()))
            .collect();
        for (name, lit) in outputs {
            let new_lit = dst.import(self, lit, &mut map);
            dst.add_output(name, new_lit);
        }
        for (idx, l) in self.latches().iter().enumerate() {
            if let Some(next) = l.next() {
                let new_next = dst.import(self, next, &mut map);
                dst.set_latch_next(idx, new_next).expect("latch exists");
            }
        }
        dst
    }

    /// Renders the AIG as a Graphviz DOT digraph (dashed edges =
    /// complemented), for debugging and documentation.
    pub fn to_dot(&self, name: &str) -> String {
        use crate::graph::AigNode;
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=BT;");
        for (id, node) in self.iter_nodes() {
            match node {
                AigNode::Const => {
                    let _ = writeln!(out, "  n{} [label=\"0\" shape=box];", id.index());
                }
                AigNode::Input { pi } => {
                    let _ = writeln!(
                        out,
                        "  n{} [label=\"{}\" shape=triangle];",
                        id.index(),
                        self.input_name(pi as usize)
                    );
                }
                AigNode::Latch { idx } => {
                    let _ = writeln!(
                        out,
                        "  n{} [label=\"{}\" shape=diamond];",
                        id.index(),
                        self.latches()[idx as usize].name()
                    );
                }
                AigNode::And { f0, f1 } => {
                    let _ = writeln!(out, "  n{} [label=\"∧\"];", id.index());
                    for f in [f0, f1] {
                        let style = if f.is_complement() {
                            " [style=dashed]"
                        } else {
                            ""
                        };
                        let _ =
                            writeln!(out, "  n{} -> n{}{};", f.node().index(), id.index(), style);
                    }
                }
            }
        }
        for (k, o) in self.outputs().iter().enumerate() {
            let _ = writeln!(out, "  o{k} [label=\"{}\" shape=invtriangle];", o.name());
            let style = if o.lit().is_complement() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{} -> o{k}{};", o.lit().node().index(), style);
        }
        out.push_str("}\n");
        out
    }

    /// Counts the AND nodes in the cone of `root`.
    pub fn cone_size(&self, root: AigLit) -> usize {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![root.node()];
        let mut n = 0;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            if let AigNode::And { f0, f1 } = self.node(id) {
                n += 1;
                stack.push(f0.node());
                stack.push(f1.node());
            }
        }
        n
    }
}
