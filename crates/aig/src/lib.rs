//! And-Inverter Graph (AIG) package.
//!
//! This crate plays the role that ABC plays for the original STEP tool
//! (DATE 2012): it is the circuit representation every other crate works
//! on. An [`Aig`] is a DAG of two-input AND nodes with complemented
//! edges ([`AigLit`]), built with structural hashing and constant
//! folding, plus named primary inputs, primary outputs and latches.
//!
//! Features:
//!
//! * construction API: [`Aig::and`], [`Aig::or`], [`Aig::xor`],
//!   [`Aig::mux`], n-ary balanced trees, …
//! * combinational conversion of sequential circuits ([`Aig::comb`],
//!   the ABC `comb` command used by the paper);
//! * cofactoring, composition and Boolean quantification
//!   ([`Aig::cofactor`], [`Aig::substitute`], [`Aig::exists`],
//!   [`Aig::forall`]);
//! * structural support and cone extraction ([`Aig::support`],
//!   [`Cone`]);
//! * canonical cone fingerprints ([`canonicalize`]): a
//!   support-permutation-invariant structural hash with the input
//!   permutation, the key material of the engine's result cache;
//! * bit-parallel simulation ([`Aig::sim64`]) and scalar evaluation;
//! * I/O: BLIF, ISCAS `.bench` and (ascii) AIGER.
//!
//! # Example
//!
//! ```
//! use step_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.xor(a, b);
//! aig.add_output("f", f);
//! assert_eq!(aig.eval(&[true, false]), vec![true]);
//! assert_eq!(aig.eval(&[true, true]), vec![false]);
//! ```

mod error;
mod fingerprint;
mod graph;
mod lit;
mod ops;
mod sim;

pub mod aiger;
pub mod bench_io;
pub mod blif;

pub use error::{AigError, ParseError};
pub use fingerprint::{canonicalize, CanonicalCone, ConeFingerprint};
pub use graph::{Aig, AigNode, Cone, Latch, NodeId, Output};
pub use lit::AigLit;

// Compile-time audit: one shared `&Aig` is read concurrently by every
// worker of the parallel circuit driver (step-core) while owned cones
// move into sessions, so both must stay `Send + Sync`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Aig>();
    assert_send_sync::<Cone>();
    assert_send_sync::<CanonicalCone>();
};

#[cfg(test)]
mod tests;
