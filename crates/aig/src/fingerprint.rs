//! Canonical cone fingerprints: a support-permutation-invariant
//! structural hash with the input permutation that realizes it.
//!
//! Two primary-output cones that compute the same function over
//! *renamed* inputs (the common case in synthetic benchmark families,
//! where one generator stamps out the same sub-circuit over sliding
//! input windows) extract to [`Cone`](crate::Cone)s that differ only in
//! how their support variables are numbered. [`canonicalize`] maps a
//! cone to a canonical form that erases that numbering:
//!
//! 1. a **shape pass** computes, bottom-up, a complement-sensitive but
//!    fanin-order-insensitive hash per node (all leaves identical);
//! 2. a **canonical traversal** walks the cone depth-first from the
//!    root, visiting each AND node's fanins ordered by their shape key,
//!    and numbers inputs in first-visit order;
//! 3. the traversal is re-emitted as a canonical node sequence, which
//!    is both hashed (the [`ConeFingerprint`]) and replayed into a
//!    fresh [`Aig`] (the canonical cone).
//!
//! Equal fingerprints imply — up to 128-bit hash collision — equal
//! canonical sequences, hence *byte-identical* canonical AIGs: any
//! deterministic computation on the canonical cone (SAT search,
//! simulation, QBF optimum search) produces the same answer for every
//! cone in the equivalence class. The returned permutation translates
//! results between the cone's own input order and the canonical order,
//! which is what lets a result cache keyed by fingerprints hand a
//! partition computed for one cone to a permuted twin.
//!
//! The canonical form is a cheap structural normalization, not a
//! graph-canonization: two cones whose AND nodes have shape-identical
//! fanins in swapped stored order can (rarely) canonicalize
//! differently. That costs a cache miss, never a wrong hit — equal
//! fingerprints still guarantee equal canonical cones.

use crate::graph::{Aig, AigNode};
use crate::lit::AigLit;

/// The support-permutation-invariant identity of a cone.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConeFingerprint {
    /// 128-bit hash of the canonical node sequence.
    pub hash: u128,
    /// Number of support variables.
    pub inputs: u32,
    /// Number of AND nodes in the cone.
    pub ands: u32,
}

/// A cone rewritten into canonical input order. See the module docs.
#[derive(Clone, Debug)]
pub struct CanonicalCone {
    /// The structural fingerprint (cache key material).
    pub fingerprint: ConeFingerprint,
    /// `perm[i]` is the canonical index of the source cone's input `i`.
    /// Results computed on the canonical cone translate back as
    /// `original[i] = canonical[perm[i]]`.
    pub perm: Vec<usize>,
    /// The canonical cone: inputs `v0..v{n-1}` in canonical order,
    /// AND nodes in canonical emission order. Byte-identical across
    /// every cone with the same fingerprint.
    pub aig: Aig,
    /// The root literal inside [`CanonicalCone::aig`].
    pub root: AigLit,
}

// Canonical child references, packed into a u64 for hashing:
// bits 63..62 = kind (0 const, 1 input, 2 and), 61..1 = index,
// bit 0 = complement.
const KIND_CONST: u64 = 0;
const KIND_INPUT: u64 = 1 << 62;
const KIND_AND: u64 = 2 << 62;

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-node shape hashes of pass 1: complement-sensitive,
/// fanin-order-insensitive, permutation-invariant.
///
/// Ties in pass 2 cost cache misses, so the shape folds in every cheap
/// invariant that survives input renaming: each leaf is distinguished
/// by its positive/negative fanin-occurrence profile within the cone,
/// and each AND node by its structural support size.
fn shape_pass(aig: &Aig, root: AigLit) -> Vec<u64> {
    let nn = aig.node_count();
    let mut reach = vec![false; nn];
    let mut stack = vec![root.node()];
    while let Some(id) = stack.pop() {
        if reach[id.index()] {
            continue;
        }
        reach[id.index()] = true;
        if let AigNode::And { f0, f1 } = aig.node(id) {
            stack.push(f0.node());
            stack.push(f1.node());
        }
    }
    // Per-leaf fanin-occurrence profile: (positive, complemented)
    // counts over the cone's AND edges (plus the root edge). Preserved
    // by any isomorphism, so it safely tells support variables apart.
    let mut occ = vec![(0u32, 0u32); nn];
    let mut tally = |edge: AigLit| {
        let o = &mut occ[edge.node().index()];
        if edge.is_complement() {
            o.1 += 1;
        } else {
            o.0 += 1;
        }
    };
    for (id, node) in aig.iter_nodes() {
        if !reach[id.index()] {
            continue;
        }
        if let AigNode::And { f0, f1 } = node {
            tally(f0);
            tally(f1);
        }
    }
    tally(root);

    // Per-node structural support, as a bitset over the AIG's inputs.
    let words = aig.num_inputs().div_ceil(64).max(1);
    let mut support = vec![0u64; nn * words];
    let mut sup_count = vec![0u32; nn];
    for (id, node) in aig.iter_nodes() {
        if !reach[id.index()] {
            continue;
        }
        let i = id.index();
        match node {
            AigNode::Input { pi } => {
                support[i * words + pi as usize / 64] |= 1 << (pi % 64);
                sup_count[i] = 1;
            }
            AigNode::And { f0, f1 } => {
                let (i0, i1) = (f0.node().index(), f1.node().index());
                let mut count = 0u32;
                for w in 0..words {
                    let merged = support[i0 * words + w] | support[i1 * words + w];
                    support[i * words + w] = merged;
                    count += merged.count_ones();
                }
                sup_count[i] = count;
            }
            AigNode::Const | AigNode::Latch { .. } => {}
        }
    }

    // Initial leaf colors from the occurrence profiles; then a few
    // Weisfeiler–Lehman-style sweeps: a downward pass folds fanin
    // shapes up, an upward pass folds each node's parent contexts
    // (parent shape, own edge polarity, sibling edge) back into it.
    // Every ingredient is preserved by input renaming, and each sweep
    // lets a leaf see one level more of its surroundings — which is
    // what keeps genuinely different inputs from tying in pass 2.
    let mut shape = vec![0u64; nn];
    for (id, node) in aig.iter_nodes() {
        if !reach[id.index()] {
            continue;
        }
        let i = id.index();
        let (pos, neg) = occ[i];
        shape[i] = match node {
            AigNode::Const => splitmix(0xC0C0),
            AigNode::Input { .. } => splitmix(0x1EAF ^ u64::from(pos) << 20 ^ u64::from(neg)),
            AigNode::Latch { .. } => splitmix(0x1A7C ^ u64::from(pos) << 20 ^ u64::from(neg)),
            AigNode::And { .. } => 0,
        };
    }
    const SWEEPS: usize = 2;
    for sweep in 0..=SWEEPS {
        // Downward: AND shapes from (refined) fanin shapes, commutative
        // over the sorted pair so stored fanin order cannot leak in.
        for (id, node) in aig.iter_nodes() {
            if !reach[id.index()] {
                continue;
            }
            if let AigNode::And { f0, f1 } = node {
                let c0 = edge_shape(&shape, f0);
                let c1 = edge_shape(&shape, f1);
                let (lo, hi) = if c0 <= c1 { (c0, c1) } else { (c1, c0) };
                shape[id.index()] = splitmix(
                    lo ^ hi.rotate_left(23) ^ u64::from(sup_count[id.index()]) << 17 ^ 0xA11D,
                );
            }
        }
        if sweep == SWEEPS {
            break;
        }
        // Upward: accumulate each node's parent contexts commutatively
        // (wrapping add is multiset-stable), then fold them in.
        let mut up = vec![0u64; nn];
        let mut see = |child: AigLit, parent_shape: u64, sibling: u64| {
            up[child.node().index()] = up[child.node().index()].wrapping_add(splitmix(
                parent_shape
                    ^ sibling.rotate_left(11)
                    ^ if child.is_complement() { 0x5EE1 } else { 0 },
            ));
        };
        for (id, node) in aig.iter_nodes() {
            if !reach[id.index()] {
                continue;
            }
            if let AigNode::And { f0, f1 } = node {
                let s = shape[id.index()];
                see(f0, s, edge_shape(&shape, f1));
                see(f1, s, edge_shape(&shape, f0));
            }
        }
        see(root, 0x2007, 0);
        for i in 0..nn {
            if reach[i] && up[i] != 0 {
                shape[i] = splitmix(shape[i] ^ up[i]);
            }
        }
    }
    shape
}

#[inline]
fn edge_shape(shape: &[u64], edge: AigLit) -> u64 {
    let s = shape[edge.node().index()];
    if edge.is_complement() {
        splitmix(s ^ 0x10_0BAD)
    } else {
        s
    }
}

/// Deterministic subtree comparison for shape-tied fanins.
///
/// Shape hashes cannot separate automorphic-looking twins like the
/// XNOR pattern `AND(x,¬y)` vs `AND(¬x,y)`: their relative order must
/// be decided *consistently with the input numbering assigned so far*,
/// or two isomorphic cones canonicalize differently. This comparator
/// recursively orders subtrees by `(shape, complement)` per edge and,
/// at the leaves, by the inputs' already-assigned canonical numbers
/// (unassigned inputs compare equal — at that point the choice is
/// genuinely symmetric and either order extends consistently).
struct FaninOrder<'a> {
    aig: &'a Aig,
    shape: &'a [u64],
    /// Canonical number per primary input, `usize::MAX` = unassigned;
    /// the DFS fills it in first-visit order as it runs.
    perm: Vec<usize>,
    memo: std::collections::HashMap<(u32, u32), std::cmp::Ordering>,
}

impl FaninOrder<'_> {
    /// Compares two edges; the `bool` is true when the verdict is
    /// *definitive* — it never passed through an unassigned-input
    /// comparison, so it can be memoized. Provisional verdicts become
    /// stale the moment the DFS numbers another input and must be
    /// recomputed (caching them desynchronizes isomorphic twins, whose
    /// memo keys differ in `(u,v)` orientation).
    fn cmp_edges(&mut self, a: AigLit, b: AigLit) -> (std::cmp::Ordering, bool) {
        let ka = (self.shape[a.node().index()], a.is_complement());
        let kb = (self.shape[b.node().index()], b.is_complement());
        match ka.cmp(&kb) {
            std::cmp::Ordering::Equal => self.cmp_nodes(a.node(), b.node()),
            o => (o, true),
        }
    }

    fn cmp_nodes(&mut self, u: crate::NodeId, v: crate::NodeId) -> (std::cmp::Ordering, bool) {
        use std::cmp::Ordering;
        if u == v {
            return (Ordering::Equal, true);
        }
        let key = (u.index() as u32, v.index() as u32);
        if let Some(&o) = self.memo.get(&key) {
            return (o, true);
        }
        let (o, definitive) = match (self.aig.node(u), self.aig.node(v)) {
            (AigNode::Input { pi: pu }, AigNode::Input { pi: pv }) => {
                let (nu, nv) = (self.perm[pu as usize], self.perm[pv as usize]);
                (nu.cmp(&nv), nu != usize::MAX && nv != usize::MAX)
            }
            (AigNode::And { f0: a0, f1: a1 }, AigNode::And { f0: b0, f1: b1 }) => {
                let (a0, a1) = self.ordered(a0, a1);
                let (b0, b1) = self.ordered(b0, b1);
                let (o0, d0) = self.cmp_edges(a0, b0);
                if o0 != Ordering::Equal {
                    (o0, d0)
                } else {
                    let (o1, d1) = self.cmp_edges(a1, b1);
                    (o1, d0 && d1)
                }
            }
            // Distinct kinds already differ in shape; anything left is
            // order-indifferent.
            _ => (Ordering::Equal, true),
        };
        if definitive {
            self.memo.insert(key, o);
        }
        (o, definitive)
    }

    /// Orders an AND node's fanins: `(shape, complement)` first, then
    /// the recursive content comparison; full ties keep stored order.
    fn ordered(&mut self, f0: AigLit, f1: AigLit) -> (AigLit, AigLit) {
        if self.cmp_edges(f1, f0).0 == std::cmp::Ordering::Less {
            (f1, f0)
        } else {
            (f0, f1)
        }
    }
}

/// Computes the canonical form of the cone of `root` in `aig`.
///
/// `aig` must be combinational on the cone (no latch leaves — extract
/// with [`Aig::cone`] first). Inputs of `aig` outside the structural
/// support of `root` get no canonical number (their `perm` entry is
/// `usize::MAX`); for [`Aig::cone`]-extracted cones the support is
/// exactly the input set, so `perm` is a full permutation.
///
/// # Panics
///
/// Panics if the cone contains a latch leaf.
pub fn canonicalize(aig: &Aig, root: AigLit) -> CanonicalCone {
    let shape = shape_pass(aig, root);
    let nn = aig.node_count();

    // Canonical DFS: children visited in shape/content order (frozen
    // per node at expansion time), inputs numbered in first-visit
    // order, AND nodes emitted in post-order.
    let mut refs: Vec<u64> = vec![u64::MAX; nn]; // canonical ref per done node
    let mut frozen: Vec<Option<(AigLit, AigLit)>> = vec![None; nn];
    let mut order = FaninOrder {
        aig,
        shape: &shape,
        perm: vec![usize::MAX; aig.num_inputs()],
        memo: std::collections::HashMap::new(),
    };
    let mut n_inputs = 0u64;
    let mut ands: Vec<(u64, u64)> = Vec::new();
    let mut stack = vec![root.node()];
    while let Some(&id) = stack.last() {
        if refs[id.index()] != u64::MAX {
            stack.pop();
            continue;
        }
        match aig.node(id) {
            AigNode::Const => {
                refs[id.index()] = KIND_CONST;
                stack.pop();
            }
            AigNode::Input { pi } => {
                order.perm[pi as usize] = n_inputs as usize;
                refs[id.index()] = KIND_INPUT | n_inputs << 1;
                n_inputs += 1;
                stack.pop();
            }
            AigNode::Latch { .. } => {
                panic!("canonicalize hit a latch leaf; extract the cone with comb()+cone() first")
            }
            AigNode::And { f0, f1 } => {
                if let Some((a, b)) = frozen[id.index()] {
                    let ea = refs[a.node().index()] | a.is_complement() as u64;
                    let eb = refs[b.node().index()] | b.is_complement() as u64;
                    refs[id.index()] = KIND_AND | (ands.len() as u64) << 1;
                    ands.push((ea, eb));
                    stack.pop();
                } else {
                    let (a, b) = order.ordered(f0, f1);
                    frozen[id.index()] = Some((a, b));
                    // Push in reverse so the order-first fanin pops
                    // (and numbers its inputs) first.
                    if refs[b.node().index()] == u64::MAX {
                        stack.push(b.node());
                    }
                    if refs[a.node().index()] == u64::MAX {
                        stack.push(a.node());
                    }
                }
            }
        }
    }
    let root_ref = refs[root.node().index()] | root.is_complement() as u64;
    let perm = order.perm;

    // Hash the canonical sequence: two independently-mixed 64-bit lanes.
    let mut h0: u64 = 0x5157_4254_4649_4E47; // lane seeds, arbitrary
    let mut h1: u64 = 0x6269_6465_6373_7465;
    let mut feed = |v: u64| {
        h0 = splitmix(h0 ^ v);
        h1 = splitmix(h1.rotate_left(29) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    };
    for &(ea, eb) in &ands {
        feed(ea);
        feed(eb);
    }
    feed(root_ref);
    feed(n_inputs);
    feed(ands.len() as u64);
    let fingerprint = ConeFingerprint {
        hash: (h1 as u128) << 64 | h0 as u128,
        inputs: n_inputs as u32,
        ands: ands.len() as u32,
    };

    // Replay the sequence into the canonical AIG. The source is
    // strashed and constant-folded, so every emission creates exactly
    // one fresh node and the rebuild is a pure function of the
    // sequence.
    let mut caig = Aig::new();
    let ins: Vec<AigLit> = (0..n_inputs)
        .map(|i| caig.add_input(format!("v{i}")))
        .collect();
    let mut alits: Vec<AigLit> = Vec::with_capacity(ands.len());
    let decode = |ins: &[AigLit], alits: &[AigLit], e: u64| -> AigLit {
        let idx = ((e & !(3 << 62)) >> 1) as usize;
        let base = match e & (3 << 62) {
            KIND_INPUT => ins[idx],
            KIND_AND => alits[idx],
            _ => AigLit::FALSE,
        };
        base.xor_complement(e & 1 == 1)
    };
    for &(ea, eb) in &ands {
        let a = decode(&ins, &alits, ea);
        let b = decode(&ins, &alits, eb);
        alits.push(caig.and(a, b));
    }
    let croot = decode(&ins, &alits, root_ref);
    debug_assert_eq!(
        caig.and_count(),
        ands.len(),
        "canonical replay must not fold or dedupe"
    );

    CanonicalCone {
        fingerprint,
        perm,
        aig: caig,
        root: croot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `(a ∧ b) ∨ ¬c`, with the inputs declared in the given order and
    /// the roles assigned by position in `roles`.
    fn sample(order: [&str; 3], roles: [usize; 3]) -> (Aig, AigLit) {
        let mut aig = Aig::new();
        let lits: Vec<AigLit> = order.iter().map(|n| aig.add_input(*n)).collect();
        let (a, b, c) = (lits[roles[0]], lits[roles[1]], lits[roles[2]]);
        let ab = aig.and(a, b);
        let f = aig.or(ab, !c);
        aig.add_output("f", f);
        (aig, f)
    }

    fn cone_canon(aig: &Aig, root: AigLit) -> CanonicalCone {
        let cone = aig.cone(root);
        canonicalize(&cone.aig, cone.root)
    }

    #[test]
    fn permuted_inputs_share_a_fingerprint() {
        let (g1, f1) = sample(["a", "b", "c"], [0, 1, 2]);
        // Same function with the support roles rotated across the
        // declaration order: a↦role c, b↦role a, c↦role b.
        let (g2, f2) = sample(["a", "b", "c"], [1, 2, 0]);
        let c1 = cone_canon(&g1, f1);
        let c2 = cone_canon(&g2, f2);
        assert_eq!(c1.fingerprint, c2.fingerprint);
        assert_eq!(c1.fingerprint.inputs, 3);
        // Equal fingerprints must mean byte-identical canonical cones.
        assert_eq!(c1.aig.node_count(), c2.aig.node_count());
        for v in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(
                c1.aig.eval_lit(c1.root, &bits),
                c2.aig.eval_lit(c2.root, &bits),
                "canonical cones diverge on {bits:?}"
            );
        }
    }

    #[test]
    fn perm_translates_canonical_results_back() {
        let (g, f) = sample(["a", "b", "c"], [2, 0, 1]);
        let cone = g.cone(f);
        let canon = canonicalize(&cone.aig, cone.root);
        // cone(x) == canon(y) where y[perm[i]] = x[i].
        for v in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            let mut y = vec![false; 3];
            for i in 0..3 {
                y[canon.perm[i]] = x[i];
            }
            assert_eq!(
                cone.aig.eval_lit(cone.root, &x),
                canon.aig.eval_lit(canon.root, &y),
                "perm mismatch on {x:?}"
            );
        }
        let mut sorted = canon.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "perm is a permutation");
    }

    #[test]
    fn different_functions_differ() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let and3 = {
            let t = aig.and(a, b);
            aig.and(t, c)
        };
        let or3 = {
            let t = aig.or(a, b);
            aig.or(t, c)
        };
        let maj = {
            let ab = aig.and(a, b);
            let ac = aig.and(a, c);
            let bc = aig.and(b, c);
            let t = aig.or(ab, ac);
            aig.or(t, bc)
        };
        let fps: Vec<ConeFingerprint> = [and3, or3, maj, !and3]
            .iter()
            .map(|&r| cone_canon(&aig, r).fingerprint)
            .collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "functions {i} and {j} collide");
            }
        }
    }

    #[test]
    fn shared_input_structure_is_distinguished() {
        // (a∧b) ∨ (a∧c) and (a∧b) ∨ (c∧d) have the same gate shape but
        // different input sharing; the canonical numbering tells them
        // apart (input counts aside, the sequence differs).
        let mut g1 = Aig::new();
        let a = g1.add_input("a");
        let b = g1.add_input("b");
        let c = g1.add_input("c");
        let ab = g1.and(a, b);
        let ac = g1.and(a, c);
        let f1 = g1.or(ab, ac);

        let mut g2 = Aig::new();
        let a2 = g2.add_input("a");
        let b2 = g2.add_input("b");
        let c2 = g2.add_input("c");
        let d2 = g2.add_input("d");
        let ab2 = g2.and(a2, b2);
        let cd2 = g2.and(c2, d2);
        let f2 = g2.or(ab2, cd2);

        assert_ne!(
            cone_canon(&g1, f1).fingerprint,
            cone_canon(&g2, f2).fingerprint
        );
    }

    #[test]
    fn trivial_cones_fingerprint_without_panicking() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let cone = aig.cone(a);
        let single = canonicalize(&cone.aig, cone.root);
        assert_eq!(single.fingerprint.inputs, 1);
        assert_eq!(single.fingerprint.ands, 0);

        let constant = canonicalize(&aig, AigLit::TRUE);
        assert_eq!(constant.fingerprint.inputs, 0);
        assert_ne!(
            canonicalize(&aig, AigLit::TRUE).fingerprint,
            canonicalize(&aig, AigLit::FALSE).fingerprint,
            "root complement is part of the hash"
        );
    }
}
