use std::collections::HashMap;
use std::fmt;

use crate::error::AigError;
use crate::lit::AigLit;

/// Index of a node inside an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant node, always present at index 0.
    pub const CONST: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node of an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AigNode {
    /// The constant-false node (complement edges give constant true).
    Const,
    /// Primary input number `pi` (position in [`Aig::num_inputs`] order).
    Input {
        /// Position among the primary inputs.
        pi: u32,
    },
    /// Output of latch number `idx`; a combinational leaf.
    Latch {
        /// Position among the latches.
        idx: u32,
    },
    /// Two-input AND of `f0` and `f1` (`f0.code() <= f1.code()`).
    And {
        /// First fanin.
        f0: AigLit,
        /// Second fanin.
        f1: AigLit,
    },
}

/// A latch (sequential element) of an [`Aig`].
#[derive(Clone, Debug)]
pub struct Latch {
    pub(crate) name: String,
    pub(crate) node: NodeId,
    pub(crate) next: Option<AigLit>,
    pub(crate) init: bool,
}

impl Latch {
    /// The latch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node acting as the latch output (a combinational leaf).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The next-state function, if assigned.
    pub fn next(&self) -> Option<AigLit> {
        self.next
    }

    /// The initial value of the latch.
    pub fn init(&self) -> bool {
        self.init
    }
}

/// A named primary output.
#[derive(Clone, Debug)]
pub struct Output {
    pub(crate) name: String,
    pub(crate) lit: AigLit,
}

impl Output {
    /// The output name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The literal driving this output.
    pub fn lit(&self) -> AigLit {
        self.lit
    }
}

/// An And-Inverter Graph with named inputs, outputs and latches.
///
/// Nodes are stored in topological order: the fanins of an AND node
/// always precede it. AND nodes are structurally hashed and constant
/// folded on creation, so building `x AND x` twice returns the same
/// literal and never allocates a second node.
#[derive(Clone, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<u64, NodeId>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    latches: Vec<Latch>,
    outputs: Vec<Output>,
}

impl Aig {
    /// Creates an empty AIG (just the constant node).
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const],
            strash: HashMap::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The constant literal with the given value.
    #[inline]
    pub fn constant(value: bool) -> AigLit {
        if value {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }

    /// Number of nodes (including the constant node).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And { .. }))
            .count()
    }

    /// The node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> AigNode {
        self.nodes[id.index()]
    }

    /// Iterates over all nodes in topological order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, AigNode)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), *n))
    }

    // ------------------------------------------------------------------
    // inputs / outputs / latches
    // ------------------------------------------------------------------

    /// Adds a primary input and returns its (positive) literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> AigLit {
        let pi = self.inputs.len() as u32;
        let id = self.push_node(AigNode::Input { pi });
        self.inputs.push(id);
        self.input_names.push(name.into());
        AigLit::new(id, false)
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The literal of primary input `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi >= self.num_inputs()`.
    pub fn input(&self, pi: usize) -> AigLit {
        AigLit::new(self.inputs[pi], false)
    }

    /// The node id of primary input `pi`.
    pub fn input_node(&self, pi: usize) -> NodeId {
        self.inputs[pi]
    }

    /// The name of primary input `pi`.
    pub fn input_name(&self, pi: usize) -> &str {
        &self.input_names[pi]
    }

    /// Finds a primary input by name.
    pub fn find_input(&self, name: &str) -> Option<usize> {
        self.input_names.iter().position(|n| n == name)
    }

    /// If `id` is an input node, its input position.
    pub fn input_index_of(&self, id: NodeId) -> Option<usize> {
        match self.node(id) {
            AigNode::Input { pi } => Some(pi as usize),
            _ => None,
        }
    }

    /// Adds a named primary output driven by `lit`.
    pub fn add_output(&mut self, name: impl Into<String>, lit: AigLit) {
        self.outputs.push(Output {
            name: name.into(),
            lit,
        });
    }

    /// The primary outputs in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Replaces the literal driving output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_output_lit(&mut self, index: usize, lit: AigLit) {
        self.outputs[index].lit = lit;
    }

    /// Adds a latch with the given initial value; returns the literal of
    /// its output (a combinational leaf). The next-state function must be
    /// assigned later with [`Aig::set_latch_next`].
    pub fn add_latch(&mut self, name: impl Into<String>, init: bool) -> AigLit {
        let idx = self.latches.len() as u32;
        let id = self.push_node(AigNode::Latch { idx });
        self.latches.push(Latch {
            name: name.into(),
            node: id,
            next: None,
            init,
        });
        AigLit::new(id, false)
    }

    /// Assigns the next-state function of latch `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::UnknownLatch`] if `idx` is out of range.
    pub fn set_latch_next(&mut self, idx: usize, next: AigLit) -> Result<(), AigError> {
        match self.latches.get_mut(idx) {
            Some(l) => {
                l.next = Some(next);
                Ok(())
            }
            None => Err(AigError::UnknownLatch(format!("#{idx}"))),
        }
    }

    /// The latches in declaration order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Whether the AIG is purely combinational (has no latches).
    pub fn is_comb(&self) -> bool {
        self.latches.is_empty()
    }

    // ------------------------------------------------------------------
    // construction
    // ------------------------------------------------------------------

    fn push_node(&mut self, node: AigNode) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// AND of two literals, with constant folding and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (f0, f1) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        let key = (f0.code() as u64) << 32 | f1.code() as u64;
        if let Some(&id) = self.strash.get(&key) {
            return AigLit::new(id, false);
        }
        let id = self.push_node(AigNode::And { f0, f1 });
        self.strash.insert(key, id);
        AigLit::new(id, false)
    }

    /// OR of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR of two literals.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// XNOR (equivalence) of two literals.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.or(!a, b)
    }

    /// Multiplexer: `if c then t else e`.
    pub fn mux(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let t1 = self.and(c, t);
        let t0 = self.and(!c, e);
        self.or(t1, t0)
    }

    /// Balanced AND over any number of literals (`TRUE` when empty).
    pub fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, true)
    }

    /// Balanced OR over any number of literals (`FALSE` when empty).
    pub fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, false)
    }

    /// XOR over any number of literals (`FALSE` when empty).
    pub fn xor_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.xor(acc, l);
        }
        acc
    }

    fn reduce(&mut self, lits: &[AigLit], is_and: bool) -> AigLit {
        match lits.len() {
            0 => Aig::constant(is_and),
            1 => lits[0],
            _ => {
                let mut layer: Vec<AigLit> = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for chunk in layer.chunks(2) {
                        if chunk.len() == 2 {
                            let v = if is_and {
                                self.and(chunk[0], chunk[1])
                            } else {
                                self.or(chunk[0], chunk[1])
                            };
                            next.push(v);
                        } else {
                            next.push(chunk[0]);
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    // ------------------------------------------------------------------
    // import / comb
    // ------------------------------------------------------------------

    /// Copies the cone of `root` in `src` into `self`.
    ///
    /// `map` gives, for already-translated `src` nodes, the literal in
    /// `self` they map to; it is extended with every node visited. Leaves
    /// of `src` (inputs, latches) must be pre-seeded in `map`, otherwise
    /// they are created as fresh inputs of `self` with their `src` names.
    pub fn import(&mut self, src: &Aig, root: AigLit, map: &mut HashMap<NodeId, AigLit>) -> AigLit {
        // Iterative post-order over the cone.
        let mut stack = vec![root.node()];
        while let Some(&id) = stack.last() {
            if map.contains_key(&id) {
                stack.pop();
                continue;
            }
            match src.node(id) {
                AigNode::Const => {
                    map.insert(id, AigLit::FALSE);
                    stack.pop();
                }
                AigNode::Input { pi } => {
                    let name = src.input_name(pi as usize).to_owned();
                    let lit = self.add_input(name);
                    map.insert(id, lit);
                    stack.pop();
                }
                AigNode::Latch { idx } => {
                    let name = src.latches[idx as usize].name.clone();
                    let lit = self.add_input(name);
                    map.insert(id, lit);
                    stack.pop();
                }
                AigNode::And { f0, f1 } => {
                    let m0 = map.get(&f0.node()).copied();
                    let m1 = map.get(&f1.node()).copied();
                    match (m0, m1) {
                        (Some(a), Some(b)) => {
                            let a = a.xor_complement(f0.is_complement());
                            let b = b.xor_complement(f1.is_complement());
                            let v = self.and(a, b);
                            map.insert(id, v);
                            stack.pop();
                        }
                        _ => {
                            if m0.is_none() {
                                stack.push(f0.node());
                            }
                            if m1.is_none() {
                                stack.push(f1.node());
                            }
                        }
                    }
                }
            }
        }
        map[&root.node()].xor_complement(root.is_complement())
    }

    /// Converts a sequential AIG into a combinational one (the ABC
    /// `comb` command): every latch output becomes a primary input and
    /// every latch next-state function becomes a primary output named
    /// `<latch>$next`.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::DanglingLatch`] if a latch has no next-state
    /// function.
    pub fn comb(&self) -> Result<Aig, AigError> {
        for l in &self.latches {
            if l.next.is_none() {
                return Err(AigError::DanglingLatch(l.name.clone()));
            }
        }
        let mut dst = Aig::new();
        let mut map: HashMap<NodeId, AigLit> = HashMap::new();
        // Keep input order: original PIs first, then latch outputs.
        for (pi, &node) in self.inputs.iter().enumerate() {
            let lit = dst.add_input(self.input_names[pi].clone());
            map.insert(node, lit);
        }
        for l in &self.latches {
            let lit = dst.add_input(l.name.clone());
            map.insert(l.node, lit);
        }
        for o in &self.outputs {
            let lit = dst.import(self, o.lit, &mut map);
            dst.add_output(o.name.clone(), lit);
        }
        for l in &self.latches {
            let lit = dst.import(self, l.next.expect("checked above"), &mut map);
            dst.add_output(format!("{}$next", l.name), lit);
        }
        Ok(dst)
    }

    /// Extracts the combinational cone feeding `root` as a standalone
    /// AIG whose inputs are exactly the structural support of `root`.
    ///
    /// # Panics
    ///
    /// Panics if the cone contains latch outputs (convert with
    /// [`Aig::comb`] first).
    pub fn cone(&self, root: AigLit) -> Cone {
        let sup = self.support(root);
        let mut dst = Aig::new();
        let mut map: HashMap<NodeId, AigLit> = HashMap::new();
        let mut leaves = Vec::with_capacity(sup.len());
        for &pi in &sup {
            let lit = dst.add_input(self.input_name(pi).to_owned());
            map.insert(self.inputs[pi], lit);
            leaves.push(pi);
        }
        // Any latch leaf in the cone is a bug in the caller.
        let out = dst.import_checked(self, root, &mut map);
        Cone {
            aig: dst,
            leaves,
            root: out,
        }
    }

    fn import_checked(
        &mut self,
        src: &Aig,
        root: AigLit,
        map: &mut HashMap<NodeId, AigLit>,
    ) -> AigLit {
        // Like `import` but panics on unseeded leaves.
        let mut stack = vec![root.node()];
        while let Some(&id) = stack.last() {
            if map.contains_key(&id) {
                stack.pop();
                continue;
            }
            match src.node(id) {
                AigNode::Const => {
                    map.insert(id, AigLit::FALSE);
                    stack.pop();
                }
                AigNode::Input { .. } | AigNode::Latch { .. } => {
                    panic!("cone extraction hit an unseeded leaf; run comb() first")
                }
                AigNode::And { f0, f1 } => {
                    let m0 = map.get(&f0.node()).copied();
                    let m1 = map.get(&f1.node()).copied();
                    match (m0, m1) {
                        (Some(a), Some(b)) => {
                            let a = a.xor_complement(f0.is_complement());
                            let b = b.xor_complement(f1.is_complement());
                            let v = self.and(a, b);
                            map.insert(id, v);
                            stack.pop();
                        }
                        _ => {
                            if m0.is_none() {
                                stack.push(f0.node());
                            }
                            if m1.is_none() {
                                stack.push(f1.node());
                            }
                        }
                    }
                }
            }
        }
        map[&root.node()].xor_complement(root.is_complement())
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ inputs: {}, outputs: {}, latches: {}, ands: {} }}",
            self.num_inputs(),
            self.num_outputs(),
            self.latches.len(),
            self.and_count()
        )
    }
}

/// A combinational cone extracted from an [`Aig`] with [`Aig::cone`].
///
/// `leaves[i]` is the primary-input index (in the source AIG) that input
/// `i` of `aig` corresponds to.
#[derive(Clone, Debug)]
pub struct Cone {
    /// The standalone cone.
    pub aig: Aig,
    /// Source primary-input index per cone input.
    pub leaves: Vec<usize>,
    /// The root literal inside `aig`.
    pub root: AigLit,
}

impl Cone {
    /// Number of support variables of the cone.
    pub fn support_size(&self) -> usize {
        self.leaves.len()
    }
}
