use crate::{aiger, bench_io, blif, Aig, AigLit};

fn all_inputs(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..1usize << n).map(move |m| (0..n).map(|i| m >> i & 1 == 1).collect())
}

#[test]
fn lit_basics() {
    assert_eq!(!AigLit::TRUE, AigLit::FALSE);
    assert_eq!(!AigLit::FALSE, AigLit::TRUE);
    assert!(AigLit::TRUE.is_const());
    assert!(AigLit::TRUE.is_const_val(true));
    assert!(!AigLit::TRUE.is_const_val(false));
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    assert!(!a.is_const());
    assert!(!a.is_complement());
    assert!((!a).is_complement());
    assert_eq!((!a).abs(), a);
    assert_eq!(a.xor_complement(true), !a);
    assert_eq!(a.xor_complement(false), a);
    assert_eq!(a.with_complement(true), !a);
}

#[test]
fn and_constant_folding() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
    assert_eq!(aig.and(AigLit::FALSE, a), AigLit::FALSE);
    assert_eq!(aig.and(a, AigLit::TRUE), a);
    assert_eq!(aig.and(AigLit::TRUE, a), a);
    assert_eq!(aig.and(a, a), a);
    assert_eq!(aig.and(a, !a), AigLit::FALSE);
    assert_eq!(aig.and_count(), 0, "folding must not allocate nodes");
}

#[test]
fn and_structural_hashing() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let g1 = aig.and(a, b);
    let g2 = aig.and(b, a);
    let g3 = aig.and(!a, b);
    assert_eq!(g1, g2, "commuted operands must hash to the same node");
    assert_ne!(g1, g3);
    assert_eq!(aig.and_count(), 2);
}

#[test]
fn gate_semantics_truth_tables() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let and = aig.and(a, b);
    let or = aig.or(a, b);
    let xor = aig.xor(a, b);
    let xnor = aig.xnor(a, b);
    let imp = aig.implies(a, b);
    let mux = aig.mux(c, a, b);
    aig.add_output("and", and);
    aig.add_output("or", or);
    aig.add_output("xor", xor);
    aig.add_output("xnor", xnor);
    aig.add_output("imp", imp);
    aig.add_output("mux", mux);
    for v in all_inputs(3) {
        let (a, b, c) = (v[0], v[1], v[2]);
        let got = aig.eval(&v);
        assert_eq!(got[0], a && b);
        assert_eq!(got[1], a || b);
        assert_eq!(got[2], a ^ b);
        assert_eq!(got[3], !(a ^ b));
        assert_eq!(got[4], !a || b);
        assert_eq!(got[5], if c { a } else { b });
    }
}

#[test]
fn nary_trees() {
    let mut aig = Aig::new();
    let lits: Vec<AigLit> = (0..7).map(|i| aig.add_input(format!("x{i}"))).collect();
    let and = aig.and_many(&lits);
    let or = aig.or_many(&lits);
    let xor = aig.xor_many(&lits);
    aig.add_output("and", and);
    aig.add_output("or", or);
    aig.add_output("xor", xor);
    assert_eq!(aig.and_many(&[]), AigLit::TRUE);
    assert_eq!(aig.or_many(&[]), AigLit::FALSE);
    assert_eq!(aig.xor_many(&[]), AigLit::FALSE);
    for v in all_inputs(7) {
        let got = aig.eval(&v);
        assert_eq!(got[0], v.iter().all(|&x| x));
        assert_eq!(got[1], v.iter().any(|&x| x));
        assert_eq!(got[2], v.iter().filter(|&&x| x).count() % 2 == 1);
    }
}

#[test]
fn eval_matches_sim64() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t = aig.xor(a, b);
    let f = aig.mux(c, t, a);
    aig.add_output("f", f);
    // Exhaustive patterns packed into one word.
    let words: Vec<u64> = (0..3)
        .map(|i| {
            let mut w = 0u64;
            for m in 0..8u64 {
                if m >> i & 1 == 1 {
                    w |= 1 << m;
                }
            }
            w
        })
        .collect();
    let node_words = aig.sim64(&words);
    let fw = aig.sim_word(f, &node_words);
    for (m, v) in all_inputs(3).enumerate() {
        assert_eq!(fw >> m & 1 == 1, aig.eval(&v)[0], "pattern {m}");
    }
}

#[test]
fn support_and_cone() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let _b = aig.add_input("b");
    let c = aig.add_input("c");
    let f = aig.and(a, c);
    aig.add_output("f", f);
    assert_eq!(aig.support(f), vec![0, 2]);
    let cone = aig.cone(f);
    assert_eq!(cone.leaves, vec![0, 2]);
    assert_eq!(cone.aig.num_inputs(), 2);
    assert_eq!(cone.aig.input_name(0), "a");
    assert_eq!(cone.aig.input_name(1), "c");
    for v in all_inputs(2) {
        assert_eq!(cone.aig.eval_lit(cone.root, &v), v[0] && v[1]);
    }
    assert_eq!(aig.support(AigLit::TRUE), Vec::<usize>::new());
}

#[test]
fn substitution_and_cofactors() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let f = aig.xor(a, b);
    let f_a1 = aig.cofactor(f, 0, true);
    let f_a0 = aig.cofactor(f, 0, false);
    for v in all_inputs(2) {
        assert_eq!(aig.eval_lit(f_a1, &v), !v[1]);
        assert_eq!(aig.eval_lit(f_a0, &v), v[1]);
    }
    // Composing b := a turns XOR into constant 0.
    let mut subs = std::collections::HashMap::new();
    subs.insert(aig.input_node(1), a);
    let g = aig.substitute(f, &subs);
    assert_eq!(g, AigLit::FALSE);
}

#[test]
fn quantification() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let f = aig.and(a, b);
    let ex = aig.exists(f, &[1]);
    let fa = aig.forall(f, &[1]);
    for v in all_inputs(2) {
        assert_eq!(aig.eval_lit(ex, &v), v[0], "∃b. a∧b = a");
        assert!(!aig.eval_lit(fa, &v), "∀b. a∧b = 0");
    }
    let or = aig.or(a, b);
    let fa_or = aig.forall(or, &[1]);
    for v in all_inputs(2) {
        assert_eq!(aig.eval_lit(fa_or, &v), v[0], "∀b. a∨b = a");
    }
}

#[test]
fn comb_conversion() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", false);
    let n = aig.xor(a, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", q);
    let comb = aig.comb().unwrap();
    assert!(comb.is_comb());
    assert_eq!(comb.num_inputs(), 2, "latch became an input");
    assert_eq!(comb.num_outputs(), 2, "next-state became an output");
    assert_eq!(comb.outputs()[1].name(), "q$next");
    // f = q, q$next = a XOR q.
    for v in all_inputs(2) {
        let got = comb.eval(&v);
        assert_eq!(got[0], v[1]);
        assert_eq!(got[1], v[0] ^ v[1]);
    }
}

#[test]
fn comb_rejects_dangling_latch() {
    let mut aig = Aig::new();
    let _ = aig.add_input("a");
    let q = aig.add_latch("q", false);
    aig.add_output("f", q);
    assert!(aig.comb().is_err());
}

#[test]
fn sequential_step_eval() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", false);
    let n = aig.xor(a, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", q);
    let (outs, next) = aig.eval_seq_step(&[true], &[false]);
    assert_eq!(outs, vec![false]);
    assert_eq!(next, vec![true]);
    let (outs, next) = aig.eval_seq_step(&[true], &next);
    assert_eq!(outs, vec![true]);
    assert_eq!(next, vec![false]);
}

#[test]
fn compact_drops_dead_nodes_and_preserves_semantics() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let keep = aig.xor(a, b);
    // Dead logic: a large unused cone.
    let mut dead = c;
    for _ in 0..10 {
        dead = aig.and(dead, keep);
        dead = aig.xor(dead, a);
    }
    aig.add_output("f", keep);
    let before = aig.and_count();
    let compacted = aig.compact();
    assert!(compacted.and_count() < before, "dead cone must be dropped");
    assert_eq!(compacted.num_inputs(), 3, "inputs stay, even unused ones");
    for v in all_inputs(3) {
        assert_eq!(compacted.eval(&v), aig.eval(&v));
    }
}

#[test]
fn compact_keeps_latches() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", true);
    let n = aig.xor(a, q);
    aig.set_latch_next(0, n).unwrap();
    let _dead = aig.and(a, q);
    aig.add_output("f", q);
    let compacted = aig.compact();
    assert_eq!(compacted.latches().len(), 1);
    assert!(compacted.latches()[0].init());
    let c1 = aig.comb().unwrap();
    let c2 = compacted.comb().unwrap();
    for v in all_inputs(2) {
        assert_eq!(c1.eval(&v), c2.eval(&v));
    }
}

#[test]
fn level_and_cone_size() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t = aig.and(a, b);
    let f = aig.and(t, c);
    assert_eq!(aig.level(f), 2);
    assert_eq!(aig.level(a), 0);
    assert_eq!(aig.cone_size(f), 2);
    assert_eq!(aig.cone_size(t), 1);
}

// ---------------------------------------------------------------------
// I/O round trips
// ---------------------------------------------------------------------

#[test]
fn bench_parse_c17_like() {
    let text = "\
# c17-style netlist
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";
    let aig = bench_io::parse(text).unwrap();
    assert_eq!(aig.num_inputs(), 5);
    assert_eq!(aig.num_outputs(), 2);
    // Spot-check against hand evaluation.
    let v = [true, false, true, true, false];
    let g10 = !(v[0] && v[2]);
    let g11 = !(v[2] && v[3]);
    let g16 = !(v[1] && g11);
    let g19 = !(g11 && v[4]);
    let got = aig.eval(&v);
    assert_eq!(got[0], !(g10 && g16));
    assert_eq!(got[1], !(g16 && g19));
}

#[test]
fn bench_round_trip() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t = aig.xor(a, b);
    let f = aig.mux(c, t, !a);
    aig.add_output("f", f);
    let text = bench_io::write(&aig);
    let back = bench_io::parse(&text).unwrap();
    assert_eq!(back.num_inputs(), 3);
    for v in all_inputs(3) {
        assert_eq!(back.eval(&v), aig.eval(&v), "mismatch at {v:?}");
    }
}

#[test]
fn bench_round_trip_sequential() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", false);
    let n = aig.xor(a, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", q);
    let text = bench_io::write(&aig);
    let back = bench_io::parse(&text).unwrap();
    assert_eq!(back.latches().len(), 1);
    let c1 = aig.comb().unwrap();
    let c2 = back.comb().unwrap();
    for v in all_inputs(2) {
        assert_eq!(c1.eval(&v), c2.eval(&v));
    }
}

#[test]
fn bench_rejects_garbage() {
    assert!(bench_io::parse("WHAT(a)").is_err());
    assert!(bench_io::parse("f = NAND(a").is_err());
    assert!(bench_io::parse("INPUT(a)\nf = FROB(a)\nOUTPUT(f)").is_err());
    assert!(bench_io::parse("OUTPUT(f)").is_err(), "undefined output");
    // Combinational cycle.
    assert!(bench_io::parse("INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(x)").is_err());
}

#[test]
fn blif_parse_and_semantics() {
    let text = "\
.model maj
.inputs a b c
.outputs f g
.names a b c f
11- 1
1-1 1
-11 1
.names f g
0 1
.end
";
    let aig = blif::parse(text).unwrap();
    for v in all_inputs(3) {
        let maj = (v[0] && v[1]) || (v[0] && v[2]) || (v[1] && v[2]);
        let got = aig.eval(&v);
        assert_eq!(got[0], maj);
        assert_eq!(got[1], !maj);
    }
}

#[test]
fn blif_offset_cover_and_constants() {
    let text = "\
.model k
.inputs a b
.outputs f t z
.names a b f
11 0
.names t
1
.names z
.end
";
    let aig = blif::parse(text).unwrap();
    for v in all_inputs(2) {
        let got = aig.eval(&v);
        assert_eq!(got[0], !(v[0] && v[1]), "off-set cover");
        assert!(got[1], "constant one");
        assert!(!got[2], "empty cover is constant zero");
    }
}

#[test]
fn blif_round_trip() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t = aig.xor(a, b);
    let f = aig.mux(c, t, b);
    aig.add_output("f", f);
    aig.add_output("g", !t);
    let text = blif::write(&aig, "rt");
    let back = blif::parse(&text).unwrap();
    for v in all_inputs(3) {
        assert_eq!(back.eval(&v), aig.eval(&v));
    }
}

#[test]
fn blif_latch_round_trip() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", true);
    let n = aig.or(a, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", !q);
    let text = blif::write(&aig, "seq");
    let back = blif::parse(&text).unwrap();
    assert_eq!(back.latches().len(), 1);
    assert!(back.latches()[0].init());
    let c1 = aig.comb().unwrap();
    let c2 = back.comb().unwrap();
    for v in all_inputs(2) {
        assert_eq!(c1.eval(&v), c2.eval(&v));
    }
}

#[test]
fn blif_rejects_malformed() {
    assert!(blif::parse(".model m\n.inputs a\n.outputs f\n.names a f\n1\n.end").is_err());
    assert!(blif::parse(".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end").is_err());
    assert!(blif::parse(".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end").is_err());
    assert!(
        blif::parse(".model m\n.outputs f\n.end").is_err(),
        "undefined output"
    );
    // Mixed polarity cover.
    assert!(blif::parse(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end").is_err());
}

#[test]
fn aiger_round_trip() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let f = aig.xor(a, b);
    aig.add_output("f", f);
    aig.add_output("nb", !b);
    let text = aiger::write(&aig);
    let back = aiger::parse(&text).unwrap();
    assert_eq!(back.num_inputs(), 2);
    assert_eq!(back.outputs()[0].name(), "f");
    for v in all_inputs(2) {
        assert_eq!(back.eval(&v), aig.eval(&v));
    }
}

#[test]
fn aiger_round_trip_sequential() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", false);
    let n = aig.xor(a, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", q);
    let text = aiger::write(&aig);
    let back = aiger::parse(&text).unwrap();
    assert_eq!(back.latches().len(), 1);
    let c1 = aig.comb().unwrap();
    let c2 = back.comb().unwrap();
    for v in all_inputs(2) {
        assert_eq!(c1.eval(&v), c2.eval(&v));
    }
}

#[test]
fn aiger_binary_round_trip() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t = aig.xor(a, b);
    let f = aig.mux(c, t, !a);
    aig.add_output("f", f);
    aig.add_output("g", !t);
    let bytes = aiger::write_binary(&aig);
    let back = aiger::parse_binary(&bytes).unwrap();
    assert_eq!(back.num_inputs(), 3);
    assert_eq!(back.outputs()[0].name(), "f");
    for v in all_inputs(3) {
        assert_eq!(back.eval(&v), aig.eval(&v));
    }
}

#[test]
fn aiger_binary_round_trip_sequential() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let q = aig.add_latch("q", false);
    let n = aig.xor(a, q);
    aig.set_latch_next(0, n).unwrap();
    aig.add_output("f", q);
    let bytes = aiger::write_binary(&aig);
    let back = aiger::parse_binary(&bytes).unwrap();
    assert_eq!(back.latches().len(), 1);
    let c1 = aig.comb().unwrap();
    let c2 = back.comb().unwrap();
    for v in all_inputs(2) {
        assert_eq!(c1.eval(&v), c2.eval(&v));
    }
}

#[test]
fn aiger_binary_rejects_malformed() {
    assert!(aiger::parse_binary(b"").is_err());
    assert!(
        aiger::parse_binary(b"aag 1 1 0 1 0\n2\n").is_err(),
        "ascii header"
    );
    assert!(
        aiger::parse_binary(b"aig 2 1 0 1 1\n4\n\xff").is_err(),
        "truncated varint"
    );
}

#[test]
fn aiger_rejects_malformed() {
    assert!(aiger::parse("").is_err());
    assert!(aiger::parse("aig 1 1 0 0 0").is_err(), "binary header");
    assert!(aiger::parse("aag 1 1 0").is_err(), "short header");
    assert!(
        aiger::parse("aag 1 1 0 1 0\n3\n2").is_err(),
        "odd input literal"
    );
}

#[test]
fn dot_export_mentions_every_node() {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let f = aig.and(a, !b);
    aig.add_output("f", !f);
    let dot = aig.to_dot("t");
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("label=\"a\""));
    assert!(dot.contains("label=\"∧\""));
    assert!(
        dot.contains("style=dashed"),
        "complement edges must be dashed"
    );
    assert!(dot.contains("invtriangle"), "outputs rendered");
}

#[test]
fn import_merges_structure() {
    let mut src = Aig::new();
    let a = src.add_input("a");
    let b = src.add_input("b");
    let f = src.and(a, b);
    src.add_output("f", f);

    let mut dst = Aig::new();
    let x = dst.add_input("x");
    let mut map = std::collections::HashMap::new();
    map.insert(src.input_node(0), x);
    map.insert(src.input_node(1), x);
    let g = dst.import(&src, f, &mut map);
    // a∧b with both mapped to x collapses to x.
    assert_eq!(g, x);
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// A random combinational AIG recipe: sequence of gate picks.
    fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
        proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..40)
    }

    proptest! {
        #[test]
        fn random_aig_eval_matches_sim64(ops in arb_ops(), seed in 0u64..u64::MAX) {
            let n_in = 5usize;
            let mut aig = Aig::new();
            let mut pool: Vec<AigLit> =
                (0..n_in).map(|i| aig.add_input(format!("x{i}"))).collect();
            for (op, i, j) in ops {
                let a = pool[i % pool.len()];
                let b = pool[j % pool.len()];
                let v = match op {
                    0 => aig.and(a, b),
                    1 => aig.or(a, b),
                    2 => aig.xor(a, b),
                    _ => !a,
                };
                pool.push(v);
            }
            let f = *pool.last().unwrap();
            aig.add_output("f", f);
            // 64 random patterns via sim64 vs scalar eval.
            let mut s = seed | 1;
            let mut rnd = || {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17; s
            };
            let words: Vec<u64> = (0..n_in).map(|_| rnd()).collect();
            let node_words = aig.sim64(&words);
            let fw = aig.sim_word(f, &node_words);
            for k in [0usize, 1, 13, 63] {
                let v: Vec<bool> = (0..n_in).map(|i| words[i] >> k & 1 == 1).collect();
                prop_assert_eq!(fw >> k & 1 == 1, aig.eval(&v)[0]);
            }
        }

        #[test]
        fn random_aig_io_round_trips(ops in arb_ops()) {
            let n_in = 4usize;
            let mut aig = Aig::new();
            let mut pool: Vec<AigLit> =
                (0..n_in).map(|i| aig.add_input(format!("x{i}"))).collect();
            for (op, i, j) in ops {
                let a = pool[i % pool.len()];
                let b = pool[j % pool.len()];
                let v = match op {
                    0 => aig.and(a, b),
                    1 => aig.or(a, b),
                    2 => aig.xor(a, b),
                    _ => !a,
                };
                pool.push(v);
            }
            let f = *pool.last().unwrap();
            aig.add_output("f", f);
            let via_blif = blif::parse(&blif::write(&aig, "m")).unwrap();
            let via_bench = bench_io::parse(&bench_io::write(&aig)).unwrap();
            let via_aiger = aiger::parse(&aiger::write(&aig)).unwrap();
            for v in all_inputs(n_in) {
                let want = aig.eval(&v);
                prop_assert_eq!(&via_blif.eval(&v), &want);
                prop_assert_eq!(&via_bench.eval(&v), &want);
                prop_assert_eq!(&via_aiger.eval(&v), &want);
            }
        }

        #[test]
        fn quantification_is_sound(ops in arb_ops()) {
            let n_in = 4usize;
            let mut aig = Aig::new();
            let mut pool: Vec<AigLit> =
                (0..n_in).map(|i| aig.add_input(format!("x{i}"))).collect();
            for (op, i, j) in ops {
                let a = pool[i % pool.len()];
                let b = pool[j % pool.len()];
                let v = match op {
                    0 => aig.and(a, b),
                    1 => aig.or(a, b),
                    2 => aig.xor(a, b),
                    _ => !a,
                };
                pool.push(v);
            }
            let f = *pool.last().unwrap();
            let ex = aig.exists(f, &[1, 2]);
            let fa = aig.forall(f, &[1, 2]);
            // ∀x1x2.f ≤ f ≤ ∃x1x2.f and quantified results do not
            // depend on x1/x2.
            for v in all_inputs(n_in) {
                let vf = aig.eval_lit(f, &v);
                let ve = aig.eval_lit(ex, &v);
                let va = aig.eval_lit(fa, &v);
                prop_assert!(!vf || ve);
                prop_assert!(!va || vf);
                let mut v2 = v.clone();
                v2[1] = !v2[1];
                v2[2] = !v2[2];
                prop_assert_eq!(ve, aig.eval_lit(ex, &v2));
                prop_assert_eq!(va, aig.eval_lit(fa, &v2));
            }
        }
    }
}
