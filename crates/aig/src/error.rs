use std::error::Error;
use std::fmt;

/// Errors produced by AIG construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// A latch was referenced that does not exist.
    UnknownLatch(String),
    /// A primary input index was out of range.
    InputOutOfRange(usize),
    /// The operation requires a purely combinational AIG.
    NotCombinational,
    /// A latch has no next-state function assigned.
    DanglingLatch(String),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::UnknownLatch(name) => write!(f, "unknown latch `{name}`"),
            AigError::InputOutOfRange(i) => write!(f, "primary input index {i} out of range"),
            AigError::NotCombinational => write!(f, "operation requires a combinational AIG"),
            AigError::DanglingLatch(name) => {
                write!(f, "latch `{name}` has no next-state function")
            }
        }
    }
}

impl Error for AigError {}

/// Errors produced while parsing circuit files (BLIF, `.bench`, AIGER).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    /// Creates a parse error at 1-based line `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number the error occurred on (0 if unknown).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The human-readable description of the error.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}
