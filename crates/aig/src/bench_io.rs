//! Reader/writer for the ISCAS `.bench` netlist format used by the
//! ISCAS'85/'89 and ITC'99 benchmark suites the paper evaluates on.
//!
//! Supported gates: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR`, `NOT`,
//! `BUF`/`BUFF`, `DFF` (latch), plus `INPUT(..)`/`OUTPUT(..)`
//! declarations and `#` comments.
//!
//! ```
//! let text = "\
//! INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NAND(a, b)\n";
//! let aig = step_aig::bench_io::parse(text)?;
//! assert_eq!(aig.num_inputs(), 2);
//! assert_eq!(aig.eval(&[true, true]), vec![false]);
//! # Ok::<(), step_aig::ParseError>(())
//! ```

use std::collections::HashMap;

use crate::error::ParseError;
use crate::graph::Aig;
use crate::lit::AigLit;

#[derive(Debug, Clone)]
struct GateDef {
    line: usize,
    kind: String,
    args: Vec<String>,
}

/// Parses `.bench` text into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed lines, undefined signals,
/// combinational cycles or arity violations.
pub fn parse(text: &str) -> Result<Aig, ParseError> {
    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut gates: HashMap<String, GateDef> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_decl(line, "INPUT") {
            inputs.push((lineno, rest.to_owned()));
        } else if let Some(rest) = strip_decl(line, "OUTPUT") {
            outputs.push((lineno, rest.to_owned()));
        } else if let Some(eq) = line.find('=') {
            let name = line[..eq].trim().to_owned();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| ParseError::new(lineno, "expected `gate(args)`"))?;
            if !rhs.ends_with(')') {
                return Err(ParseError::new(lineno, "missing `)`"));
            }
            let kind = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
            if args.is_empty() {
                return Err(ParseError::new(lineno, "gate with no operands"));
            }
            if gates
                .insert(
                    name.clone(),
                    GateDef {
                        line: lineno,
                        kind,
                        args,
                    },
                )
                .is_some()
            {
                return Err(ParseError::new(
                    lineno,
                    format!("signal `{name}` redefined"),
                ));
            }
            order.push(name);
        } else {
            return Err(ParseError::new(
                lineno,
                format!("unrecognized line `{line}`"),
            ));
        }
    }

    let mut aig = Aig::new();
    let mut sig: HashMap<String, AigLit> = HashMap::new();
    for (lineno, name) in &inputs {
        if sig.contains_key(name) {
            return Err(ParseError::new(
                *lineno,
                format!("input `{name}` redefined"),
            ));
        }
        let lit = aig.add_input(name.clone());
        sig.insert(name.clone(), lit);
    }
    // DFF outputs are leaves; create them before resolving gates so that
    // definition order does not matter and latch cycles are legal.
    let mut latch_next: Vec<(usize, String)> = Vec::new(); // (latch idx, source)
    for name in &order {
        let def = &gates[name];
        if def.kind == "DFF" {
            if def.args.len() != 1 {
                return Err(ParseError::new(def.line, "DFF takes exactly one operand"));
            }
            let idx = aig.latches().len();
            let lit = aig.add_latch(name.clone(), false);
            sig.insert(name.clone(), lit);
            latch_next.push((idx, def.args[0].clone()));
        }
    }

    // Resolve combinational gates with an explicit work stack.
    for name in &order {
        resolve(name, &gates, &mut sig, &mut aig)?;
    }
    for (idx, src) in latch_next {
        let lit = *sig
            .get(&src)
            .ok_or_else(|| ParseError::new(0, format!("undefined signal `{src}`")))?;
        aig.set_latch_next(idx, lit)
            .map_err(|e| ParseError::new(0, e.to_string()))?;
    }
    for (lineno, name) in &outputs {
        let lit = *sig
            .get(name)
            .ok_or_else(|| ParseError::new(*lineno, format!("undefined output `{name}`")))?;
        aig.add_output(name.clone(), lit);
    }
    Ok(aig)
}

fn strip_decl<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(kw)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

fn resolve(
    target: &str,
    gates: &HashMap<String, GateDef>,
    sig: &mut HashMap<String, AigLit>,
    aig: &mut Aig,
) -> Result<AigLit, ParseError> {
    if let Some(&lit) = sig.get(target) {
        return Ok(lit);
    }
    // Iterative DFS; `visiting` detects combinational cycles.
    let mut stack: Vec<String> = vec![target.to_owned()];
    let mut visiting: HashMap<String, bool> = HashMap::new();
    while let Some(name) = stack.last().cloned() {
        if sig.contains_key(&name) {
            stack.pop();
            continue;
        }
        let def = gates
            .get(&name)
            .ok_or_else(|| ParseError::new(0, format!("undefined signal `{name}`")))?;
        let pending: Vec<&String> = def.args.iter().filter(|a| !sig.contains_key(*a)).collect();
        if pending.is_empty() {
            let args: Vec<AigLit> = def.args.iter().map(|a| sig[a]).collect();
            let lit = build_gate(aig, &def.kind, &args, def.line)?;
            sig.insert(name.clone(), lit);
            visiting.remove(&name);
            stack.pop();
        } else {
            if *visiting.get(&name).unwrap_or(&false) {
                return Err(ParseError::new(
                    def.line,
                    format!("combinational cycle through `{name}`"),
                ));
            }
            visiting.insert(name.clone(), true);
            for p in pending {
                stack.push(p.clone());
            }
        }
    }
    Ok(sig[target])
}

fn build_gate(
    aig: &mut Aig,
    kind: &str,
    args: &[AigLit],
    line: usize,
) -> Result<AigLit, ParseError> {
    let unary = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(ParseError::new(
                line,
                format!("{kind} expects {n} operand(s)"),
            ))
        }
    };
    Ok(match kind {
        "AND" => aig.and_many(args),
        "NAND" => !aig.and_many(args),
        "OR" => aig.or_many(args),
        "NOR" => !aig.or_many(args),
        "XOR" => aig.xor_many(args),
        "XNOR" => !aig.xor_many(args),
        "NOT" => {
            unary(1)?;
            !args[0]
        }
        "BUF" | "BUFF" => {
            unary(1)?;
            args[0]
        }
        "DFF" => unreachable!("latches are handled separately"),
        other => return Err(ParseError::new(line, format!("unknown gate `{other}`"))),
    })
}

/// Serializes an [`Aig`] in `.bench` format.
///
/// AND nodes become `AND` gates, complemented edges become `NOT` gates
/// and latches become `DFF`s. Internal node names are `n<id>`. Constant
/// edges are expressed as `XOR(x, x)` over the first available leaf; a
/// tie-off input `__tie0` is added for constant functions of zero inputs.
pub fn write(aig: &Aig) -> String {
    use crate::graph::AigNode;
    use std::collections::HashSet;
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut body = String::new();
    let mut need_tie_input = false;

    let base_name = |id: crate::graph::NodeId| -> String {
        match aig.node(id) {
            AigNode::Const => "__gnd".to_owned(),
            AigNode::Input { pi } => aig.input_name(pi as usize).to_owned(),
            AigNode::Latch { idx } => aig.latches()[idx as usize].name().to_owned(),
            AigNode::And { .. } => format!("n{}", id.index()),
        }
    };
    let mut inverters: HashSet<u32> = HashSet::new();
    let mut used_const = false;
    let ref_name = |lit: AigLit, inverters: &mut HashSet<u32>, used_const: &mut bool| {
        if lit.is_const() {
            *used_const = true;
        }
        if lit.is_complement() && lit != AigLit::TRUE {
            inverters.insert(lit.code());
            format!("{}_inv", base_name(lit.node()))
        } else if lit == AigLit::TRUE {
            "__vdd".to_owned()
        } else {
            base_name(lit.node())
        }
    };

    for (id, node) in aig.iter_nodes() {
        if let AigNode::And { f0, f1 } = node {
            let a = ref_name(f0, &mut inverters, &mut used_const);
            let b = ref_name(f1, &mut inverters, &mut used_const);
            let _ = writeln!(body, "n{} = AND({}, {})", id.index(), a, b);
        }
    }
    for l in aig.latches() {
        if let Some(next) = l.next() {
            let src = ref_name(next, &mut inverters, &mut used_const);
            let _ = writeln!(body, "{} = DFF({})", l.name(), src);
        }
    }
    for o in aig.outputs() {
        let src = ref_name(o.lit(), &mut inverters, &mut used_const);
        if src != o.name() {
            let _ = writeln!(body, "{} = BUFF({})", o.name(), src);
        }
    }
    for code in &inverters {
        let lit = AigLit::from_code(*code);
        let _ = writeln!(
            body,
            "{}_inv = NOT({})",
            base_name(lit.node()),
            base_name(lit.node())
        );
    }
    if used_const {
        // `.bench` has no constants: derive 0/1 from any leaf.
        let tie = if aig.num_inputs() > 0 {
            aig.input_name(0).to_owned()
        } else if !aig.latches().is_empty() {
            aig.latches()[0].name().to_owned()
        } else {
            need_tie_input = true;
            "__tie0".to_owned()
        };
        let _ = writeln!(body, "__gnd = XOR({tie}, {tie})");
        let _ = writeln!(body, "__vdd = NOT(__gnd)");
    }

    for pi in 0..aig.num_inputs() {
        let _ = writeln!(out, "INPUT({})", aig.input_name(pi));
    }
    if need_tie_input {
        let _ = writeln!(out, "INPUT(__tie0)");
    }
    for o in aig.outputs() {
        let _ = writeln!(out, "OUTPUT({})", o.name());
    }
    out.push_str(&body);
    out
}
