//! Scalar evaluation and 64-way bit-parallel simulation.

use crate::graph::{Aig, AigNode};
use crate::lit::AigLit;

impl Aig {
    /// Evaluates all primary outputs under a primary-input assignment.
    ///
    /// # Panics
    ///
    /// Panics if the AIG has latches (use [`Aig::eval_seq_step`]) or if
    /// `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert!(self.is_comb(), "eval requires a combinational AIG");
        let values = self.eval_nodes(inputs, &[]);
        self.outputs()
            .iter()
            .map(|o| values[o.lit().node().index()] ^ o.lit().is_complement())
            .collect()
    }

    /// Evaluates a single literal under a primary-input assignment
    /// (combinational AIGs only).
    ///
    /// # Panics
    ///
    /// Panics if the AIG has latches or on input-length mismatch.
    pub fn eval_lit(&self, root: AigLit, inputs: &[bool]) -> bool {
        assert!(self.is_comb(), "eval_lit requires a combinational AIG");
        let values = self.eval_nodes(inputs, &[]);
        values[root.node().index()] ^ root.is_complement()
    }

    /// One step of sequential evaluation: given input and current latch
    /// values, returns `(outputs, next latch values)`.
    ///
    /// # Panics
    ///
    /// Panics on input/latch length mismatch or dangling latches.
    pub fn eval_seq_step(&self, inputs: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
        assert_eq!(
            state.len(),
            self.latches().len(),
            "latch state length mismatch"
        );
        let values = self.eval_nodes(inputs, state);
        let outs = self
            .outputs()
            .iter()
            .map(|o| values[o.lit().node().index()] ^ o.lit().is_complement())
            .collect();
        let next = self
            .latches()
            .iter()
            .map(|l| {
                let n = l.next().expect("dangling latch");
                values[n.node().index()] ^ n.is_complement()
            })
            .collect();
        (outs, next)
    }

    fn eval_nodes(&self, inputs: &[bool], state: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "input length mismatch");
        let mut values = vec![false; self.node_count()];
        for (id, node) in self.iter_nodes() {
            values[id.index()] = match node {
                AigNode::Const => false,
                AigNode::Input { pi } => inputs[pi as usize],
                AigNode::Latch { idx } => state[idx as usize],
                AigNode::And { f0, f1 } => {
                    (values[f0.node().index()] ^ f0.is_complement())
                        && (values[f1.node().index()] ^ f1.is_complement())
                }
            };
        }
        values
    }

    /// 64-way bit-parallel simulation: bit `k` of `words[pi]` is the
    /// value of input `pi` in pattern `k`. Returns one word per node.
    ///
    /// # Panics
    ///
    /// Panics if the AIG has latches or on input-length mismatch.
    pub fn sim64(&self, words: &[u64]) -> Vec<u64> {
        assert!(self.is_comb(), "sim64 requires a combinational AIG");
        assert_eq!(words.len(), self.num_inputs(), "input word count mismatch");
        let mut values = vec![0u64; self.node_count()];
        for (id, node) in self.iter_nodes() {
            values[id.index()] = match node {
                AigNode::Const => 0,
                AigNode::Input { pi } => words[pi as usize],
                AigNode::Latch { .. } => unreachable!("checked is_comb"),
                AigNode::And { f0, f1 } => {
                    let a = values[f0.node().index()] ^ neg64(f0.is_complement());
                    let b = values[f1.node().index()] ^ neg64(f1.is_complement());
                    a & b
                }
            };
        }
        values
    }

    /// The simulated word of `root` given per-node words from
    /// [`Aig::sim64`].
    pub fn sim_word(&self, root: AigLit, node_words: &[u64]) -> u64 {
        node_words[root.node().index()] ^ neg64(root.is_complement())
    }
}

#[inline]
fn neg64(c: bool) -> u64 {
    if c {
        !0
    } else {
        0
    }
}
