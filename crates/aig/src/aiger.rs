//! Reader/writer for the ASCII AIGER format (`aag`).
//!
//! ```
//! use step_aig::{aiger, Aig};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! aig.add_output("f", f);
//! let text = aiger::write(&aig);
//! let back = aiger::parse(&text)?;
//! assert_eq!(back.eval(&[true, true]), vec![true]);
//! # Ok::<(), step_aig::ParseError>(())
//! ```

use std::collections::HashMap;

use crate::error::ParseError;
use crate::graph::Aig;
use crate::lit::AigLit;

/// Parses an ASCII AIGER (`aag`) file into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed headers, out-of-range literals
/// or cyclic AND definitions.
pub fn parse(text: &str) -> Result<Aig, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::new(1, "empty file"))?;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() != 6 || head[0] != "aag" {
        return Err(ParseError::new(1, "expected `aag M I L O A` header"));
    }
    let parse_n = |s: &str, ln: usize| -> Result<usize, ParseError> {
        s.parse()
            .map_err(|_| ParseError::new(ln, format!("bad number `{s}`")))
    };
    let m = parse_n(head[1], 1)?;
    let i = parse_n(head[2], 1)?;
    let l = parse_n(head[3], 1)?;
    let o = parse_n(head[4], 1)?;
    let a = parse_n(head[5], 1)?;
    // Untrusted-input guard: every declared input/latch/output/AND
    // takes at least one body line (≥ 2 bytes), so header counts that
    // exceed the file size are lies — reject them before they drive
    // `with_capacity` or node-creation loops into an allocation abort.
    let declared = i
        .checked_add(l)
        .and_then(|t| t.checked_add(o))
        .and_then(|t| t.checked_add(a))
        .ok_or_else(|| ParseError::new(1, "header counts overflow"))?;
    if declared > text.len() {
        return Err(ParseError::new(1, "header counts exceed file size"));
    }

    let mut aig = Aig::new();
    // AIGER var -> our literal (for the positive literal of that var).
    let mut var_map: HashMap<u32, AigLit> = HashMap::new();
    var_map.insert(0, AigLit::FALSE);

    let mut input_vars = Vec::with_capacity(i);
    for k in 0..i {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| ParseError::new(0, "missing input line"))?;
        let code: u32 = parse_n(line.trim(), ln + 1)? as u32;
        if code & 1 == 1 || code == 0 {
            return Err(ParseError::new(ln + 1, "input literal must be positive"));
        }
        let lit = aig.add_input(format!("i{k}"));
        var_map.insert(code >> 1, lit);
        input_vars.push(code >> 1);
    }
    let mut latch_defs = Vec::with_capacity(l);
    for k in 0..l {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| ParseError::new(0, "missing latch line"))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() < 2 {
            return Err(ParseError::new(ln + 1, "latch line needs `lit next`"));
        }
        let code: u32 = parse_n(parts[0], ln + 1)? as u32;
        let next: u32 = parse_n(parts[1], ln + 1)? as u32;
        if code & 1 == 1 {
            return Err(ParseError::new(ln + 1, "latch literal must be positive"));
        }
        let lit = aig.add_latch(format!("l{k}"), false);
        var_map.insert(code >> 1, lit);
        latch_defs.push((k, next));
    }
    let mut output_codes = Vec::with_capacity(o);
    for _ in 0..o {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| ParseError::new(0, "missing output line"))?;
        output_codes.push(parse_n(line.trim(), ln + 1)? as u32);
    }
    // AND gates: AIGER requires lhs > rhs0 >= rhs1, so a single pass in
    // file order resolves all definitions.
    for _ in 0..a {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| ParseError::new(0, "missing and line"))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(ParseError::new(ln + 1, "and line needs `lhs rhs0 rhs1`"));
        }
        let lhs: u32 = parse_n(parts[0], ln + 1)? as u32;
        let r0: u32 = parse_n(parts[1], ln + 1)? as u32;
        let r1: u32 = parse_n(parts[2], ln + 1)? as u32;
        if lhs & 1 == 1 {
            return Err(ParseError::new(ln + 1, "and lhs must be positive"));
        }
        if (lhs >> 1) as usize > m {
            return Err(ParseError::new(ln + 1, "lhs exceeds maximum variable"));
        }
        let a0 = lookup(&var_map, r0).ok_or_else(|| {
            ParseError::new(ln + 1, format!("undefined literal {r0} (not topological?)"))
        })?;
        let a1 = lookup(&var_map, r1).ok_or_else(|| {
            ParseError::new(ln + 1, format!("undefined literal {r1} (not topological?)"))
        })?;
        let v = aig.and(a0, a1);
        var_map.insert(lhs >> 1, v);
    }
    for (idx, next) in latch_defs {
        let lit = lookup(&var_map, next)
            .ok_or_else(|| ParseError::new(0, format!("undefined latch next {next}")))?;
        aig.set_latch_next(idx, lit)
            .map_err(|e| ParseError::new(0, e.to_string()))?;
    }
    // Optional symbol table.
    let mut out_names: HashMap<usize, String> = HashMap::new();
    for (_, line) in lines {
        let line = line.trim();
        if line == "c" || line.starts_with("c ") {
            break;
        }
        if let Some(rest) = line.strip_prefix('o') {
            let mut parts = rest.splitn(2, ' ');
            if let (Some(idx), Some(name)) = (parts.next(), parts.next()) {
                if let Ok(idx) = idx.parse::<usize>() {
                    out_names.insert(idx, name.to_owned());
                }
            }
        }
        // Input/latch names could be patched in similarly; our
        // generated names are stable so we keep them.
    }
    for (k, code) in output_codes.into_iter().enumerate() {
        let lit = lookup(&var_map, code)
            .ok_or_else(|| ParseError::new(0, format!("undefined output literal {code}")))?;
        let name = out_names.remove(&k).unwrap_or_else(|| format!("o{k}"));
        aig.add_output(name, lit);
    }
    Ok(aig)
}

fn lookup(var_map: &HashMap<u32, AigLit>, code: u32) -> Option<AigLit> {
    var_map
        .get(&(code >> 1))
        .map(|l| l.xor_complement(code & 1 == 1))
}

/// Serializes an [`Aig`] in *binary* AIGER (`aig`) format: implicit
/// input/latch literals and delta-encoded AND gates.
pub fn write_binary(aig: &Aig) -> Vec<u8> {
    use crate::graph::AigNode;

    // Renumber exactly like the ASCII writer.
    let mut var_of: Vec<u32> = vec![0; aig.node_count()];
    let mut next = 1u32;
    for pi in 0..aig.num_inputs() {
        var_of[aig.input_node(pi).index()] = next;
        next += 1;
    }
    for l in aig.latches() {
        var_of[l.node().index()] = next;
        next += 1;
    }
    let mut ands = Vec::new();
    for (id, node) in aig.iter_nodes() {
        if let AigNode::And { .. } = node {
            var_of[id.index()] = next;
            next += 1;
            ands.push(id);
        }
    }
    let code = |lit: AigLit| -> u32 { var_of[lit.node().index()] * 2 + lit.is_complement() as u32 };

    let mut out: Vec<u8> = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} {} {} {}\n",
            next - 1,
            aig.num_inputs(),
            aig.latches().len(),
            aig.num_outputs(),
            ands.len()
        )
        .as_bytes(),
    );
    for l in aig.latches() {
        let next_code = l.next().map(code).unwrap_or(0);
        out.extend_from_slice(format!("{next_code}\n").as_bytes());
    }
    for o in aig.outputs() {
        out.extend_from_slice(format!("{}\n", code(o.lit())).as_bytes());
    }
    let push_varint = |mut x: u32, out: &mut Vec<u8>| loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    };
    for id in ands {
        if let AigNode::And { f0, f1 } = aig.node(id) {
            let lhs = var_of[id.index()] * 2;
            let (c0, c1) = (code(f0), code(f1));
            let (hi, lo) = if c0 >= c1 { (c0, c1) } else { (c1, c0) };
            debug_assert!(lhs > hi, "delta encoding needs topological numbering");
            push_varint(lhs - hi, &mut out);
            push_varint(hi - lo, &mut out);
        }
    }
    // Symbol table (text, optional per spec).
    for pi in 0..aig.num_inputs() {
        out.extend_from_slice(format!("i{pi} {}\n", aig.input_name(pi)).as_bytes());
    }
    for (k, l) in aig.latches().iter().enumerate() {
        out.extend_from_slice(format!("l{k} {}\n", l.name()).as_bytes());
    }
    for (k, o) in aig.outputs().iter().enumerate() {
        out.extend_from_slice(format!("o{k} {}\n", o.name()).as_bytes());
    }
    out
}

/// Parses *binary* AIGER (`aig`) bytes into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed headers, truncated varints or
/// non-topological gate definitions.
pub fn parse_binary(bytes: &[u8]) -> Result<Aig, ParseError> {
    // Header line.
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseError::new(1, "missing header line"))?;
    let header =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| ParseError::new(1, "non-UTF8 header"))?;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() != 6 || head[0] != "aig" {
        return Err(ParseError::new(1, "expected `aig M I L O A` header"));
    }
    let parse_n = |s: &str| -> Result<usize, ParseError> {
        s.parse()
            .map_err(|_| ParseError::new(1, format!("bad number `{s}`")))
    };
    let _m = parse_n(head[1])?;
    let i = parse_n(head[2])?;
    let l = parse_n(head[3])?;
    let o = parse_n(head[4])?;
    let a = parse_n(head[5])?;
    // Untrusted-input guard, as in the ASCII reader. Latches, outputs
    // and ANDs each take at least 2 body bytes; binary inputs are
    // *implicit* (zero bytes), so allow generous slack for them — the
    // bound only has to stop header lies from driving gigabyte
    // allocations, not meter honest files precisely.
    let declared = i
        .checked_add(l)
        .and_then(|t| t.checked_add(o))
        .and_then(|t| t.checked_add(a))
        .ok_or_else(|| ParseError::new(1, "header counts overflow"))?;
    if declared > bytes.len().saturating_mul(8).saturating_add(1024) {
        return Err(ParseError::new(1, "header counts exceed file size"));
    }

    let mut pos = nl + 1;
    let read_line = |pos: &mut usize| -> Result<String, ParseError> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        let s = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| ParseError::new(0, "non-UTF8 text line"))?
            .to_owned();
        // Step over the newline but never past EOF: a final line
        // without one must not push `pos` out of range for the next
        // call (found by the parser-hardening fuzz suite).
        if *pos < bytes.len() {
            *pos += 1;
        }
        Ok(s)
    };

    let mut aig = Aig::new();
    let mut lit_of_var: Vec<AigLit> = Vec::with_capacity(1 + i + l + a);
    lit_of_var.push(AigLit::FALSE);
    for k in 0..i {
        lit_of_var.push(aig.add_input(format!("i{k}")));
    }
    for k in 0..l {
        lit_of_var.push(aig.add_latch(format!("l{k}"), false));
    }
    let mut latch_next = Vec::with_capacity(l);
    for _ in 0..l {
        let line = read_line(&mut pos)?;
        let code: u32 = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| ParseError::new(0, "bad latch next literal"))?;
        latch_next.push(code);
    }
    let mut outputs = Vec::with_capacity(o);
    for _ in 0..o {
        let line = read_line(&mut pos)?;
        let code: u32 = line
            .trim()
            .parse()
            .map_err(|_| ParseError::new(0, "bad output literal"))?;
        outputs.push(code);
    }
    let read_varint = |pos: &mut usize| -> Result<u32, ParseError> {
        let mut x = 0u32;
        let mut shift = 0u32;
        loop {
            let byte = *bytes
                .get(*pos)
                .ok_or_else(|| ParseError::new(0, "truncated varint"))?;
            *pos += 1;
            x |= ((byte & 0x7f) as u32) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
            if shift > 28 {
                return Err(ParseError::new(0, "varint overflow"));
            }
        }
    };
    let resolve = |code: u32, lits: &[AigLit]| -> Result<AigLit, ParseError> {
        let var = (code >> 1) as usize;
        let lit = lits
            .get(var)
            .ok_or_else(|| ParseError::new(0, format!("undefined variable {var}")))?;
        Ok(lit.xor_complement(code & 1 == 1))
    };
    for k in 0..a {
        let lhs = 2 * (1 + i + l + k) as u32;
        let d0 = read_varint(&mut pos)?;
        let d1 = read_varint(&mut pos)?;
        let rhs0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseError::new(0, "delta0 exceeds lhs"))?;
        let rhs1 = rhs0
            .checked_sub(d1)
            .ok_or_else(|| ParseError::new(0, "delta1 exceeds rhs0"))?;
        let a0 = resolve(rhs0, &lit_of_var)?;
        let a1 = resolve(rhs1, &lit_of_var)?;
        let v = aig.and(a0, a1);
        lit_of_var.push(v);
    }
    for (idx, code) in latch_next.into_iter().enumerate() {
        let lit = resolve(code, &lit_of_var)?;
        aig.set_latch_next(idx, lit)
            .map_err(|e| ParseError::new(0, e.to_string()))?;
    }
    // Optional symbol table.
    let mut out_names: HashMap<usize, String> = HashMap::new();
    while pos < bytes.len() {
        let line = read_line(&mut pos)?;
        let line = line.trim();
        if line == "c" || line.starts_with("c ") {
            break;
        }
        if let Some(rest) = line.strip_prefix('o') {
            let mut parts = rest.splitn(2, ' ');
            if let (Some(idx), Some(name)) = (parts.next(), parts.next()) {
                if let Ok(idx) = idx.parse::<usize>() {
                    out_names.insert(idx, name.to_owned());
                }
            }
        }
    }
    for (k, code) in outputs.into_iter().enumerate() {
        let lit = resolve(code, &lit_of_var)?;
        let name = out_names.remove(&k).unwrap_or_else(|| format!("o{k}"));
        aig.add_output(name, lit);
    }
    Ok(aig)
}

/// Serializes an [`Aig`] as ASCII AIGER (`aag`), renumbering variables
/// into the canonical inputs-latches-ands order.
pub fn write(aig: &Aig) -> String {
    use crate::graph::AigNode;
    use std::fmt::Write as _;

    // Renumber: AIGER var per node.
    let mut var_of: Vec<u32> = vec![0; aig.node_count()];
    let mut next = 1u32;
    for pi in 0..aig.num_inputs() {
        var_of[aig.input_node(pi).index()] = next;
        next += 1;
    }
    for l in aig.latches() {
        var_of[l.node().index()] = next;
        next += 1;
    }
    let mut ands = Vec::new();
    for (id, node) in aig.iter_nodes() {
        if let AigNode::And { .. } = node {
            var_of[id.index()] = next;
            next += 1;
            ands.push(id);
        }
    }
    let code = |lit: AigLit| -> u32 { var_of[lit.node().index()] * 2 + lit.is_complement() as u32 };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {} {} {} {} {}",
        next - 1,
        aig.num_inputs(),
        aig.latches().len(),
        aig.num_outputs(),
        ands.len()
    );
    for pi in 0..aig.num_inputs() {
        let _ = writeln!(out, "{}", var_of[aig.input_node(pi).index()] * 2);
    }
    for l in aig.latches() {
        let next_code = l.next().map(code).unwrap_or(0);
        let _ = writeln!(out, "{} {}", var_of[l.node().index()] * 2, next_code);
    }
    for o in aig.outputs() {
        let _ = writeln!(out, "{}", code(o.lit()));
    }
    for id in ands {
        if let AigNode::And { f0, f1 } = aig.node(id) {
            let (c0, c1) = (code(f0), code(f1));
            let (hi, lo) = if c0 >= c1 { (c0, c1) } else { (c1, c0) };
            let _ = writeln!(out, "{} {} {}", var_of[id.index()] * 2, hi, lo);
        }
    }
    for pi in 0..aig.num_inputs() {
        let _ = writeln!(out, "i{pi} {}", aig.input_name(pi));
    }
    for (k, l) in aig.latches().iter().enumerate() {
        let _ = writeln!(out, "l{k} {}", l.name());
    }
    for (k, o) in aig.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{k} {}", o.name());
    }
    out
}
