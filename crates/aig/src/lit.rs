use std::fmt;

use crate::graph::NodeId;

/// A literal: an edge into an AIG node, possibly complemented.
///
/// Encoded as `node_index << 1 | complement`, matching the AIGER
/// convention. `AigLit::FALSE` and `AigLit::TRUE` are the two edges into
/// the constant node (node 0).
///
/// ```
/// use step_aig::AigLit;
/// let t = AigLit::TRUE;
/// assert_eq!(!t, AigLit::FALSE);
/// assert!(t.is_const());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false (complemented edge into the constant node).
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from a node id and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Self {
        AigLit(node.index() as u32 * 2 + complement as u32)
    }

    /// Builds a literal from its AIGER integer code.
    #[inline]
    pub fn from_code(code: u32) -> Self {
        AigLit(code)
    }

    /// The AIGER integer code of this literal.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// The node this literal points to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId::new((self.0 >> 1) as usize)
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// Whether this is exactly the constant `value`.
    #[inline]
    pub fn is_const_val(self, value: bool) -> bool {
        self.0 == value as u32
    }

    /// This literal with its complement flag set to `c`.
    #[inline]
    pub fn with_complement(self, c: bool) -> Self {
        AigLit(self.0 & !1 | c as u32)
    }

    /// XORs the complement flag with `c` (`lit ^ false == lit`).
    #[inline]
    pub fn xor_complement(self, c: bool) -> Self {
        AigLit(self.0 ^ c as u32)
    }

    /// The non-complemented literal for the same node.
    #[inline]
    pub fn abs(self) -> Self {
        AigLit(self.0 & !1)
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    #[inline]
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AigLit::FALSE {
            write!(f, "lit(0)")
        } else if *self == AigLit::TRUE {
            write!(f, "lit(1)")
        } else {
            write!(
                f,
                "lit({}n{})",
                if self.is_complement() { "!" } else { "" },
                self.node().index()
            )
        }
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
