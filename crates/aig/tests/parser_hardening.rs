//! Untrusted-input hardening for the circuit readers.
//!
//! The readers sit behind the network front-end (`step serve` accepts
//! circuit uploads from remote clients), so malformed input must come
//! back as a [`ParseError`], **never** a panic or an
//! allocation-driven abort. The headline hazard this suite pins is
//! AIGER header lies: `aag M I L O A` counts used to drive
//! `Vec::with_capacity` and node-creation loops unchecked, so a
//! 30-byte file could demand gigabytes. The suite fuzzes all four
//! readers (BENCH, BLIF, ASCII AIGER, binary AIGER) with byte soup,
//! format-shaped prefixes, truncations and point mutations of valid
//! files, plus targeted regressions for the header bounds.

use proptest::prelude::*;
use step_aig::{aiger, bench_io, blif, Aig};

/// Every reader must return (`Ok` or `Err`) on arbitrary bytes — a
/// panic fails the test, an allocation abort kills the runner.
fn all_readers_survive(bytes: &[u8]) {
    let text = String::from_utf8_lossy(bytes);
    let _ = bench_io::parse(&text);
    let _ = blif::parse(&text);
    let _ = aiger::parse(&text);
    let _ = aiger::parse_binary(bytes);
}

/// A small valid circuit exercising inputs, sharing and negation.
fn sample_circuit() -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let ab = aig.and(a, b);
    let bc = aig.and(b, c);
    let f = aig.or(ab, bc);
    aig.add_output("f", f);
    aig.add_output("g", !ab);
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure byte soup.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..96)) {
        all_readers_survive(&bytes);
    }

    /// Byte soup behind a format-shaped prefix, to get past the cheap
    /// header rejections and into the body parsers.
    #[test]
    fn format_shaped_garbage_never_panics(
        prefix in 0usize..6,
        bytes in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let head: &[u8] = [
            b"aag 9 2 1 2 4\n".as_slice(),
            b"aig 9 2 1 2 4\n".as_slice(),
            b"INPUT(a)\nOUTPUT(f)\n".as_slice(),
            b".model m\n.inputs a b\n.outputs f\n".as_slice(),
            b"aag ".as_slice(),
            b"".as_slice(),
        ][prefix];
        let mut input = head.to_vec();
        input.extend_from_slice(&bytes);
        all_readers_survive(&input);
    }

    /// Truncations and point mutations of valid files in every format.
    #[test]
    fn corrupted_valid_files_never_panic(cut in 0usize..512, flip in 0usize..512, value in 0u8..=255) {
        let aig = sample_circuit();
        let files: [Vec<u8>; 4] = [
            bench_io::write(&aig).into_bytes(),
            blif::write(&aig, "m").into_bytes(),
            aiger::write(&aig).into_bytes(),
            aiger::write_binary(&aig),
        ];
        for file in files {
            let mut truncated = file.clone();
            truncated.truncate(cut % (file.len() + 1));
            all_readers_survive(&truncated);
            let mut mutated = file.clone();
            let at = flip % file.len();
            mutated[at] = value;
            all_readers_survive(&mutated);
        }
    }
}

#[test]
fn ascii_header_lies_are_rejected_fast() {
    // Each lying count alone must trip the bound before any
    // allocation: these calls return quickly with an error rather
    // than attempting a gigabyte reservation.
    for header in [
        "aag 1000000000 1000000000 0 0 0\n",
        "aag 1000000000 0 1000000000 0 0\n",
        "aag 1000000000 0 0 1000000000 0\n",
        "aag 1000000000 0 0 0 1000000000\n",
    ] {
        let err = aiger::parse(header).unwrap_err();
        assert!(
            err.to_string().contains("exceed file size"),
            "{header:?} gave {err}"
        );
    }
    // Counts that overflow a usize sum are their own error.
    let overflow = format!("aag {0} {0} {0} {0} {0}\n", usize::MAX);
    assert!(aiger::parse(&overflow).is_err());
}

#[test]
fn binary_header_lies_are_rejected_fast() {
    let err = aiger::parse_binary(b"aig 1000000000 1000000000 0 0 0\n").unwrap_err();
    assert!(
        err.to_string().contains("exceed file size"),
        "binary header lie gave {err}"
    );
    let err = aiger::parse_binary(b"aig 1000000000 0 0 0 1000000000\n").unwrap_err();
    assert!(err.to_string().contains("exceed file size"));
}

#[test]
fn binary_varint_truncation_and_overflow_are_errors() {
    // One AND declared; body is a dangling continuation-bit varint.
    let mut truncated = b"aig 3 2 0 1 1\n6\n".to_vec();
    truncated.push(0x80);
    assert!(aiger::parse_binary(&truncated).is_err());
    // A varint wider than 32 bits must error, not wrap.
    let mut overflow = b"aig 3 2 0 1 1\n6\n".to_vec();
    overflow.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff]);
    assert!(aiger::parse_binary(&overflow).is_err());
}

#[test]
fn honest_files_still_parse_after_the_bounds() {
    let aig = sample_circuit();
    let ascii = aiger::parse(&aiger::write(&aig)).expect("ascii round-trip");
    assert_eq!(ascii.num_outputs(), 2);
    let binary = aiger::parse_binary(&aiger::write_binary(&aig)).expect("binary round-trip");
    assert_eq!(binary.num_outputs(), 2);
    let bench = bench_io::parse(&bench_io::write(&aig)).expect("bench round-trip");
    assert_eq!(bench.num_outputs(), 2);
    let b = blif::parse(&blif::write(&aig, "m")).expect("blif round-trip");
    assert_eq!(b.num_outputs(), 2);
}
