//! Multi-level synthesis: recursive bi-decomposition as a first-class
//! workload on top of the [`StepService`].
//!
//! The paper motivates bi-decomposition as the inner step of
//! multi-level logic synthesis: recursively split each primary output
//! until the leaves are primitive, yielding a network of two-input
//! OR/AND/XOR gates. [`step_core::decompose_tree`] prototypes that
//! flow as a sequential recursion over one private engine; this crate
//! is the production version:
//!
//! * [`SynthDriver`] submits every frontier cone through a shared
//!   [`StepService`], so the recursion parallelizes across the
//!   service's workers and hits every reuse surface (result cache,
//!   clause bank, persistent store) like any other submission —
//!   recursion floods the engine with thousands of *related*
//!   sub-cones, which is exactly where those surfaces compound;
//! * expansion is scheduled in deterministic rounds: the frontier is
//!   ordered by canonical fingerprint then monotone node id, and
//!   same-fingerprint twins are held back until their leader's result
//!   is committed, so the emitted network (and, under a pure `Work`
//!   budget, the truncation frontier) is byte-identical at any
//!   `--jobs` count;
//! * per-node model selection falls back: the configured QBF/SAT model
//!   probes every operator first, and leaves that resist
//!   bi-decomposition are split by a BDD-guided Shannon cofactor step
//!   ([`step_bdd`]) that strictly shrinks support, so synthesis always
//!   reaches the target leaf size;
//! * stopping rules are [`Budget`]-integrated ([`SynthOptions`]): a
//!   per-node scope enforced by each session's
//!   [`EffortMeter`](step_core::EffortMeter), and a whole-synthesis
//!   scope sliced across expansions through the two-phase
//!   [`WorkLedger`] — the same mechanism that makes per-circuit work
//!   budgets deterministic in the engine;
//! * every emitted network is re-verified equivalent to the original
//!   cone by a single SAT miter check ([`network_equivalent`]), never
//!   by exhaustive simulation.
//!
//! # Determinism contract
//!
//! The emitted network is a pure function of `(circuit, config,
//! options)` whenever every budget in play is deterministic
//! ([`Budget::is_deterministic`]): rounds are barriered, the frontier
//! order is canonical, and the synthesis work pool is sliced by the
//! ledger in node order, so `--jobs N` reproduces `--jobs 1` byte for
//! byte. With clause reuse enabled, answers (and therefore the
//! network) are still identical while the pool does not bind, but the
//! *conflict counts* charged to a binding pool may shift with sibling
//! completion order — the engine's existing reuse contract. Run reuse
//! off (the default) when a binding synthesis pool must truncate
//! reproducibly.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use step_aig::{canonicalize, Aig, AigLit};
use step_bdd::Manager;
use step_cnf::tseitin::encode_standalone;
use step_core::{
    Budget, DecompConfig, DecompTree, EffortStats, GateOp, OutputResult, StepError, StepService,
    SubmitOptions, TreeNode, WorkLedger,
};
use step_sat::{SolveResult, Solver};

/// Stopping rules and fallback policy for one synthesis run.
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Operators probed at every node, in preference order. All three
    /// are submitted concurrently; the first in this order whose probe
    /// decomposes wins (the result is order-, not timing-, dependent).
    pub ops: [GateOp; 3],
    /// Stop recursing once a node's support is at or below this size
    /// (clamped to at least 1).
    pub target_support: usize,
    /// Maximum gate depth (`None` = until the target support).
    pub max_depth: Option<usize>,
    /// Per-node budget: each operator probe of a frontier cone runs
    /// under this scope (enforced by the session's `EffortMeter`).
    pub per_node: Budget,
    /// Whole-synthesis budget. The work component is a single pool
    /// sliced across expansions by the [`WorkLedger`]; the wall
    /// component is a shared deadline. Nodes reached after either is
    /// exhausted become (truncated) leaves.
    pub synthesis: Budget,
    /// Split leaves that resist bi-decomposition with a BDD-guided
    /// Shannon cofactor step instead of giving up on them.
    pub bdd_fallback: bool,
    /// Largest support the BDD fallback will build a BDD for; bigger
    /// resistant cones become leaves as-is.
    pub bdd_max_support: usize,
    /// Re-verify every emitted network against its cone by a SAT
    /// miter check before returning it.
    pub verify: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            ops: [GateOp::Or, GateOp::And, GateOp::Xor],
            target_support: 2,
            max_depth: None,
            per_node: Budget::Unlimited,
            synthesis: Budget::Unlimited,
            bdd_fallback: true,
            bdd_max_support: 24,
            verify: true,
        }
    }
}

/// Counters accumulated while synthesizing one output.
#[derive(Clone, Copy, Debug, Default)]
pub struct SynthStats {
    /// Frontier cones submitted to the engine (operator probes count
    /// as one expansion). Deterministic under deterministic budgets.
    pub nodes_expanded: u64,
    /// Gates contributed by engine bi-decompositions.
    pub qbf_gates: u64,
    /// Gates contributed by the BDD Shannon fallback (each split adds
    /// one OR over two ANDs plus two literal leaves).
    pub bdd_splits: u64,
    /// Whether the synthesis budget truncated any subtree.
    pub truncated: bool,
    /// Whether the emitted network passed the SAT equivalence check
    /// (`false` only when [`SynthOptions::verify`] is off).
    pub verified: bool,
    /// Total engine effort across all probes.
    pub effort: EffortStats,
    /// Total SAT calls across all probes.
    pub sat_calls: u64,
    /// Result-cache hits observed by the probes. Scheduling-dependent
    /// at `jobs > 1`; never affects the emitted network.
    pub cache_hits: u64,
    /// Result-cache misses observed by the probes.
    pub cache_misses: u64,
    /// Clause-bank hits (exact + cluster) observed by the probes.
    pub bank_hits: u64,
    /// Persistent-tier hits observed by the probes.
    pub disk_hits: u64,
    /// Clauses donated back to the bank by the probes.
    pub donated_clauses: u64,
    /// Wall-clock time for this output.
    pub cpu: Duration,
}

/// One synthesized primary output: the gate network plus its metrics.
#[derive(Clone, Debug)]
pub struct SynthOutput {
    /// Output name (from the source circuit).
    pub name: String,
    /// Output index in the source circuit.
    pub output_index: usize,
    /// Support size of the output cone.
    pub support: usize,
    /// The emitted gate network.
    pub tree: DecompTree,
    /// Counters for this output.
    pub stats: SynthStats,
}

/// Why a synthesized network failed the SAT equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkVerifyError {
    /// The network and the cone differ (a counterexample exists).
    NotEquivalent,
    /// The SAT check hit its deadline.
    Budget,
}

impl fmt::Display for NetworkVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkVerifyError::NotEquivalent => {
                write!(f, "network differs from the original cone")
            }
            NetworkVerifyError::Budget => write!(f, "equivalence-check budget expired"),
        }
    }
}

impl Error for NetworkVerifyError {}

/// Checks `tree ≡` output `out_idx` of `original` with one SAT call
/// on the miter `f ⊕ network` — the scalable replacement for the
/// exhaustive `2^n` simulation loop.
///
/// # Errors
///
/// See [`NetworkVerifyError`].
///
/// # Panics
///
/// Panics if `out_idx` is out of range or the tree indexes inputs the
/// circuit does not have (i.e. it was synthesized from a different
/// circuit).
pub fn network_equivalent(
    original: &Aig,
    out_idx: usize,
    tree: &DecompTree,
    deadline: Option<Instant>,
) -> Result<(), NetworkVerifyError> {
    let mut scratch = original.clone();
    let inputs: Vec<AigLit> = (0..scratch.num_inputs())
        .map(|i| scratch.input(i))
        .collect();
    let net = import_tree(&tree.root, &mut scratch, &inputs);
    let f = scratch.outputs()[out_idx].lit();
    let miter = scratch.xor(f, net);
    let (mut cnf, _inputs, root) = encode_standalone(&scratch, miter);
    cnf.add_unit(root);
    let mut solver = Solver::new();
    solver.set_deadline(deadline);
    solver.add_cnf(&cnf);
    match solver.solve() {
        SolveResult::Unsat => Ok(()),
        SolveResult::Sat => Err(NetworkVerifyError::NotEquivalent),
        SolveResult::Unknown => Err(NetworkVerifyError::Budget),
    }
}

/// Rebuilds a tree inside `dst`, reading original input `i` from
/// `inputs[i]` (the strashed twin of [`DecompTree::to_aig`]).
fn import_tree(node: &TreeNode, dst: &mut Aig, inputs: &[AigLit]) -> AigLit {
    match node {
        TreeNode::Leaf {
            func,
            inputs: leaf_ins,
        } => {
            let mut map = HashMap::new();
            for (k, &orig) in leaf_ins.iter().enumerate() {
                map.insert(func.input_node(k), inputs[orig]);
            }
            let root = func.outputs()[0].lit();
            dst.import(func, root, &mut map)
        }
        TreeNode::Gate { op, left, right } => {
            let l = import_tree(left, dst, inputs);
            let r = import_tree(right, dst, inputs);
            match op {
                GateOp::Or => dst.or(l, r),
                GateOp::And => dst.and(l, r),
                GateOp::Xor => dst.xor(l, r),
            }
        }
    }
}

/// A frontier cone awaiting expansion.
struct Node {
    /// Monotone id (assignment order is deterministic).
    id: u64,
    /// Standalone single-output cone circuit.
    sub: Aig,
    /// Original-circuit input index per `sub` input.
    orig_inputs: Vec<usize>,
    /// Gate depth of this node in the emitted network.
    depth: usize,
    /// Canonical fingerprint key (hash, support, ands) — the frontier
    /// sort key and twin detector.
    fp: (u128, u32, u32),
}

/// What one frontier node became.
enum Outcome {
    /// A leaf function over original inputs.
    Leaf(Aig, Vec<usize>),
    /// An engine bi-decomposition: `left <op> right` by child id.
    Gate(GateOp, u64, u64),
    /// A Shannon split on original input `var`:
    /// `(var ∧ hi) ∨ (¬var ∧ lo)` by child id.
    Split { var: usize, hi: u64, lo: u64 },
}

/// The recursive synthesis driver. See the crate docs.
pub struct SynthDriver<'a> {
    service: &'a StepService,
    config: DecompConfig,
    opts: SynthOptions,
}

impl<'a> SynthDriver<'a> {
    /// A driver submitting through `service` with the engine `config`
    /// (extraction is forced on — recursion needs `fA`/`fB`; the
    /// per-output and per-circuit scopes are overridden by `opts`).
    pub fn new(service: &'a StepService, config: DecompConfig, opts: SynthOptions) -> Self {
        let mut config = config;
        config.extract = true;
        config.budget.per_circuit = Budget::Unlimited;
        SynthDriver {
            service,
            config,
            opts,
        }
    }

    /// The options this driver runs under.
    pub fn options(&self) -> &SynthOptions {
        &self.opts
    }

    /// Synthesizes every primary output, sequentially (each output's
    /// recursion parallelizes internally across the service workers;
    /// sequential outputs keep the reuse surfaces' state — and hence
    /// the work charged against the pool — reproducible).
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from the engine, and reports a failed
    /// equivalence check as [`StepError::Internal`].
    pub fn synthesize_circuit(&self, circuit: &Aig) -> Result<Vec<SynthOutput>, StepError> {
        let comb;
        let circuit = if circuit.is_comb() {
            circuit
        } else {
            comb = circuit
                .comb()
                .map_err(|e| StepError::Internal(e.to_string()))?;
            &comb
        };
        (0..circuit.num_outputs())
            .map(|i| self.synthesize(circuit, i))
            .collect()
    }

    /// Synthesizes output `out_idx` of `aig` into a gate network.
    ///
    /// # Errors
    ///
    /// [`StepError::NotCombinational`] for latched circuits (convert
    /// with [`Aig::comb`] first), [`StepError::OutputOutOfRange`], any
    /// engine error, and [`StepError::Internal`] if the emitted
    /// network fails its SAT equivalence check (a bug).
    pub fn synthesize(&self, aig: &Aig, out_idx: usize) -> Result<SynthOutput, StepError> {
        if !aig.is_comb() {
            return Err(StepError::NotCombinational);
        }
        let output = aig
            .outputs()
            .get(out_idx)
            .ok_or(StepError::OutputOutOfRange(out_idx))?;
        let start = Instant::now();
        let deadline = self.opts.synthesis.wall().map(|d| start + d);
        let mut pool_left = self.opts.synthesis.work();
        let target = self.opts.target_support.max(1);

        let cone = aig.cone(output.lit());
        let support = cone.leaves.len();
        let root_node = self.make_node(0, &cone.aig, cone.root, &cone.leaves, 0);

        let mut stats = SynthStats::default();
        let mut outcomes: HashMap<u64, Outcome> = HashMap::new();
        let mut next_id: u64 = 1;
        let mut frontier = vec![root_node];

        while !frontier.is_empty() {
            // Deterministic round order: canonical fingerprint groups
            // twins together, the monotone id breaks ties.
            frontier.sort_by_key(|n| (n.fp, n.id));
            let round = std::mem::take(&mut frontier);

            // Leaf rules first — they cost nothing and hold no slot.
            let mut expand: Vec<Node> = Vec::new();
            for n in round {
                if n.orig_inputs.len() <= target
                    || self.opts.max_depth.is_some_and(|d| n.depth >= d)
                {
                    outcomes.insert(n.id, leaf_outcome(&n));
                    continue;
                }
                expand.push(n);
            }
            if expand.is_empty() {
                continue;
            }

            self.run_round(
                expand,
                &mut pool_left,
                deadline,
                &mut stats,
                &mut outcomes,
                &mut next_id,
                &mut frontier,
            )?;
        }

        let tree = DecompTree {
            root: build_tree(0, &mut outcomes),
            num_inputs: aig.num_inputs(),
        };
        if self.opts.verify {
            network_equivalent(aig, out_idx, &tree, None).map_err(|e| {
                StepError::Internal(format!(
                    "synthesized network for output {out_idx} failed verification: {e}"
                ))
            })?;
            stats.verified = true;
        }
        stats.cpu = start.elapsed();
        Ok(SynthOutput {
            name: output.name().to_owned(),
            output_index: out_idx,
            support,
            tree,
            stats,
        })
    }

    /// Expands one round of frontier nodes: reserves each node's slice
    /// of the synthesis work pool through the [`WorkLedger`], submits
    /// all operator probes, then folds results in slot order.
    #[allow(clippy::too_many_arguments)]
    fn run_round(
        &self,
        expand: Vec<Node>,
        pool_left: &mut Option<u64>,
        deadline: Option<Instant>,
        stats: &mut SynthStats,
        outcomes: &mut HashMap<u64, Outcome>,
        next_id: &mut u64,
        frontier: &mut Vec<Node>,
    ) -> Result<(), StepError> {
        let n_ops = self.opts.ops.len() as u64;
        let slot_cap = self.opts.per_node.work().map(|w| w.saturating_mul(n_ops));
        let ledger = pool_left.map(|limit| (limit, WorkLedger::new(limit, slot_cap, expand.len())));

        // Probes in flight, in slot order. A slot is drained by
        // joining its handles, committing its spend to the ledger and
        // resolving the node — always in slot order, so folding (and
        // child-id assignment) is scheduling-independent.
        let mut pending: Vec<(usize, Node, Vec<step_core::SubmissionHandle>)> = Vec::new();
        let mut in_flight: HashSet<(u128, u32, u32)> = HashSet::new();
        let mut committed: u64 = 0;

        let drain = |pending: &mut Vec<(usize, Node, Vec<step_core::SubmissionHandle>)>,
                     in_flight: &mut HashSet<(u128, u32, u32)>,
                     committed: &mut u64,
                     outcomes: &mut HashMap<u64, Outcome>,
                     next_id: &mut u64,
                     frontier: &mut Vec<Node>,
                     stats: &mut SynthStats|
         -> Result<(), StepError> {
            for (slot, node, handles) in pending.drain(..) {
                let mut spent: u64 = 0;
                let mut probes: Vec<OutputResult> = Vec::with_capacity(handles.len());
                for h in handles {
                    let r = h.join()?;
                    stats.effort += r.total_effort();
                    stats.sat_calls += r.total_sat_calls();
                    stats.cache_hits += r.cache_hits();
                    stats.cache_misses += r.cache_misses();
                    stats.bank_hits += r.clause_bank_hits();
                    stats.disk_hits += r.disk_hits();
                    stats.donated_clauses += r.donated_clauses();
                    let out = r
                        .outputs
                        .into_iter()
                        .next()
                        .ok_or_else(|| StepError::Internal("probe lost its output".into()))?;
                    spent += out.effort.conflicts;
                    probes.push(out);
                }
                if let Some((_, l)) = &ledger {
                    l.commit(slot, spent);
                }
                *committed += match slot_cap {
                    Some(c) => spent.min(c),
                    None => spent,
                };
                self.resolve(node, probes, outcomes, next_id, frontier, stats);
            }
            in_flight.clear();
            Ok(())
        };

        for (slot, node) in expand.into_iter().enumerate() {
            // The ledger's independent-prefix condition: outside it, a
            // reservation needs every earlier commit, so drain first
            // (reserve then returns without blocking). Twins also wait
            // for their leader's commit, which makes the round replay
            // the sequential run: the leader solves, twins are served
            // from the (now warm) cache — at any worker count.
            let fast = match (&ledger, slot_cap) {
                (None, _) => true,
                (Some((limit, _)), Some(cap)) => (slot as u64 + 1)
                    .checked_mul(cap)
                    .is_some_and(|need| need <= *limit),
                (Some(_), None) => false,
            };
            if (!fast || in_flight.contains(&node.fp)) && !pending.is_empty() {
                drain(
                    &mut pending,
                    &mut in_flight,
                    &mut committed,
                    outcomes,
                    next_id,
                    frontier,
                    stats,
                )?;
            }
            let slice = ledger.as_ref().map(|(_, l)| l.reserve(slot));
            let exhausted = slice == Some(0) || deadline.is_some_and(|d| Instant::now() >= d);
            if exhausted {
                stats.truncated = true;
                outcomes.insert(node.id, leaf_outcome(&node));
                if let Some((_, l)) = &ledger {
                    l.commit(slot, 0);
                }
                continue;
            }
            let budget = probe_budget(self.opts.per_node, slice);
            let mut handles = Vec::with_capacity(self.opts.ops.len());
            for &op in &self.opts.ops {
                let mut config = self.config.clone();
                config.budget.per_output = budget;
                let options = SubmitOptions {
                    deadline,
                    ..SubmitOptions::default()
                };
                handles.push(self.service.submit_with(&node.sub, op, config, options)?);
            }
            stats.nodes_expanded += 1;
            in_flight.insert(node.fp);
            pending.push((slot, node, handles));
        }
        drain(
            &mut pending,
            &mut in_flight,
            &mut committed,
            outcomes,
            next_id,
            frontier,
            stats,
        )?;

        if let Some((limit, _)) = &ledger {
            *pool_left = Some(limit.saturating_sub(committed));
        }
        Ok(())
    }

    /// Folds one node's probe results: the first operator (in
    /// preference order) that decomposed wins; otherwise the BDD
    /// Shannon fallback; otherwise a leaf.
    fn resolve(
        &self,
        node: Node,
        probes: Vec<OutputResult>,
        outcomes: &mut HashMap<u64, Outcome>,
        next_id: &mut u64,
        frontier: &mut Vec<Node>,
        stats: &mut SynthStats,
    ) {
        if let Some(d) = probes.into_iter().find_map(|p| p.decomposition) {
            let lid = *next_id;
            let rid = *next_id + 1;
            *next_id += 2;
            frontier.push(self.child_node(lid, &d.aig, d.fa, &node.orig_inputs, node.depth + 1));
            frontier.push(self.child_node(rid, &d.aig, d.fb, &node.orig_inputs, node.depth + 1));
            outcomes.insert(node.id, Outcome::Gate(d.op, lid, rid));
            stats.qbf_gates += 1;
            return;
        }
        if self.opts.bdd_fallback && node.orig_inputs.len() <= self.opts.bdd_max_support {
            if let Some(outcome) = self.shannon_split(&node, next_id, frontier) {
                outcomes.insert(node.id, outcome);
                stats.bdd_splits += 1;
                return;
            }
        }
        outcomes.insert(node.id, leaf_outcome(&node));
    }

    /// Shannon-splits a resistant cone on the support variable whose
    /// cofactor BDDs are jointly smallest (ties to the lowest index —
    /// deterministic). Cofactors are exported from the BDD, which
    /// canonically simplifies them; both strictly lose the split
    /// variable, so the recursion always terminates.
    fn shannon_split(
        &self,
        node: &Node,
        next_id: &mut u64,
        frontier: &mut Vec<Node>,
    ) -> Option<Outcome> {
        let root = node.sub.outputs()[0].lit();
        let mut m = Manager::new(node.sub.num_inputs());
        let f = m.from_aig(&node.sub, root);
        let mut best: Option<(usize, usize)> = None;
        for v in 0..node.sub.num_inputs() {
            let lo = m.restrict(f, v, false);
            let hi = m.restrict(f, v, true);
            if lo == hi {
                continue;
            }
            let cost = m.size(lo) + m.size(hi);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, v));
            }
        }
        let (_, v) = best?;
        let lo = m.restrict(f, v, false);
        let hi = m.restrict(f, v, true);
        let hid = *next_id;
        let lid = *next_id + 1;
        *next_id += 2;
        for (id, cofactor) in [(hid, hi), (lid, lo)] {
            let mut caig = Aig::new();
            let ins: Vec<AigLit> = (0..node.sub.num_inputs())
                .map(|i| caig.add_input(format!("x{i}")))
                .collect();
            let r = m.export_aig(cofactor, &mut caig, &ins);
            frontier.push(self.child_node(id, &caig, r, &node.orig_inputs, node.depth + 2));
        }
        Some(Outcome::Split {
            var: node.orig_inputs[v],
            hi: hid,
            lo: lid,
        })
    }

    /// A frontier node for the cone of `root` in `func`, whose inputs
    /// read original inputs through `orig_inputs`.
    fn child_node(
        &self,
        id: u64,
        func: &Aig,
        root: AigLit,
        orig_inputs: &[usize],
        depth: usize,
    ) -> Node {
        let cone = func.cone(root);
        let mapped: Vec<usize> = cone.leaves.iter().map(|&l| orig_inputs[l]).collect();
        self.make_node(id, &cone.aig, cone.root, &mapped, depth)
    }

    fn make_node(
        &self,
        id: u64,
        cone: &Aig,
        root: AigLit,
        orig_inputs: &[usize],
        depth: usize,
    ) -> Node {
        let fp = if root.node().index() == 0 {
            // A constant cone: no structure to canonicalize.
            (root.is_complement() as u128, 0, 0)
        } else {
            let c = canonicalize(cone, root).fingerprint;
            (c.hash, c.inputs, c.ands)
        };
        let mut sub = cone.clone();
        sub.add_output("f", root);
        Node {
            id,
            sub,
            orig_inputs: orig_inputs.to_vec(),
            depth,
            fp,
        }
    }
}

/// The per-probe budget: the per-node scope tightened by the node's
/// pool slice (`None` = unlimited pool).
fn probe_budget(per_node: Budget, slice: Option<u64>) -> Budget {
    match slice {
        None => per_node,
        Some(s) => {
            let w = per_node.work().map_or(s, |w| w.min(s));
            per_node.with_work(w)
        }
    }
}

/// A leaf over original inputs, compacted like
/// [`step_core::decompose_tree`]'s leaves.
fn leaf_outcome(node: &Node) -> Outcome {
    Outcome::Leaf(node.sub.compact(), node.orig_inputs.clone())
}

/// A leaf computing the (possibly negated) literal of original input
/// `var`.
fn literal_leaf(var: usize, negated: bool) -> TreeNode {
    let mut a = Aig::new();
    let x = a.add_input("x");
    a.add_output("f", if negated { !x } else { x });
    TreeNode::Leaf {
        func: a,
        inputs: vec![var],
    }
}

/// Assembles the final tree from per-node outcomes.
fn build_tree(id: u64, outcomes: &mut HashMap<u64, Outcome>) -> TreeNode {
    match outcomes.remove(&id).expect("every node has an outcome") {
        Outcome::Leaf(func, inputs) => TreeNode::Leaf { func, inputs },
        Outcome::Gate(op, l, r) => TreeNode::Gate {
            op,
            left: Box::new(build_tree(l, outcomes)),
            right: Box::new(build_tree(r, outcomes)),
        },
        Outcome::Split { var, hi, lo } => TreeNode::Gate {
            op: GateOp::Or,
            left: Box::new(TreeNode::Gate {
                op: GateOp::And,
                left: Box::new(literal_leaf(var, false)),
                right: Box::new(build_tree(hi, outcomes)),
            }),
            right: Box::new(TreeNode::Gate {
                op: GateOp::And,
                left: Box::new(literal_leaf(var, true)),
                right: Box::new(build_tree(lo, outcomes)),
            }),
        },
    }
}

// The driver is shared state only through the service; its outputs
// travel to consumers.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SynthOutput>();
    assert_send::<SynthOptions>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use step_core::Model;

    fn service() -> StepService {
        StepService::spawn(
            2,
            Some(std::sync::Arc::new(step_core::ResultCache::default())),
        )
    }

    fn driver_opts() -> (DecompConfig, SynthOptions) {
        (
            DecompConfig::new(Model::QbfDisjoint),
            SynthOptions::default(),
        )
    }

    fn dnf_circuit() -> Aig {
        // f = (x0 x1) | (x2 x3) | (x4 x5) — fully decomposable.
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..6).map(|i| aig.add_input(format!("x{i}"))).collect();
        let c0 = aig.and(xs[0], xs[1]);
        let c1 = aig.and(xs[2], xs[3]);
        let c2 = aig.and(xs[4], xs[5]);
        let t = aig.or(c0, c1);
        let f = aig.or(t, c2);
        aig.add_output("f", f);
        aig
    }

    #[test]
    fn dnf_synthesizes_and_verifies() {
        let svc = service();
        let (config, opts) = driver_opts();
        let drv = SynthDriver::new(&svc, config, opts);
        let aig = dnf_circuit();
        let out = drv.synthesize(&aig, 0).unwrap();
        assert!(out.stats.verified);
        // The two OR joins become gates; the 2-var cubes are already
        // at the target support and stay leaves.
        assert!(out.tree.num_gates() >= 2, "\n{}", out.tree.render());
        assert!(out.tree.max_leaf_support() <= 2);
        assert!(network_equivalent(&aig, 0, &out.tree, None).is_ok());
    }

    #[test]
    fn majority_falls_back_to_shannon_split() {
        // maj3 resists every bi-decomposition; the BDD fallback must
        // still drive leaves down to the target support.
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..3).map(|i| aig.add_input(format!("x{i}"))).collect();
        let ab = aig.and(xs[0], xs[1]);
        let ac = aig.and(xs[0], xs[2]);
        let bc = aig.and(xs[1], xs[2]);
        let t = aig.or(ab, ac);
        let f = aig.or(t, bc);
        aig.add_output("maj", f);

        let svc = service();
        let (config, opts) = driver_opts();
        let drv = SynthDriver::new(&svc, config, opts);
        let out = drv.synthesize(&aig, 0).unwrap();
        assert!(out.stats.bdd_splits >= 1, "\n{}", out.tree.render());
        assert!(out.tree.max_leaf_support() <= 2);
        assert!(out.stats.verified);
    }

    #[test]
    fn fallback_off_leaves_resistant_cone_whole() {
        let mut aig = Aig::new();
        let xs: Vec<AigLit> = (0..3).map(|i| aig.add_input(format!("x{i}"))).collect();
        let ab = aig.and(xs[0], xs[1]);
        let ac = aig.and(xs[0], xs[2]);
        let bc = aig.and(xs[1], xs[2]);
        let t = aig.or(ab, ac);
        let f = aig.or(t, bc);
        aig.add_output("maj", f);

        let svc = service();
        let (config, mut opts) = driver_opts();
        opts.bdd_fallback = false;
        let drv = SynthDriver::new(&svc, config, opts);
        let out = drv.synthesize(&aig, 0).unwrap();
        assert_eq!(out.tree.num_gates(), 0);
        assert_eq!(out.tree.max_leaf_support(), 3);
    }

    #[test]
    fn zero_synthesis_pool_truncates_at_the_root() {
        let svc = service();
        let (config, mut opts) = driver_opts();
        opts.synthesis = Budget::Work(0);
        opts.per_node = Budget::Work(100);
        let drv = SynthDriver::new(&svc, config, opts);
        let out = drv.synthesize(&dnf_circuit(), 0).unwrap();
        assert!(out.stats.truncated);
        assert_eq!(out.stats.nodes_expanded, 0);
        assert_eq!(out.tree.num_gates(), 0);
        // The truncated network is the cone itself — still equivalent.
        assert!(out.stats.verified);
    }

    #[test]
    fn max_depth_stops_the_recursion() {
        let svc = service();
        let (config, mut opts) = driver_opts();
        opts.max_depth = Some(1);
        let drv = SynthDriver::new(&svc, config, opts);
        let out = drv.synthesize(&dnf_circuit(), 0).unwrap();
        assert!(out.tree.depth() <= 2, "\n{}", out.tree.render());
        assert!(out.stats.verified);
    }

    #[test]
    fn constant_output_synthesizes_to_a_constant_leaf() {
        let mut aig = Aig::new();
        let x = aig.add_input("x");
        let f = aig.and(x, !x);
        aig.add_output("zero", f);
        let svc = service();
        let (config, opts) = driver_opts();
        let drv = SynthDriver::new(&svc, config, opts);
        let out = drv.synthesize(&aig, 0).unwrap();
        assert_eq!(out.support, 0);
        assert!(out.stats.verified);
        assert!(!out.tree.eval(&[false]));
        assert!(!out.tree.eval(&[true]));
    }
}
