//! Regenerates **Table III**: performance data for OR bi-decomposition —
//! per circuit, `#Dec` (decomposed POs) and CPU seconds for LJH,
//! STEP-MG and STEP-{QD,QB,QDB}.
//!
//! Usage: `table3 [--scale ...] [--op ...] [--filter <name>] [--fast]
//! [--budget <spec>] [--circuit-budget <spec>] [--qbf-budget <spec>]
//! [--jobs n] [--seed n] [--no-cache] [--cache-cap n]`
//!
//! `--budget work:<n>` swaps the wall-clock per-output limit for a
//! deterministic conflict budget: the printed `#Dec` cells — and the
//! `BENCH_table3.json` records — become byte-identical across
//! machines and `--jobs` values (wall columns aside).
//!
//! The model × circuit product is sharded over one shared
//! [`StepService`](step_core::StepService) with `--jobs` workers
//! (circuits submitted through a bounded look-ahead window), so the
//! pool crosses circuit and model boundaries instead of parallelizing
//! only within a circuit; rows print in table order as their
//! submissions complete. Every submission shares one result
//! cache (keyed by canonical cone fingerprint × model × config), so
//! repeated cones across the circuit population are solved once per
//! model; per-run hit/miss counts land in the JSON records, along
//! with the seed/jobs/op/cache provenance that makes sharded sweep
//! outputs mergeable. Answers are deterministic for any `--jobs`;
//! the per-record *work* counters (sat_calls, cache hits/misses) are
//! scheduling-dependent under `--jobs > 1` — use `--jobs 1` when
//! diffing those across commits.

use step_bench::{secs, submit_sweep_entry, write_bench_json, BenchRecord, HarnessOpts};
use step_circuits::registry_table1;
use step_core::Model;

/// Machine-readable mirror of the printed table (perf trajectory).
const JSON_OUT: &str = "BENCH_table3.json";

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());
    let mut records: Vec<BenchRecord> = Vec::new();

    println!(
        "TABLE III: PERFORMANCE DATA FOR {} BI-DECOMPOSITION (scale {:?})",
        opts.op, opts.scale
    );
    println!(
        "{:<10} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9}",
        "Circuit",
        "#Dec",
        "LJH(s)",
        "#Dec",
        "MG(s)",
        "#Dec",
        "QD(s)",
        "#Dec",
        "QB(s)",
        "#Dec",
        "QDB(s)"
    );
    println!("{}", "-".repeat(104));

    // Shard the model × circuit product over one service, keeping a
    // bounded window of circuits submitted ahead of the join cursor —
    // enough to keep every worker busy across row boundaries without
    // holding the whole corpus in memory at once. Rows join (and
    // print) in table order.
    let service = opts.service();
    let window = opts.jobs.saturating_mul(2).max(4).min(entries.len());
    let mut pending: std::collections::VecDeque<_> = Vec::new().into();
    let mut next_submit = 0usize;

    let mut totals = [0.0f64; 5];
    for entry in &entries {
        while next_submit < entries.len() && pending.len() < window {
            pending.push_back(submit_sweep_entry(&service, &entries[next_submit], &opts));
            next_submit += 1;
        }
        let handles = pending.pop_front().expect("window stays primed");
        let runs = handles.map(|h| h.join().expect("stand-in circuits are well-formed"));
        for (t, r) in totals.iter_mut().zip(&runs) {
            *t += r.cpu.as_secs_f64();
        }
        for (m, r) in Model::ALL.iter().zip(&runs) {
            records.push(BenchRecord::of(
                *m,
                &opts.circuit_label(entry.name),
                r,
                &opts,
            ));
        }
        let cell = |r: &step_core::CircuitResult| {
            let cpu = if r.timed_out {
                format!("TO@{}", secs(r.cpu))
            } else {
                secs(r.cpu)
            };
            format!("{:>5} {:>9}", r.num_decomposed(), cpu)
        };
        println!(
            "{:<10} | {} | {} | {} | {} | {}",
            entry.name,
            cell(&runs[0]),
            cell(&runs[1]),
            cell(&runs[2]),
            cell(&runs[3]),
            cell(&runs[4]),
        );
    }
    println!("{}", "-".repeat(104));
    println!(
        "{:<10} | {:>15.2} | {:>15.2} | {:>15.2} | {:>15.2} | {:>15.2}",
        "TOTAL(s)", totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!(
        "\nexpected shape (paper): MG fastest, LJH slowest, QD/QB/QDB in between \
         with #Dec equal to MG"
    );
    opts.report_cache_stats();
    write_bench_json(JSON_OUT, &records);
}
