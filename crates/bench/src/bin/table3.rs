//! Regenerates **Table III**: performance data for OR bi-decomposition —
//! per circuit, `#Dec` (decomposed POs) and CPU seconds for LJH,
//! STEP-MG and STEP-{QD,QB,QDB}.
//!
//! Usage: `table3 [--scale ...] [--op ...] [--filter <name>] [--fast]`

use step_bench::{run_model, secs, HarnessOpts};
use step_circuits::registry_table1;
use step_core::Model;

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());

    println!(
        "TABLE III: PERFORMANCE DATA FOR {} BI-DECOMPOSITION (scale {:?})",
        opts.op, opts.scale
    );
    println!(
        "{:<10} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9}",
        "Circuit",
        "#Dec",
        "LJH(s)",
        "#Dec",
        "MG(s)",
        "#Dec",
        "QD(s)",
        "#Dec",
        "QB(s)",
        "#Dec",
        "QDB(s)"
    );
    println!("{}", "-".repeat(104));

    let mut totals = [0.0f64; 5];
    for entry in &entries {
        let runs = [
            run_model(entry, Model::Ljh, &opts),
            run_model(entry, Model::MusGroup, &opts),
            run_model(entry, Model::QbfDisjoint, &opts),
            run_model(entry, Model::QbfBalanced, &opts),
            run_model(entry, Model::QbfCombined, &opts),
        ];
        for (t, r) in totals.iter_mut().zip(&runs) {
            *t += r.cpu.as_secs_f64();
        }
        let cell = |r: &step_core::CircuitResult| {
            let cpu = if r.timed_out {
                format!("TO@{}", secs(r.cpu))
            } else {
                secs(r.cpu)
            };
            format!("{:>5} {:>9}", r.num_decomposed(), cpu)
        };
        println!(
            "{:<10} | {} | {} | {} | {} | {}",
            entry.name,
            cell(&runs[0]),
            cell(&runs[1]),
            cell(&runs[2]),
            cell(&runs[3]),
            cell(&runs[4]),
        );
    }
    println!("{}", "-".repeat(104));
    println!(
        "{:<10} | {:>15.2} | {:>15.2} | {:>15.2} | {:>15.2} | {:>15.2}",
        "TOTAL(s)", totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!(
        "\nexpected shape (paper): MG fastest, LJH slowest, QD/QB/QDB in between \
         with #Dec equal to MG"
    );
}
