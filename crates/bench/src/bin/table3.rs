//! Regenerates **Table III**: performance data for OR bi-decomposition —
//! per circuit, `#Dec` (decomposed POs) and CPU seconds for LJH,
//! STEP-MG and STEP-{QD,QB,QDB}.
//!
//! Usage: `table3 [--scale ...] [--op ...] [--filter <name>] [--fast]
//! [--no-cache] [--cache-cap n]`
//!
//! All five model sweeps share one result cache (keyed by canonical
//! cone fingerprint × model × config), so repeated cones across the
//! circuit population are solved once per model; per-run hit/miss
//! counts land in the JSON records.

use step_bench::{run_model, secs, write_bench_json, BenchRecord, HarnessOpts};
use step_circuits::registry_table1;
use step_core::Model;

/// Machine-readable mirror of the printed table (perf trajectory).
const JSON_OUT: &str = "BENCH_table3.json";

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());
    let mut records: Vec<BenchRecord> = Vec::new();

    println!(
        "TABLE III: PERFORMANCE DATA FOR {} BI-DECOMPOSITION (scale {:?})",
        opts.op, opts.scale
    );
    println!(
        "{:<10} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9} | {:>5} {:>9}",
        "Circuit",
        "#Dec",
        "LJH(s)",
        "#Dec",
        "MG(s)",
        "#Dec",
        "QD(s)",
        "#Dec",
        "QB(s)",
        "#Dec",
        "QDB(s)"
    );
    println!("{}", "-".repeat(104));

    let mut totals = [0.0f64; 5];
    for entry in &entries {
        let runs = Model::ALL.map(|m| run_model(entry, m, &opts));
        for (t, r) in totals.iter_mut().zip(&runs) {
            *t += r.cpu.as_secs_f64();
        }
        for (m, r) in Model::ALL.iter().zip(&runs) {
            records.push(BenchRecord::of(*m, entry.name, r));
        }
        let cell = |r: &step_core::CircuitResult| {
            let cpu = if r.timed_out {
                format!("TO@{}", secs(r.cpu))
            } else {
                secs(r.cpu)
            };
            format!("{:>5} {:>9}", r.num_decomposed(), cpu)
        };
        println!(
            "{:<10} | {} | {} | {} | {} | {}",
            entry.name,
            cell(&runs[0]),
            cell(&runs[1]),
            cell(&runs[2]),
            cell(&runs[3]),
            cell(&runs[4]),
        );
    }
    println!("{}", "-".repeat(104));
    println!(
        "{:<10} | {:>15.2} | {:>15.2} | {:>15.2} | {:>15.2} | {:>15.2}",
        "TOTAL(s)", totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!(
        "\nexpected shape (paper): MG fastest, LJH slowest, QD/QB/QDB in between \
         with #Dec equal to MG"
    );
    opts.report_cache_stats();
    write_bench_json(JSON_OUT, &records);
}
