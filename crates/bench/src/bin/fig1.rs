//! Regenerates **Figure 1**: CPU-time scatter plots between models over
//! the full 145-circuit population — LJH vs STEP-{QD,QB,QDB} (top row)
//! and STEP-MG vs STEP-{QD,QB,QDB} (bottom row).
//!
//! Prints a CSV of per-circuit runtimes followed by six ASCII log-log
//! scatter panels.
//!
//! Usage: `fig1 [--scale smoke|default|full] [--op ...]
//! [--budget <spec>] [--circuit-budget <spec>] [--qbf-budget <spec>]
//! [--jobs n] [--seed n] [--no-cache] [--cache-cap n]`
//!
//! `--budget work:<n>` makes the sweep's verdicts (not the plotted
//! wall clocks) machine-independent — see the README's "Budgets and
//! determinism" section.
//!
//! The 145-circuit × 5-model product is sharded over one shared
//! [`StepService`](step_core::StepService) with `--jobs` workers and
//! one result cache (circuits submitted through a bounded look-ahead
//! window); CSV rows print in registry order as their submissions
//! complete, and per-run hit/miss counts land in the JSON records
//! together with the seed/jobs/op/cache provenance.
//! Answers are deterministic for any `--jobs`; the per-record work
//! counters are scheduling-dependent under `--jobs > 1` — use
//! `--jobs 1` when diffing those across commits.

use step_bench::{ascii_scatter, submit_sweep_entry, write_bench_json, BenchRecord, HarnessOpts};
use step_circuits::registry_all;
use step_core::Model;

/// Machine-readable mirror of the CSV (perf trajectory).
const JSON_OUT: &str = "BENCH_fig1.json";

fn main() {
    let mut opts = HarnessOpts::from_args();
    // Figure 1 sweeps 145 circuits; default to the cheap partition-only
    // mode so the full sweep stays tractable.
    opts.partitions_only = true;
    let entries = opts.selected(registry_all());

    println!(
        "# FIGURE 1 data: per-circuit CPU seconds per model ({} circuits)",
        entries.len()
    );
    println!("circuit,ljh,mg,qd,qb,qdb");

    // Shard the model × circuit product over one service with a
    // bounded submit-ahead window (the 145-circuit corpus would
    // otherwise be resident all at once).
    let service = opts.service();
    let window = opts.jobs.saturating_mul(2).max(4).min(entries.len());
    let mut pending: std::collections::VecDeque<_> = Vec::new().into();
    let mut next_submit = 0usize;

    let mut rows: Vec<(String, [f64; 5])> = Vec::with_capacity(entries.len());
    let mut records: Vec<BenchRecord> = Vec::new();
    for entry in &entries {
        while next_submit < entries.len() && pending.len() < window {
            pending.push_back(submit_sweep_entry(&service, &entries[next_submit], &opts));
            next_submit += 1;
        }
        let handles = pending.pop_front().expect("window stays primed");
        let runs = handles.map(|h| h.join().expect("stand-in circuits are well-formed"));
        let times = [
            runs[0].cpu.as_secs_f64(),
            runs[1].cpu.as_secs_f64(),
            runs[2].cpu.as_secs_f64(),
            runs[3].cpu.as_secs_f64(),
            runs[4].cpu.as_secs_f64(),
        ];
        for (m, r) in Model::ALL.iter().zip(&runs) {
            records.push(BenchRecord::of(
                *m,
                &opts.circuit_label(entry.name),
                r,
                &opts,
            ));
        }
        println!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            entry.name, times[0], times[1], times[2], times[3], times[4]
        );
        rows.push((entry.name.to_owned(), times));
    }

    let panel = |y_idx: usize, x_idx: usize, title: &str| {
        let pts: Vec<(f64, f64)> = rows.iter().map(|(_, t)| (t[x_idx], t[y_idx])).collect();
        println!("\n{}", ascii_scatter(&pts, title));
    };
    // x-axis = STEP-Q*, y-axis = baseline, matching the paper's panels.
    panel(0, 2, "LJH (y) vs STEP-QD (x)");
    panel(0, 3, "LJH (y) vs STEP-QB (x)");
    panel(0, 4, "LJH (y) vs STEP-QDB (x)");
    panel(1, 2, "STEP-MG (y) vs STEP-QD (x)");
    panel(1, 3, "STEP-MG (y) vs STEP-QB (x)");
    panel(1, 4, "STEP-MG (y) vs STEP-QDB (x)");

    // Headline shape statistics.
    let geo = |idx: usize| -> f64 {
        let s: f64 = rows.iter().map(|(_, t)| (t[idx].max(1e-6)).ln()).sum();
        (s / rows.len().max(1) as f64).exp()
    };
    println!(
        "geometric-mean CPU(s): LJH {:.4}  MG {:.4}  QD {:.4}  QB {:.4}  QDB {:.4}",
        geo(0),
        geo(1),
        geo(2),
        geo(3),
        geo(4)
    );
    println!("expected shape (paper): MG fastest, LJH slowest, QD/QB/QDB between them");
    opts.report_cache_stats();
    write_bench_json(JSON_OUT, &records);
}
