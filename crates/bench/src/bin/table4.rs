//! Regenerates **Table IV**: percentage of POs solved (optimum proved
//! within the per-call/per-output budgets) by STEP-{QD,QB,QDB} for OR
//! bi-decomposition.
//!
//! Usage: `table4 [--scale ...] [--op ...] [--filter <name>] [--fast]`

use step_bench::{run_model, HarnessOpts};
use step_circuits::registry_table1;
use step_core::Model;

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());

    let mut total_pos = 0usize;
    let mut solved = [0usize; 3];
    for entry in &entries {
        for (k, model) in [Model::QbfDisjoint, Model::QbfBalanced, Model::QbfCombined]
            .into_iter()
            .enumerate()
        {
            let r = run_model(entry, model, &opts);
            solved[k] += r.outputs.iter().filter(|o| o.solved).count();
            if k == 0 {
                total_pos += r.outputs.len();
            }
        }
    }

    println!(
        "TABLE IV: PERCENTAGE OF SOLVED POS WITH STEP-{{QD,QB,QDB}} FOR {} \
         BI-DECOMPOSITION (scale {:?})",
        opts.op, opts.scale
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "#Out", "STEP-QD(%)", "STEP-QB(%)", "STEP-QDB(%)"
    );
    let pct = |s: usize| 100.0 * s as f64 / total_pos.max(1) as f64;
    println!(
        "{:>8} {:>12.2} {:>12.2} {:>12.2}",
        total_pos,
        pct(solved[0]),
        pct(solved[1]),
        pct(solved[2])
    );
    println!("\npaper (38582 POs, 4s/QBF-call): QD 91.97, QB 97.81, QDB 84.42");
    println!("expected shape: QB >= QD >= QDB");
}
