//! Regenerates **Table II**: aggregate better/equal percentages across
//! all circuits — OR LJH vs STEP-{QD,QB,QDB} and OR/AND/XOR STEP-MG vs
//! STEP-{QD,QB,QDB}.
//!
//! Usage: `table2 [--scale ...] [--filter <name>] [--fast] [--paper]`

use step_bench::{run_model_op, HarnessOpts, QualityAggregate, QualityMetric};
use step_circuits::registry_table1;
use step_core::{GateOp, Model};

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());

    println!(
        "TABLE II: COMPARISON OF QUALITY METRICS BETWEEN ALL MODELS (scale {:?})",
        opts.scale
    );

    let print_block = |label: &str, rows: &[(&str, QualityAggregate)]| {
        println!("\n{label}");
        for (name, agg) in rows {
            let (better, equal) = agg.percentages();
            println!(
                "  {:<22} better: {:>6.2}%   equal: {:>6.2}%   (over {} POs)",
                name, better, equal, agg.total
            );
        }
    };

    // OR: LJH vs Q*.
    let mut lj_qd = QualityAggregate::default();
    let mut lj_qb = QualityAggregate::default();
    let mut lj_qdb = QualityAggregate::default();
    for entry in &entries {
        let ljh = run_model_op(entry, Model::Ljh, GateOp::Or, &opts);
        let qd = run_model_op(entry, Model::QbfDisjoint, GateOp::Or, &opts);
        let qb = run_model_op(entry, Model::QbfBalanced, GateOp::Or, &opts);
        let qdb = run_model_op(entry, Model::QbfCombined, GateOp::Or, &opts);
        lj_qd.add(&qd, &ljh, QualityMetric::Disjointness);
        lj_qb.add(&qb, &ljh, QualityMetric::Balancedness);
        lj_qdb.add(&qdb, &ljh, QualityMetric::Sum);
    }
    print_block(
        "OR LJH vs STEP-{QD,QB,QDB}",
        &[
            ("STEP-QD is better", lj_qd),
            ("STEP-QB is better", lj_qb),
            ("STEP-QDB is better", lj_qdb),
        ],
    );

    // OR / AND / XOR: MG vs Q*. (The paper has no LJH AND/XOR rows
    // because the Bi-dec binary lacked those modes; our LJH supports
    // them, but the table keeps the paper's layout.)
    for op in GateOp::ALL {
        let mut mg_qd = QualityAggregate::default();
        let mut mg_qb = QualityAggregate::default();
        let mut mg_qdb = QualityAggregate::default();
        for entry in &entries {
            let mg = run_model_op(entry, Model::MusGroup, op, &opts);
            let qd = run_model_op(entry, Model::QbfDisjoint, op, &opts);
            let qb = run_model_op(entry, Model::QbfBalanced, op, &opts);
            let qdb = run_model_op(entry, Model::QbfCombined, op, &opts);
            mg_qd.add(&qd, &mg, QualityMetric::Disjointness);
            mg_qb.add(&qb, &mg, QualityMetric::Balancedness);
            mg_qdb.add(&qdb, &mg, QualityMetric::Sum);
        }
        print_block(
            &format!("{op} STEP-MG vs STEP-{{QD,QB,QDB}}"),
            &[
                ("STEP-QD is better", mg_qd),
                ("STEP-QB is better", mg_qb),
                ("STEP-QDB is better", mg_qdb),
            ],
        );
    }
    println!(
        "\npaper aggregates (OR MG vs QD/QB/QDB better%): 35.85 / 79.98 / 28.79; \
         AND: 27.02 / 85.71 / 35.12; XOR: 23.87 / 81.44 / 24.96"
    );
}
