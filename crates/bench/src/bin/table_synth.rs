//! Multi-level synthesis quality table: recursive bi-decomposition
//! (STEP-synth, the `step-synth` driver over a shared service) against
//! the BDD mux-network baseline from `step-bdd`, per registry circuit.
//!
//! Usage: `table_synth [--scale ...] [--filter <name>] [--budget <spec>]
//! [--circuit-budget <spec>] [--qbf-budget <spec>] [--jobs n] [--seed n]
//! [--no-cache] [--cache-cap n] [--clause-reuse] [--cache-dir <path>]`
//!
//! The budget scopes map onto synthesis stopping rules
//! ([`HarnessOpts::synth_options`]): `--budget` bounds each frontier
//! node, `--circuit-budget` is the whole-synthesis pool. Pure-work
//! specs make every emitted network — and hence the area/depth/literal
//! columns and the `BENCH_table_synth.json` records — byte-identical
//! across machines and `--jobs` values; the wall column aside.
//!
//! Columns, per circuit (summed/maxed over POs): the synthesized
//! network's two-input gates, AND nodes of its strashed AIG form, gate
//! depth and AIG literals (2 × ANDs), against the same three metrics
//! for the per-PO BDD mux networks, plus the frontier cones the
//! recursion expanded. Every synthesized network is SAT-verified
//! equivalent to its cone before it is counted.

use std::time::Instant;

use step_aig::{Aig, AigLit};
use step_bdd::Manager;
use step_bench::{secs, write_bench_json, BenchRecord, HarnessOpts};
use step_circuits::registry_table1;
use step_core::{Model, StepService};
use step_synth::SynthDriver;

/// Machine-readable mirror of the printed table (perf trajectory).
const JSON_OUT: &str = "BENCH_table_synth.json";

/// `(and_nodes, depth)` of a compacted single-output network.
fn net_metrics(net: &Aig) -> (u64, u64) {
    let root = net.outputs()[0].lit();
    (net.and_count() as u64, net.level(root) as u64)
}

/// The BDD baseline: every PO cone as a mux network exported from its
/// BDD — `(and_nodes, depth)` summed/maxed over POs.
fn bdd_baseline(aig: &Aig) -> (u64, u64) {
    let mut ands = 0u64;
    let mut depth = 0u64;
    for out in aig.outputs() {
        let cone = aig.cone(out.lit());
        let mut m = Manager::new(cone.aig.num_inputs());
        let f = m.from_aig(&cone.aig, cone.root);
        let mut net = Aig::new();
        let ins: Vec<AigLit> = (0..cone.aig.num_inputs())
            .map(|i| net.add_input(format!("x{i}")))
            .collect();
        let root = m.export_aig(f, &mut net, &ins);
        net.add_output("f", root);
        let (a, d) = net_metrics(&net.compact());
        ands += a;
        depth = depth.max(d);
    }
    (ands, depth)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());
    let mut records: Vec<BenchRecord> = Vec::new();

    println!(
        "TABLE SYNTH: MULTI-LEVEL SYNTHESIS VS BDD MUX NETWORKS (scale {:?})",
        opts.scale
    );
    println!(
        "{:<10} | {:>5} {:>6} {:>5} {:>6} | {:>6} {:>5} {:>6} | {:>6} {:>9}",
        "Circuit", "gates", "ANDs", "depth", "lits", "bANDs", "bdep", "blits", "expand", "wall(s)"
    );
    println!("{}", "-".repeat(82));

    let service = opts.service();
    let mut totals = [0u64; 3]; // synth ANDs, bdd ANDs, expansions
    for entry in &entries {
        let aig = StepService::comb_arc(&opts.build(entry))
            .expect("stand-in circuits convert combinationally");
        let driver = SynthDriver::new(
            &service,
            opts.config(Model::QbfDisjoint),
            opts.synth_options(),
        );
        let start = Instant::now();
        let outputs = driver
            .synthesize_circuit(&aig)
            .expect("stand-in circuits synthesize");
        let wall = start.elapsed();

        let gates: u64 = outputs.iter().map(|o| o.tree.num_gates() as u64).sum();
        let mut ands = 0u64;
        let mut depth = 0u64;
        for o in &outputs {
            let (a, d) = net_metrics(&o.tree.to_aig().compact());
            ands += a;
            depth = depth.max(d);
        }
        let expanded: u64 = outputs.iter().map(|o| o.stats.nodes_expanded).sum();
        let (bdd_ands, bdd_depth) = bdd_baseline(&aig);
        println!(
            "{:<10} | {:>5} {:>6} {:>5} {:>6} | {:>6} {:>5} {:>6} | {:>6} {:>9}",
            entry.name,
            gates,
            ands,
            depth,
            2 * ands,
            bdd_ands,
            bdd_depth,
            2 * bdd_ands,
            expanded,
            secs(wall)
        );
        totals[0] += ands;
        totals[1] += bdd_ands;
        totals[2] += expanded;
        records.push(BenchRecord::of_synth(
            Model::QbfDisjoint,
            &opts.circuit_label(entry.name),
            &outputs,
            wall,
            &opts,
        ));
    }
    println!("{}", "-".repeat(82));
    println!(
        "total: {} synth ANDs vs {} BDD ANDs over {} expanded cones",
        totals[0], totals[1], totals[2]
    );
    write_bench_json(JSON_OUT, &records);
    opts.report_cache_stats();
}
