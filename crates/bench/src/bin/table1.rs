//! Regenerates **Table I**: per-circuit quality-metric comparison
//! between the OR bi-decomposition models — LJH vs STEP-{QD,QB,QDB}
//! and STEP-MG vs STEP-{QD,QB,QDB}.
//!
//! Usage: `table1 [--scale smoke|default|full] [--op or|and|xor]
//! [--filter <name>] [--fast] [--paper]`

use step_bench::{compare_quality, run_model, HarnessOpts, QualityMetric};
use step_circuits::registry_table1;
use step_core::Model;

fn main() {
    let opts = HarnessOpts::from_args();
    let entries = opts.selected(registry_table1());

    println!(
        "TABLE I: COMPARISON OF QUALITY METRICS BETWEEN {} MODELS (scale {:?})",
        opts.op, opts.scale
    );
    println!(
        "{:<10} {:>4} {:>4} {:>4} | {:>7} {:>7} | {:>7} {:>7} | {:>8} {:>8} |\
         | {:>7} {:>7} | {:>7} {:>7} | {:>8} {:>8}",
        "Circuit",
        "#In",
        "#InM",
        "#Out",
        "QD>LJH",
        "QD=LJH",
        "QB>LJH",
        "QB=LJH",
        "QDB>LJH",
        "QDB=LJH",
        "QD>MG",
        "QD=MG",
        "QB>MG",
        "QB=MG",
        "QDB>MG",
        "QDB=MG",
    );
    println!("{}", "-".repeat(152));

    for entry in &entries {
        let aig = opts.build(entry);
        let inm = aig
            .outputs()
            .iter()
            .map(|o| aig.support(o.lit()).len())
            .max()
            .unwrap_or(0);

        let ljh = run_model(entry, Model::Ljh, &opts);
        let mg = run_model(entry, Model::MusGroup, &opts);
        let qd = run_model(entry, Model::QbfDisjoint, &opts);
        let qb = run_model(entry, Model::QbfBalanced, &opts);
        let qdb = run_model(entry, Model::QbfCombined, &opts);

        let c = |pair: (f64, f64)| format!("{:>7.2} {:>7.2}", pair.0, pair.1);
        println!(
            "{:<10} {:>4} {:>4} {:>4} | {} | {} | {} || {} | {} | {}",
            entry.name,
            aig.num_inputs(),
            inm,
            aig.num_outputs(),
            c(compare_quality(&qd, &ljh, QualityMetric::Disjointness)),
            c(compare_quality(&qb, &ljh, QualityMetric::Balancedness)),
            c(compare_quality(&qdb, &ljh, QualityMetric::Sum)),
            c(compare_quality(&qd, &mg, QualityMetric::Disjointness)),
            c(compare_quality(&qb, &mg, QualityMetric::Balancedness)),
            c(compare_quality(&qdb, &mg, QualityMetric::Sum)),
        );
    }
    println!();
    println!(
        "paper stats for reference (original circuits): {}",
        entries
            .iter()
            .map(|e| format!(
                "{} {}/{}/{}",
                e.name, e.paper.inputs, e.paper.inm, e.paper.outputs
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
