//! Harness regenerating the paper's evaluation: Tables I–IV and
//! Figure 1.
//!
//! Every table/figure has a dedicated binary (`table1` … `table4`,
//! `fig1`) that prints the same rows/series the paper reports, computed
//! on the registry stand-ins (see `step-circuits`). Shared plumbing
//! lives here: CLI options, model runners and the quality-comparison
//! arithmetic used by Tables I and II.
//!
//! Absolute numbers differ from the paper (different hardware, solvers
//! and — necessarily — circuits); the *shape* is what the harness
//! reproduces: STEP-QD/QB/QDB never lose to LJH or STEP-MG on their
//! target metric and frequently win (Tables I/II), LJH is the slowest
//! model and STEP-MG the fastest with the QBF models in between
//! (Table III, Figure 1), and under per-call budgets QB solves the most
//! POs, then QD, then QDB (Table IV).

use std::sync::Arc;
use std::time::Duration;

use step_circuits::{CircuitEntry, Scale};
use step_core::{
    BiDecomposer, Budget, BudgetPolicy, CircuitResult, ClauseBank, DecompConfig, GateOp, Model,
    OutputResult, RestartPolicy, ResultCache, StepService, SubmissionHandle, TieredStore,
};
use step_synth::{SynthOptions, SynthOutput};

/// Command-line options shared by the harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Circuit generation scale.
    pub scale: Scale,
    /// Engine budgets.
    pub budget: BudgetPolicy,
    /// Root operator (Tables I/III/IV are OR in the paper).
    pub op: GateOp,
    /// Substring filter on circuit names.
    pub filter: Option<String>,
    /// Grow every sweep circuit with `k − 1` permuted-input twins of
    /// each output (`--copies k`, default 1 = off) — the exact-twin
    /// population the result cache and the clause bank's exact channel
    /// serve. Grown runs annotate the circuit name in the BENCH JSON
    /// (`name+p<k>s<k>`), so their records never mix with ungrown ones.
    pub copies: usize,
    /// Grow every sweep circuit with `k − 1` same-support near-twin
    /// variants of each output (`--shared-substructure k`, default 1 =
    /// off) — near-twins miss the exact-result cache but share cone
    /// structure, the population the clause bank's vetted cluster
    /// channel exists for. Applied after [`copies`](HarnessOpts::copies)
    /// so every permuted twin gets near-twins too; annotated in the
    /// BENCH JSON circuit name like `copies`.
    pub shared_substructure: usize,
    /// Disable extraction+verification for speed (partitions only).
    pub partitions_only: bool,
    /// Worker threads (`--jobs`) of the shared [`StepService`] the
    /// sweep harnesses submit to: the outer model × circuit product is
    /// sharded over one persistent pool, so workers cross circuit
    /// boundaries instead of parallelizing only within a circuit.
    /// Per-output results are identical for any value.
    pub jobs: usize,
    /// Engine base seed (`--seed`), recorded in the BENCH JSON so
    /// sharded sweep records can only be merged when they agree on it.
    pub seed: u64,
    /// One result cache shared by every engine the harness builds, so
    /// the whole model × circuit sweep reuses solved cones (repeated
    /// cones are common in the synthetic families; the cache key keeps
    /// models and configs apart). `None` disables caching
    /// (`--no-cache`); [`HarnessOpts::from_args`] enables it by
    /// default.
    pub cache: Option<Arc<ResultCache>>,
    /// SAT restart policy (`--sat-restarts luby|ema`), forwarded to
    /// every solver the sweep builds and recorded in the BENCH JSON.
    pub sat_restarts: RestartPolicy,
    /// Bounded root-level SAT preprocessing (`--sat-preprocess`),
    /// recorded in the BENCH JSON.
    pub sat_preprocess: bool,
    /// Cross-output clause reuse (`--clause-reuse`): completed outputs
    /// donate their pinned learnt clauses to a bank keyed by canonical
    /// fingerprint, and later structural (near-)twins start pre-seeded.
    /// Verdicts and partitions are byte-identical either way; the work
    /// counters are what it improves. Off by default, recorded in the
    /// BENCH JSON.
    pub clause_reuse: bool,
    /// The clause bank shared by every engine the harness builds when
    /// [`clause_reuse`](HarnessOpts::clause_reuse) is on, so donations
    /// cross circuit (and model) boundaries like the result cache does.
    /// `None` with reuse off; [`HarnessOpts::from_args`] builds one
    /// (bounded by `--clause-bank-cap`) when `--clause-reuse` is given.
    pub clause_bank: Option<Arc<ClauseBank>>,
    /// Persistent store directory (`--cache-dir`): solved results,
    /// donated clauses and probe certificates load from here before the
    /// sweep and flush back after it, so repeated sweeps (and sharded
    /// replicas, via `step cache merge`) start warm. Vetted writable at
    /// parse time; `None` keeps the sweep memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// The tiered store every engine/service of the sweep shares —
    /// tier 0 is [`cache`](HarnessOpts::cache) +
    /// [`clause_bank`](HarnessOpts::clause_bank), tier 1 the
    /// [`cache_dir`](HarnessOpts::cache_dir) disk tier when given.
    /// Built by [`HarnessOpts::from_args`]; `None` falls back to the
    /// bare cache/bank attachment.
    pub store: Option<Arc<TieredStore>>,
    /// Tenant name stamped into the BENCH JSON (`local` for in-process
    /// harness runs; the `step serve` front-end substitutes the
    /// client's tenant when it books records).
    pub tenant: String,
    /// Admission path stamped into the BENCH JSON: `direct` for
    /// in-process harness runs, `served` when a network front-end
    /// admitted the work.
    pub admission: String,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Default,
            budget: BudgetPolicy {
                per_qbf_call: Budget::Wall(Duration::from_millis(500)),
                per_output: Budget::Wall(Duration::from_secs(10)),
                per_circuit: Budget::Wall(Duration::from_secs(120)),
            },
            op: GateOp::Or,
            filter: None,
            copies: 1,
            shared_substructure: 1,
            partitions_only: false,
            jobs: 1,
            seed: DecompConfig::new(Model::QbfDisjoint).seed,
            cache: None,
            sat_restarts: RestartPolicy::default(),
            sat_preprocess: false,
            clause_reuse: false,
            clause_bank: None,
            cache_dir: None,
            store: None,
            tenant: "local".to_owned(),
            admission: "direct".to_owned(),
        }
    }
}

impl HarnessOpts {
    /// Parses harness options from `std::env::args`.
    ///
    /// Flags: `--scale smoke|default|full`, `--paper` (paper budgets),
    /// `--budget <spec>` (per-output [`Budget`], e.g. `work:200k` for
    /// a deterministic sweep), `--circuit-budget <spec>`,
    /// `--qbf-budget <spec>` (per QBF call),
    /// `--op or|and|xor`, `--filter <substr>`, `--copies <k>` /
    /// `--shared-substructure <k>` (twin-heavy circuit growth, see the
    /// fields), `--fast`
    /// (partitions only), `--jobs <n>` (parallel output workers),
    /// `--cache`/`--no-cache` (sweep-wide result cache, default on),
    /// `--cache-cap <n>` (bound it), `--cache-dir <path>` (persistent
    /// warm-start store; a non-directory or unwritable path is a usage
    /// error, exit 2, before any solving), `--help`. `--conflicts <n>` is a
    /// deprecated alias for `--qbf-budget work:<n>` (it used to limit
    /// each *inner* SAT call; it now bounds the QBF call's total
    /// inner-SAT conflicts, composed onto any wall component).
    pub fn from_args() -> HarnessOpts {
        let mut opts = HarnessOpts::default();
        let mut cache_on = true;
        let mut cache_cap: Option<usize> = None;
        let mut bank_cap: Option<usize> = None;
        let mut qbf_budget_set = false;
        let mut circuit_budget_set = false;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = match args.get(i).map(String::as_str) {
                        Some("smoke") => Scale::Smoke,
                        Some("default") => Scale::Default,
                        Some("full") => Scale::Full,
                        other => {
                            eprintln!("unknown scale {other:?}");
                            std::process::exit(2);
                        }
                    };
                }
                "--paper" => opts.budget = BudgetPolicy::paper(),
                "--budget" | "--circuit-budget" | "--qbf-budget" => {
                    let flag = args[i].clone();
                    i += 1;
                    let spec = args
                        .get(i)
                        .map(String::as_str)
                        .map(Budget::parse)
                        .unwrap_or_else(|| Err(format!("{flag} needs a value")));
                    match spec {
                        Ok(b) => match flag.as_str() {
                            "--budget" => opts.budget.per_output = b,
                            "--circuit-budget" => {
                                opts.budget.per_circuit = b;
                                circuit_budget_set = true;
                            }
                            _ => {
                                opts.budget.per_qbf_call = b;
                                qbf_budget_set = true;
                            }
                        },
                        Err(e) => {
                            eprintln!("{flag}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                "--op" => {
                    i += 1;
                    opts.op = match args.get(i).map(String::as_str) {
                        Some("or") => GateOp::Or,
                        Some("and") => GateOp::And,
                        Some("xor") => GateOp::Xor,
                        other => {
                            eprintln!("unknown op {other:?}");
                            std::process::exit(2);
                        }
                    };
                }
                "--filter" => {
                    i += 1;
                    opts.filter = args.get(i).cloned();
                }
                "--copies" | "--shared-substructure" => {
                    let flag = args[i].clone();
                    i += 1;
                    let k = match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => n,
                        _ => {
                            eprintln!("{flag} needs a positive integer");
                            std::process::exit(2);
                        }
                    };
                    if flag == "--copies" {
                        opts.copies = k;
                    } else {
                        opts.shared_substructure = k;
                    }
                }
                "--fast" => opts.partitions_only = true,
                "--jobs" => {
                    i += 1;
                    opts.jobs = match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => n,
                        _ => {
                            eprintln!("--jobs needs a positive integer");
                            std::process::exit(2);
                        }
                    };
                }
                "--conflicts" => {
                    // Deprecated alias for `--qbf-budget work:<n>` —
                    // counts as explicitly setting the per-call scope.
                    i += 1;
                    match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(n) => {
                            opts.budget.per_qbf_call = opts.budget.per_qbf_call.with_work(n);
                            qbf_budget_set = true;
                        }
                        None => {
                            eprintln!("--conflicts needs a number");
                            std::process::exit(2);
                        }
                    }
                }
                "--seed" => {
                    i += 1;
                    opts.seed = match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(s) => s,
                        None => {
                            eprintln!("--seed needs a number");
                            std::process::exit(2);
                        }
                    };
                }
                "--sat-restarts" => {
                    i += 1;
                    opts.sat_restarts = match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(p) => p,
                        None => {
                            eprintln!("--sat-restarts needs luby or ema");
                            std::process::exit(2);
                        }
                    };
                }
                "--sat-preprocess" => opts.sat_preprocess = true,
                "--cache" => cache_on = true,
                "--no-cache" => cache_on = false,
                "--clause-reuse" => opts.clause_reuse = true,
                "--no-clause-reuse" => opts.clause_reuse = false,
                "--clause-bank-cap" => {
                    i += 1;
                    bank_cap = match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => Some(n),
                        _ => {
                            eprintln!("--clause-bank-cap needs a positive integer");
                            std::process::exit(2);
                        }
                    };
                    opts.clause_reuse = true;
                }
                "--cache-cap" => {
                    i += 1;
                    cache_cap = match args.get(i).and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 1 => Some(n),
                        _ => {
                            eprintln!("--cache-cap needs a positive integer");
                            std::process::exit(2);
                        }
                    };
                    cache_on = true;
                }
                "--cache-dir" => {
                    i += 1;
                    match args.get(i) {
                        Some(p) => {
                            opts.cache_dir = Some(validated_cache_dir(std::path::Path::new(p)))
                        }
                        None => {
                            eprintln!("--cache-dir needs a path");
                            std::process::exit(2);
                        }
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale smoke|default|full  --paper  \
                         --budget <spec>  --circuit-budget <spec>  --qbf-budget <spec>  \
                         --op or|and|xor  --filter <substr>  --copies <k>  \
                         --shared-substructure <k>  --fast  --jobs <n>  \
                         --seed <n>  --sat-restarts luby|ema  --sat-preprocess  \
                         --cache  --no-cache  --cache-cap <n>  --cache-dir <path>  \
                         --clause-reuse  --no-clause-reuse  --clause-bank-cap <n>  \
                         (budget spec: wall:<dur> | work:<n> | both:<dur>,<n> | unlimited)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option `{other}` (try --help)");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        if cache_on {
            opts.cache = Some(Arc::new(match cache_cap {
                Some(cap) => ResultCache::with_capacity(cap),
                None => ResultCache::new(),
            }));
        }
        if opts.clause_reuse {
            opts.clause_bank = Some(Arc::new(match bank_cap {
                Some(cap) => ClauseBank::with_capacity(cap),
                None => ClauseBank::new(),
            }));
        }
        // The sweep-wide store wraps the cache/bank built above; the
        // disk tier loads here, once, before any circuit is built.
        if let Some(dir) = &opts.cache_dir {
            match TieredStore::with_disk(opts.cache.clone(), opts.clause_bank.clone(), dir) {
                Ok(s) => opts.store = Some(Arc::new(s)),
                Err(e) => {
                    eprintln!("--cache-dir {}: {e}", dir.display());
                    std::process::exit(2);
                }
            }
        }
        opts.budget
            .lift_unset_walls_for_pure_work(qbf_budget_set, circuit_budget_set);
        opts
    }

    /// Builds one sweep circuit at this option set's scale, grown with
    /// the `--copies` / `--shared-substructure` twin populations
    /// (copies first, so every permuted twin gets near-twins too —
    /// matching `gen_circuit`).
    pub fn build(&self, entry: &CircuitEntry) -> step_aig::Aig {
        let mut aig = entry.build(self.scale);
        if self.copies > 1 {
            aig = step_circuits::with_permuted_copies(&aig, self.copies);
        }
        if self.shared_substructure > 1 {
            aig = step_circuits::with_shared_substructure(&aig, self.shared_substructure);
        }
        aig
    }

    /// The circuit name to record in the BENCH JSON: the entry name,
    /// annotated with the growth knobs when they are active
    /// (`s15850.1+p2s2`) so grown records never merge with ungrown
    /// ones.
    pub fn circuit_label(&self, name: &str) -> String {
        if self.copies > 1 || self.shared_substructure > 1 {
            format!("{}+p{}s{}", name, self.copies, self.shared_substructure)
        } else {
            name.to_owned()
        }
    }

    /// Applies the name filter.
    pub fn selected(&self, entries: Vec<CircuitEntry>) -> Vec<CircuitEntry> {
        match &self.filter {
            None => entries,
            Some(f) => entries.into_iter().filter(|e| e.name.contains(f)).collect(),
        }
    }

    /// Reports the sweep-wide cache totals on stderr (no-op when
    /// caching is disabled); table/figure binaries call this once after
    /// their sweep, keeping stdout reserved for the tables.
    pub fn report_cache_stats(&self) {
        if let Some(cache) = &self.cache {
            eprintln!(
                "result cache: {} hits, {} misses, {} entries",
                cache.hits(),
                cache.misses(),
                cache.len()
            );
        }
        if let Some(bank) = &self.clause_bank {
            eprintln!(
                "clause bank: {} hits ({} exact, {} cluster), {} misses, \
                 {} donations, {} entries, {} probe hits, {} probe records",
                bank.hits(),
                bank.exact_hits(),
                bank.cluster_hits(),
                bank.misses(),
                bank.donations(),
                bank.len(),
                bank.probe_hits(),
                bank.probe_records()
            );
        }
        if let Some(store) = &self.store {
            // Persist before reporting so the flushed count is the
            // final one; a failure costs the warm start, not the sweep.
            if let Err(e) = store.flush() {
                eprintln!("warning: cache flush failed: {e}");
            }
            if let Some(disk) = store.disk() {
                eprintln!(
                    "store: {} record(s) loaded, disk hits {} results / {} clauses / \
                     {} probes, {} flushed, {} corrupt",
                    disk.loaded_records(),
                    store.disk_result_hits(),
                    store.disk_clause_hits(),
                    store.disk_probe_hits(),
                    disk.flushed_records(),
                    disk.corrupt_records()
                );
            }
        }
    }

    /// The engine configuration for `model` under these options.
    ///
    /// The LJH baseline runs without the 64-bit simulation pre-filter:
    /// the original `Bi-dec` tool has no such filter, and its quadratic
    /// seed-pair search is precisely what makes LJH the slowest model
    /// in the paper's Table III.
    pub fn config(&self, model: Model) -> DecompConfig {
        let mut c = DecompConfig::new(model);
        c.budget = self.budget;
        if model == Model::Ljh {
            c.sim_filter = false;
        }
        if self.partitions_only {
            c.extract = false;
            c.verify = false;
        }
        c.jobs = self.jobs;
        c.seed = self.seed;
        c.sat_restarts = self.sat_restarts;
        c.sat_preprocess = self.sat_preprocess;
        c.clause_reuse = self.clause_reuse;
        c
    }

    /// Spawns the shared [`StepService`] a sweep harness submits to:
    /// `jobs` persistent workers, sharing this option set's result
    /// cache (and, under `--cache-dir`, the persistent store) across
    /// every model × circuit submission.
    pub fn service(&self) -> StepService {
        match &self.store {
            Some(store) => StepService::spawn_with_store(self.jobs, Arc::clone(store)),
            None => StepService::spawn_with_bank(
                self.jobs,
                self.cache.clone(),
                self.clause_bank.clone(),
            ),
        }
    }

    /// The synthesis stopping rules this option set implies
    /// (`table_synth` support): the per-output budget scope becomes
    /// the per-node scope and the per-circuit scope the
    /// whole-synthesis pool, so the same `--budget work:<n>` that
    /// makes a decomposition sweep deterministic does the same for a
    /// synthesis sweep.
    pub fn synth_options(&self) -> SynthOptions {
        SynthOptions {
            per_node: self.budget.per_output,
            synthesis: self.budget.per_circuit,
            ..SynthOptions::default()
        }
    }
}

/// Vets a `--cache-dir` argument up front: the path must be (or
/// become) a writable directory, and a bad one exits 2 before the
/// sweep starts. The write probe matters because permission bits lie
/// to privileged users and read-only mounts fail only on actual writes.
fn validated_cache_dir(path: &std::path::Path) -> std::path::PathBuf {
    if path.exists() && !path.is_dir() {
        eprintln!("--cache-dir: {} is not a directory", path.display());
        std::process::exit(2);
    }
    if let Err(e) = std::fs::create_dir_all(path) {
        eprintln!("--cache-dir: cannot create {}: {e}", path.display());
        std::process::exit(2);
    }
    let probe = path.join(".stepstore-probe");
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
        }
        Err(e) => {
            eprintln!("--cache-dir: {} is not writable: {e}", path.display());
            std::process::exit(2);
        }
    }
    path.to_owned()
}

/// Submits one model × circuit run to a shared sweep service; pair
/// with [`SubmissionHandle::join`] (or stream events) to consume.
pub fn submit_model(
    service: &StepService,
    entry: &CircuitEntry,
    model: Model,
    opts: &HarnessOpts,
) -> SubmissionHandle {
    let aig = opts.build(entry);
    service
        .submit(&aig, opts.op, opts.config(model))
        .expect("stand-in circuits are well-formed")
}

/// Submits one circuit entry for the whole five-model roster (in
/// [`Model::ALL`] order), building the circuit **once** and sharing
/// one combinational copy across all five submissions — the sweep
/// harnesses' unit of work.
pub fn submit_sweep_entry(
    service: &StepService,
    entry: &CircuitEntry,
    opts: &HarnessOpts,
) -> [SubmissionHandle; 5] {
    let aig = StepService::comb_arc(&opts.build(entry))
        .expect("stand-in circuits convert combinationally");
    Model::ALL.map(|m| {
        service
            .submit_shared(Arc::clone(&aig), opts.op, opts.config(m))
            .expect("stand-in circuits are well-formed")
    })
}

/// Runs one model over one circuit entry.
pub fn run_model(entry: &CircuitEntry, model: Model, opts: &HarnessOpts) -> CircuitResult {
    run_model_op(entry, model, opts.op, opts)
}

/// Runs one model over one circuit entry with an explicit operator.
pub fn run_model_op(
    entry: &CircuitEntry,
    model: Model,
    op: GateOp,
    opts: &HarnessOpts,
) -> CircuitResult {
    let aig = opts.build(entry);
    let mut engine = BiDecomposer::new(opts.config(model));
    // The store, when built, already wraps the cache and bank as its
    // tier 0 — attach one or the other, never both.
    if let Some(store) = &opts.store {
        engine.set_store(Arc::clone(store));
    } else {
        if let Some(cache) = &opts.cache {
            engine.set_cache(cache.clone());
        }
        if let Some(bank) = &opts.clause_bank {
            engine.set_clause_bank(bank.clone());
        }
    }
    engine
        .decompose_circuit(&aig, op)
        .expect("stand-in circuits are well-formed")
}

/// Which quality metric a Table I/II column compares.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QualityMetric {
    /// Disjointness `εD`.
    Disjointness,
    /// Balancedness `εB`.
    Balancedness,
    /// `εD + εB` (the paper's "Disjointness+Balancedness").
    Sum,
}

impl QualityMetric {
    fn of(self, r: &OutputResult) -> Option<f64> {
        let p = r.partition.as_ref()?;
        Some(match self {
            QualityMetric::Disjointness => p.disjointness(),
            QualityMetric::Balancedness => p.balancedness(),
            QualityMetric::Sum => p.disjointness() + p.balancedness(),
        })
    }
}

/// The better/equal percentages of a Table I cell: how often
/// `challenger` strictly improves on `baseline`, and how often they
/// tie, over the POs both models decomposed.
pub fn compare_quality(
    challenger: &CircuitResult,
    baseline: &CircuitResult,
    metric: QualityMetric,
) -> (f64, f64) {
    let mut agg = QualityAggregate::default();
    agg.add(challenger, baseline, metric);
    agg.percentages()
}

/// Accumulates better/equal counts across circuits (Table II).
#[derive(Default, Clone, Copy, Debug)]
pub struct QualityAggregate {
    /// POs where the challenger strictly improved.
    pub better: usize,
    /// POs with equal metric.
    pub equal: usize,
    /// POs decomposed by both models.
    pub total: usize,
}

impl QualityAggregate {
    /// Folds one circuit's comparison into the aggregate.
    pub fn add(
        &mut self,
        challenger: &CircuitResult,
        baseline: &CircuitResult,
        metric: QualityMetric,
    ) {
        for (c, b) in challenger.outputs.iter().zip(&baseline.outputs) {
            let (Some(mc), Some(mb)) = (metric.of(c), metric.of(b)) else {
                continue;
            };
            self.total += 1;
            if mc + 1e-12 < mb {
                self.better += 1;
            } else if (mc - mb).abs() <= 1e-12 {
                self.equal += 1;
            }
        }
    }

    /// `(better %, equal %)`.
    pub fn percentages(&self) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 100.0);
        }
        (
            100.0 * self.better as f64 / self.total as f64,
            100.0 * self.equal as f64 / self.total as f64,
        )
    }
}

/// Renders a simple ASCII log-log scatter plot (for Figure 1): one
/// character cell per point bucket, `x` = baseline seconds, `y` =
/// challenger seconds.
pub fn ascii_scatter(points: &[(f64, f64)], title: &str) -> String {
    const W: usize = 44;
    const H: usize = 18;
    let mut grid = vec![vec![' '; W]; H];
    let lo = 1e-4f64;
    let hi = 1e3f64;
    let to_cell = |v: f64, cells: usize| -> usize {
        let v = v.clamp(lo, hi);
        let t = (v.ln() - lo.ln()) / (hi.ln() - lo.ln());
        ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
    };
    for &(x, y) in points {
        let cx = to_cell(x, W);
        let cy = H - 1 - to_cell(y, H);
        grid[cy][cx] = '*';
    }
    // Diagonal y = x.
    for cx in 0..W {
        let v = (lo.ln() + (hi.ln() - lo.ln()) * cx as f64 / (W - 1) as f64).exp();
        let cy = H - 1 - to_cell(v, H);
        if grid[cy][cx] == ' ' {
            grid[cy][cx] = '.';
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{title}  (log-log, {lo:.0e}..{hi:.0e} s, '.' = diagonal)\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(W));
    out.push('\n');
    out
}

/// Formats a duration in seconds with two decimals (table cells).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Version of the `BENCH_*.json` record layout. Bump whenever fields
/// change meaning or shape, so tooling that merges sharded sweep
/// outputs can reject records it does not understand.
///
/// * v1 — model/circuit/wall/calls/cache counters.
/// * v2 — run provenance for sharded sweeps: `seed`, `jobs`, `op`,
///   `cache`, plus this `schema_version` field itself.
/// * v3 — effort provenance for deterministic work budgets:
///   `effort_conflicts` (total solver conflicts of the run) and
///   `budget` (the [`BudgetPolicy`] the run was truncated under;
///   shards are only mergeable when they agree on it).
/// * v4 — SAT kernel provenance: `sat_restarts` (restart policy) and
///   `sat_preprocess` — result-relevant knobs (they are part of the
///   result-cache key), so shards must agree on them too.
/// * v5 — clause-reuse provenance: `clause_reuse` (the knob; verdicts
///   are identical either way, but the work counters of reuse-on and
///   reuse-off records are different experiments) plus the
///   `bank_hits`/`donated_clauses` counters. Twin-heavy circuit growth
///   (`--copies` / `--shared-substructure`) annotates the `circuit`
///   name (`s15850.1+p2s2`) instead of adding fields, so grown and
///   ungrown records never silently merge.
/// * v6 — persistent-store provenance: `disk_hits` (artifacts served
///   from the `--cache-dir` disk tier in this run — results, clauses
///   and probe certificates combined; 0 on cold or memory-only runs)
///   and `store_loaded` (records the store had loaded when the sweep
///   started). Warm and cold records answer identically — the fields
///   exist so trajectory tooling can tell the two cost profiles apart.
/// * v7 — service provenance for runs driven through the `step serve`
///   front-end: `tenant` (whose quota the run was charged to; `local`
///   for in-process runs), `queue_wait_s` (submission-to-first-claim
///   wall seconds — the scheduling-latency component of `wall_s`,
///   relevant when comparing records from loaded multi-tenant servers
///   against idle local runs) and `admission` (`direct` for in-process
///   runs, `served` for runs admitted over the wire). Per-output
///   answers are identical on every path — these fields keep the cost
///   profiles apart, like `jobs` and `disk_hits`.
/// * v8 — multi-level synthesis provenance (`table_synth` records):
///   `synth_gates` (two-input gates of the emitted networks, summed
///   over POs), `synth_depth` (deepest gate tree across POs),
///   `synth_leaf_max_support` (largest leaf support any network kept)
///   and `synth_nodes_expanded` (frontier cones the recursion
///   submitted to the engine). All four are 0 on plain decomposition
///   records; synthesis and decomposition records are different
///   experiments even on the same circuit, which the nonzero
///   `synth_nodes_expanded` marks.
pub const BENCH_SCHEMA_VERSION: u32 = 8;

/// One machine-readable row of a harness run: model × circuit with
/// wall-clock and solver-call statistics plus the run provenance
/// (seed, worker count, operator, cache on/off) needed to merge
/// records from sharded sweeps safely. Serialized to the
/// `BENCH_table3.json` / `BENCH_fig1.json` files that track the perf
/// trajectory across commits.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Record layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Model name (`LJH`, `STEP-MG`, …).
    pub model: String,
    /// Circuit name.
    pub circuit: String,
    /// Root operator (`OR`, `AND`, `XOR`).
    pub op: String,
    /// Engine base seed the run used (merging shards with different
    /// seeds would mix incomparable partitions).
    pub seed: u64,
    /// Worker threads of the service the run was sharded over
    /// (documentation of the run, not of the results — per-output
    /// results are identical for any value).
    pub jobs: usize,
    /// Whether a result cache was attached to the run.
    pub cache: bool,
    /// The budget policy the run was truncated under
    /// (`call=…;output=…;circuit=…`, each component in
    /// [`Budget::parse`] syntax). Records truncated under different
    /// budgets are not comparable — merge tooling must match on this.
    pub budget: String,
    /// SAT restart policy of the run (`luby`/`ema`). Result-relevant:
    /// records with different policies are different experiments.
    pub sat_restarts: String,
    /// Whether SAT preprocessing was on (result-relevant, like
    /// `sat_restarts`).
    pub sat_preprocess: bool,
    /// Whether cross-output clause reuse was on. Verdicts and
    /// partitions are identical either way, but the work counters
    /// (`sat_calls`, `effort_conflicts`) of reuse-on and reuse-off
    /// records are different experiments — merge tooling must match on
    /// this like on `budget`.
    pub clause_reuse: bool,
    /// Wall-clock seconds for the whole circuit. Measured first claim
    /// to last event on service runs (`jobs` recorded here); only
    /// compare wall clocks between records with the same `jobs`.
    pub wall_s: f64,
    /// Outputs decomposed.
    pub decomposed: usize,
    /// Total outputs.
    pub outputs: usize,
    /// SAT oracle calls across all outputs.
    pub sat_calls: u64,
    /// QBF solves across all outputs.
    pub qbf_calls: u64,
    /// Total solver conflicts across all outputs
    /// ([`CircuitResult::total_effort`]) — the machine-independent
    /// cost of the run, comparable across hosts unlike `wall_s`.
    /// Scheduling-dependent under `jobs > 1` with a shared cache
    /// (like the cache counters); exact under `--jobs 1`.
    pub effort_conflicts: u64,
    /// Outputs served by the result cache in this run (0 when caching
    /// is disabled).
    ///
    /// With `jobs > 1`, concurrent submissions containing the same
    /// canonical cone race for the first solve, so which record books
    /// the hit (and the matching `sat_calls`) can vary run-to-run;
    /// the *answers* never do. Trajectory comparisons of the work
    /// counters should use `--jobs 1` records.
    pub cache_hits: u64,
    /// Outputs that consulted the cache and missed (0 when disabled).
    /// Scheduling-dependent under `jobs > 1` — see
    /// [`cache_hits`](BenchRecord::cache_hits).
    pub cache_misses: u64,
    /// Outputs seeded by the clause bank or a pooled sibling oracle in
    /// this run (0 with reuse off). Scheduling-dependent under
    /// `jobs > 1` — which sibling completes first decides who donates
    /// and who imports — see [`cache_hits`](BenchRecord::cache_hits).
    pub bank_hits: u64,
    /// Clauses this run donated to the clause bank (0 with reuse off).
    /// Scheduling-dependent under `jobs > 1` like `bank_hits`.
    pub donated_clauses: u64,
    /// Artifacts this run was served from the `--cache-dir` disk tier
    /// (results, clause exports and probe certificates combined; 0 on
    /// cold or memory-only runs). Answers are identical warm or cold —
    /// this separates the two cost profiles, like `clause_reuse`.
    /// Scheduling-dependent under `jobs > 1` like `cache_hits`.
    pub disk_hits: u64,
    /// Records the persistent store had loaded when the sweep started
    /// (0 without `--cache-dir`) — warm-start provenance for the run.
    pub store_loaded: u64,
    /// Tenant the run's work was charged to: `local` for in-process
    /// harness runs, the client's tenant name for runs admitted by the
    /// `step serve` front-end. Answers are tenant-independent; quotas
    /// only decide *whether* a run was admitted, never its results.
    pub tenant: String,
    /// Submission-to-first-claim wall seconds
    /// ([`CircuitResult::queue_wait`]) — the scheduling-latency
    /// component of `wall_s`. Near zero on idle `--jobs 1` runs;
    /// meaningful on loaded multi-tenant servers, where comparing raw
    /// `wall_s` across records would conflate solving with waiting.
    pub queue_wait_s: f64,
    /// How the run entered the system: `direct` for in-process harness
    /// runs, `served` for runs admitted over the wire by `step serve`.
    /// Like `jobs`, documentation of the run, not of the results.
    pub admission: String,
    /// Two-input gates of the synthesized networks, summed over POs
    /// (0 on plain decomposition records). Deterministic under
    /// deterministic budgets, like the network itself.
    pub synth_gates: u64,
    /// Deepest gate tree across the circuit's synthesized POs (0 on
    /// decomposition records).
    pub synth_depth: u64,
    /// Largest leaf support any synthesized network kept — the
    /// "simplicity" measure synthesis drives down (0 on decomposition
    /// records).
    pub synth_leaf_max_support: u64,
    /// Frontier cones the recursion submitted to the engine (0 on
    /// decomposition records — the field that marks a record as a
    /// synthesis experiment).
    pub synth_nodes_expanded: u64,
    /// Whether any budget expired.
    pub timed_out: bool,
}

impl BenchRecord {
    /// Builds the record for one model run over one circuit, stamping
    /// the provenance fields from the harness options that drove it.
    pub fn of(model: Model, circuit: &str, r: &CircuitResult, opts: &HarnessOpts) -> Self {
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            model: model.to_string(),
            circuit: circuit.to_owned(),
            op: opts.op.to_string(),
            seed: opts.seed,
            jobs: opts.jobs,
            cache: opts.cache.is_some(),
            budget: opts.budget.to_string(),
            sat_restarts: opts.sat_restarts.to_string(),
            sat_preprocess: opts.sat_preprocess,
            clause_reuse: opts.clause_reuse,
            wall_s: r.cpu.as_secs_f64(),
            decomposed: r.num_decomposed(),
            outputs: r.outputs.len(),
            sat_calls: r.total_sat_calls(),
            qbf_calls: r.total_qbf_calls(),
            effort_conflicts: r.total_effort().conflicts,
            cache_hits: r.cache_hits(),
            cache_misses: r.cache_misses(),
            bank_hits: r.clause_bank_hits(),
            donated_clauses: r.donated_clauses(),
            disk_hits: r.disk_hits(),
            store_loaded: opts
                .store
                .as_ref()
                .and_then(|s| s.disk())
                .map_or(0, |d| d.loaded_records()),
            tenant: opts.tenant.clone(),
            queue_wait_s: r.queue_wait.as_secs_f64(),
            admission: opts.admission.clone(),
            synth_gates: 0,
            synth_depth: 0,
            synth_leaf_max_support: 0,
            synth_nodes_expanded: 0,
            timed_out: r.timed_out,
        }
    }

    /// Builds the record for one multi-level synthesis run over one
    /// circuit (`table_synth`): the per-output [`SynthOutput`]s fold
    /// into the v8 synthesis fields, and the engine-side counters
    /// (SAT calls, effort, reuse hits) aggregate across every probe
    /// the recursion submitted.
    pub fn of_synth(
        model: Model,
        circuit: &str,
        outputs: &[SynthOutput],
        wall: Duration,
        opts: &HarnessOpts,
    ) -> Self {
        let fold = |f: fn(&SynthOutput) -> u64| outputs.iter().map(f).sum::<u64>();
        let max = |f: fn(&SynthOutput) -> u64| outputs.iter().map(f).max().unwrap_or(0);
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            model: model.to_string(),
            circuit: circuit.to_owned(),
            op: opts.op.to_string(),
            seed: opts.seed,
            jobs: opts.jobs,
            cache: opts.cache.is_some(),
            budget: opts.budget.to_string(),
            sat_restarts: opts.sat_restarts.to_string(),
            sat_preprocess: opts.sat_preprocess,
            clause_reuse: opts.clause_reuse,
            wall_s: wall.as_secs_f64(),
            decomposed: outputs.iter().filter(|o| !o.stats.truncated).count(),
            outputs: outputs.len(),
            sat_calls: fold(|o| o.stats.sat_calls),
            qbf_calls: 0,
            effort_conflicts: fold(|o| o.stats.effort.conflicts),
            cache_hits: fold(|o| o.stats.cache_hits),
            cache_misses: fold(|o| o.stats.cache_misses),
            bank_hits: fold(|o| o.stats.bank_hits),
            donated_clauses: fold(|o| o.stats.donated_clauses),
            disk_hits: fold(|o| o.stats.disk_hits),
            store_loaded: opts
                .store
                .as_ref()
                .and_then(|s| s.disk())
                .map_or(0, |d| d.loaded_records()),
            tenant: opts.tenant.clone(),
            queue_wait_s: 0.0,
            admission: opts.admission.clone(),
            synth_gates: fold(|o| o.tree.num_gates() as u64),
            synth_depth: max(|o| o.tree.depth() as u64),
            synth_leaf_max_support: max(|o| o.tree.max_leaf_support() as u64),
            synth_nodes_expanded: fold(|o| o.stats.nodes_expanded),
            timed_out: outputs.iter().any(|o| o.stats.truncated),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders records as a JSON array (one object per model × circuit).
pub fn bench_records_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"schema_version\": {}, \"model\": \"{}\", \"circuit\": \"{}\", \
             \"op\": \"{}\", \"seed\": {}, \"jobs\": {}, \"cache\": {}, \
             \"budget\": \"{}\", \"sat_restarts\": \"{}\", \"sat_preprocess\": {}, \
             \"clause_reuse\": {}, \"wall_s\": {:.6}, \
             \"decomposed\": {}, \"outputs\": {}, \"sat_calls\": {}, \
             \"qbf_calls\": {}, \"effort_conflicts\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"bank_hits\": {}, \"donated_clauses\": {}, \
             \"disk_hits\": {}, \"store_loaded\": {}, \
             \"tenant\": \"{}\", \"queue_wait_s\": {:.6}, \
             \"admission\": \"{}\", \
             \"synth_gates\": {}, \"synth_depth\": {}, \
             \"synth_leaf_max_support\": {}, \"synth_nodes_expanded\": {}, \
             \"timed_out\": {}}}{}\n",
            r.schema_version,
            json_escape(&r.model),
            json_escape(&r.circuit),
            json_escape(&r.op),
            r.seed,
            r.jobs,
            r.cache,
            json_escape(&r.budget),
            json_escape(&r.sat_restarts),
            r.sat_preprocess,
            r.clause_reuse,
            r.wall_s,
            r.decomposed,
            r.outputs,
            r.sat_calls,
            r.qbf_calls,
            r.effort_conflicts,
            r.cache_hits,
            r.cache_misses,
            r.bank_hits,
            r.donated_clauses,
            r.disk_hits,
            r.store_loaded,
            json_escape(&r.tenant),
            r.queue_wait_s,
            json_escape(&r.admission),
            r.synth_gates,
            r.synth_depth,
            r.synth_leaf_max_support,
            r.synth_nodes_expanded,
            r.timed_out,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// One parsed `"key": value` pair of a record object: the value text
/// plus whether it was a (already unescaped) JSON string.
type JsonField = (String, bool);

/// Scans one flat record object (`{ "k": v, ... }`, no nesting) into
/// key → value pairs, unescaping string values.
fn parse_json_object(obj: &str) -> Result<Vec<(String, JsonField)>, String> {
    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| format!("bad code point {code}"))?,
                        );
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }
    let mut fields = Vec::new();
    let mut chars = obj.chars().peekable();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.next() {
            None => return Ok(fields),
            Some('"') => {
                let key = parse_string(&mut chars)?;
                while chars.peek().is_some_and(|c| c.is_whitespace()) {
                    chars.next();
                }
                if chars.next() != Some(':') {
                    return Err(format!("expected `:` after key `{key}`"));
                }
                while chars.peek().is_some_and(|c| c.is_whitespace()) {
                    chars.next();
                }
                let value = if chars.peek() == Some(&'"') {
                    chars.next();
                    (parse_string(&mut chars)?, true)
                } else {
                    let mut raw = String::new();
                    while chars.peek().is_some_and(|c| *c != ',') {
                        raw.push(chars.next().expect("peeked"));
                    }
                    (raw.trim().to_owned(), false)
                };
                fields.push((key, value));
            }
            Some(c) => return Err(format!("expected a key, found `{c}`")),
        }
    }
}

/// Parses a `BENCH_*.json` array written by [`bench_records_json`]
/// back into records — the reader half for tooling that merges or
/// diffs sharded sweep outputs. Minimal by design: it understands the
/// flat object layout this crate writes, not arbitrary JSON.
///
/// # Errors
///
/// A description of the first malformed record, missing field, or
/// record whose `schema_version` differs from
/// [`BENCH_SCHEMA_VERSION`] (merging across layouts is exactly what
/// the version field exists to prevent).
pub fn parse_bench_records_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| "expected a JSON array".to_owned())?;
    let mut records = Vec::new();
    // Our writer emits flat objects (no nesting), so objects end at
    // the first `}` outside a string.
    let mut rest = body.trim_start().trim_start_matches(',').trim_start();
    while !rest.is_empty() {
        let open = rest
            .strip_prefix('{')
            .ok_or_else(|| format!("expected `{{`, found `{rest:.8}`"))?;
        let mut end = None;
        let mut in_string = false;
        let mut escaped = false;
        for (i, c) in open.char_indices() {
            match (in_string, escaped, c) {
                (true, true, _) => escaped = false,
                (true, false, '\\') => escaped = true,
                (true, false, '"') => in_string = false,
                (false, _, '"') => in_string = true,
                (false, _, '}') => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| "unterminated record object".to_owned())?;
        let fields = parse_json_object(&open[..end])?;
        let get = |key: &str| -> Result<&JsonField, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("record is missing `{key}`"))
        };
        let string = |key: &str| -> Result<String, String> {
            let (v, is_str) = get(key)?;
            if !is_str {
                return Err(format!("`{key}` must be a string"));
            }
            Ok(v.clone())
        };
        let number = |key: &str| -> Result<u64, String> {
            get(key)?.0.parse().map_err(|_| format!("bad `{key}`"))
        };
        let boolean = |key: &str| -> Result<bool, String> {
            get(key)?.0.parse().map_err(|_| format!("bad `{key}`"))
        };
        let schema_version = number("schema_version")? as u32;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "record has schema_version {schema_version}, reader understands \
                 {BENCH_SCHEMA_VERSION} only"
            ));
        }
        records.push(BenchRecord {
            schema_version,
            model: string("model")?,
            circuit: string("circuit")?,
            op: string("op")?,
            seed: number("seed")?,
            jobs: number("jobs")? as usize,
            cache: boolean("cache")?,
            budget: string("budget")?,
            sat_restarts: string("sat_restarts")?,
            sat_preprocess: boolean("sat_preprocess")?,
            clause_reuse: boolean("clause_reuse")?,
            wall_s: get("wall_s")?
                .0
                .parse()
                .map_err(|_| "bad `wall_s`".to_owned())?,
            decomposed: number("decomposed")? as usize,
            outputs: number("outputs")? as usize,
            sat_calls: number("sat_calls")?,
            qbf_calls: number("qbf_calls")?,
            effort_conflicts: number("effort_conflicts")?,
            cache_hits: number("cache_hits")?,
            cache_misses: number("cache_misses")?,
            bank_hits: number("bank_hits")?,
            donated_clauses: number("donated_clauses")?,
            disk_hits: number("disk_hits")?,
            store_loaded: number("store_loaded")?,
            tenant: string("tenant")?,
            queue_wait_s: get("queue_wait_s")?
                .0
                .parse()
                .map_err(|_| "bad `queue_wait_s`".to_owned())?,
            admission: string("admission")?,
            synth_gates: number("synth_gates")?,
            synth_depth: number("synth_depth")?,
            synth_leaf_max_support: number("synth_leaf_max_support")?,
            synth_nodes_expanded: number("synth_nodes_expanded")?,
            timed_out: boolean("timed_out")?,
        });
        rest = open[end + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();
    }
    Ok(records)
}

/// Writes records to `path` as JSON, reporting the destination on
/// stderr (stdout stays reserved for the human-readable table).
pub fn write_bench_json(path: &str, records: &[BenchRecord]) {
    match std::fs::write(path, bench_records_json(records)) {
        Ok(()) => eprintln!("wrote {} records to {path}", records.len()),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_circuits::registry_table1;

    fn smoke_opts() -> HarnessOpts {
        HarnessOpts {
            scale: Scale::Smoke,
            budget: BudgetPolicy::quick(),
            partitions_only: true,
            cache: None,
            ..HarnessOpts::default()
        }
    }

    #[test]
    fn quality_comparison_never_negative_for_bootstrapped_models() {
        // STEP-QD is bootstrapped with STEP-MG, so on the POs both
        // decompose it can only be better or equal on disjointness.
        let entry = &registry_table1()[16]; // mm9a: small
        let opts = smoke_opts();
        let mg = run_model(entry, Model::MusGroup, &opts);
        let qd = run_model(entry, Model::QbfDisjoint, &opts);
        let (better, equal) = compare_quality(&qd, &mg, QualityMetric::Disjointness);
        assert!(
            better + equal > 99.9,
            "QD must never lose to MG: {better} {equal}"
        );
    }

    #[test]
    fn aggregate_percentages_sum_sanely() {
        let mut agg = QualityAggregate::default();
        let entry = &registry_table1()[17];
        let opts = smoke_opts();
        let mg = run_model(entry, Model::MusGroup, &opts);
        let qb = run_model(entry, Model::QbfBalanced, &opts);
        agg.add(&qb, &mg, QualityMetric::Balancedness);
        let (better, equal) = agg.percentages();
        assert!(better >= 0.0 && equal >= 0.0 && better + equal <= 100.0 + 1e-9);
    }

    #[test]
    fn scatter_renders() {
        let s = ascii_scatter(&[(0.1, 0.2), (1.0, 0.5)], "test");
        assert!(s.contains('*'));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn bench_records_serialize_to_json() {
        let entry = &registry_table1()[16]; // mm9a: small
        let opts = smoke_opts();
        let r = run_model(entry, Model::MusGroup, &opts);
        let rec = BenchRecord::of(Model::MusGroup, entry.name, &r, &opts);
        assert_eq!(rec.model, "STEP-MG");
        assert_eq!(rec.outputs, r.outputs.len());
        assert!(rec.sat_calls > 0, "MG makes SAT calls");
        assert_eq!(rec.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(rec.op, "OR");
        assert_eq!(rec.seed, opts.seed);
        assert_eq!(rec.jobs, 1);
        assert!(!rec.cache, "smoke opts run uncached");
        let json = bench_records_json(&[rec.clone(), rec]);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"), "{json}");
        assert_eq!(json.matches("\"circuit\": \"mm9a\"").count(), 2);
        assert_eq!(
            json.matches(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"))
                .count(),
            2
        );
        assert_eq!(json.matches("\"op\": \"OR\"").count(), 2);
        assert_eq!(json.matches("\"jobs\": 1").count(), 2);
        assert_eq!(json.matches("\"cache\": false").count(), 2);
        assert_eq!(json.matches(&format!("\"seed\": {}", opts.seed)).count(), 2);
        assert_eq!(json.matches("\"cache_hits\": 0").count(), 2);
        assert_eq!(json.matches("\"cache_misses\": 0").count(), 2);
        assert!(json.matches(',').count() >= 1);
        // Schema-3 effort provenance.
        assert_eq!(
            json.matches(&format!("\"budget\": \"{}\"", opts.budget))
                .count(),
            2
        );
        assert!(json.contains("\"effort_conflicts\": "), "{json}");
        // Schema-4 SAT kernel provenance.
        assert_eq!(json.matches("\"sat_restarts\": \"luby\"").count(), 2);
        assert_eq!(json.matches("\"sat_preprocess\": false").count(), 2);
        // Schema-5 clause-reuse provenance.
        assert_eq!(json.matches("\"clause_reuse\": false").count(), 2);
        assert_eq!(json.matches("\"bank_hits\": 0").count(), 2);
        assert_eq!(json.matches("\"donated_clauses\": 0").count(), 2);
        // Schema-6 persistent-store provenance.
        assert_eq!(json.matches("\"disk_hits\": 0").count(), 2);
        assert_eq!(json.matches("\"store_loaded\": 0").count(), 2);
        // Schema-7 service provenance.
        assert_eq!(json.matches("\"tenant\": \"local\"").count(), 2);
        assert_eq!(json.matches("\"admission\": \"direct\"").count(), 2);
        assert_eq!(json.matches("\"queue_wait_s\": ").count(), 2);
        // Schema-8 synthesis provenance — all zero on decomposition
        // records.
        assert_eq!(json.matches("\"synth_gates\": 0").count(), 2);
        assert_eq!(json.matches("\"synth_depth\": 0").count(), 2);
        assert_eq!(json.matches("\"synth_leaf_max_support\": 0").count(), 2);
        assert_eq!(json.matches("\"synth_nodes_expanded\": 0").count(), 2);
    }

    #[test]
    fn bench_json_round_trips_through_the_reader() {
        // The schema fields must survive write → parse exactly, so
        // merge tooling reading sharded sweep outputs sees what the
        // harness wrote (budget, effort and SAT-kernel provenance
        // included).
        let entry = &registry_table1()[16]; // mm9a: small
        let mut opts = smoke_opts();
        opts.budget.per_output = step_core::Budget::Work(50_000);
        opts.sat_restarts = RestartPolicy::Ema;
        opts.sat_preprocess = true;
        opts.clause_reuse = true;
        let r = run_model(entry, Model::MusGroup, &opts);
        let mut rec = BenchRecord::of(Model::MusGroup, entry.name, &r, &opts);
        rec.circuit = "odd \"name\"\\with escapes".to_owned();
        rec.tenant = "acme \"quoted\"".to_owned();
        rec.admission = "served".to_owned();
        rec.queue_wait_s = 0.125;
        // Schema-8 synthesis fields must survive the round trip too.
        rec.synth_gates = 95;
        rec.synth_depth = 9;
        rec.synth_leaf_max_support = 2;
        rec.synth_nodes_expanded = 83;
        let records = vec![
            rec,
            BenchRecord::of(Model::QbfDisjoint, entry.name, &r, &opts),
        ];
        let parsed = parse_bench_records_json(&bench_records_json(&records)).expect("parse");
        assert_eq!(parsed.len(), records.len());
        for (p, w) in parsed.iter().zip(&records) {
            assert_eq!(p.schema_version, w.schema_version);
            assert_eq!(p.model, w.model);
            assert_eq!(p.circuit, w.circuit, "escapes survive the round trip");
            assert_eq!(p.op, w.op);
            assert_eq!(p.seed, w.seed);
            assert_eq!(p.jobs, w.jobs);
            assert_eq!(p.cache, w.cache);
            assert_eq!(p.budget, w.budget, "budget provenance round-trips");
            assert_eq!(p.sat_restarts, "ema", "restart provenance round-trips");
            assert!(p.sat_preprocess, "preprocess provenance round-trips");
            assert!(
                p.budget.contains("output=work:50000"),
                "work budget recorded: {}",
                p.budget
            );
            assert_eq!(p.decomposed, w.decomposed);
            assert_eq!(p.outputs, w.outputs);
            assert_eq!(p.sat_calls, w.sat_calls);
            assert_eq!(p.qbf_calls, w.qbf_calls);
            assert_eq!(p.effort_conflicts, w.effort_conflicts);
            assert_eq!(p.cache_hits, w.cache_hits);
            assert_eq!(p.cache_misses, w.cache_misses);
            assert_eq!(p.clause_reuse, w.clause_reuse);
            assert_eq!(p.bank_hits, w.bank_hits);
            assert_eq!(p.donated_clauses, w.donated_clauses);
            assert_eq!(p.disk_hits, w.disk_hits);
            assert_eq!(p.store_loaded, w.store_loaded);
            assert_eq!(p.tenant, w.tenant, "tenant escapes survive the round trip");
            assert_eq!(p.admission, w.admission);
            assert_eq!(p.synth_gates, w.synth_gates, "synthesis fields round-trip");
            assert_eq!(p.synth_depth, w.synth_depth);
            assert_eq!(p.synth_leaf_max_support, w.synth_leaf_max_support);
            assert_eq!(p.synth_nodes_expanded, w.synth_nodes_expanded);
            assert_eq!(p.timed_out, w.timed_out);
            // The writer rounds wall_s (and queue_wait_s) to six decimals.
            assert!((p.wall_s - w.wall_s).abs() <= 5e-7, "wall_s to 1e-6");
            assert!(
                (p.queue_wait_s - w.queue_wait_s).abs() <= 5e-7,
                "queue_wait_s to 1e-6"
            );
        }
        // Empty arrays round-trip too.
        assert!(parse_bench_records_json("[\n]\n")
            .expect("empty")
            .is_empty());
        // Foreign schema versions are rejected, not misread — both the
        // ancient v2 layout and the immediately preceding v7 (which
        // lacked the synthesis fields).
        for foreign in [2u32, BENCH_SCHEMA_VERSION - 1] {
            let old = bench_records_json(&records).replace(
                &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
                &format!("\"schema_version\": {foreign}"),
            );
            assert!(
                parse_bench_records_json(&old).is_err(),
                "v{foreign} records must be rejected"
            );
        }
    }

    #[test]
    fn synth_records_carry_the_v8_fields() {
        // A real synthesis run books nonzero v8 fields, and they
        // survive the JSON round trip.
        let entry = &registry_table1()[16]; // mm9a: small
        let opts = smoke_opts();
        let aig = opts.build(entry);
        let service = opts.service();
        let driver = step_synth::SynthDriver::new(
            &service,
            opts.config(Model::QbfDisjoint),
            opts.synth_options(),
        );
        let outputs = driver.synthesize_circuit(&aig).expect("synthesizes");
        let rec = BenchRecord::of_synth(
            Model::QbfDisjoint,
            entry.name,
            &outputs,
            Duration::from_millis(1),
            &opts,
        );
        assert!(rec.synth_nodes_expanded > 0, "recursion expanded cones");
        assert!(rec.synth_gates > 0, "networks carry gates");
        assert!(rec.synth_leaf_max_support > 0);
        assert_eq!(rec.outputs, aig.num_outputs());
        let parsed = parse_bench_records_json(&bench_records_json(std::slice::from_ref(&rec)))
            .expect("parse");
        assert_eq!(parsed[0].synth_gates, rec.synth_gates);
        assert_eq!(parsed[0].synth_depth, rec.synth_depth);
        assert_eq!(parsed[0].synth_nodes_expanded, rec.synth_nodes_expanded);
    }

    #[test]
    fn sharded_sweep_matches_per_circuit_runs() {
        // The service-sharded submission path (what table3/fig1 use)
        // must reproduce the one-engine-per-run legacy path exactly.
        let opts = HarnessOpts {
            jobs: 2,
            ..smoke_opts()
        };
        let entries = [&registry_table1()[16], &registry_table1()[17]];
        let service = opts.service();
        let handles: Vec<_> = entries
            .iter()
            .flat_map(|e| {
                [Model::MusGroup, Model::QbfDisjoint]
                    .map(|m| (m, *e, submit_model(&service, e, m, &opts)))
            })
            .collect();
        for (model, entry, handle) in handles {
            let sharded = handle.join().expect("sharded run");
            let legacy = run_model(entry, model, &opts);
            assert_eq!(sharded.outputs.len(), legacy.outputs.len());
            for (s, l) in sharded.outputs.iter().zip(&legacy.outputs) {
                assert_eq!(
                    s.partition, l.partition,
                    "{model} {} {}",
                    entry.name, s.name
                );
                assert_eq!(s.solved, l.solved);
                assert_eq!(s.sat_calls, l.sat_calls);
            }
        }
    }

    #[test]
    fn sweep_shares_one_cache_across_runs() {
        // Two runs of the same circuit through one HarnessOpts cache:
        // the second run's records report hits, and the outputs match
        // the cold run exactly.
        let entry = &registry_table1()[16]; // mm9a: small
        let opts = HarnessOpts {
            cache: Some(Arc::new(ResultCache::new())),
            ..smoke_opts()
        };
        let cold = run_model(entry, Model::MusGroup, &opts);
        let warm = run_model(entry, Model::MusGroup, &opts);
        let rec = BenchRecord::of(Model::MusGroup, entry.name, &warm, &opts);
        assert_eq!(rec.cache_hits as usize, warm.outputs.len());
        assert_eq!(rec.cache_misses, 0, "everything was cached by run 1");
        assert!(warm.total_sat_calls() < cold.total_sat_calls());
        for (c, w) in cold.outputs.iter().zip(&warm.outputs) {
            assert_eq!(c.partition, w.partition, "output {}", c.name);
            assert_eq!(c.solved, w.solved);
        }
        // A different model must not see the MG entries.
        let other = run_model(entry, Model::QbfDisjoint, &opts);
        assert_eq!(other.cache_hits(), 0, "cache keys separate models");
    }

    #[test]
    fn clause_reuse_changes_no_answers_and_hits_the_bank() {
        // The determinism contract: with non-binding budgets, reuse on
        // vs off gives byte-identical verdicts and partitions at any
        // worker count — only the work counters move. The circuit
        // carries both reuse populations: permuted copies (exact
        // channel / oracle pool) and near-twins (cluster channel).
        let e = &registry_table1()[16]; // mm9a: small
        let base = e.build(Scale::Smoke);
        let aig = step_circuits::with_shared_substructure(
            &step_circuits::with_permuted_copies(&base, 2),
            2,
        );
        let unlimited = BudgetPolicy {
            per_qbf_call: Budget::Unlimited,
            per_output: Budget::Unlimited,
            per_circuit: Budget::Unlimited,
        };
        for jobs in [1usize, 2] {
            let run = |clause_reuse: bool| {
                let opts = HarnessOpts {
                    jobs,
                    clause_reuse,
                    clause_bank: clause_reuse.then(|| Arc::new(ClauseBank::new())),
                    budget: unlimited,
                    ..smoke_opts()
                };
                let service = opts.service();
                let r = service
                    .submit(&aig, opts.op, opts.config(Model::QbfDisjoint))
                    .expect("stand-in circuits are well-formed")
                    .join()
                    .expect("run completes");
                (r, opts)
            };
            let (off, _) = run(false);
            let (on, on_opts) = run(true);
            assert_eq!(off.outputs.len(), on.outputs.len());
            for (x, y) in off.outputs.iter().zip(&on.outputs) {
                assert_eq!(x.partition, y.partition, "jobs={jobs} output {}", x.name);
                assert_eq!(x.solved, y.solved, "jobs={jobs} output {}", x.name);
                assert_eq!(x.proved_optimal, y.proved_optimal);
            }
            assert_eq!(off.clause_bank_hits(), 0, "reuse off books no hits");
            assert!(
                on.clause_bank_hits() > 0,
                "jobs={jobs}: the twin population must hit the bank"
            );
            assert!(on.donated_clauses() > 0, "completed outputs donate");
            let bank = on_opts.clause_bank.expect("reuse on builds a bank");
            assert!(bank.donations() > 0 && !bank.is_empty());
        }
    }

    #[test]
    fn persistent_store_warms_a_second_sweep() {
        // Two sweeps sharing a --cache-dir store through fresh
        // HarnessOpts each time (no shared memory tier): the second
        // sweep's records report disk hits and a warm store_loaded
        // count, and its answers match the cold sweep exactly.
        let dir = std::env::temp_dir().join(format!(
            "step-bench-warm-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let entry = &registry_table1()[16]; // mm9a: small
        let run = || {
            let mut opts = HarnessOpts {
                cache: Some(Arc::new(ResultCache::new())),
                ..smoke_opts()
            };
            opts.cache_dir = Some(dir.clone());
            opts.store = Some(Arc::new(
                TieredStore::with_disk(opts.cache.clone(), None, &dir).expect("temp store"),
            ));
            let r = run_model(entry, Model::MusGroup, &opts);
            opts.store
                .as_ref()
                .expect("store built")
                .flush()
                .expect("flush");
            let rec = BenchRecord::of(Model::MusGroup, entry.name, &r, &opts);
            (r, rec)
        };
        let (cold, cold_rec) = run();
        let (warm, warm_rec) = run();
        assert_eq!(cold_rec.disk_hits, 0, "nothing on disk yet");
        assert_eq!(cold_rec.store_loaded, 0);
        assert!(
            warm_rec.disk_hits > 0,
            "the second sweep must be served from disk"
        );
        assert!(warm_rec.store_loaded > 0, "the store loaded the flush");
        for (c, w) in cold.outputs.iter().zip(&warm.outputs) {
            assert_eq!(c.partition, w.partition, "output {}", c.name);
            assert_eq!(c.solved, w.solved);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_jobs_match_sequential() {
        let entry = &registry_table1()[17]; // mm9b: small
        let seq = smoke_opts();
        let par = HarnessOpts {
            jobs: 4,
            ..smoke_opts()
        };
        let a = run_model(entry, Model::QbfDisjoint, &seq);
        let b = run_model(entry, Model::QbfDisjoint, &par);
        assert_eq!(a.outputs.len(), b.outputs.len());
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.partition, y.partition, "output {}", x.name);
            assert_eq!(x.solved, y.solved);
            assert_eq!(x.proved_optimal, y.proved_optimal);
        }
    }
}
