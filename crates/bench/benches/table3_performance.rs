//! Criterion kernel for Table III: per-model decomposition runtime on
//! a smoke-scale stand-in (LJH vs STEP-MG vs STEP-QD). The `table3`
//! binary prints the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use step_bench::{run_model, HarnessOpts};
use step_circuits::{registry_table1, Scale};
use step_core::{BudgetPolicy, GateOp, Model};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_performance");
    g.sample_size(10);
    let entry = registry_table1()
        .into_iter()
        .find(|e| e.name == "C880")
        .expect("registry row");
    let opts = HarnessOpts {
        scale: Scale::Smoke,
        budget: BudgetPolicy::quick(),
        op: GateOp::Or,
        filter: None,
        partitions_only: true,
        jobs: 1,
        cache: None,
        ..HarnessOpts::default()
    };
    for model in [Model::Ljh, Model::MusGroup, Model::QbfDisjoint] {
        g.bench_function(format!("C880_{model}"), |b| {
            b.iter(|| {
                let r = run_model(&entry, model, &opts);
                criterion::black_box(r.num_decomposed());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
