//! Criterion kernel for Table IV: the solved-PO ratio of the QBF
//! models under per-call budgets, on a smoke-scale stand-in. The
//! `table4` binary prints the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use step_bench::{run_model, HarnessOpts};
use step_circuits::{registry_table1, Scale};
use step_core::{BudgetPolicy, GateOp, Model};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_solved");
    g.sample_size(10);
    let entry = registry_table1()
        .into_iter()
        .find(|e| e.name == "sbc")
        .expect("registry row");
    let opts = HarnessOpts {
        scale: Scale::Smoke,
        budget: BudgetPolicy::quick(),
        op: GateOp::Or,
        filter: None,
        partitions_only: true,
        jobs: 1,
        cache: None,
        ..HarnessOpts::default()
    };
    for model in [Model::QbfDisjoint, Model::QbfBalanced, Model::QbfCombined] {
        g.bench_function(format!("sbc_solved_ratio_{model}"), |b| {
            b.iter(|| {
                let r = run_model(&entry, model, &opts);
                criterion::black_box(r.solved_ratio());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
