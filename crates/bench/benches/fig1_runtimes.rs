//! Criterion kernel for Figure 1: all five models timed on one
//! smoke-scale circuit (the figure's per-circuit runtime points). The
//! `fig1` binary sweeps all 145 circuits and draws the scatter plots.

use criterion::{criterion_group, criterion_main, Criterion};
use step_bench::{run_model, HarnessOpts};
use step_circuits::{registry_all, Scale};
use step_core::{BudgetPolicy, GateOp, Model};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_runtimes");
    g.sample_size(10);
    let entry = registry_all()
        .into_iter()
        .find(|e| e.name == "small001")
        .expect("registry row");
    let opts = HarnessOpts {
        scale: Scale::Smoke,
        budget: BudgetPolicy::quick(),
        op: GateOp::Or,
        filter: None,
        partitions_only: true,
        jobs: 1,
        cache: None,
        ..HarnessOpts::default()
    };
    for model in Model::ALL {
        g.bench_function(format!("small001_{model}"), |b| {
            b.iter(|| {
                let r = run_model(&entry, model, &opts);
                criterion::black_box(r.cpu);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
