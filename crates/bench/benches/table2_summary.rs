//! Criterion kernel for Table II: the cross-operator aggregate
//! (STEP-MG vs STEP-QD over OR/AND/XOR) on a smoke-scale stand-in.
//! The `table2` binary prints the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use step_bench::{run_model_op, HarnessOpts, QualityAggregate, QualityMetric};
use step_circuits::{registry_table1, Scale};
use step_core::{BudgetPolicy, GateOp, Model};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_summary");
    g.sample_size(10);
    let entry = registry_table1()
        .into_iter()
        .find(|e| e.name == "mm9a")
        .expect("registry row");
    let opts = HarnessOpts {
        scale: Scale::Smoke,
        budget: BudgetPolicy::quick(),
        op: GateOp::Or,
        filter: None,
        partitions_only: true,
        jobs: 1,
        cache: None,
        ..HarnessOpts::default()
    };
    g.bench_function("mm9a_all_ops_mg_vs_qd", |b| {
        b.iter(|| {
            let mut agg = QualityAggregate::default();
            for op in GateOp::ALL {
                let mg = run_model_op(&entry, Model::MusGroup, op, &opts);
                let qd = run_model_op(&entry, Model::QbfDisjoint, op, &opts);
                agg.add(&qd, &mg, QualityMetric::Disjointness);
            }
            let (better, equal) = agg.percentages();
            assert!(better + equal > 99.9);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
