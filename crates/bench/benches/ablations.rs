//! Ablation benchmarks for the design choices the paper (and
//! DESIGN.md §3.3) call out:
//!
//! * **symmetry breaking** `|XA| ≥ |XB|` — the paper: "this
//!   optimization reduces substantially the search space";
//! * **forbidding `(α,β) = (1,1)`** — never loses solutions, shrinks
//!   the candidate space;
//! * **the simulation pre-filter** for seed pairs;
//! * **`k`-search strategy**: MI vs the paper's MD→Bin→MI pipeline for
//!   disjointness;
//! * **SAT kernel knobs**: restart policy (Luby vs LBD-EMA) and the
//!   bounded preprocessing pass, measured through a full QBF model
//!   solve so the ablation reflects end-to-end cost.

use criterion::{criterion_group, criterion_main, Criterion};
use step_aig::{Aig, AigLit};
use step_core::optimum::{self, Metric};
use step_core::oracle::{sim_filter_pairs, CoreFormula, PartitionOracle};
use step_core::qbf_model::{solve_partition, ModelOptions, QbfModelOutcome, Target};
use step_core::{mg, GateOp, SearchStrategy};

/// A 12-input function with one shared variable and several valid
/// partitions — large enough that ablation effects are visible.
fn testbed() -> (Aig, AigLit) {
    let mut aig = Aig::new();
    let s = aig.add_input("s");
    let xs: Vec<AigLit> = (0..11).map(|i| aig.add_input(format!("x{i}"))).collect();
    let c1 = aig.and_many(&xs[0..5]);
    let c2 = aig.and_many(&xs[5..11]);
    let t1 = aig.and(s, c1);
    let t2 = aig.and(s, c2);
    let f = aig.or(t1, t2);
    (aig, f)
}

fn bench_symmetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_symmetry");
    g.sample_size(10);
    let (aig, f) = testbed();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    for (label, sym) in [("with_symmetry", true), ("without_symmetry", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = ModelOptions {
                    symmetry_breaking: sym,
                    ..ModelOptions::default()
                };
                let mut meter = step_core::EffortMeter::unlimited();
                let (outcome, _) =
                    solve_partition(&core, Target::DisjointAtMost(1), &opts, &mut meter);
                assert!(matches!(outcome, QbfModelOutcome::Partition(_)));
            })
        });
    }
    g.finish();
}

fn bench_allow_both(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_allow_both");
    g.sample_size(10);
    let (aig, f) = testbed();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    for (label, both) in [("pairs_forbidden", false), ("pairs_allowed", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = ModelOptions {
                    allow_both: both,
                    ..ModelOptions::default()
                };
                let mut meter = step_core::EffortMeter::unlimited();
                let (outcome, _) =
                    solve_partition(&core, Target::DisjointAtMost(1), &opts, &mut meter);
                assert!(matches!(outcome, QbfModelOutcome::Partition(_)));
            })
        });
    }
    g.finish();
}

fn bench_sim_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sim_filter");
    g.sample_size(10);
    let (aig, f) = testbed();
    g.bench_function("mg_with_filter", |b| {
        b.iter(|| {
            let core = CoreFormula::build(&aig, f, GateOp::Or);
            let candidates = sim_filter_pairs(&aig, f, GateOp::Or, 4, 7);
            let mut oracle = PartitionOracle::new(core);
            let mut meter = step_core::EffortMeter::unlimited();
            let r = mg::decompose(&mut oracle, Some(&candidates), &mut meter);
            assert!(matches!(r, mg::MgOutcome::Partition(_)));
        })
    });
    g.bench_function("mg_without_filter", |b| {
        b.iter(|| {
            let core = CoreFormula::build(&aig, f, GateOp::Or);
            let mut oracle = PartitionOracle::new(core);
            let mut meter = step_core::EffortMeter::unlimited();
            let r = mg::decompose(&mut oracle, None, &mut meter);
            assert!(matches!(r, mg::MgOutcome::Partition(_)));
        })
    });
    g.finish();
}

fn bench_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_strategy");
    g.sample_size(10);
    let (aig, f) = testbed();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    let bootstrap = {
        let mut oracle = PartitionOracle::new(core.clone());
        let mut meter = step_core::EffortMeter::unlimited();
        match mg::decompose(&mut oracle, None, &mut meter) {
            mg::MgOutcome::Partition(p) => p,
            other => panic!("{other:?}"),
        }
    };
    for (label, strategy) in [
        ("mi", SearchStrategy::MonotoneIncreasing),
        ("md", SearchStrategy::MonotoneDecreasing),
        ("bin", SearchStrategy::Binary),
        ("md_bin_mi", SearchStrategy::MdBinMi),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut meter = step_core::EffortMeter::unlimited();
                let r = optimum::search(
                    &core,
                    Metric::Disjointness,
                    Some(&bootstrap),
                    strategy,
                    &ModelOptions::default(),
                    &mut meter,
                );
                assert!(r.proved_optimal);
            })
        });
    }
    g.finish();
}

fn bench_sat_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sat_kernel");
    g.sample_size(10);
    let (aig, f) = testbed();
    let core = CoreFormula::build(&aig, f, GateOp::Or);
    for (label, restarts, preprocess) in [
        ("luby", step_sat::RestartPolicy::Luby, false),
        ("ema", step_sat::RestartPolicy::Ema, false),
        ("luby_preprocess", step_sat::RestartPolicy::Luby, true),
        ("ema_preprocess", step_sat::RestartPolicy::Ema, true),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = ModelOptions {
                    restarts,
                    preprocess,
                    ..ModelOptions::default()
                };
                let mut meter = step_core::EffortMeter::unlimited();
                let (outcome, _) =
                    solve_partition(&core, Target::DisjointAtMost(1), &opts, &mut meter);
                assert!(matches!(outcome, QbfModelOutcome::Partition(_)));
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_symmetry,
    bench_allow_both,
    bench_sim_filter,
    bench_strategy,
    bench_sat_kernel
);
criterion_main!(benches);
