//! Persistent artifact-store benchmarks: what a `--cache-dir` costs.
//!
//! The disk tier's job is to make warm starts cheap, so the numbers
//! that matter are the bulk paths a real run exercises once each:
//! flushing a populated store to disk at exit and loading it back at
//! spawn, both at a sweep-sized entry count. The record log is
//! append-only and checksummed; these benches keep the entry mix
//! representative (mostly results, a slice of clause exports) without
//! growing payloads past what smoke-scale sweeps produce.

use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use step_aig::ConeFingerprint;
use step_cnf::{Lit, Var};
use step_core::{
    Artifact, ArtifactKey, ArtifactStore, CachedResult, ClausePayload, DecompConfig, GateOp, Model,
    Namespace, TieredStore, VarClass,
};
use step_sat::LearntExport;

const ENTRIES: usize = 10_000;
/// One clause export per this many result entries.
const CLAUSE_STRIDE: usize = 5;

/// A fresh, empty store directory under the target tmp dir.
fn store_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("bench_store_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic synthetic fingerprint: distinct per index, with
/// support sizes in the range smoke sweeps produce.
fn fingerprint(i: usize) -> ConeFingerprint {
    ConeFingerprint {
        hash: (i as u128).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C834) | 1,
        inputs: 4 + (i % 28) as u32,
        ands: 8 + (i % 100) as u32,
    }
}

/// A small partition over `n` canonical inputs.
fn classes(n: u32) -> Vec<VarClass> {
    (0..n)
        .map(|v| match v % 3 {
            0 => VarClass::A,
            1 => VarClass::B,
            _ => VarClass::C,
        })
        .collect()
}

/// A clause export of the shape donors produce: a handful of short
/// sorted clauses plus normalized activities.
fn export(i: usize) -> LearntExport {
    let clauses = (0..8)
        .map(|c| {
            (0..3)
                .map(|l| {
                    let v = Var::new((i + c + l) % 32);
                    if (i + l).is_multiple_of(2) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect()
        })
        .collect();
    LearntExport {
        clauses,
        activities: (0..4usize)
            .map(|a| (Var::new(a), 1.0 / (a + 1) as f64))
            .collect(),
    }
}

/// Fills a store with the synthetic population (no tier 0 attached:
/// the disk tier is the thing under measurement).
fn populate(store: &TieredStore) {
    let config = DecompConfig::new(Model::QbfDisjoint);
    let results = Namespace::results(&config);
    let clauses = Namespace::clauses();
    for i in 0..ENTRIES {
        let fp = fingerprint(i);
        if i.is_multiple_of(CLAUSE_STRIDE) {
            store.put(
                &clauses,
                &ArtifactKey::of(fp, GateOp::Or),
                Artifact::Clauses(ClausePayload {
                    export: Arc::new(export(i)),
                    check: None,
                    exact: true,
                }),
            );
        } else {
            store.insert_result(
                &results,
                fp,
                GateOp::Or,
                CachedResult {
                    partition: Some(classes(fp.inputs)),
                    proved_optimal: i.is_multiple_of(2),
                },
            );
        }
    }
}

/// Flush cost: populating a fresh store and writing every record out.
/// Each iteration starts from a clean directory so the append-only log
/// actually appends `ENTRIES` records; the in-memory population is
/// part of the measurement but the record encoding + checksummed I/O
/// of the flush dominates.
fn bench_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    g.bench_function("flush_10k", |b| {
        b.iter(|| {
            let dir = store_dir("flush");
            let store = TieredStore::with_disk(None, None, &dir).expect("open store");
            populate(&store);
            let written = store.flush().expect("flush");
            assert_eq!(written, ENTRIES as u64);
        });
    });
    g.finish();
}

/// Load cost: opening a directory holding a flushed 10k-entry store —
/// the price a warm run pays at spawn before any solving starts.
fn bench_load(c: &mut Criterion) {
    let dir = store_dir("load");
    let store = TieredStore::with_disk(None, None, &dir).expect("open store");
    populate(&store);
    assert_eq!(store.flush().expect("flush"), ENTRIES as u64);
    drop(store);

    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    g.bench_function("load_10k", |b| {
        b.iter(|| {
            let store = TieredStore::with_disk(None, None, &dir).expect("open store");
            let disk = store.disk().expect("disk tier attached");
            assert_eq!(disk.loaded_records(), ENTRIES as u64);
            assert_eq!(disk.corrupt_records(), 0);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_flush, bench_load);
criterion_main!(benches);
